//! Cross-crate quantum invariants, property-tested: encoding, batching
//! and gradient correctness of the full QuGeoVQC stack (not just the
//! qsim primitives).

use proptest::prelude::*;
use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::qubatch::QuBatch;
use qugeo_qsim::ansatz::EntangleOrder;
use qugeo_tensor::Array2;

fn small_model(decoder: Decoder) -> QuGeoVqc {
    QuGeoVqc::new(VqcConfig {
        seismic_len: 16,
        num_groups: 1,
        num_blocks: 2,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder,
        max_qubits: 16,
    })
    .expect("valid model")
}

fn seismic_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, 16).prop_filter("nonzero", |v| {
        v.iter().map(|x| x * x).sum::<f64>() > 1e-6
    })
}

fn params_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.5f64..1.5, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_are_finite_and_in_range(
        seismic in seismic_strategy(),
        params in params_strategy(48),
    ) {
        let model = small_model(Decoder::LayerWise { rows: 4 });
        let map = model.predict(&seismic, &params).expect("prediction");
        for &v in map.iter() {
            prop_assert!(v.is_finite());
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "layer output {} not in [0,1]", v);
        }
    }

    #[test]
    fn pixel_predictions_nonnegative(
        seismic in seismic_strategy(),
        params in params_strategy(48),
    ) {
        let model = small_model(Decoder::PixelWise { side: 4 });
        let map = model.predict(&seismic, &params).expect("prediction");
        for &v in map.iter() {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0, "magnitude decoding cannot be negative");
        }
    }

    #[test]
    fn encoding_is_scale_invariant(
        seismic in seismic_strategy(),
        params in params_strategy(48),
        scale in 0.1f64..10.0,
    ) {
        // Amplitude encoding normalises, so rescaling the input must not
        // change the prediction.
        let model = small_model(Decoder::LayerWise { rows: 4 });
        let map_a = model.predict(&seismic, &params).expect("prediction");
        let scaled: Vec<f64> = seismic.iter().map(|v| v * scale).collect();
        let map_b = model.predict(&scaled, &params).expect("prediction");
        for (a, b) in map_a.iter().zip(map_b.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn adjoint_gradient_matches_finite_difference_through_decoder(
        seismic in seismic_strategy(),
        params in params_strategy(48),
    ) {
        let model = small_model(Decoder::LayerWise { rows: 4 });
        let target = Array2::from_fn(4, 4, |r, _| 0.2 + 0.15 * r as f64);
        let (_, grad) = model.loss_and_grad(&seismic, &target, &params).expect("grad");

        let h = 1e-6;
        for idx in [0usize, 18, 35] {
            let mut p = params.clone();
            p[idx] += h;
            let (plus, _) = model.loss_and_grad(&seismic, &target, &p).expect("plus");
            p[idx] -= 2.0 * h;
            let (minus, _) = model.loss_and_grad(&seismic, &target, &p).expect("minus");
            let fd = (plus - minus) / (2.0 * h);
            prop_assert!(
                (fd - grad[idx]).abs() < 1e-4 * fd.abs().max(1.0),
                "param {}: fd {} vs adjoint {}", idx, fd, grad[idx]
            );
        }
    }

    #[test]
    fn qubatch_equals_sequential_for_any_batch(
        s0 in seismic_strategy(),
        s1 in seismic_strategy(),
        s2 in seismic_strategy(),
        params in params_strategy(48),
    ) {
        let model = small_model(Decoder::LayerWise { rows: 4 });
        let qubatch = QuBatch::new(&model).expect("qubatch");
        let batch = vec![s0, s1, s2];
        let maps = qubatch.predict_batch(&batch, &params).expect("batch");
        for (i, s) in batch.iter().enumerate() {
            let solo = model.predict(s, &params).expect("solo");
            for (a, b) in maps[i].iter().zip(solo.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "sample {} diverged", i);
            }
        }
    }

    #[test]
    fn qubatch_gradient_equals_mean_gradient(
        s0 in seismic_strategy(),
        s1 in seismic_strategy(),
        params in params_strategy(48),
    ) {
        let model = small_model(Decoder::LayerWise { rows: 4 });
        let qubatch = QuBatch::new(&model).expect("qubatch");
        let batch = vec![s0, s1];
        let targets = vec![
            Array2::filled(4, 4, 0.3),
            Array2::from_fn(4, 4, |r, _| r as f64 * 0.2),
        ];
        let (bl, bg) = qubatch.loss_and_grad_batch(&batch, &targets, &params).expect("batch");

        let mut ml = 0.0;
        let mut mg = vec![0.0; params.len()];
        for (s, t) in batch.iter().zip(&targets) {
            let (l, g) = model.loss_and_grad(s, t, &params).expect("solo");
            ml += l / 2.0;
            for (acc, gi) in mg.iter_mut().zip(&g) {
                *acc += gi / 2.0;
            }
        }
        prop_assert!((bl - ml).abs() < 1e-9);
        for (a, b) in bg.iter().zip(&mg) {
            prop_assert!((a - b).abs() < 1e-8, "gradient diverged: {} vs {}", a, b);
        }
    }
}
