//! Chaos soak tests for the self-healing QuServe serving layer.
//!
//! A [`FaultInjectingBackend`] drives a *seeded, exactly reproducible*
//! schedule of worker panics, transient typed errors, NaN outputs and
//! latency spikes through a live service while closed-loop clients
//! hammer it with retrying requests. The contract under test (see
//! `docs/SERVING.md` § "Failure handling and recovery"):
//!
//! * every submitted request resolves — success or *typed* error, never
//!   a hang and never a silent NaN;
//! * the supervisor respawns dead workers until the fleet is back at
//!   the configured size;
//! * [`ServeStats`] counters match the injection schedule **exactly**
//!   (the schedule is deterministic, so the books must balance);
//! * once the faults stop, served results are bit-identical to an
//!   undisturbed sequential session.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::serve::{CoalesceMode, QuServe, RetryPolicy, ServeConfig, ServeError};
use qugeo::session::InferenceSession;
use qugeo::train::{ScheduleSpec, Sweep, SweepSpace, TrainConfig};
use qugeo_geodata::scaling::ScaledSample;
use qugeo_qsim::ansatz::EntangleOrder;
use qugeo_qsim::{
    BackendConfig, BatchedState, CompiledCircuit, FaultInjectingBackend, FaultPlan, FaultState,
    QsimError, QuantumBackend, StatevectorBackend,
};
use qugeo_tensor::Array2;

fn small_config() -> VqcConfig {
    VqcConfig {
        seismic_len: 16,
        num_groups: 1,
        num_blocks: 2,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder: Decoder::LayerWise { rows: 4 },
        max_qubits: 16,
    }
}

fn small_model() -> QuGeoVqc {
    QuGeoVqc::new(small_config()).expect("valid config")
}

fn request(client: usize, i: usize) -> Vec<f64> {
    (0..16)
        .map(|k| ((k + 31 * client + 7 * i) as f64 * 0.37).sin() + 0.4)
        .collect()
}

/// Polls `predicate` until it holds or `timeout` passes.
fn eventually(timeout: Duration, mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if predicate() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The headline soak: ≥5% injected fault rate over 1000 requests, every
/// request resolving, the fleet healing back to full size, the stats
/// ledger balancing against the injection counters exactly, and
/// bit-identical post-recovery results.
#[test]
fn chaos_soak_recovers_to_full_capacity_with_exact_accounting() {
    const REQUESTS: usize = 1000;
    const CLIENTS: usize = 4;
    const WORKERS: usize = 2;

    let model = small_model();
    let params = model.init_params(17);
    // 1.5% panics + 2% transients + 2% NaN = 5.5% real faults, plus 1%
    // latency spikes that must NOT surface as failures.
    let plan = FaultPlan {
        seed: 0xC4A0_5EED,
        panic_rate: 0.015,
        transient_rate: 0.02,
        nan_rate: 0.02,
        latency_rate: 0.01,
        latency: Duration::from_micros(200),
    };
    // All workers — and every supervisor respawn — share one schedule
    // state, so the injection sequence spans worker deaths.
    let state = Arc::new(FaultState::default());
    let serve = QuServe::start_with(
        model.clone(),
        &params,
        ServeConfig {
            workers: WORKERS,
            // One request per engine call makes attempts == backend
            // calls, which is what lets the ledger balance exactly.
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_depth: 1024,
            coalesce: CoalesceMode::Batched,
            restart_budget: 10_000,
            restart_window: Duration::from_secs(3600),
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(200),
            ..ServeConfig::default()
        },
        {
            let state = Arc::clone(&state);
            move |_| {
                FaultInjectingBackend::with_state(
                    StatevectorBackend::default(),
                    plan,
                    Arc::clone(&state),
                )
            }
        },
    )
    .expect("service starts");

    let policy = RetryPolicy {
        max_attempts: usize::MAX,
        base_backoff: Duration::from_micros(50),
        backoff_cap: Duration::from_millis(1),
        jitter_seed: 11,
    };
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let serve = &serve;
            scope.spawn(move || {
                for i in 0..REQUESTS / CLIENTS {
                    // Unbounded retries on retryable faults: under chaos
                    // every request must still eventually succeed.
                    serve
                        .predict_with_retry(request(c, i), policy)
                        .unwrap_or_else(|e| panic!("client {c} request {i} failed: {e}"));
                }
            });
        }
    });

    // The fleet heals: every panic's respawn completes and the worker
    // count returns to the configured level.
    let panics = state.panics() as usize;
    assert!(
        eventually(Duration::from_secs(20), || {
            serve.alive_workers() == WORKERS && serve.stats().worker_restarts == panics
        }),
        "fleet never healed: {} alive, {} restarts for {} panics",
        serve.alive_workers(),
        serve.stats().worker_restarts,
        panics,
    );

    // Exact accounting against the deterministic injection schedule.
    let transients = state.transients() as usize;
    let nans = state.nans() as usize;
    let faults = panics + transients + nans;
    let stats = serve.stats();
    assert!(
        state.faults() as usize >= REQUESTS / 20,
        "soak too tame: {} faults over {} requests",
        state.faults(),
        REQUESTS
    );
    assert_eq!(
        state.calls() as usize,
        REQUESTS + faults,
        "every request costs one engine call, every fault one retry's worth"
    );
    assert_eq!(stats.completed, REQUESTS, "all requests eventually served");
    assert_eq!(stats.retries, faults, "one retry per injected real fault");
    assert_eq!(stats.submitted, REQUESTS + faults);
    assert_eq!(
        stats.failed,
        transients + nans,
        "typed failures: transient + NaN (panics fail via WorkerLost)"
    );
    assert_eq!(stats.transient_failures, transients + nans);
    assert_eq!(stats.worker_restarts, panics);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_shed, 0);
    assert_eq!(stats.abandoned_shed, 0);
    assert_eq!(stats.restarts_denied, 0);
    assert!(!stats.degraded);

    // Post-recovery determinism: stop injecting and compare against an
    // undisturbed sequential session — bit-identical.
    state.set_enabled(false);
    let mut reference = InferenceSession::new(model, &params).expect("reference session");
    for k in 0..16 {
        let served = serve.predict_blocking(request(99, k)).expect("healed serve");
        let expected = reference.predict(&request(99, k)).expect("reference");
        assert_eq!(served, expected, "post-recovery request {k} not bit-identical");
    }
}

/// A backend whose executions block on a shared gate, so tests can pin a
/// worker mid-batch and control dequeue timing; counts entries.
#[derive(Debug, Clone, Default)]
struct GatedBackend {
    inner: StatevectorBackend,
    gate: Arc<(Mutex<bool>, Condvar)>,
    entered: Arc<AtomicUsize>,
}

impl GatedBackend {
    fn open(&self) {
        *self.gate.0.lock().unwrap() = true;
        self.gate.1.notify_all();
    }

    fn entered(&self) -> usize {
        self.entered.load(Ordering::Acquire)
    }
}

impl QuantumBackend for GatedBackend {
    fn name(&self) -> &'static str {
        "gated"
    }
    fn config(&self) -> &qugeo_qsim::BackendConfig {
        self.inner.config()
    }
    fn supports_adjoint_gradient(&self) -> bool {
        false
    }
    fn is_deterministic(&self) -> bool {
        true
    }
    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.entered.fetch_add(1, Ordering::AcqRel);
        let mut open = self.gate.0.lock().unwrap();
        while !*open {
            open = self.gate.1.wait(open).unwrap();
        }
        drop(open);
        self.inner.run_batch(circuit, batch)
    }
    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.inner.run_each(circuits, batch)
    }
    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &qugeo_qsim::DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        self.inner.expectations(batch, obs)
    }
    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        self.inner.probabilities(batch)
    }
}

fn gated_serve(model: &QuGeoVqc, params: &[f64]) -> (QuServe, GatedBackend) {
    let backend = GatedBackend::default();
    let serve = QuServe::start_with(
        model.clone(),
        params,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_depth: 64,
            coalesce: CoalesceMode::Batched,
            ..ServeConfig::default()
        },
        {
            let backend = backend.clone();
            move |_| backend.clone()
        },
    )
    .expect("service starts");
    (serve, backend)
}

/// A dropped [`PredictHandle`] is a cancelled request: it must be shed
/// at dequeue, never reaching the engine — abandoning cannot leak
/// simulation capacity.
#[test]
fn abandoned_requests_are_shed_without_costing_a_simulation() {
    let model = small_model();
    let params = model.init_params(5);
    let (serve, backend) = gated_serve(&model, &params);

    // Pin the only worker inside request A's execution.
    let pinned = serve.predict(request(0, 0)).expect("accepted");
    assert!(eventually(Duration::from_secs(10), || backend.entered() == 1));

    // Abandon eight queued requests by dropping their handles…
    for i in 0..8 {
        drop(serve.predict(request(1, i)).expect("accepted"));
    }
    // …and keep one live request behind them.
    let live = serve.predict(request(2, 0)).expect("accepted");

    backend.open();
    assert!(pinned.wait().is_ok(), "pinned request must complete");
    assert!(live.wait().is_ok(), "live request must complete");

    let stats = serve.stats();
    assert_eq!(stats.abandoned_shed, 8, "all dropped handles shed");
    assert_eq!(
        backend.entered(),
        2,
        "only the two live requests reached the engine"
    );
    assert_eq!(stats.completed, 2);
}

/// A request whose deadline expired while queued is answered with the
/// typed error at dequeue — an expired deadline never buys a simulation.
#[test]
fn expired_deadlines_are_shed_at_dequeue_not_simulated() {
    let model = small_model();
    let params = model.init_params(6);
    let (serve, backend) = gated_serve(&model, &params);

    let pinned = serve.predict(request(0, 0)).expect("accepted");
    assert!(eventually(Duration::from_secs(10), || backend.entered() == 1));

    let doomed = serve
        .predict_with_deadline(request(3, 0), Some(Duration::from_millis(5)))
        .expect("accepted");
    std::thread::sleep(Duration::from_millis(20));
    backend.open();

    assert!(pinned.wait().is_ok());
    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExceeded)));
    let stats = serve.stats();
    assert_eq!(stats.deadline_shed, 1);
    assert_eq!(backend.entered(), 1, "the expired request was never simulated");
}

/// A backend that fails its first `n` executions with a transient fault,
/// then behaves; drives the circuit breaker deterministically.
#[derive(Debug, Clone, Default)]
struct FailFirstBackend {
    inner: StatevectorBackend,
    remaining: Arc<AtomicUsize>,
}

impl QuantumBackend for FailFirstBackend {
    fn name(&self) -> &'static str {
        "fail-first"
    }
    fn config(&self) -> &qugeo_qsim::BackendConfig {
        self.inner.config()
    }
    fn supports_adjoint_gradient(&self) -> bool {
        false
    }
    fn is_deterministic(&self) -> bool {
        true
    }
    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        if self
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(QsimError::TransientFault {
                reason: "scripted first-call failure".into(),
            });
        }
        self.inner.run_batch(circuit, batch)
    }
    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.inner.run_each(circuits, batch)
    }
    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &qugeo_qsim::DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        self.inner.expectations(batch, obs)
    }
    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        self.inner.probabilities(batch)
    }
}

/// When the failure rate trips the breaker, a Packed service falls back
/// to Batched execution — per-request registers — and the first
/// fallback-served result is bit-identical to a sequential session
/// (packed execution is only rounding-close, so bit equality proves the
/// fallback actually ran).
#[test]
fn circuit_breaker_degrades_packed_to_batched() {
    let model = small_model();
    let params = model.init_params(8);
    let backend = FailFirstBackend {
        remaining: Arc::new(AtomicUsize::new(1)),
        ..FailFirstBackend::default()
    };
    let serve = QuServe::start_with(
        model.clone(),
        &params,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_depth: 64,
            coalesce: CoalesceMode::Packed,
            breaker_threshold: 1,
            ..ServeConfig::default()
        },
        {
            let backend = backend.clone();
            move |_| backend.clone()
        },
    )
    .expect("service starts");

    // The scripted failure is typed and trips the breaker.
    assert!(matches!(
        serve.predict_blocking(request(0, 0)),
        Err(ServeError::TransientFailure { .. })
    ));

    // Next request is served through the Batched fallback: bit-identical
    // to the sequential reference.
    let mut reference = InferenceSession::new(model.clone(), &params).expect("reference");
    let served = serve.predict_blocking(request(0, 1)).expect("fallback serve");
    assert_eq!(
        served,
        reference.predict(&request(0, 1)).expect("reference"),
        "fallback result must be bit-identical batched execution"
    );

    // The successful batch closes the breaker again: packed execution
    // resumes, rounding-close to the reference as usual.
    let packed = serve.predict_blocking(request(0, 2)).expect("packed serve");
    let expected = reference.predict(&request(0, 2)).expect("reference");
    for (a, b) in packed.iter().zip(expected.iter()) {
        assert!((a - b).abs() < 1e-9, "packed drifted: {a} vs {b}");
    }

    let stats = serve.stats();
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.packed_fallbacks, 1, "exactly one batch fell back");
    assert_eq!(stats.transient_failures, 1);
}

/// Synthetic scaled samples with a learnable seismic→velocity link, for
/// the sweep tenant of the shared-budget scenario below.
fn synthetic_samples(n: usize) -> Vec<ScaledSample> {
    const SIDE: usize = 4;
    (0..n)
        .map(|k| {
            let depth = 1 + (k % (SIDE - 1));
            let seismic: Vec<f64> = (0..16)
                .map(|i| {
                    let phase = i as f64 * 0.2 + depth as f64;
                    phase.sin() + 0.3 * (phase * 0.5).cos()
                })
                .collect();
            let velocity = Array2::from_fn(SIDE, SIDE, |r, _| {
                if r < depth {
                    2000.0
                } else {
                    3500.0
                }
            });
            ScaledSample { seismic, velocity }
        })
        .collect()
}

/// Two tenants share the machine's simulation budget: a live QuServe
/// fleet and a hyper-parameter sweep, each pinned to a
/// [`BackendConfig::shared_across`] share. Under that contention,
/// neither side may starve or drift:
///
/// * every serving request completes — the stats ledger shows zero
///   rejections, sheds, or failures (the no-starvation contract);
/// * served results stay bit-identical to an undisturbed sequential
///   session (no cross-tenant state leakage);
/// * the sweep's leaderboard is bit-identical to the same sweep run
///   alone — training determinism survives a noisy neighbour.
#[test]
fn sweep_and_serving_share_the_thread_budget_without_starvation() {
    const REQUESTS: usize = 48;

    let model = small_model();
    let params = model.init_params(21);
    let samples = synthetic_samples(6);
    let (train, test) = (&samples[..4], &samples[4..]);
    let cfg = TrainConfig {
        epochs: 2,
        initial_lr: 0.1,
        seed: 9,
        eval_every: 0,
    };
    let space = SweepSpace {
        learning_rates: vec![0.1, 0.02],
        schedules: vec![ScheduleSpec::CosineAnnealing],
        depths: vec![2],
        batch_sizes: vec![2],
    };

    // The quiet-machine reference: the identical sweep, run alone.
    let reference = Sweep::new(small_config(), train, test, cfg, space.clone())
        .parallel_trials(2)
        .run()
        .expect("reference sweep");

    // The serving tenant takes one shared_across(2) slice of the budget…
    let serve = QuServe::start_with(
        model.clone(),
        &params,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_depth: 256,
            coalesce: CoalesceMode::Batched,
            ..ServeConfig::default()
        },
        |_| StatevectorBackend::with_config(BackendConfig::shared_across(2)),
    )
    .expect("service starts");

    // …while the sweep tenant contends on worker threads of its own
    // (its trials pin themselves to shared_across(2) internally).
    let contended = std::thread::scope(|scope| {
        let sweep_tenant = scope.spawn(|| {
            Sweep::new(small_config(), train, test, cfg, space.clone())
                .parallel_trials(2)
                .run()
                .expect("contended sweep")
        });
        for c in 0..2 {
            let serve = &serve;
            scope.spawn(move || {
                for i in 0..REQUESTS / 2 {
                    serve
                        .predict_blocking(request(c, i))
                        .unwrap_or_else(|e| panic!("client {c} request {i} starved: {e}"));
                }
            });
        }
        sweep_tenant.join().expect("sweep tenant panicked")
    });

    // No starvation, by the books: every request completed, nothing was
    // rejected, shed, or failed while the sweep hogged cores.
    let stats = serve.stats();
    assert_eq!(stats.completed, REQUESTS, "all requests served under contention");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.deadline_shed, 0);
    assert_eq!(stats.abandoned_shed, 0);
    assert_eq!(stats.worker_restarts, 0, "contention is not a fault");
    assert!(!stats.degraded);

    // No cross-tenant leakage in either direction: served results match
    // a sequential session bitwise, and the contended leaderboard (plus
    // its stable JSON artifact) matches the quiet-machine reference.
    let mut session = InferenceSession::new(model, &params).expect("reference session");
    for k in 0..8 {
        let served = serve.predict_blocking(request(7, k)).expect("post-soak serve");
        let expected = session.predict(&request(7, k)).expect("reference");
        assert_eq!(served, expected, "request {k} drifted under shared budget");
    }
    assert_eq!(contended, reference, "contention leaked into the leaderboard");
    assert_eq!(contended.to_json(), reference.to_json());
}
