//! Compiler differential-test harness: the structure/bind split and the
//! optimizer pass pipeline, pinned against the unfused gate-by-gate
//! reference on arbitrary trainable circuits.
//!
//! Three properties (see `qsim::fusion` / `qsim::passes`):
//!
//! * **bind ≡ compile, bitwise.** Re-binding a compiled circuit to new
//!   parameters must produce *exactly* the fused ops and derivative
//!   records a fresh compile of those parameters produces — not close,
//!   identical. Bind and compile share one evaluation path; this test
//!   keeps it that way.
//! * **Passes preserve semantics.** Every one of the 8 pass-pipeline
//!   combinations must reproduce the unfused reference's statevector,
//!   expectations, and adjoint gradients (via the `NaiveBackend`'s
//!   serial unfused engine) to ≤ 1e-10 on circuits with shared slots,
//!   CU3s, swaps and densified reversed-control pairs.
//! * **The pipeline is a fixpoint.** Running any pass combination on its
//!   own output changes nothing.

use proptest::prelude::*;
use qugeo_qsim::{
    AdjointWorkspace, BatchedState, Circuit, CircuitStructure, CompiledCircuit,
    DiagonalObservable, Gate1, ParamSource, PassConfig, PassIr, QuantumBackend, NaiveBackend,
    State, run_passes,
};

const QUBITS: usize = 3;
const DIM: usize = 1 << QUBITS;

/// One gate draw: (kind, qubit a, qubit b, fixed angle, slot mode).
/// Slot mode 0 = fixed angle, 1 = fresh trainable slot(s), 2 = reuse an
/// earlier gate's slot(s) — the shared-slot case the gradient
/// accumulation must sum over.
type GateSpec = (usize, usize, usize, f64, usize);

fn gate_strategy() -> impl Strategy<Value = GateSpec> {
    (0..9usize, 0..QUBITS, 0..QUBITS, -3.1f64..3.1, 0..3usize)
}

fn circuit_strategy() -> impl Strategy<Value = Vec<GateSpec>> {
    prop::collection::vec(gate_strategy(), 1..24)
}

/// Deterministically lowers a spec list to a trainable circuit,
/// threading slot reuse through pools of previously-allocated slots.
fn build_circuit(specs: &[GateSpec]) -> Circuit {
    let mut c = Circuit::new(QUBITS);
    let mut singles: Vec<usize> = Vec::new(); // 1-slot rotations
    let mut triples: Vec<usize> = Vec::new(); // U3/CU3 first-slots
    for (k, &(kind, a, b, angle, slot_mode)) in specs.iter().enumerate() {
        let q = a % QUBITS;
        let mut r = b % QUBITS;
        if r == q {
            r = (r + 1) % QUBITS;
        }
        let single_slot = |c: &mut Circuit, singles: &mut Vec<usize>| match slot_mode {
            0 => None,
            2 if !singles.is_empty() => Some(singles[k % singles.len()]),
            _ => {
                let s = c.alloc_slot();
                singles.push(s);
                Some(s)
            }
        };
        let triple_slot = |c: &mut Circuit, triples: &mut Vec<usize>| match slot_mode {
            2 if !triples.is_empty() => triples[k % triples.len()],
            _ => {
                let s = c.alloc_slots(3);
                triples.push(s);
                s
            }
        };
        match kind {
            0 => {
                c.h(q).unwrap();
            }
            1 => match single_slot(&mut c, &mut singles) {
                Some(s) => {
                    c.ry_slot(q, s).unwrap();
                }
                None => {
                    c.ry_fixed(q, angle).unwrap();
                }
            },
            2 => {
                c.push_single(Gate1::Rz(ParamSource::Fixed(angle)), q).unwrap();
            }
            3 => match slot_mode {
                0 => {
                    let gate = Gate1::U3(
                        ParamSource::Fixed(angle),
                        ParamSource::Fixed(angle * 0.5),
                        ParamSource::Fixed(-angle),
                    );
                    c.push_single(gate, q).unwrap();
                }
                _ => {
                    let s = triple_slot(&mut c, &mut triples);
                    c.u3_slots(q, s).unwrap();
                }
            },
            4 => {
                c.cx(q, r).unwrap();
            }
            5 => {
                let s = triple_slot(&mut c, &mut triples);
                c.cu3_slots(q, r, s).unwrap();
            }
            6 => {
                c.swap(q, r).unwrap();
            }
            7 => {
                c.push_controlled(Gate1::Rz(ParamSource::Fixed(angle)), q, r).unwrap();
            }
            _ => match single_slot(&mut c, &mut singles) {
                Some(s) => {
                    c.ry_slot(r, s).unwrap();
                }
                None => {
                    c.h(r).unwrap();
                }
            },
        }
    }
    c
}

fn params_for(circuit: &Circuit, seed: f64) -> Vec<f64> {
    (0..circuit.num_slots())
        .map(|i| ((i as f64 + seed) * 0.37).sin() * 1.2)
        .collect()
}

fn input_state(raw: &[f64]) -> State {
    State::from_real_normalized(raw).expect("filtered non-zero")
}

fn all_pass_configs() -> [PassConfig; 8] {
    let mut configs = [PassConfig::none(); 8];
    for (i, config) in configs.iter_mut().enumerate() {
        config.merge_rotations = i & 1 != 0;
        config.cancel_inverses = i & 2 != 0;
        config.widen_pairs = i & 4 != 0;
    }
    configs
}

fn amps_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, DIM)
        .prop_filter("nonzero", |v| v.iter().map(|x| x * x).sum::<f64>() > 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property (a): bind(params) on a pre-compiled structure — and
    /// rebind on a live compiled circuit — equal a fresh compile of the
    /// same parameters bit-for-bit, gradient metadata included.
    #[test]
    fn bind_equals_fresh_compile_bitwise(
        specs in circuit_strategy(),
        seed in -2.0f64..2.0,
    ) {
        let circuit = build_circuit(&specs);
        let p0 = params_for(&circuit, seed);
        let p1 = params_for(&circuit, seed + 0.61);

        let structure = CircuitStructure::compile(&circuit);
        prop_assert_eq!(
            structure.bind(&p0).unwrap(),
            CompiledCircuit::compile(&circuit, &p0).unwrap()
        );

        // Re-bind across two parameter vectors, with gradients.
        let mut live = structure.bind_with_grad(&p0).unwrap();
        live.rebind(&p1).unwrap();
        prop_assert_eq!(
            live.clone(),
            CompiledCircuit::compile_with_grad(&circuit, &p1).unwrap()
        );
        // And back again — rebinding is not a one-way trip.
        live.rebind(&p0).unwrap();
        prop_assert_eq!(
            live,
            CompiledCircuit::compile_with_grad(&circuit, &p0).unwrap()
        );
    }

    /// Property (c): every pass combination is idempotent — running the
    /// pipeline on its own output is a no-op.
    #[test]
    fn pass_pipeline_is_idempotent(specs in circuit_strategy()) {
        let circuit = build_circuit(&specs);
        for config in all_pass_configs() {
            let mut ir = PassIr::from_circuit(&circuit);
            run_passes(&config, &mut ir);
            let once = ir.clone();
            run_passes(&config, &mut ir);
            prop_assert_eq!(&ir, &once, "pipeline not a fixpoint under {:?}", config);
        }
    }
}

proptest! {
    // The heavy differential: 8 pass combos × (statevector + expectation
    // + serial-adjoint gradients) per case.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property (b): every pass combination preserves the statevector,
    /// diagonal expectations and adjoint gradients of the unfused
    /// reference to ≤ 1e-10.
    #[test]
    fn pass_combinations_preserve_semantics(
        specs in circuit_strategy(),
        raw in amps_strategy(),
        seed in -2.0f64..2.0,
        proj in 0..DIM,
        zq in 0..QUBITS,
    ) {
        let circuit = build_circuit(&specs);
        let params = params_for(&circuit, seed);
        let input = input_state(&raw);
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(QUBITS, zq).unwrap(),
                DiagonalObservable::projector(QUBITS, proj).unwrap(),
            ],
            &[1.0, -1.7],
        )
        .unwrap();

        // Unfused references: gate-by-gate execution for the state, the
        // NaiveBackend's serial unfused adjoint for the gradients.
        let reference_state = circuit.run(&input, &params).unwrap();
        let reference_value = obs.expectation(&reference_state);
        let inputs = BatchedState::replicate(&input, 1);
        let naive = NaiveBackend::default();
        let mut naive_ws = AdjointWorkspace::new();
        naive
            .adjoint_gradient_batch(&circuit, &params, &inputs, &mut |_, _| Ok(obs.clone()), &mut naive_ws)
            .unwrap();

        for config in all_pass_configs() {
            let structure = CircuitStructure::compile_with_passes(&circuit, &config);
            let compiled = structure.bind_with_grad(&params).unwrap();

            let state = compiled.run(&input).unwrap();
            for (i, (a, b)) in state
                .amplitudes()
                .iter()
                .zip(reference_state.amplitudes())
                .enumerate()
            {
                prop_assert!(
                    (*a - *b).norm() < 1e-10,
                    "{:?}: amplitude {} diverged: {:?} vs {:?}", config, i, a, b
                );
            }
            let value = obs.expectation(&state);
            prop_assert!(
                (value - reference_value).abs() < 1e-10,
                "{:?}: expectation {} vs {}", config, value, reference_value
            );

            let mut ws = AdjointWorkspace::new();
            ws.forward(&compiled, &inputs, 1).unwrap();
            ws.backward_with(&compiled, 1, &mut |_, _| Ok(obs.clone())).unwrap();
            prop_assert!(
                (ws.value(0) - naive_ws.value(0)).abs() < 1e-10,
                "{:?}: adjoint value {} vs {}", config, ws.value(0), naive_ws.value(0)
            );
            for (s, (g, r)) in ws.grad(0).iter().zip(naive_ws.grad(0)).enumerate() {
                prop_assert!(
                    (g - r).abs() < 1e-10,
                    "{:?}: gradient slot {} diverged: {} vs {}", config, s, g, r
                );
            }
        }
    }
}
