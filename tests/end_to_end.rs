//! End-to-end integration tests: the full QuGeo pipeline from dataset
//! synthesis through scaling, training and evaluation, at smoke scale.

use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::{
    scale_cnn, scale_d_sample, scale_forward_model, train_cnn_scaler, CnnScalingConfig,
    FwScalingConfig,
};
use qugeo::train::{evaluate_vqc, PerSampleVqc, QuBatchVqc, TrainConfig, Trainer};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn smoke_dataset(num_samples: usize, seed: u64) -> Dataset {
    let config = DatasetConfig {
        num_samples,
        grid: Grid::new(28, 28, 10.0, 0.001, 100).expect("grid"),
        survey: Survey::surface(28, 5, 24, 1).expect("survey"),
        wavelet_hz: 15.0,
        space_order: SpaceOrder::Order4,
        seed,
    };
    Dataset::generate(&config).expect("dataset generation")
}

fn fw_config() -> FwScalingConfig {
    FwScalingConfig {
        extent_m: 280.0,
        sim_steps: 48,
        ..FwScalingConfig::default()
    }
}

#[test]
fn d_sample_pipeline_trains_and_improves() {
    let dataset = smoke_dataset(8, 1);
    let layout = ScaledLayout::paper_default();
    let scaled = scale_d_sample(&dataset, &layout).expect("scaling");
    let (train, test) = scaled.try_split(6).expect("split within dataset");

    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise()).expect("model");
    // Untrained baseline.
    let init = model.init_params(7);
    let (mse_before, _) = evaluate_vqc(&model, &init, &test).expect("eval");

    let outcome = Trainer::new(TrainConfig::smoke(12))
        .fit(&mut PerSampleVqc::new(&model, &train, &test).expect("strategy"))
        .expect("training");
    assert!(
        outcome.final_mse < mse_before,
        "training must improve MSE: {mse_before} -> {}",
        outcome.final_mse
    );
    assert!(outcome.final_ssim > -1.0 && outcome.final_ssim <= 1.0);
}

#[test]
fn fw_pipeline_runs_end_to_end() {
    let dataset = smoke_dataset(6, 2);
    let layout = ScaledLayout::paper_default();
    let scaled = scale_forward_model(&dataset, &layout, &fw_config()).expect("fw scaling");
    assert_eq!(scaled.len(), 6);
    let (train, test) = scaled.try_split(4).expect("split within dataset");

    let model = QuGeoVqc::new(VqcConfig::paper_pixel_wise()).expect("model");
    let outcome = Trainer::new(TrainConfig::smoke(8))
        .fit(&mut PerSampleVqc::new(&model, &train, &test).expect("strategy"))
        .expect("training");
    let first = outcome.history.first().expect("history").train_loss;
    let last = outcome.history.last().expect("history").train_loss;
    assert!(last < first, "loss should fall: {first} -> {last}");
}

#[test]
fn cnn_pipeline_runs_end_to_end() {
    let dataset = smoke_dataset(4, 3);
    let aux = smoke_dataset(4, 77);
    let layout = ScaledLayout::paper_default();
    let compressor = train_cnn_scaler(
        &aux,
        &layout,
        &fw_config(),
        &CnnScalingConfig {
            epochs: 8,
            initial_lr: 0.02,
            seed: 9,
        },
    )
    .expect("compressor training");
    let scaled = scale_cnn(&dataset, &compressor, &layout).expect("cnn scaling");
    assert_eq!(scaled.len(), 4);
    for s in &scaled.samples {
        assert_eq!(s.seismic.len(), 256);
        assert!(s.seismic.iter().any(|v| v.abs() > 0.0));
    }
}

#[test]
fn batched_and_unbatched_training_agree_at_batch_one() {
    let dataset = smoke_dataset(5, 4);
    let layout = ScaledLayout::paper_default();
    let scaled = scale_d_sample(&dataset, &layout).expect("scaling");
    let (train, test) = scaled.try_split(4).expect("split within dataset");

    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise()).expect("model");
    let cfg = TrainConfig::smoke(4);
    let solo = Trainer::new(cfg)
        .fit(&mut PerSampleVqc::new(&model, &train, &test).expect("strategy"))
        .expect("solo");
    let batched = Trainer::new(cfg)
        .fit(&mut QuBatchVqc::new(&model, &train, &test, 1).expect("strategy"))
        .expect("batched");
    // Batch size 1 follows the same sample order and gradients, so the
    // trajectories coincide.
    assert!(
        (solo.final_mse - batched.final_mse).abs() < 1e-9,
        "batch-1 training must match unbatched: {} vs {}",
        solo.final_mse,
        batched.final_mse
    );
}

#[test]
fn decoders_share_the_same_pipeline() {
    let dataset = smoke_dataset(4, 5);
    let layout = ScaledLayout::paper_default();
    let scaled = scale_d_sample(&dataset, &layout).expect("scaling");
    let (train, test) = scaled.try_split(3).expect("split within dataset");

    for decoder in [Decoder::paper_pixel_wise(), Decoder::paper_layer_wise()] {
        let model = QuGeoVqc::new(VqcConfig {
            decoder,
            ..VqcConfig::paper_pixel_wise()
        })
        .expect("model");
        let outcome = Trainer::new(TrainConfig::smoke(3))
            .fit(&mut PerSampleVqc::new(&model, &train, &test).expect("strategy"))
            .expect("training");
        assert!(outcome.final_mse.is_finite());
        assert_eq!(outcome.params.len(), 576);
    }
}

#[test]
fn dataset_roundtrip_preserves_training_behaviour() {
    let dataset = smoke_dataset(4, 6);
    let dir = std::env::temp_dir().join("qugeo_e2e");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("ds.bin");
    dataset.save_bin(&path).expect("save");
    let loaded = Dataset::load_bin(&path).expect("load");
    assert_eq!(dataset, loaded);
    std::fs::remove_file(&path).ok();

    let layout = ScaledLayout::paper_default();
    let a = scale_d_sample(&dataset, &layout).expect("scale original");
    let b = scale_d_sample(&loaded, &layout).expect("scale loaded");
    assert_eq!(a.samples, b.samples);
}
