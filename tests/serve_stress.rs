//! Concurrency stress tests for the QuServe serving layer.
//!
//! The contract under test (see `core::serve` module docs): coalescing
//! must be *invisible* on a deterministic backend — whatever batches a
//! request lands in, whichever worker serves it, the result is
//! bit-identical to a sequential [`InferenceSession::predict`] loop —
//! and overload must shed load with a typed error instead of stalling or
//! deadlocking.

use std::time::Duration;

use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::serve::{CoalesceMode, QuServe, ServeConfig, ServeError};
use qugeo::session::InferenceSession;
use qugeo_qsim::ansatz::EntangleOrder;
use qugeo_qsim::{
    BackendConfig, BatchedState, CompiledCircuit, DiagonalObservable, QsimError, QuantumBackend,
    StatevectorBackend,
};
use qugeo_tensor::Array2;

fn small_model() -> QuGeoVqc {
    QuGeoVqc::new(VqcConfig {
        seismic_len: 16,
        num_groups: 1,
        num_blocks: 2,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder: Decoder::LayerWise { rows: 4 },
        max_qubits: 16,
    })
    .expect("valid config")
}

fn request(client: usize, i: usize) -> Vec<f64> {
    (0..16)
        .map(|k| ((k + 31 * client + 7 * i) as f64 * 0.37).sin() + 0.4)
        .collect()
}

/// N client threads × M requests each, submitted in bursts so workers
/// coalesce varying batch shapes; every output must be bit-identical to
/// a sequential session.
#[test]
fn coalesced_results_bit_identical_to_sequential() {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 16;
    let model = small_model();
    let params = model.init_params(11);
    let serve = QuServe::start(
        model.clone(),
        &params,
        ServeConfig {
            workers: 4,
            max_batch: 8,
            max_wait: Duration::from_micros(300),
            queue_depth: 256,
            coalesce: CoalesceMode::Batched,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    let results: Vec<Vec<Array2>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let serve = &serve;
                scope.spawn(move || {
                    let mut maps = Vec::with_capacity(REQUESTS);
                    // Bursts of 4: the queue sees overlapping bursts from
                    // 8 clients, so coalesced batches mix clients.
                    for burst in 0..REQUESTS / 4 {
                        let pending: Vec<_> = (0..4)
                            .map(|j| {
                                serve
                                    .predict(request(c, burst * 4 + j))
                                    .expect("queue has room")
                            })
                            .collect();
                        for handle in pending {
                            maps.push(handle.wait().expect("request served"));
                        }
                    }
                    maps
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut sequential = InferenceSession::new(model, &params).expect("session");
    for (c, maps) in results.iter().enumerate() {
        for (i, served) in maps.iter().enumerate() {
            let expected = sequential.predict(&request(c, i)).expect("sequential predict");
            assert_eq!(
                *served, expected,
                "client {c} request {i}: coalesced result not bit-identical"
            );
        }
    }

    let stats = serve.stats();
    assert_eq!(stats.completed, CLIENTS * REQUESTS);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.max_coalesced >= 2,
        "8 bursting clients never coalesced (max batch {})",
        stats.max_coalesced
    );
}

/// QuBatch-packed coalescing on the exact backend: one register serves
/// the whole batch; results match sequential prediction to rounding.
#[test]
fn packed_coalescing_matches_sequential_within_tolerance() {
    const CLIENTS: usize = 6;
    const REQUESTS: usize = 8;
    let model = small_model();
    let params = model.init_params(23);
    let serve = QuServe::start(
        model.clone(),
        &params,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_micros(300),
            queue_depth: 128,
            coalesce: CoalesceMode::Packed,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    let results: Vec<Vec<Array2>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let serve = &serve;
                scope.spawn(move || {
                    (0..REQUESTS)
                        .map(|i| serve.predict_blocking(request(c, i)).expect("served"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut sequential = InferenceSession::new(model, &params).expect("session");
    for (c, maps) in results.iter().enumerate() {
        for (i, served) in maps.iter().enumerate() {
            let expected = sequential.predict(&request(c, i)).expect("sequential");
            for (a, b) in served.iter().zip(expected.iter()) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "client {c} request {i}: packed {a} vs sequential {b}"
                );
            }
        }
    }
}

/// A statevector backend that sleeps before executing, so the queue can
/// be driven into overload deterministically.
#[derive(Debug)]
struct SlowBackend {
    inner: StatevectorBackend,
    delay: Duration,
}

impl QuantumBackend for SlowBackend {
    fn name(&self) -> &'static str {
        "slow-statevector"
    }
    fn config(&self) -> &BackendConfig {
        self.inner.config()
    }
    fn supports_adjoint_gradient(&self) -> bool {
        false
    }
    fn is_deterministic(&self) -> bool {
        true
    }
    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        std::thread::sleep(self.delay);
        self.inner.run_batch(circuit, batch)
    }
    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.inner.run_each(circuits, batch)
    }
    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        self.inner.expectations(batch, obs)
    }
    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        self.inner.probabilities(batch)
    }
}

/// When the bounded queue fills behind a slow worker, further submissions
/// fail fast with `Overloaded` — and every accepted request still
/// completes (no deadlock, no dropped work).
#[test]
fn overload_sheds_with_typed_error_and_no_deadlock() {
    let model = small_model();
    let params = model.init_params(3);
    let serve = QuServe::start_with(
        model,
        &params,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_depth: 2,
            coalesce: CoalesceMode::Batched,
            ..ServeConfig::default()
        },
        |_| SlowBackend {
            inner: StatevectorBackend::default(),
            delay: Duration::from_millis(40),
        },
    )
    .expect("service starts");

    // Flood: with a 40ms execution and a depth-2 queue, a burst of 8
    // instant submissions must overflow regardless of scheduling.
    let mut accepted = Vec::new();
    let mut overloaded = 0usize;
    for i in 0..8 {
        match serve.predict(request(0, i)) {
            Ok(handle) => accepted.push(handle),
            Err(ServeError::Overloaded { depth }) => {
                assert_eq!(depth, 2);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(overloaded >= 1, "burst of 8 never tripped the depth-2 queue");
    assert!(!accepted.is_empty());
    assert_eq!(serve.stats().rejected, overloaded);

    // Every accepted request completes promptly — the overload path must
    // never wedge the worker or strand a handle.
    for (i, handle) in accepted.into_iter().enumerate() {
        match handle.wait_timeout(Duration::from_secs(10)) {
            Ok(result) => {
                result.unwrap_or_else(|e| panic!("accepted request {i} failed: {e}"));
            }
            Err(_) => panic!("accepted request {i} timed out: service deadlocked"),
        }
    }
}

/// Hot-swapping parameters under concurrent load: every result matches
/// one of the two deployed generations exactly, and post-drain requests
/// serve the new generation.
#[test]
fn hot_swap_under_load_never_tears_a_batch() {
    let model = small_model();
    let p0 = model.init_params(1);
    let p1 = model.init_params(42);
    let serve = QuServe::start(
        model.clone(),
        &p0,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_depth: 128,
            coalesce: CoalesceMode::Batched,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    let mut old_gen = InferenceSession::new(model.clone(), &p0).expect("session");
    let mut new_gen = InferenceSession::new(model.clone(), &p1).expect("session");

    let served: Vec<(usize, Array2)> = std::thread::scope(|scope| {
        let client = {
            let serve = &serve;
            scope.spawn(move || {
                (0..60)
                    .map(|i| (i, serve.predict_blocking(request(9, i)).expect("served")))
                    .collect::<Vec<_>>()
            })
        };
        // Deploy the new vector while the client streams requests.
        std::thread::sleep(Duration::from_millis(2));
        serve.deploy(&p1).expect("deploy");
        client.join().expect("client thread")
    });

    for (i, map) in &served {
        let expect_old = old_gen.predict(&request(9, *i)).expect("old generation");
        let expect_new = new_gen.predict(&request(9, *i)).expect("new generation");
        assert!(
            *map == expect_old || *map == expect_new,
            "request {i} matches neither parameter generation — torn swap"
        );
    }
    // After the stream, the service must serve the new generation only.
    let settled = serve.predict_blocking(request(9, 1000)).expect("served");
    let expected = new_gen.predict(&request(9, 1000)).expect("new generation");
    assert_eq!(settled, expected, "service still serving the old generation");
}

/// Polls the service counters until `done` holds (workers publish their
/// session counters after answering a batch, so a just-returned request's
/// bookkeeping may trail by a scheduling quantum).
fn wait_for_stats(
    serve: &QuServe,
    done: impl Fn(&qugeo::serve::ServeStats) -> bool,
) -> qugeo::serve::ServeStats {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = serve.stats();
        if done(&stats) || std::time::Instant::now() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Deploying under packed coalescing must *re-bind* the worker sessions —
/// the base circuit and the per-width packed cache both survive the swap
/// with zero recompilation, and post-swap results serve the new vector.
#[test]
fn packed_deploy_rebinds_instead_of_recompiling_the_width_cache() {
    let model = small_model();
    let p0 = model.init_params(5);
    let p1 = model.init_params(77);
    // One worker so the session counters are exact, and strictly
    // sequential requests so every packed batch has one member (a single
    // width-0 register) — the counter arithmetic below is deterministic.
    let serve = QuServe::start(
        model.clone(),
        &p0,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_depth: 64,
            coalesce: CoalesceMode::Packed,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    for i in 0..6 {
        serve.predict_blocking(request(1, i)).expect("warm request");
    }
    let warm = wait_for_stats(&serve, |s| s.session_compilations >= 2);
    // One base structure compile at session construction plus one for
    // the width the packed path serves — and nothing re-bound yet.
    assert_eq!(warm.session_compilations, 2);
    assert_eq!(warm.session_rebinds, 0);

    serve.deploy(&p1).expect("deploy");
    let served: Vec<Array2> = (0..6)
        .map(|i| serve.predict_blocking(request(2, i)).expect("post-swap request"))
        .collect();

    let stats = wait_for_stats(&serve, |s| s.session_rebinds >= 2);
    // The hot swap re-bound the base circuit once and lazily re-bound
    // the stale width entry once — no structure was recompiled and the
    // per-width cache was not dropped.
    assert_eq!(
        stats.session_compilations, 2,
        "deploy must not recompile or drop the packed width cache"
    );
    assert_eq!(stats.session_rebinds, 2);
    assert_eq!(stats.swaps, 1);

    let mut reference = InferenceSession::new(model, &p1).expect("session");
    for (i, map) in served.iter().enumerate() {
        let expected = reference.predict(&request(2, i)).expect("reference");
        for (a, b) in map.iter().zip(expected.iter()) {
            assert!(
                (a - b).abs() < 1e-9,
                "post-swap request {i} not serving the deployed vector: {a} vs {b}"
            );
        }
    }
}
