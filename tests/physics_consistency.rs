//! Cross-crate physics consistency tests: the seismic data the geodata
//! crate synthesises must carry the physical signatures the wavesim
//! solver promises, and the QuGeoData scaling must preserve them in the
//! way the paper argues.

use qugeo::pipeline::{fw_scale_seismic, quantum_normalized_waveform, FwScalingConfig};
use qugeo_geodata::scaling::{d_sample, ScaledLayout};
use qugeo_geodata::{Dataset, DatasetConfig, FlatLayerGenerator};
use qugeo_tensor::norm::l2_norm;
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn dataset(seed: u64) -> Dataset {
    let config = DatasetConfig {
        num_samples: 2,
        grid: Grid::new(32, 32, 10.0, 0.001, 150).expect("grid"),
        survey: Survey::surface(32, 5, 32, 1).expect("survey"),
        wavelet_hz: 15.0,
        space_order: SpaceOrder::Order4,
        seed,
    };
    Dataset::generate(&config).expect("generation")
}

#[test]
fn first_arrivals_move_outward_from_source() {
    // For a surface source, receivers further from the source see the
    // wave later — moveout must be visible in the synthetic data.
    let ds = dataset(10);
    let sample = &ds.samples()[0];
    let (_, nt, nr) = sample.seismic.shape();
    let gather = sample.seismic.slice(0); // leftmost source (x = 0)

    let first_arrival = |r: usize| -> usize {
        let col: Vec<f64> = (0..nt).map(|t| gather[(t, r)]).collect();
        let peak = col.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        col.iter()
            .position(|v| v.abs() > 0.1 * peak)
            .unwrap_or(nt)
    };
    let near = first_arrival(2);
    let far = first_arrival(nr - 1);
    assert!(
        near < far,
        "near receiver (step {near}) must hear the wave before the far one (step {far})"
    );
}

#[test]
fn faster_subsurface_shortens_travel_time() {
    // Two handmade models: slow vs fast half-space. The fast model's
    // wave must reach a far receiver earlier.
    use qugeo_geodata::VelocityModel;
    use qugeo_wavesim::{model_shots, RickerWavelet};

    let grid = Grid::new(40, 40, 10.0, 0.001, 250).expect("grid");
    let survey = Survey::surface(40, 1, 40, 1).expect("survey");
    let wavelet = RickerWavelet::new(15.0, grid.dt()).expect("wavelet");

    let arrival_for = |velocity: f64| -> usize {
        let model =
            VelocityModel::from_layers(40, 40, vec![0], vec![velocity]).expect("model");
        let cube = model_shots(model.map(), &grid, &survey, &wavelet, SpaceOrder::Order4)
            .expect("modelling");
        let gather = cube.slice(0);
        let col: Vec<f64> = (0..250).map(|t| gather[(t, 39)]).collect();
        let peak = col.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        col.iter().position(|v| v.abs() > 0.1 * peak).expect("arrival")
    };
    assert!(arrival_for(3500.0) < arrival_for(1800.0));
}

#[test]
fn fw_rescaling_keeps_layer_ordering_information() {
    // Two models whose only difference is the depth of the fast layer
    // must produce distinguishable physics-scaled vectors.
    let generator = FlatLayerGenerator::new(32, 32).expect("generator");
    let layout = ScaledLayout::paper_default();
    let fw = FwScalingConfig {
        extent_m: 320.0,
        ..FwScalingConfig::default()
    };

    let a = generator.sample(3);
    let b = generator.sample(4);
    let sa = fw_scale_seismic(a.map(), &layout, &fw).expect("scale a");
    let sb = fw_scale_seismic(b.map(), &layout, &fw).expect("scale b");
    assert_eq!(sa.len(), 256);
    let diff: f64 = sa.iter().zip(&sb).map(|(x, y)| (x - y).abs()).sum();
    assert!(
        diff > 1e-6,
        "different subsurfaces must give different scaled seismic data"
    );
}

#[test]
fn d_sample_and_quantum_normalisation_compose() {
    let ds = dataset(11);
    let layout = ScaledLayout::paper_default();
    let scaled = d_sample(&ds.samples()[0], &layout).expect("d-sample");
    let qn = quantum_normalized_waveform(&scaled.seismic, &layout).expect("normalise");
    // Each group must be a unit vector — the amplitude-encoding contract.
    for chunk in qn.chunks(layout.group_len()) {
        assert!((l2_norm(chunk) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn scaled_velocity_targets_keep_flat_layers() {
    let ds = dataset(12);
    let layout = ScaledLayout::paper_default();
    for sample in ds.iter() {
        let scaled = d_sample(sample, &layout).expect("d-sample");
        // Rows of the 8×8 target stay constant (flat layers survive
        // scaling) and velocities stay within the FlatVelA range.
        for r in 0..8 {
            let row = scaled.velocity.row(r);
            assert!(row.iter().all(|&v| v == row[0]), "row {r} not flat");
            assert!(row[0] >= 1500.0 && row[0] <= 4000.0);
        }
        // Depth ordering preserved: velocity non-decreasing downward.
        for r in 0..7 {
            assert!(
                scaled.velocity[(r + 1, 0)] >= scaled.velocity[(r, 0)],
                "velocity must not decrease with depth after scaling"
            );
        }
    }
}
