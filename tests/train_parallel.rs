//! Differential suite for data-parallel training: `DataParallel` at any
//! replica count must be **bit-identical** to a single replica — same
//! parameters, same history, same optimiser moments — for every
//! strategy, optimiser, and schedule (the determinism contract in
//! `qugeo::train::parallel`). Also pinned here: plain-strategy anchors
//! (wrapping with `micro = batch_size` reproduces the unwrapped run
//! bitwise), resume-under-parallelism across *different* replica
//! counts, scheduling-policy invariance, and the typed-error contract
//! for a panicking replica.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{
    Callback, CallbackFlow, DataParallel, EpochContext, EpochStats, MiniBatchVqc,
    PerSampleVqc, PeriodicCheckpoint, QuBatchVqc, ReplicaThreads, ScheduleSpec, Sweep,
    SweepSpace, SweepStrategy, TrainConfig, Trainer,
};
use qugeo::QuGeoError;
use qugeo_geodata::scaling::ScaledSample;
use qugeo_nn::optim::{AmsGrad, Sgd, StepDecay, WarmupCosine};
use qugeo_qsim::ansatz::EntangleOrder;
use qugeo_qsim::{FaultInjectingBackend, FaultPlan, StatevectorBackend};
use qugeo_tensor::Array2;

/// Synthetic scaled samples with a learnable seismic→velocity link: the
/// seismic vector is a deterministic function of the layer depth.
fn synthetic_samples(n: usize) -> Vec<ScaledSample> {
    const SIDE: usize = 4;
    (0..n)
        .map(|k| {
            let depth = 1 + (k % (SIDE - 1));
            let seismic: Vec<f64> = (0..16)
                .map(|i| {
                    let phase = i as f64 * 0.2 + depth as f64;
                    phase.sin() + 0.3 * (phase * 0.5).cos()
                })
                .collect();
            let velocity = Array2::from_fn(SIDE, SIDE, |r, _| {
                if r < depth {
                    2000.0
                } else {
                    3500.0
                }
            });
            ScaledSample { seismic, velocity }
        })
        .collect()
}

fn small_model() -> QuGeoVqc {
    QuGeoVqc::new(VqcConfig {
        seismic_len: 16,
        num_groups: 1,
        num_blocks: 2,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder: Decoder::LayerWise { rows: 4 },
        max_qubits: 16,
    })
    .expect("valid config")
}

fn split(samples: Vec<ScaledSample>, at: usize) -> (Vec<ScaledSample>, Vec<ScaledSample>) {
    let test = samples[at..].to_vec();
    (samples[..at].to_vec(), test)
}

#[derive(Clone, Copy, Debug)]
enum StrategyKind {
    PerSample,
    MiniBatch(usize),
    QuBatch(usize),
}

impl StrategyKind {
    /// The micro-batch size at which the wrapped run decomposes each
    /// step into exactly one unit — the plain-strategy bitwise anchor.
    fn anchor_micro(self) -> usize {
        match self {
            Self::PerSample => 1,
            Self::MiniBatch(b) | Self::QuBatch(b) => b,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum OptKind {
    Adam,
    AmsGrad,
    Momentum,
}

#[derive(Clone, Copy, Debug)]
enum SchedKind {
    Cosine,
    Step,
    Warmup,
}

/// Captures the optimiser's serialised moment state after every epoch,
/// so runs are compared moment-for-moment, not just parameter-wise.
struct CaptureOptState(Arc<Mutex<Vec<f64>>>);

impl Callback for CaptureOptState {
    fn on_epoch_end(
        &mut self,
        _stats: &mut EpochStats,
        ctx: &EpochContext<'_>,
    ) -> Result<CallbackFlow, QuGeoError> {
        *self.0.lock().unwrap() = ctx.opt_state.to_vec();
        Ok(CallbackFlow::Continue)
    }
}

/// Stops the run after a fixed epoch — simulates an interruption.
struct StopAfter(usize);

impl Callback for StopAfter {
    fn on_epoch_end(
        &mut self,
        _stats: &mut EpochStats,
        ctx: &EpochContext<'_>,
    ) -> Result<CallbackFlow, QuGeoError> {
        Ok(if ctx.epoch >= self.0 {
            CallbackFlow::Stop
        } else {
            CallbackFlow::Continue
        })
    }
}

/// Everything a differential comparison pins: final parameters, the
/// full epoch history, and the optimiser's final moment vector.
#[derive(Debug, PartialEq)]
struct Run {
    params: Vec<f64>,
    history: Vec<EpochStats>,
    opt_state: Vec<f64>,
}

fn build_trainer(
    cfg: TrainConfig,
    opt: OptKind,
    sched: SchedKind,
    sink: Arc<Mutex<Vec<f64>>>,
) -> Trainer {
    let trainer = Trainer::new(cfg).callback(CaptureOptState(sink));
    let trainer = match sched {
        SchedKind::Cosine => trainer,
        SchedKind::Step => trainer.schedule(StepDecay::new(cfg.initial_lr, 0.5, 2)),
        SchedKind::Warmup => trainer.schedule(WarmupCosine::new(cfg.initial_lr, 2, cfg.epochs)),
    };
    match opt {
        OptKind::Adam => trainer,
        OptKind::AmsGrad => trainer.optimizer(|n, lr| Box::new(AmsGrad::new(n, lr))),
        OptKind::Momentum => trainer.optimizer(|n, lr| Box::new(Sgd::with_momentum(n, lr, 0.9))),
    }
}

/// Runs one full training, either through the plain strategy
/// (`parallel: None`) or wrapped in `DataParallel` with the given
/// `(replicas, micro_batch, threading)`.
#[allow(clippy::too_many_arguments)]
fn fit_with(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    cfg: TrainConfig,
    strategy: StrategyKind,
    opt: OptKind,
    sched: SchedKind,
    parallel: Option<(usize, usize, ReplicaThreads)>,
) -> Run {
    let sink = Arc::new(Mutex::new(Vec::new()));
    let trainer = build_trainer(cfg, opt, sched, Arc::clone(&sink));
    let outcome = match (strategy, parallel) {
        (StrategyKind::PerSample, None) => {
            trainer.fit(&mut PerSampleVqc::new(model, train, test).unwrap())
        }
        (StrategyKind::PerSample, Some((r, micro, th))) => {
            let inner = PerSampleVqc::new(model, train, test).unwrap();
            let mut dp = DataParallel::new(&inner, r)
                .unwrap()
                .micro_batch(micro)
                .threading(th);
            trainer.fit(&mut dp)
        }
        (StrategyKind::MiniBatch(b), None) => {
            trainer.fit(&mut MiniBatchVqc::new(model, train, test, b).unwrap())
        }
        (StrategyKind::MiniBatch(b), Some((r, micro, th))) => {
            let inner = MiniBatchVqc::new(model, train, test, b).unwrap();
            let mut dp = DataParallel::new(&inner, r)
                .unwrap()
                .micro_batch(micro)
                .threading(th);
            trainer.fit(&mut dp)
        }
        (StrategyKind::QuBatch(b), None) => {
            trainer.fit(&mut QuBatchVqc::new(model, train, test, b).unwrap())
        }
        (StrategyKind::QuBatch(b), Some((r, micro, th))) => {
            let inner = QuBatchVqc::new(model, train, test, b).unwrap();
            let mut dp = DataParallel::new(&inner, r)
                .unwrap()
                .micro_batch(micro)
                .threading(th);
            trainer.fit(&mut dp)
        }
    }
    .expect("training run succeeds");
    let opt_state = sink.lock().unwrap().clone();
    Run {
        params: outcome.params,
        history: outcome.history,
        opt_state,
    }
}

/// The headline matrix: for every strategy × optimiser, the plain
/// unwrapped run and `DataParallel` at replicas ∈ {1, 2, 3, 8} (with
/// `micro = batch_size`, worker threads forced on) agree bit for bit on
/// parameters, history, and optimiser moments.
#[test]
fn replicas_are_bit_identical_to_plain_for_every_strategy_and_optimizer() {
    let model = small_model();
    let (train, test) = split(synthetic_samples(7), 5);
    let cfg = TrainConfig {
        epochs: 3,
        initial_lr: 0.1,
        seed: 13,
        eval_every: 0,
    };
    let strategies = [
        StrategyKind::PerSample,
        StrategyKind::MiniBatch(3),
        StrategyKind::QuBatch(2),
    ];
    let optimizers = [OptKind::Adam, OptKind::AmsGrad, OptKind::Momentum];
    for strategy in strategies {
        for opt in optimizers {
            let plain = fit_with(
                &model, &train, &test, cfg, strategy, opt, SchedKind::Cosine, None,
            );
            assert!(!plain.opt_state.is_empty(), "moments were captured");
            for replicas in [1, 2, 3, 8] {
                let dp = fit_with(
                    &model,
                    &train,
                    &test,
                    cfg,
                    strategy,
                    opt,
                    SchedKind::Cosine,
                    Some((replicas, strategy.anchor_micro(), ReplicaThreads::Always)),
                );
                assert_eq!(
                    dp, plain,
                    "{strategy:?} × {opt:?} diverged at replicas={replicas}"
                );
            }
        }
    }
}

/// Schedule invariance: swapping in step-decay or warmup-cosine leaves
/// the wrapped-vs-plain bit-identity intact (the schedule only feeds the
/// coordinator's optimiser, which replicas never touch).
#[test]
fn schedules_preserve_the_wrapped_vs_plain_bit_identity() {
    let model = small_model();
    let (train, test) = split(synthetic_samples(6), 4);
    let cfg = TrainConfig {
        epochs: 4,
        initial_lr: 0.1,
        seed: 5,
        eval_every: 0,
    };
    for sched in [SchedKind::Step, SchedKind::Warmup] {
        let plain = fit_with(
            &model,
            &train,
            &test,
            cfg,
            StrategyKind::MiniBatch(2),
            OptKind::Adam,
            sched,
            None,
        );
        let dp = fit_with(
            &model,
            &train,
            &test,
            cfg,
            StrategyKind::MiniBatch(2),
            OptKind::Adam,
            sched,
            Some((3, 2, ReplicaThreads::Always)),
        );
        assert_eq!(dp, plain, "{sched:?} broke the bit-identity");
    }
}

/// The threading policy is pure scheduling: inline, forced-threaded, and
/// auto evaluation produce bit-identical runs, as does piling on more
/// replicas than units.
#[test]
fn threading_policy_and_replica_surplus_never_change_results() {
    let model = small_model();
    let (train, test) = split(synthetic_samples(6), 4);
    let cfg = TrainConfig {
        epochs: 3,
        initial_lr: 0.1,
        seed: 29,
        eval_every: 0,
    };
    let strategy = StrategyKind::MiniBatch(4);
    // micro=1 decomposes each 4-sample step into four single-sample
    // units — a different (deterministic) reduction grouping than the
    // plain strategy, so the reference is the single-replica inline run.
    let reference = fit_with(
        &model,
        &train,
        &test,
        cfg,
        strategy,
        OptKind::Adam,
        SchedKind::Cosine,
        Some((1, 1, ReplicaThreads::Never)),
    );
    for (replicas, threads) in [
        (1, ReplicaThreads::Always),
        (3, ReplicaThreads::Auto),
        (3, ReplicaThreads::Never),
        (5, ReplicaThreads::Always),
        (8, ReplicaThreads::Always),
    ] {
        let run = fit_with(
            &model,
            &train,
            &test,
            cfg,
            strategy,
            OptKind::Adam,
            SchedKind::Cosine,
            Some((replicas, 1, threads)),
        );
        assert_eq!(
            run, reference,
            "replicas={replicas}, {threads:?} diverged from the inline run"
        );
    }
}

/// Zero replicas is a typed configuration error, not a panic.
#[test]
fn zero_replicas_is_a_config_error() {
    let model = small_model();
    let (train, test) = split(synthetic_samples(4), 2);
    let inner = MiniBatchVqc::new(&model, &train, &test, 2).unwrap();
    assert!(matches!(
        DataParallel::new(&inner, 0),
        Err(QuGeoError::Config { .. })
    ));
}

/// Resume under parallelism: a run interrupted at a checkpoint and
/// resumed with a *different* replica count finishes bit-identical to
/// the uninterrupted plain-strategy run — replica count is invisible
/// even across a crash/resume boundary.
#[test]
fn resuming_with_a_different_replica_count_is_bit_identical() {
    let model = small_model();
    let (train, test) = split(synthetic_samples(6), 4);
    let cfg = TrainConfig {
        epochs: 8,
        initial_lr: 0.1,
        seed: 3,
        eval_every: 0,
    };
    let strategy = StrategyKind::MiniBatch(2);
    let dir = std::env::temp_dir().join("qugeo_train_parallel_resume");
    std::fs::remove_dir_all(&dir).ok();

    // The reference: one uninterrupted run of the plain strategy.
    let full = fit_with(
        &model, &train, &test, cfg, strategy, OptKind::Adam, SchedKind::Cosine, None,
    );

    // The same training "crashed" after epoch 3 while running on two
    // replicas, having checkpointed at epochs 1 and 3.
    {
        let inner = MiniBatchVqc::new(&model, &train, &test, 2).unwrap();
        let mut dp = DataParallel::new(&inner, 2)
            .unwrap()
            .micro_batch(2)
            .threading(ReplicaThreads::Always);
        let interrupted = Trainer::new(cfg)
            .callback(PeriodicCheckpoint::new(&model, &dir, 2, "dp-resume").unwrap())
            .callback(StopAfter(3))
            .fit(&mut dp)
            .unwrap();
        assert_eq!(interrupted.history.len(), 4);
    }

    // Recover the artifact and finish on THREE replicas this time.
    let ckpt = PeriodicCheckpoint::latest_valid(&dir, "dp-resume", &model)
        .unwrap()
        .expect("epoch-3 checkpoint written");
    assert_eq!(ckpt.epoch, Some(3));
    let sink = Arc::new(Mutex::new(Vec::new()));
    let inner = MiniBatchVqc::new(&model, &train, &test, 2).unwrap();
    let mut dp = DataParallel::new(&inner, 3)
        .unwrap()
        .micro_batch(2)
        .threading(ReplicaThreads::Always);
    let resumed = Trainer::new(cfg)
        .callback(CaptureOptState(Arc::clone(&sink)))
        .fit_resuming(&mut dp, &ckpt)
        .unwrap();

    assert_eq!(resumed.params, full.params, "resume must be invisible");
    assert_eq!(
        *sink.lock().unwrap(),
        full.opt_state,
        "optimiser moments must match the uninterrupted run"
    );
    assert_eq!(
        resumed.history.as_slice(),
        &full.history[4..],
        "resumed history covers epochs 4..8 exactly"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A replica whose engine panics mid-step surfaces as the typed
/// [`QuGeoError::ReplicaPanic`] — caught on the worker thread, never an
/// unwind through the training loop, never an optimiser step on a
/// partial all-reduce.
#[test]
fn panicking_replica_surfaces_as_a_typed_error() {
    let model = small_model();
    let (train, test) = split(synthetic_samples(6), 4);
    let faulty = FaultInjectingBackend::new(
        StatevectorBackend::default(),
        FaultPlan {
            panic_rate: 1.0,
            ..FaultPlan::default()
        },
    );
    let inner = MiniBatchVqc::with_backend(&model, &train, &test, 4, &faulty).unwrap();
    let mut dp = DataParallel::new(&inner, 2)
        .unwrap()
        .micro_batch(1)
        .threading(ReplicaThreads::Always);
    let err = Trainer::new(TrainConfig::smoke(2)).fit(&mut dp).unwrap_err();
    match err {
        QuGeoError::ReplicaPanic { replica, reason } => {
            assert!(replica < 2, "replica index {replica} out of range");
            assert!(
                reason.contains("injected engine panic"),
                "payload message lost: {reason}"
            );
        }
        other => panic!("expected ReplicaPanic, got {other}"),
    }
}

/// The sweep layer inherits the same contract: the leaderboard — and its
/// stable JSON artifact — is identical whether trials run serially or on
/// a pool of workers, and a seeded random strategy enumerates the same
/// specs every time.
#[test]
fn sweep_leaderboard_is_parallelism_invariant() {
    let samples = synthetic_samples(6);
    let (train, test) = (&samples[..4], &samples[4..]);
    let base = VqcConfig {
        seismic_len: 16,
        num_groups: 1,
        num_blocks: 2,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder: Decoder::LayerWise { rows: 4 },
        max_qubits: 16,
    };
    let cfg = TrainConfig {
        epochs: 2,
        initial_lr: 0.1,
        seed: 9,
        eval_every: 0,
    };
    let space = SweepSpace {
        learning_rates: vec![0.1, 0.02],
        schedules: vec![ScheduleSpec::CosineAnnealing, ScheduleSpec::Constant],
        depths: vec![2],
        batch_sizes: vec![2],
    };
    let serial = Sweep::new(base, train, test, cfg, space.clone()).run().unwrap();
    let pooled = Sweep::new(base, train, test, cfg, space.clone())
        .parallel_trials(3)
        .run()
        .unwrap();
    assert_eq!(serial, pooled, "worker count leaked into the leaderboard");
    assert_eq!(serial.to_json(), pooled.to_json());
    assert!(serial.to_json().contains("\"schema\": \"qugeo-sweep-leaderboard/v1\""));
    assert_eq!(serial.trials.len(), 4, "full grid ran");

    // Seeded random selection enumerates identically on every call.
    let draw = |parallel| {
        Sweep::new(base, train, test, cfg, space.clone())
            .strategy(SweepStrategy::Random { trials: 3, seed: 42 })
            .parallel_trials(parallel)
            .run()
            .unwrap()
    };
    assert_eq!(draw(1), draw(4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomised instances of the core contract: any (batch, micro,
    /// replica-count, seed, epoch-count) combination trains to the same
    /// bits on N replicas as on one.
    #[test]
    fn replica_count_never_changes_training_output(
        seed in 0u64..512,
        batch in 1usize..=3,
        micro in 1usize..=3,
        replicas in 2usize..=6,
        epochs in 2usize..=3,
    ) {
        let model = small_model();
        let (train, test) = split(synthetic_samples(6), 4);
        let cfg = TrainConfig { epochs, initial_lr: 0.1, seed, eval_every: 0 };
        let strategy = StrategyKind::MiniBatch(batch);
        let single = fit_with(
            &model, &train, &test, cfg, strategy, OptKind::Adam, SchedKind::Cosine,
            Some((1, micro, ReplicaThreads::Never)),
        );
        let multi = fit_with(
            &model, &train, &test, cfg, strategy, OptKind::Adam, SchedKind::Cosine,
            Some((replicas, micro, ReplicaThreads::Always)),
        );
        prop_assert_eq!(single, multi);
    }
}
