//! Workspace umbrella for the QuGeo reproduction.
//!
//! This crate exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); it re-exports the
//! member crates for convenience so examples can write `use
//! qugeo_repro::qugeo::…`.
//!
//! See the [`qugeo`] crate for the framework itself, the repository
//! `README.md` for the workspace map and quickstart, and
//! `docs/ARCHITECTURE.md` for the end-to-end dataflow and the fused /
//! batched execution path.

pub use qugeo;
pub use qugeo_geodata;
pub use qugeo_metrics;
pub use qugeo_nn;
pub use qugeo_qsim;
pub use qugeo_tensor;
pub use qugeo_wavesim;
