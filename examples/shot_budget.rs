//! Shot-budget study: how much measurement do you have to pay for?
//!
//! ```text
//! cargo run --release --example shot_budget
//! ```
//!
//! Real quantum hardware never returns exact expectation values — every
//! number is estimated from a finite number of measurement shots, and
//! related hybrid-QNN FWI work (arXiv:2503.05009) runs exactly this
//! regime. This example serves the paper's Q-M-LY model through an
//! [`qugeo::session::InferenceSession`] on four execution backends — the
//! exact statevector backend and [`qugeo_qsim::ShotSamplerBackend`] at
//! 1k / 10k / 100k shots — and reports how prediction quality (SSIM /
//! MSE against the normalised targets) degrades as the shot budget
//! shrinks, plus how close each budget gets to the exact prediction.
//!
//! The session compiles the trained circuit **once per backend** and
//! recycles its batch buffers across every request, which is the shape a
//! deployed inference service would run.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::{normalized_target, scale_d_sample};
use qugeo::session::InferenceSession;
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_metrics::{mse, ssim};
use qugeo_qsim::{QuantumBackend, ShotSamplerBackend, StatevectorBackend};
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("QuGeo inference under a finite shot budget");
    println!("==========================================");

    // Train Q-M-LY on clean simulation first (small synthetic set).
    let config = DatasetConfig {
        num_samples: 10,
        grid: Grid::new(32, 32, 10.0, 0.001, 128)?,
        survey: Survey::surface(32, 5, 32, 1)?,
        wavelet_hz: 15.0,
        space_order: SpaceOrder::Order4,
        seed: 29,
    };
    println!("synthesising data and training Q-M-LY (exact simulation)…");
    let dataset = Dataset::generate(&config)?;
    let layout = ScaledLayout::paper_default();
    let scaled = scale_d_sample(&dataset, &layout)?;
    let (train, test) = scaled.try_split(7)?;
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let outcome = Trainer::new(TrainConfig {
        epochs: 40,
        initial_lr: 0.1,
        seed: 5,
        eval_every: 0,
    })
    .fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;

    // Exact reference predictions through a statevector session.
    let requests: Vec<&[f64]> = test.iter().map(|s| s.seismic.as_slice()).collect();
    let mut exact_session = InferenceSession::with_backend(
        model.clone(),
        &outcome.params,
        StatevectorBackend::default(),
    )?;
    let exact_preds = exact_session.predict_many(&requests)?;
    println!(
        "exact backend ({}): compiled {} time(s) for {} requests\n",
        exact_session.backend().name(),
        exact_session.compilations(),
        exact_session.requests(),
    );

    println!("  backend            shots   mean SSIM   mean MSE    |Δ| vs exact");
    let report = |name: &str, shots: &str, preds: &[qugeo_tensor::Array2]| {
        let mut ssim_total = 0.0;
        let mut mse_total = 0.0;
        let mut drift = 0.0;
        for ((s, pred), exact) in test.iter().zip(preds).zip(&exact_preds) {
            let target = normalized_target(s);
            ssim_total += ssim(pred, &target).expect("same shapes");
            mse_total += mse(pred, &target).expect("same shapes");
            drift += pred
                .iter()
                .zip(exact.iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / pred.iter().count() as f64;
        }
        let n = test.len() as f64;
        println!(
            "  {name:<16} {shots:>7}   {:>9.4}   {:>8.5}   {:>12.5}",
            ssim_total / n,
            mse_total / n,
            drift / n
        );
    };

    report(exact_session.backend().name(), "exact", &exact_preds);
    for shots in [1_000usize, 10_000, 100_000] {
        let backend = ShotSamplerBackend::new(shots, 1234);
        // Sampling backends advertise themselves as non-deterministic:
        // the same request measured twice gives two different estimates,
        // so a serving layer must not cache their responses.
        assert!(!backend.is_deterministic());
        let mut session =
            InferenceSession::with_backend(model.clone(), &outcome.params, backend)?;
        let preds = session.predict_many(&requests)?;
        assert_eq!(session.compilations(), 1); // compile-once, even when sampling
        report(session.backend().name(), &shots.to_string(), &preds);
    }

    println!("\nshape: the sampled predictions converge onto the exact ones as the");
    println!("shot budget grows (statistical error ∝ 1/√shots) — at 100k shots the");
    println!("≤16-qubit, shallow-ansatz regime the paper targets is already stable.");
    Ok(())
}
