//! Compare the three QuGeoData scaling routes (D-Sample, Q-D-FW,
//! Q-D-CNN) on the same surveys — the analysis behind the paper's
//! Figure 6.
//!
//! ```text
//! cargo run --release --example data_scaling_study
//! ```
//!
//! The physics-guided rescaling (Q-D-FW) is taken as the reference; the
//! baseline (D-Sample) and the learned compressor (Q-D-CNN) are scored
//! by SSIM against it, before and after the ℓ₂ normalisation amplitude
//! encoding imposes. The paper's finding: naive resampling destroys the
//! waveform (SSIM ≈ 0.06), the CNN tracks physics closely (SSIM ≈ 0.93).

use qugeo::pipeline::{
    quantum_normalized_waveform, scale_cnn, scale_d_sample, scale_forward_model,
    scaled_waveform_image, train_cnn_scaler, CnnScalingConfig, FwScalingConfig,
};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_metrics::ssim;
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("QuGeoData scaling study (Figure 6 analysis)");
    println!("===========================================");

    let make = |num_samples: usize, seed: u64| -> Result<DatasetConfig, Box<dyn std::error::Error>> {
        Ok(DatasetConfig {
            num_samples,
            grid: Grid::new(32, 32, 10.0, 0.001, 128)?,
            survey: Survey::surface(32, 5, 32, 1)?,
            wavelet_hz: 15.0,
            space_order: SpaceOrder::Order4,
            seed,
        })
    };

    // Separate auxiliary samples train the CNN compressor (the paper
    // uses 500 extra FlatVelA samples for this).
    println!("synthesising evaluation + auxiliary surveys…");
    let eval_set = Dataset::generate(&make(6, 4)?)?;
    let aux_set = Dataset::generate(&make(6, 900)?)?;

    let layout = ScaledLayout::paper_default();
    let fw_cfg = FwScalingConfig {
        extent_m: 320.0,
        ..FwScalingConfig::default()
    };

    println!("training the Q-D-CNN compressor on auxiliary data…");
    let compressor = train_cnn_scaler(
        &aux_set,
        &layout,
        &fw_cfg,
        &CnnScalingConfig {
            epochs: 40,
            initial_lr: 0.02,
            seed: 5,
        },
    )?;

    let fw = scale_forward_model(&eval_set, &layout, &fw_cfg)?;
    let ds = scale_d_sample(&eval_set, &layout)?;
    let cnn = scale_cnn(&eval_set, &compressor, &layout)?;

    let mut raw_ds = 0.0;
    let mut raw_cnn = 0.0;
    let mut norm_ds = 0.0;
    let mut norm_cnn = 0.0;
    for ((f, d), c) in fw.samples.iter().zip(&ds.samples).zip(&cnn.samples) {
        let f_img = scaled_waveform_image(&f.seismic, &layout)?;
        let d_img = scaled_waveform_image(&d.seismic, &layout)?;
        let c_img = scaled_waveform_image(&c.seismic, &layout)?;
        raw_ds += ssim(&f_img, &d_img)?;
        raw_cnn += ssim(&f_img, &c_img)?;

        let fq = scaled_waveform_image(&quantum_normalized_waveform(&f.seismic, &layout)?, &layout)?;
        let dq = scaled_waveform_image(&quantum_normalized_waveform(&d.seismic, &layout)?, &layout)?;
        let cq = scaled_waveform_image(&quantum_normalized_waveform(&c.seismic, &layout)?, &layout)?;
        norm_ds += ssim(&fq, &dq)?;
        norm_cnn += ssim(&fq, &cq)?;
    }
    let n = fw.samples.len() as f64;

    println!("\nwaveform SSIM against the Q-D-FW reference (mean over {} surveys):", n);
    println!("  method     raw scaled data   after quantum normalisation");
    println!("  Q-D-FW          1.0000 (ref)        1.0000 (ref)");
    println!("  D-Sample        {:>6.4}              {:>6.4}", raw_ds / n, norm_ds / n);
    println!("  Q-D-CNN         {:>6.4}              {:>6.4}", raw_cnn / n, norm_cnn / n);
    println!("\npaper's shape: D-Sample ≪ Q-D-CNN, and normalisation lifts both");
    println!("(paper numbers: D-Sample 0.0597 → 0.5253, Q-D-CNN 0.9255 → 0.9989)");
    Ok(())
}
