//! QuBatch: processing a batch of surveys in one circuit execution —
//! the paper's Figure 3 construction and Table 1 qubit-overhead
//! accounting, executed through the workspace's gate-fused engine.
//!
//! ```text
//! cargo run --release --example qubatch_parallel
//! ```
//!
//! Demonstrates the paper's Section 3.3 construction:
//!
//! * `2^N` samples cost only `N` extra qubits,
//! * the batched circuit applies the *same* trained operator to every
//!   sample (predictions match sample-by-sample execution exactly),
//! * the asymptotic time–space advantage grows with batch size.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::qubatch::QuBatch;
use qugeo_qsim::complexity::{
    independent_time_space, qubatch_advantage, qubatch_time_space, qubit_overhead,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("QuBatch — SIMD-style batching on a quantum circuit");
    println!("==================================================");

    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let qubatch = QuBatch::new(&model)?;
    let params = model.init_params(42);

    // Synthetic scaled seismic vectors (256 values each).
    let batch: Vec<Vec<f64>> = (0..4)
        .map(|k| {
            (0..256)
                .map(|i| ((i + 37 * k) as f64 * 0.11).sin() + 0.2)
                .collect()
        })
        .collect();

    println!("\nqubit accounting (paper Table 1):");
    println!("  batch   extra qubits   total qubits");
    for b in [1usize, 2, 4, 8] {
        println!(
            "  {:>5}   {:>12}   {:>12}",
            b,
            qubatch.extra_qubits(b),
            model.data_qubits() + qubatch.extra_qubits(b)
        );
    }

    // One widened execution for all four samples.
    let batched = qubatch.predict_batch(&batch, &params)?;

    // Verify against individual executions.
    println!("\nper-sample max |batched − individual| prediction difference:");
    for (i, s) in batch.iter().enumerate() {
        let solo = model.predict(s, &params)?;
        let max_diff = batched[i]
            .iter()
            .zip(solo.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("  sample {i}: {max_diff:.2e}");
        assert!(max_diff < 1e-9, "QuBatch must reproduce individual runs");
    }
    println!("all samples match — U(θ) ⊗ I applied the same operator to every block");

    // Complexity model (Section 3.3.3).
    println!("\ntime–space complexity model (G = 1 group, X = 1 unit):");
    println!("  batch   independent   qubatch   advantage");
    for b in [4usize, 16, 64, 256, 1024] {
        println!(
            "  {:>5}   {:>11.0}   {:>7.0}   {:>8.1}x",
            b,
            independent_time_space(b, 1.0),
            qubatch_time_space(1, b, 1.0),
            qubatch_advantage(1, b)
        );
    }
    println!("\n(extra qubits for G = 4 groups at B = 64: {})", qubit_overhead(4, 64));
    println!("precision trade-off: batching spreads one unit of amplitude norm");
    println!("across all samples — Table 1's SSIM degradation, see `--bin table1`.");
    Ok(())
}
