//! Evaluate a trained QuGeo model under NISQ-device conditions — the
//! "near-term noisy quantum computers" deployment target the paper's
//! Section 1 motivates (depolarizing noise, readout error, finite shots).
//!
//! ```text
//! cargo run --release --example noisy_hardware
//! ```
//!
//! The paper targets "near-term noisy quantum computers"; this example
//! measures how prediction quality degrades when the trained Q-M-LY
//! circuit runs with (a) depolarizing gate noise + readout error, and
//! (b) finite measurement shots instead of exact expectation values.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::{normalized_target, scale_d_sample};
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_metrics::ssim;
use qugeo_qsim::noise::{NoiseModel, NoisyExecutor};
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("QuGeo under NISQ noise");
    println!("======================");

    // Train a model on clean simulation first.
    let config = DatasetConfig {
        num_samples: 10,
        grid: Grid::new(32, 32, 10.0, 0.001, 128)?,
        survey: Survey::surface(32, 5, 32, 1)?,
        wavelet_hz: 15.0,
        space_order: SpaceOrder::Order4,
        seed: 13,
    };
    println!("synthesising data and training Q-M-LY (clean)…");
    let dataset = Dataset::generate(&config)?;
    let layout = ScaledLayout::paper_default();
    let scaled = scale_d_sample(&dataset, &layout)?;
    let (train, test) = scaled.try_split(7)?;
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let outcome = Trainer::new(TrainConfig {
        epochs: 40,
        initial_lr: 0.1,
        seed: 5,
        eval_every: 0,
    })
    .fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;
    println!("clean test SSIM: {:.4}\n", outcome.final_ssim);

    // (a) gate + readout noise sweep.
    println!("depolarizing-noise sweep (64 trajectories, readout flip 1%):");
    println!("  gate error   mean SSIM");
    for p in [0.0, 0.001, 0.005, 0.02, 0.05] {
        let noise = NoiseModel::uniform_depolarizing(p)?.with_readout_flip(0.01)?;
        let executor = NoisyExecutor::new(noise, 64, 77);
        let mut total = 0.0;
        for s in &test {
            let pred = model.predict_noisy(&s.seismic, &outcome.params, &executor)?;
            total += ssim(&pred, &normalized_target(s))?;
        }
        println!("  {:>10.3}   {:.4}", p, total / test.len() as f64);
    }

    // (b) finite-shot sweep.
    println!("\nfinite-shot sweep (ideal circuit, sampled readout):");
    println!("  shots     mean SSIM");
    for shots in [64usize, 256, 1024, 8192, 65536] {
        let mut total = 0.0;
        for (i, s) in test.iter().enumerate() {
            let pred = model.predict_sampled(&s.seismic, &outcome.params, shots, 100 + i as u64)?;
            total += ssim(&pred, &normalized_target(s))?;
        }
        println!("  {:>6}    {:.4}", shots, total / test.len() as f64);
    }
    println!("\nshape: quality degrades smoothly with gate error and recovers with shots —");
    println!("the regime the paper targets (≤16 qubits, shallow ansatz) stays usable.");
    Ok(())
}
