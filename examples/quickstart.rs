//! Quickstart: train the paper's Q-M-LY quantum model (the Table 2
//! layer-wise configuration) on a small synthetic FlatVelA-style
//! dataset, end to end in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Pipeline: synthesise layered velocity models + seismic data → scale
//! them to the 16-qubit budget with the D-Sample baseline → train the
//! 576-parameter U3+CU3 VQC → report SSIM / MSE on held-out samples.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::scale_d_sample;
use qugeo::train::{MetricsRecorder, PerSampleVqc, TrainConfig, Trainer};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("QuGeo quickstart — quantum learning for full-waveform inversion");
    println!("================================================================");

    // 1. Synthesise a small FlatVelA-style dataset (the full experiments
    //    use 500 samples on the 70x70 OpenFWI geometry; this quickstart
    //    shrinks the geometry to stay interactive).
    let config = DatasetConfig {
        num_samples: 12,
        grid: Grid::new(32, 32, 10.0, 0.001, 128)?,
        survey: Survey::surface(32, 5, 32, 1)?,
        wavelet_hz: 15.0,
        space_order: SpaceOrder::Order4,
        seed: 2024,
    };
    println!(
        "generating {} samples on a {}x{} grid ({} sources, {} receivers)…",
        config.num_samples,
        config.grid.nz(),
        config.grid.nx(),
        config.survey.sources().len(),
        config.survey.receivers().len(),
    );
    let dataset = Dataset::generate(&config)?;

    // 2. Scale to the quantum budget: 256 seismic values, 8x8 velocity.
    let layout = ScaledLayout::paper_default();
    let scaled = scale_d_sample(&dataset, &layout)?;
    let (train, test) = scaled.try_split(9)?;
    println!(
        "scaled to {} seismic values / {}x{} velocity maps ({} train / {} test)",
        layout.seismic_len(),
        layout.velocity_side,
        layout.velocity_side,
        train.len(),
        test.len()
    );

    // 3. The paper's Q-M-LY model: 8 qubits, 12 blocks, 576 parameters.
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    println!(
        "model: {} qubits, {} parameters, layer-wise decoder",
        model.data_qubits(),
        model.num_params()
    );

    // 4. Train with the paper's recipe (shortened for a quickstart).
    let train_cfg = TrainConfig {
        epochs: 40,
        initial_lr: 0.1,
        seed: 7,
        eval_every: 10,
    };
    println!("training for {} epochs…", train_cfg.epochs);
    // The unified engine: paper defaults (Adam + cosine annealing) with a
    // metrics callback recording per-epoch wall-clock and gradient norm.
    let outcome = Trainer::new(train_cfg)
        .callback(MetricsRecorder)
        .fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;

    for stats in outcome.history.iter().filter(|s| s.test_ssim.is_some()) {
        println!(
            "  epoch {:>3}  train loss {:.5}  test mse {:.5}  test ssim {:.4}  |grad| {:.4}  {:.2}s",
            stats.epoch,
            stats.train_loss,
            stats.test_mse.expect("evaluated"),
            stats.test_ssim.expect("evaluated"),
            stats.grad_norm.expect("recorded"),
            stats.wall_clock_secs.expect("recorded"),
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "final: SSIM {:.4}, MSE {:.6} on {} held-out samples",
        outcome.final_ssim,
        outcome.final_mse,
        test.len()
    );
    println!("(the full paper-scale run lives in `cargo run -p qugeo-bench --bin fig5`)");
    Ok(())
}
