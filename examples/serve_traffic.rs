//! Closed-loop load generation against QuServe — the serving-layer tour.
//!
//! Demonstrates, on a small model sized to run in seconds:
//!
//! 1. **Coalescing under concurrency** — closed-loop client threads at
//!    1/4/16 concurrency; the service's own counters show how requests
//!    coalesce into batches as the queue backs up.
//! 2. **Hot swap** — two parameter generations in a [`ModelRegistry`];
//!    `deploy_from` swaps the served model between batches while clients
//!    keep streaming, with zero dropped requests.
//! 3. **Backpressure** — a deliberately tiny queue behind a deliberately
//!    large burst; overflow is shed fast with `ServeError::Overloaded`
//!    while every accepted request completes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_traffic
//! ```

use std::time::{Duration, Instant};

use qugeo::checkpoint::Checkpoint;
use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::serve::{CoalesceMode, ModelRegistry, QuServe, ServeConfig, ServeError};
use qugeo_qsim::ansatz::EntangleOrder;

fn request(client: usize, i: usize) -> Vec<f64> {
    (0..64)
        .map(|k| ((k + 31 * client + 7 * i) as f64 * 0.23).sin() + 0.4)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = QuGeoVqc::new(VqcConfig {
        seismic_len: 64,
        num_groups: 1,
        num_blocks: 4,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder: Decoder::LayerWise { rows: 6 },
        max_qubits: 16,
    })?;
    let v1 = model.init_params(1);
    let v2 = model.init_params(2);

    // --- 1. Coalescing under closed-loop concurrency --------------------
    println!("== coalescing: closed-loop clients against one service ==");
    println!("{:>8} {:>10} {:>12} {:>11}", "clients", "req/s", "mean batch", "max batch");
    for clients in [1usize, 4, 16] {
        let serve = QuServe::start(model.clone(), &v1, ServeConfig::default())?;
        let per_client = 200;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let serve = &serve;
                scope.spawn(move || {
                    for i in 0..per_client {
                        serve
                            .predict_blocking(request(c, i))
                            .expect("request served");
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let stats = serve.stats();
        println!(
            "{:>8} {:>10.0} {:>12.1} {:>11}",
            clients,
            (clients * per_client) as f64 / elapsed,
            stats.mean_batch(),
            stats.max_coalesced
        );
    }

    // --- 2. Hot swap from a registry under load -------------------------
    println!("\n== hot swap: deploy q-flat@2 while clients stream ==");
    let mut registry = ModelRegistry::new();
    registry.register("q-flat@1", Checkpoint::capture(&model, &v1, "gen 1")?)?;
    registry.register("q-flat@2", Checkpoint::capture(&model, &v2, "gen 2")?)?;
    println!("registry: {:?}", registry.names());

    let serve = QuServe::start(model.clone(), &v1, ServeConfig::default())?;
    std::thread::scope(|scope| -> Result<(), ServeError> {
        let streamer = {
            let serve = &serve;
            scope.spawn(move || {
                for i in 0..1000 {
                    serve.predict_blocking(request(0, i)).expect("served");
                }
            })
        };
        std::thread::sleep(Duration::from_millis(1));
        let generation = serve.deploy_from(&registry, "q-flat@2")?;
        println!("deployed generation {generation} mid-stream");
        streamer.join().expect("streamer");
        Ok(())
    })?;
    // Any request after the deploy is guaranteed the new generation.
    serve.predict_blocking(request(0, 9999))?;
    let stats = serve.stats();
    println!(
        "served {} requests across the swap ({} worker swaps, {} failed)",
        stats.completed, stats.swaps, stats.failed
    );
    // A deploy that cannot serve this model is a typed error, not a panic:
    let wrong = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let mut wrong_registry = ModelRegistry::new();
    wrong_registry.register(
        "paper@1",
        Checkpoint::capture(&wrong, &wrong.init_params(0), "paper")?,
    )?;
    match serve.deploy_from(&wrong_registry, "paper@1") {
        Err(ServeError::IncompatibleCheckpoint { reason }) => {
            println!("rejected incompatible deploy: {reason}");
        }
        other => panic!("expected typed rejection, got {other:?}"),
    }
    drop(serve);

    // --- 3. Backpressure: a burst against a tiny queue ------------------
    println!("\n== backpressure: burst of 64 against queue_depth 8 ==");
    let serve = QuServe::start(
        model.clone(),
        &v1,
        ServeConfig {
            workers: 1,
            max_batch: 8,
            queue_depth: 8,
            coalesce: CoalesceMode::Batched,
            ..ServeConfig::default()
        },
    )?;
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..64 {
        match serve.predict(request(3, i)) {
            Ok(handle) => accepted.push(handle),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => return Err(e.into()),
        }
    }
    for handle in accepted {
        handle.wait()?; // everything accepted is answered
    }
    let stats = serve.stats();
    println!(
        "accepted {} / shed {} (stats: submitted {}, rejected {}, completed {})",
        64 - shed,
        shed,
        stats.submitted,
        stats.rejected,
        stats.completed
    );
    println!("\nserve_traffic: OK");
    Ok(())
}
