//! Full-waveform inversion with physics-guided scaling — the paper's
//! headline scenario: the vertical-profile / interface-recovery analysis
//! of Figures 7 and 9 (Q-D-FW data scaling + Q-M-LY model).
//!
//! ```text
//! cargo run --release --example fwi_inversion
//! ```
//!
//! A geophysicist wants the subsurface layer structure under a survey
//! line (energy exploration, infrastructure siting). This example:
//!
//! 1. synthesises layered ground truth and surface seismic records,
//! 2. rescales the data with **Q-D-FW** (coarsen the model, re-run
//!    forward modelling at 8 Hz instead of the raw 15 Hz),
//! 3. trains the **Q-M-LY** layer-wise quantum model,
//! 4. reads out the vertical velocity profile at x = 400 m and counts
//!    recovered layer interfaces — the paper's Figure 7/9 analysis.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::{scale_forward_model, FwScalingConfig};
use qugeo::profile::{column_for_distance, compare_interfaces, profile_similarity, vertical_profile};
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_geodata::scaling::{denormalize_velocity, normalize_velocity, ScaledLayout};
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("QuGeo FWI — physics-guided inversion scenario");
    println!("=============================================");

    // Ground truth + raw seismic records.
    let config = DatasetConfig {
        num_samples: 10,
        grid: Grid::new(32, 32, 10.0, 0.001, 128)?,
        survey: Survey::surface(32, 5, 32, 1)?,
        wavelet_hz: 15.0,
        space_order: SpaceOrder::Order4,
        seed: 99,
    };
    println!("synthesising {} surveys…", config.num_samples);
    let dataset = Dataset::generate(&config)?;

    // Physics-guided rescaling: coarsen the model to 8x8, re-model at
    // 8 Hz, decimate to 4 sources x 8 time steps x 8 receivers.
    let layout = ScaledLayout::paper_default();
    let fw = FwScalingConfig {
        extent_m: config.grid.extent_x(),
        ..FwScalingConfig::default()
    };
    println!(
        "rescaling with Q-D-FW ({} Hz wavelet on the {}x{} coarse model)…",
        fw.wavelet_hz, layout.velocity_side, layout.velocity_side
    );
    let scaled = scale_forward_model(&dataset, &layout, &fw)?;
    let (train, test) = scaled.try_split(7)?;

    // Train the layer-wise quantum model.
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let outcome = Trainer::new(TrainConfig {
        epochs: 50,
        initial_lr: 0.1,
        seed: 11,
        eval_every: 0,
    })
    .fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;
    println!(
        "trained Q-M-LY: test SSIM {:.4}, MSE {:.6}",
        outcome.final_ssim, outcome.final_mse
    );

    // Vertical-profile analysis at x = 400 m for one held-out survey.
    let sample = &test[0];
    let truth_norm = normalize_velocity(&sample.velocity);
    let pred_norm = model.predict(&sample.seismic, &outcome.params)?;
    let pred = denormalize_velocity(&pred_norm);

    let col = column_for_distance(layout.velocity_side, 400.0, fw.extent_m);
    let truth_profile = vertical_profile(&sample.velocity, col)?;
    let pred_profile = vertical_profile(&pred, col)?;

    println!("\nvertical profile at x = 400 m (column {col}):");
    println!("  depth   truth (m/s)   predicted (m/s)");
    for (i, (t, p)) in truth_profile.iter().zip(&pred_profile).enumerate() {
        println!("  {:>5}   {:>10.0}   {:>14.0}", i, t, p);
    }

    let threshold = 200.0; // m/s step that counts as an interface
    let cmp = compare_interfaces(&truth_profile, &pred_profile, threshold);
    println!(
        "\ninterfaces: {} true, {} predicted, {} matched ({} with correct layer order)",
        cmp.true_interfaces.len(),
        cmp.predicted_interfaces.len(),
        cmp.matched,
        cmp.correct_order
    );
    println!(
        "profile SSIM {:.4} (map SSIM {:.4})",
        profile_similarity(&truth_profile, &pred_profile)?,
        qugeo_metrics::ssim(&pred_norm, &truth_norm)?,
    );
    Ok(())
}
