//! Serving-throughput benchmark: sequential predict vs QuServe coalesced
//! batching at 1/4/16/64 concurrent closed-loop clients.
//!
//! Two backend scenarios, both with every backend pinned to **one**
//! kernel thread so the numbers isolate coalescing itself:
//!
//! * `statevector` / [`CoalesceMode::Batched`] — exact serving. Requests
//!   keep their own registers, so per-request simulation work is fixed;
//!   coalescing buys engine-call amortisation on one core and scales
//!   with workers on multi-core hosts. Results are bit-identical to
//!   sequential prediction (asserted below, and stress-tested in
//!   `tests/serve_stress.rs`).
//! * `shot-sampler` / [`CoalesceMode::Packed`] — hardware-shaped
//!   serving, the paper's QuBatch as the serving hot path: the whole
//!   coalesced batch is amplitude-packed into one register, so one
//!   circuit execution *and one shot budget* answer every request in the
//!   batch. Per-request measurement cost divides by the coalesced batch
//!   size, which is where the ≥2× sequential throughput at 16 clients
//!   comes from — paid for by the documented QuBatch precision trade
//!   (the batch shares one unit of amplitude norm).
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin serve_throughput [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` shrinks the model and client counts to the CI-gate shape
//! (`scripts/verify.sh serve-smoke`). The run always ends with the
//! determinism checks the gate relies on: coalesced == sequential
//! bit-identically for `Batched`, and within 1e-9 for `Packed`, on the
//! exact backend. Results go to `BENCH_serve.json` (`--json` overrides).

use std::time::{Duration, Instant};

use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::serve::{CoalesceMode, QuServe, ServeConfig};
use qugeo::session::InferenceSession;
use qugeo_qsim::ansatz::EntangleOrder;
use qugeo_qsim::{BackendConfig, QuantumBackend, ShotSamplerBackend, StatevectorBackend};

struct Config {
    smoke: bool,
    clients: Vec<usize>,
    total_requests: usize,
    shots: usize,
    json_path: String,
}

impl Config {
    fn from_args() -> Self {
        // 16384 shots ≈ 64 per bin of the 256-state output distribution —
        // the low end of a usable serving budget for FWI maps (see the
        // shot_budget example's fidelity study).
        let mut cfg = Self {
            smoke: false,
            clients: vec![1, 4, 16, 64],
            total_requests: 512,
            shots: 16384,
            json_path: "BENCH_serve.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.smoke = true;
                    cfg.clients = vec![1, 4];
                    cfg.total_requests = 64;
                    cfg.shots = 1024;
                }
                "--json" => {
                    cfg.json_path = args.next().expect("--json needs a path");
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: serve_throughput [--smoke] [--json PATH]");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }

    fn model(&self) -> QuGeoVqc {
        if self.smoke {
            QuGeoVqc::new(VqcConfig {
                seismic_len: 16,
                num_groups: 1,
                num_blocks: 2,
                mixing_blocks: 0,
                entangle: EntangleOrder::Ring,
                decoder: Decoder::LayerWise { rows: 4 },
                max_qubits: 16,
            })
            .expect("valid smoke model")
        } else {
            QuGeoVqc::new(VqcConfig::paper_layer_wise()).expect("valid paper model")
        }
    }
}

fn request(model: &QuGeoVqc, k: usize) -> Vec<f64> {
    let len = model.config().seismic_len;
    (0..len)
        .map(|i| ((i + k * 13) as f64 * 0.17).sin() + 0.4)
        .collect()
}

struct Row {
    backend: &'static str,
    mode: &'static str,
    clients: usize,
    requests: usize,
    us_per_req: f64,
    rps: f64,
    speedup: f64,
    mean_batch: f64,
}

/// One sequential baseline: a single session answering one request at a
/// time — the pre-QuServe serving shape.
fn run_sequential<B: QuantumBackend>(model: &QuGeoVqc, params: &[f64], backend: B, total: usize) -> f64 {
    let mut session =
        InferenceSession::with_backend(model.clone(), params, backend).expect("session");
    for k in 0..8.min(total) {
        session.predict(&request(model, k)).expect("warmup");
    }
    let start = Instant::now();
    for k in 0..total {
        std::hint::black_box(session.predict(&request(model, k)).expect("sequential predict"));
    }
    start.elapsed().as_secs_f64() * 1e6 / total as f64
}

/// One coalesced scenario: `clients` closed-loop threads hammering a
/// fresh QuServe; returns (µs/request, mean coalesced batch).
fn run_coalesced<B, F>(
    model: &QuGeoVqc,
    params: &[f64],
    mode: CoalesceMode,
    clients: usize,
    total: usize,
    backend_for: F,
) -> (f64, f64)
where
    B: QuantumBackend + 'static,
    F: FnMut(usize) -> B + Send + 'static,
{
    // Closed-loop clients coalesce through queue backlog (the worker is
    // busy while clients enqueue), so the straggler window stays off —
    // a non-zero window would tax the 1-client series with pure latency.
    let config = ServeConfig {
        workers: BackendConfig::default().effective_threads().clamp(1, 8),
        max_batch: 16,
        max_wait: Duration::ZERO,
        queue_depth: 4096,
        coalesce: mode,
        ..ServeConfig::default()
    };
    let serve =
        QuServe::start_with(model.clone(), params, config, backend_for).expect("service starts");
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let serve = &serve;
            let model = &model;
            scope.spawn(move || {
                for i in 0..per_client {
                    std::hint::black_box(
                        serve
                            .predict_blocking(request(model, c * per_client + i))
                            .expect("served"),
                    );
                }
            });
        }
    });
    let us = start.elapsed().as_secs_f64() * 1e6 / (per_client * clients) as f64;
    let mean_batch = serve.stats().mean_batch();
    (us, mean_batch)
}

/// What the chaos/recovery scenario measured.
struct ChaosReport {
    requests: usize,
    us_per_req: f64,
    panics: usize,
    transients: usize,
    nans: usize,
    latency_spikes: usize,
    restarts: usize,
    retries: usize,
    /// Fraction of requests that succeeded on their first attempt.
    availability: f64,
    /// Whether the fleet healed back to the configured worker count.
    recovered: bool,
    /// Mean supervisor backoff paid per worker respawn.
    mean_backoff_us: f64,
}

/// The recovery scenario: closed-loop clients with unbounded retries
/// against a service whose backend injects a seeded fault schedule
/// (panics, transient errors, NaN outputs, latency spikes). Measures
/// throughput *under* chaos, first-attempt availability, and whether the
/// supervisor heals the fleet back to full size.
fn run_chaos(model: &QuGeoVqc, params: &[f64], total: usize, clients: usize) -> ChaosReport {
    use qugeo_qsim::{FaultInjectingBackend, FaultPlan, FaultState};
    use std::sync::Arc;

    const WORKERS: usize = 2;
    let plan = FaultPlan {
        seed: 0xC4A0_5EED,
        panic_rate: 0.015,
        transient_rate: 0.02,
        nan_rate: 0.02,
        latency_rate: 0.01,
        latency: Duration::from_micros(200),
    };
    let state = Arc::new(FaultState::default());
    let one_core = BackendConfig::with_threads(1);
    let serve = QuServe::start_with(
        model.clone(),
        params,
        ServeConfig {
            workers: WORKERS,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_depth: 4096,
            coalesce: CoalesceMode::Batched,
            restart_budget: 10_000,
            restart_window: Duration::from_secs(3600),
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(200),
            ..ServeConfig::default()
        },
        {
            let state = Arc::clone(&state);
            move |_| {
                FaultInjectingBackend::with_state(
                    StatevectorBackend::with_config(one_core),
                    plan,
                    Arc::clone(&state),
                )
            }
        },
    )
    .expect("service starts");

    let policy = qugeo::serve::RetryPolicy {
        max_attempts: usize::MAX,
        base_backoff: Duration::from_micros(50),
        backoff_cap: Duration::from_millis(1),
        jitter_seed: 11,
    };
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let serve = &serve;
            let model = &model;
            scope.spawn(move || {
                for i in 0..per_client {
                    std::hint::black_box(
                        serve
                            .predict_with_retry(request(model, c * per_client + i), policy)
                            .expect("request survives chaos"),
                    );
                }
            });
        }
    });
    let served = per_client * clients;
    let us = start.elapsed().as_secs_f64() * 1e6 / served as f64;

    // Give the supervisor a bounded window to finish healing the fleet.
    let deadline = Instant::now() + Duration::from_secs(20);
    let recovered = loop {
        let stats = serve.stats();
        if serve.alive_workers() == WORKERS && stats.worker_restarts == state.panics() as usize {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let stats = serve.stats();
    let faults = state.faults() as usize - state.latencies() as usize;
    ChaosReport {
        requests: served,
        us_per_req: us,
        panics: state.panics() as usize,
        transients: state.transients() as usize,
        nans: state.nans() as usize,
        latency_spikes: state.latencies() as usize,
        restarts: stats.worker_restarts,
        retries: stats.retries,
        availability: (served.saturating_sub(faults)) as f64 / served as f64,
        recovered,
        mean_backoff_us: stats.backoff_total_us as f64 / stats.worker_restarts.max(1) as f64,
    }
}

fn main() {
    let cfg = Config::from_args();
    let model = cfg.model();
    let params = model.init_params(3);
    println!(
        "serve_throughput: {} data qubits, {} params, {} requests, clients {:?}, {} shots",
        model.data_qubits(),
        model.num_params(),
        cfg.total_requests,
        cfg.clients,
        cfg.shots
    );
    println!("{:-<86}", "");
    println!(
        "{:<14} {:<10} {:>7} {:>12} {:>12} {:>9} {:>10}",
        "backend", "mode", "clients", "us/req", "req/s", "speedup", "mean batch"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut print_row = |row: Row| {
        println!(
            "{:<14} {:<10} {:>7} {:>12.1} {:>12.0} {:>8.2}x {:>10.1}",
            row.backend, row.mode, row.clients, row.us_per_req, row.rps, row.speedup, row.mean_batch
        );
        rows.push(row);
    };

    // Scenario 1: exact statevector serving, one kernel thread each.
    let one_core = BackendConfig::with_threads(1);
    let seq_sv = run_sequential(
        &model,
        &params,
        StatevectorBackend::with_config(one_core),
        cfg.total_requests,
    );
    print_row(Row {
        backend: "statevector",
        mode: "sequential",
        clients: 1,
        requests: cfg.total_requests,
        us_per_req: seq_sv,
        rps: 1e6 / seq_sv,
        speedup: 1.0,
        mean_batch: 1.0,
    });
    for &clients in &cfg.clients {
        let (us, mean_batch) = run_coalesced(
            &model,
            &params,
            CoalesceMode::Batched,
            clients,
            cfg.total_requests,
            move |_| StatevectorBackend::with_config(one_core),
        );
        print_row(Row {
            backend: "statevector",
            mode: "batched",
            clients,
            requests: cfg.total_requests,
            us_per_req: us,
            rps: 1e6 / us,
            speedup: seq_sv / us,
            mean_batch,
        });
    }

    // Scenario 2: finite-shot serving — QuBatch packing shares one
    // execution + one shot budget per coalesced batch.
    let seq_shots = run_sequential(
        &model,
        &params,
        ShotSamplerBackend::with_config(cfg.shots, 7, one_core),
        cfg.total_requests,
    );
    print_row(Row {
        backend: "shot-sampler",
        mode: "sequential",
        clients: 1,
        requests: cfg.total_requests,
        us_per_req: seq_shots,
        rps: 1e6 / seq_shots,
        speedup: 1.0,
        mean_batch: 1.0,
    });
    for &clients in &cfg.clients {
        let shots = cfg.shots;
        let (us, mean_batch) = run_coalesced(
            &model,
            &params,
            CoalesceMode::Packed,
            clients,
            cfg.total_requests,
            move |w| ShotSamplerBackend::with_config(shots, 7 + w as u64, one_core),
        );
        print_row(Row {
            backend: "shot-sampler",
            mode: "packed",
            clients,
            requests: cfg.total_requests,
            us_per_req: us,
            rps: 1e6 / us,
            speedup: seq_shots / us,
            mean_batch,
        });
    }
    println!("{:-<86}", "");

    // Scenario 3: chaos/recovery — throughput and availability while a
    // fault-injecting backend kills workers and corrupts executions.
    let chaos = run_chaos(&model, &params, cfg.total_requests, 4);
    println!(
        "chaos: {} req at {:.1} us/req under {} panics / {} transients / {} NaN / {} latency; \
         availability {:.4}, {} restarts (mean backoff {:.0} us), recovered: {}",
        chaos.requests,
        chaos.us_per_req,
        chaos.panics,
        chaos.transients,
        chaos.nans,
        chaos.latency_spikes,
        chaos.availability,
        chaos.restarts,
        chaos.mean_backoff_us,
        chaos.recovered,
    );
    assert!(chaos.recovered, "fleet failed to heal after the chaos run");

    // Determinism guards (what the verify.sh serve-smoke gate relies
    // on): Batched coalescing is bit-identical to sequential prediction;
    // Packed coalescing matches to rounding on the exact backend.
    let check_requests: Vec<Vec<f64>> = (0..32).map(|k| request(&model, k)).collect();
    let mut sequential = InferenceSession::with_backend(
        model.clone(),
        &params,
        StatevectorBackend::with_config(one_core),
    )
    .expect("session");
    let expected: Vec<_> = check_requests
        .iter()
        .map(|r| sequential.predict(r).expect("sequential"))
        .collect();

    let batched_serve = QuServe::start(
        model.clone(),
        &params,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(300),
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let handles: Vec<_> = check_requests
        .iter()
        .map(|r| batched_serve.predict(r.clone()).expect("queued"))
        .collect();
    let mut packed_max_err = 0.0f64;
    for (k, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("served");
        assert_eq!(
            served, expected[k],
            "request {k}: Batched coalescing is not bit-identical to sequential"
        );
    }
    drop(batched_serve);

    let packed_serve = QuServe::start(
        model.clone(),
        &params,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(300),
            coalesce: CoalesceMode::Packed,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let handles: Vec<_> = check_requests
        .iter()
        .map(|r| packed_serve.predict(r.clone()).expect("queued"))
        .collect();
    for (k, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("served");
        for (a, b) in served.iter().zip(expected[k].iter()) {
            packed_max_err = packed_max_err.max((a - b).abs());
        }
    }
    assert!(
        packed_max_err < 1e-9,
        "Packed coalescing drifted {packed_max_err} from sequential"
    );
    println!("determinism: batched == sequential bit-identical OK; packed max err {packed_max_err:.2e}");

    let mut json = String::from("[\n");
    for r in &rows {
        json.push_str(&format!(
            "  {{\"workload\": \"serve_throughput\", \"data_qubits\": {}, \"params\": {}, \
             \"backend\": \"{}\", \"mode\": \"{}\", \"clients\": {}, \"requests\": {}, \
             \"shots\": {}, \"us_per_req\": {:.1}, \"req_per_s\": {:.0}, \
             \"speedup_vs_sequential\": {:.3}, \"mean_batch\": {:.2}}},\n",
            model.data_qubits(),
            model.num_params(),
            r.backend,
            r.mode,
            r.clients,
            r.requests,
            cfg.shots,
            r.us_per_req,
            r.rps,
            r.speedup,
            r.mean_batch,
        ));
    }
    json.push_str(&format!(
        "  {{\"workload\": \"serve_chaos\", \"requests\": {}, \"us_per_req\": {:.1}, \
         \"panics\": {}, \"transients\": {}, \"nan_outputs\": {}, \"latency_spikes\": {}, \
         \"worker_restarts\": {}, \"retries\": {}, \"availability\": {:.4}, \
         \"mean_backoff_us\": {:.1}, \"recovered\": {}}},\n",
        chaos.requests,
        chaos.us_per_req,
        chaos.panics,
        chaos.transients,
        chaos.nans,
        chaos.latency_spikes,
        chaos.restarts,
        chaos.retries,
        chaos.availability,
        chaos.mean_backoff_us,
        chaos.recovered,
    ));
    json.push_str(&format!(
        "  {{\"workload\": \"serve_determinism\", \"batched_bit_identical\": true, \
         \"packed_max_abs_err\": {packed_max_err:.3e}}}\n]\n"
    ));
    match std::fs::write(&cfg.json_path, &json) {
        Ok(()) => println!("results written to {}", cfg.json_path),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", cfg.json_path);
            std::process::exit(1);
        }
    }
}
