//! Figure 8 — Q-M-PX vs Q-M-LY across all three data-scaling routes.
//!
//! Regenerates the SSIM and MSE bar groups.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin fig8 [--smoke|--full]
//! ```
//!
//! Paper numbers (SSIM, PX → LY): D-Sample 0.800 → 0.842; Q-D-FW
//! 0.859 → 0.892; Q-D-CNN 0.862 → 0.905. Average +4.5% SSIM and
//! −33.23% MSE from the layer-wise decoder; end-to-end (D-Sample+PX →
//! Q-D-CNN+LY): +11.6% SSIM, −61.69% MSE.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_bench::{build_scaled_triple, header, improvement_pct, rule, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Figure 8 — pixel-wise vs layer-wise decoder", &preset);

    let triple = build_scaled_triple(&preset)?;
    let px = QuGeoVqc::new(VqcConfig::paper_pixel_wise())?;
    let ly = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };

    // results[dataset][model] = (ssim, mse)
    let mut results = Vec::new();
    for (label, scaled) in [
        ("D-Sample", &triple.d_sample),
        ("Q-D-FW", &triple.fw),
        ("Q-D-CNN", &triple.cnn),
    ] {
        let (train, test) = scaled.try_split(preset.train_count)?;
        eprintln!("[fig8] training Q-M-PX on {label}…");
        let px_out = Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&px, &train, &test)?)?;
        eprintln!("[fig8] training Q-M-LY on {label}…");
        let ly_out = Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&ly, &train, &test)?)?;
        results.push((
            label,
            (px_out.final_ssim, px_out.final_mse),
            (ly_out.final_ssim, ly_out.final_mse),
        ));
    }

    rule();
    println!("Figure 8(a) — SSIM (paper: PX → LY):");
    let paper_ssim = [(0.800, 0.842), (0.859, 0.892), (0.862, 0.905)];
    for ((label, (px_s, _), (ly_s, _)), (pp, pl)) in results.iter().zip(paper_ssim) {
        println!(
            "  {label:<9}  Q-M-PX {px_s:.4}   Q-M-LY {ly_s:.4}   (paper {pp:.3} → {pl:.3})"
        );
    }
    println!("\nFigure 8(b) — MSE:");
    for (label, (_, px_m), (_, ly_m)) in &results {
        println!("  {label:<9}  Q-M-PX {px_m:.6}   Q-M-LY {ly_m:.6}");
    }
    rule();

    let avg_ssim_gain: f64 = results
        .iter()
        .map(|(_, (px_s, _), (ly_s, _))| improvement_pct(*ly_s, *px_s, true))
        .sum::<f64>()
        / results.len() as f64;
    let avg_mse_gain: f64 = results
        .iter()
        .map(|(_, (_, px_m), (_, ly_m))| improvement_pct(*ly_m, *px_m, false))
        .sum::<f64>()
        / results.len() as f64;
    println!(
        "layer-wise decoder average gain: {avg_ssim_gain:+.1}% SSIM (paper +4.5%), {avg_mse_gain:+.1}% MSE (paper +33.2%)"
    );

    let worst = results[0].1; // D-Sample + PX: the naive implementation
    let best = results
        .iter()
        .map(|(_, _, ly)| *ly)
        .fold((f64::MIN, f64::MAX), |acc, (s, m)| (acc.0.max(s), acc.1.min(m)));
    println!(
        "end-to-end QuGeo gain over naive (D-Sample + PX): {:+.1}% SSIM (paper +11.6%), {:+.1}% MSE (paper +61.7%)",
        improvement_pct(best.0, worst.0, true),
        improvement_pct(best.1, worst.1, false)
    );
    let ly_wins = results.iter().filter(|(_, px, ly)| ly.0 > px.0).count();
    println!("shape check: LY beats PX on {ly_wins}/3 datasets (paper: 3/3)");
    Ok(())
}
