//! Ablations over the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin ablations [--smoke|--full]
//! ```
//!
//! Sweeps (all Q-M-LY on the Q-D-FW dataset unless noted):
//!
//! 1. ansatz depth — number of `U3+CU3` blocks (the paper fixes 12),
//! 2. encoder grouping — 1 group (8 qubits) vs 2 groups (14 qubits),
//! 3. rescaling wavelet frequency — the paper's 8 Hz choice vs keeping
//!    the raw 15 Hz (Section 3.1.1 / Figure 6 discussion),
//! 4. QuBatch batch size beyond Table 1 (1–8).

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::{scale_forward_model, FwScalingConfig};
use qugeo::train::{PerSampleVqc, QuBatchVqc, TrainConfig, Trainer};
use qugeo_bench::{build_scaled_triple, cached_dataset, header, rule, Preset};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_qsim::ansatz::EntangleOrder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Ablations — ansatz depth, grouping, wavelet frequency, batch size", &preset);

    let layout = ScaledLayout::paper_default();
    let triple = build_scaled_triple(&preset)?;
    let (train, test) = triple.fw.try_split(preset.train_count)?;
    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };

    // 1. Ansatz depth sweep.
    println!("\n[1] ansatz depth (Q-M-LY on Q-D-FW; paper uses 12 blocks = 576 params):");
    println!("  blocks   params   SSIM      MSE");
    for blocks in [4usize, 8, 12, 16] {
        let model = QuGeoVqc::new(VqcConfig {
            num_blocks: blocks,
            ..VqcConfig::paper_layer_wise()
        })?;
        let out = Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;
        println!(
            "  {blocks:>6}   {:>6}   {:>7.4}   {:.6}",
            model.num_params(),
            out.final_ssim,
            out.final_mse
        );
    }

    // 2. Encoder grouping.
    println!("\n[2] encoder grouping (Section 3.2.2 hyper-parameter):");
    println!("  groups   qubits   params   SSIM      MSE");
    for (groups, blocks, mixing) in [(1usize, 12usize, 0usize), (2, 5, 2)] {
        let model = QuGeoVqc::new(VqcConfig {
            num_groups: groups,
            num_blocks: blocks,
            mixing_blocks: mixing,
            entangle: EntangleOrder::Ring,
            ..VqcConfig::paper_layer_wise()
        })?;
        let out = Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;
        println!(
            "  {groups:>6}   {:>6}   {:>6}   {:>7.4}   {:.6}",
            model.data_qubits(),
            model.num_params(),
            out.final_ssim,
            out.final_mse
        );
    }

    // 3. Rescaling wavelet frequency.
    println!("\n[3] Q-D-FW wavelet frequency (paper lowers 15 Hz → 8 Hz when shrinking):");
    println!("  wavelet   SSIM      MSE");
    let dataset = cached_dataset("eval", &preset.dataset_config())?;
    for hz in [8.0f64, 15.0] {
        let fw_cfg = FwScalingConfig {
            wavelet_hz: hz,
            extent_m: preset.grid.extent_x(),
            ..FwScalingConfig::default()
        };
        let scaled = scale_forward_model(&dataset, &layout, &fw_cfg)?;
        let (tr, te) = scaled.try_split(preset.train_count)?;
        let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
        let out = Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &tr, &te)?)?;
        println!("  {hz:>4.0} Hz   {:>7.4}   {:.6}", out.final_ssim, out.final_mse);
    }

    // 4. Batch-size sweep (extends Table 1).
    println!("\n[4] QuBatch batch size (Q-M-LY on Q-D-FW):");
    println!("  batch   extra qubits   SSIM      MSE");
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    for batch in [1usize, 2, 4, 8] {
        let out = if batch == 1 {
            Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &train, &test)?)?
        } else {
            Trainer::new(train_cfg).fit(&mut QuBatchVqc::new(&model, &train, &test, batch)?)?
        };
        println!(
            "  {batch:>5}   {:>12}   {:>7.4}   {:.6}",
            qugeo_qsim::complexity::log2_ceil(batch),
            out.final_ssim,
            out.final_mse
        );
    }

    rule();
    println!("done — see EXPERIMENTS.md for the recorded sweep results");
    Ok(())
}
