//! Figure 5 — Q-M-PX trained on the three data-scaling routes.
//!
//! Regenerates: (a) the SSIM-vs-MSE scatter of final models, (b) the
//! SSIM convergence series, (c) the MSE convergence series.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin fig5 [--smoke|--full]
//! ```
//!
//! Paper's shape to match: the physics-guided routes (Q-D-FW, Q-D-CNN)
//! clearly dominate D-Sample on both metrics; final SSIM ≈ 0.800 /
//! 0.859 / 0.862 for D-Sample / Q-D-FW / Q-D-CNN.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_bench::{build_scaled_triple, header, rule, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Figure 5 — data scaling comparison with the Q-M-PX VQC", &preset);

    let triple = build_scaled_triple(&preset)?;
    let model = QuGeoVqc::new(VqcConfig::paper_pixel_wise())?;
    println!(
        "model: Q-M-PX ({} qubits, {} parameters)\n",
        model.data_qubits(),
        model.num_params()
    );

    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: (preset.epochs / 10).max(1),
    };

    let mut finals = Vec::new();
    for (label, scaled) in [
        ("D-Sample", &triple.d_sample),
        ("Q-D-FW", &triple.fw),
        ("Q-D-CNN", &triple.cnn),
    ] {
        eprintln!("[fig5] training Q-M-PX on {label}…");
        let (train, test) = scaled.try_split(preset.train_count)?;
        let outcome =
            Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;

        println!("convergence on {label} (Figures 5b/5c):");
        println!("  epoch   train loss   test SSIM   test MSE");
        for s in outcome.history.iter().filter(|s| s.test_ssim.is_some()) {
            println!(
                "  {:>5}   {:>10.5}   {:>9.4}   {:>8.6}",
                s.epoch,
                s.train_loss,
                s.test_ssim.expect("evaluated"),
                s.test_mse.expect("evaluated")
            );
        }
        println!();
        finals.push((label, outcome.final_ssim, outcome.final_mse));
    }

    rule();
    println!("Figure 5(a) — final models (SSIM up, MSE down is better):");
    println!("  dataset    SSIM     MSE        paper SSIM");
    let paper = [0.800, 0.859, 0.862];
    for ((label, ssim, mse), p) in finals.iter().zip(paper) {
        println!("  {label:<9} {ssim:>7.4}  {mse:>9.6}  {p:>9.3}");
    }
    rule();
    let d = finals[0];
    let best_physics = if finals[1].1 > finals[2].1 { finals[1] } else { finals[2] };
    println!(
        "shape check: physics-guided ({}) beats D-Sample by {:+.1}% SSIM (paper: +7.4%..+7.8%)",
        best_physics.0,
        (best_physics.1 - d.1) / d.1 * 100.0
    );
    Ok(())
}
