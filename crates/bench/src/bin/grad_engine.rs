//! Gradient-engine benchmark: serial adjoint vs batched-fused adjoint vs
//! batched parameter-shift, at batch sizes 1/4/16 on the paper-scale
//! ansatz (10 qubits × 12 `U3+CU3` blocks, 720 trainable angles).
//!
//! Every series measures the full per-training-step cost — compilation
//! (parameters change every step), sweeps, and gradient extraction:
//!
//! * `serial_adjoint` — the frozen baseline: one unfused, single-threaded
//!   [`adjoint_gradient`] call per batch member, allocating its ket/bra/
//!   scratch/grad buffers per call, exactly what training did before the
//!   fused engine.
//! * `batched_fused_adjoint` — the production path: one
//!   [`adjoint_gradient_batch_with`] call for the whole batch through a
//!   persistent [`AdjointWorkspace`].
//! * `batched_param_shift` — the hardware-faithful oracle
//!   ([`parameter_shift_gradient_batched`]) per member, for scale: it
//!   needs `O(angles)` circuit executions where adjoint needs one.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin grad_engine [--smoke] [--json PATH] [--no-shift]
//! ```
//!
//! `--smoke` shrinks to 6 qubits × 2 blocks, batches 1/4, one timing rep
//! — the CI gate shape (`scripts/verify.sh bench-smoke`). Results are
//! written to `BENCH_grad.json` (override with `--json`) so the repo's
//! perf trajectory is tracked in a machine-readable file.

use std::time::Instant;

use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::{
    adjoint_gradient, adjoint_gradient_batch_with, parameter_shift_gradient_batched,
    AdjointWorkspace, BatchedState, Circuit, DiagonalObservable, State,
};

struct Config {
    qubits: usize,
    blocks: usize,
    batches: Vec<usize>,
    reps: usize,
    shift: bool,
    json_path: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self {
            qubits: 10,
            blocks: 12,
            batches: vec![1, 4, 16],
            reps: 3,
            shift: true,
            json_path: "BENCH_grad.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.qubits = 6;
                    cfg.blocks = 2;
                    cfg.batches = vec![1, 4];
                    cfg.reps = 1;
                }
                "--no-shift" => cfg.shift = false,
                "--json" => {
                    cfg.json_path = args.next().expect("--json needs a path");
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: grad_engine [--smoke] [--json PATH] [--no-shift]");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

struct Row {
    batch: usize,
    series: &'static str,
    ns_per_step: f64,
    speedup_vs_serial: f64,
}

/// Minimum wall-clock over `reps` runs of `f`, in ns — the usual
/// low-noise estimator for a deterministic workload.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn member_states(circuit: &Circuit, batch: usize) -> Vec<State> {
    (0..batch)
        .map(|k| {
            let data: Vec<f64> = (0..1usize << circuit.num_qubits())
                .map(|i| ((i + k * 17) as f64 * 0.11).sin() + 0.2)
                .collect();
            State::from_real_normalized(&data).expect("valid state")
        })
        .collect()
}

fn main() {
    let cfg = Config::from_args();
    let circuit = u3_cu3_ansatz(AnsatzConfig {
        num_qubits: cfg.qubits,
        num_blocks: cfg.blocks,
        entangle: EntangleOrder::Ring,
    })
    .expect("valid ansatz");
    let params: Vec<f64> = (0..circuit.num_slots())
        .map(|i| (i as f64 * 0.13).sin() * 0.4)
        .collect();
    let obs = DiagonalObservable::z(cfg.qubits, 0).expect("valid observable");

    println!(
        "grad_engine: {}q x {} blocks ({} params), batches {:?}, {} rep(s)",
        cfg.qubits,
        cfg.blocks,
        circuit.num_slots(),
        cfg.batches,
        cfg.reps
    );
    println!("{:-<78}", "");
    println!(
        "{:>5}  {:<24} {:>14} {:>14} {:>10}",
        "batch", "series", "ms/step", "grads/s", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut ws = AdjointWorkspace::new();
    for &batch in &cfg.batches {
        let states = member_states(&circuit, batch);
        let inputs = BatchedState::from_states(&states).expect("batch");

        // Frozen baseline: per-member serial unfused adjoint.
        let serial_ns = time_ns(cfg.reps, || {
            for s in &states {
                std::hint::black_box(
                    adjoint_gradient(&circuit, &params, s, &obs).expect("serial adjoint"),
                );
            }
        });

        // Production path: one fused batched call, persistent workspace.
        let fused_ns = time_ns(cfg.reps, || {
            adjoint_gradient_batch_with(
                &circuit,
                &params,
                &inputs,
                &obs,
                qugeo_qsim::backend::BackendConfig::default().effective_threads(),
                &mut ws,
            )
            .expect("batched adjoint");
            std::hint::black_box(ws.values().len());
        });

        // Oracle scale reference: batched parameter shift per member.
        let shift_ns = cfg.shift.then(|| {
            time_ns(1, || {
                for s in &states {
                    std::hint::black_box(
                        parameter_shift_gradient_batched(&circuit, &params, s, &obs)
                            .expect("batched shift"),
                    );
                }
            })
        });

        let mut push = |series: &'static str, ns: f64| {
            let speedup = serial_ns / ns;
            println!(
                "{:>5}  {:<24} {:>14.3} {:>14.1} {:>9.2}x",
                batch,
                series,
                ns / 1e6,
                batch as f64 / (ns / 1e9),
                speedup
            );
            rows.push(Row {
                batch,
                series,
                ns_per_step: ns,
                speedup_vs_serial: speedup,
            });
        };
        push("serial_adjoint", serial_ns);
        push("batched_fused_adjoint", fused_ns);
        if let Some(ns) = shift_ns {
            push("batched_param_shift", ns);
        }
    }
    println!("{:-<78}", "");
    println!(
        "adjoint workspace: {} allocation(s), {} reuse(s)",
        ws.allocations(),
        ws.reuses()
    );

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"workload\": \"grad_engine\", \"qubits\": {}, \"blocks\": {}, \
             \"params\": {}, \"batch\": {}, \"series\": \"{}\", \
             \"ns_per_step\": {:.1}, \"speedup_vs_serial\": {:.3}}}{comma}\n",
            cfg.qubits,
            cfg.blocks,
            circuit.num_slots(),
            r.batch,
            r.series,
            r.ns_per_step,
            r.speedup_vs_serial
        ));
    }
    json.push_str("]\n");
    match std::fs::write(&cfg.json_path, &json) {
        Ok(()) => println!("results written to {}", cfg.json_path),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", cfg.json_path);
            std::process::exit(1);
        }
    }

    // The differential guard the smoke gate actually relies on: the
    // fused batched engine must agree with the serial reference.
    let largest = *cfg.batches.iter().max().expect("non-empty batches");
    let states = member_states(&circuit, largest);
    let inputs = BatchedState::from_states(&states).expect("batch");
    adjoint_gradient_batch_with(&circuit, &params, &inputs, &obs, 1, &mut ws)
        .expect("batched adjoint");
    for (b, s) in states.iter().enumerate() {
        let (value, grad) = adjoint_gradient(&circuit, &params, s, &obs).expect("serial");
        assert!(
            (ws.value(b) - value).abs() < 1e-10,
            "member {b}: batched value {} vs serial {value}",
            ws.value(b)
        );
        for (x, y) in ws.grad(b).iter().zip(&grad) {
            assert!(
                (x - y).abs() < 1e-10,
                "member {b}: batched grad {x} vs serial {y}"
            );
        }
    }
    println!("differential check: batched == serial adjoint to 1e-10 OK");
}
