//! Figure 6 — visual/quantitative comparison of scaled waveform data.
//!
//! Regenerates the SSIM numbers between each scaling route and the
//! physics-guided reference, before (6a) and after (6b) the ℓ₂
//! normalisation amplitude encoding applies.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin fig6 [--smoke|--full]
//! ```
//!
//! Paper numbers: D-Sample 0.0597 → 0.5253; Q-D-CNN 0.9255 → 0.9989.

use qugeo::pipeline::{quantum_normalized_waveform, scaled_waveform_image};
use qugeo_bench::{build_scaled_triple, header, rule, Preset};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_metrics::ssim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Figure 6 — seismic waveform similarity across scaling routes", &preset);

    let layout = ScaledLayout::paper_default();
    let triple = build_scaled_triple(&preset)?;

    let mut raw = [0.0f64; 2]; // [d_sample, cnn]
    let mut norm = [0.0f64; 2];
    let n = triple.fw.samples.len();
    for i in 0..n {
        let f = &triple.fw.samples[i].seismic;
        let d = &triple.d_sample.samples[i].seismic;
        let c = &triple.cnn.samples[i].seismic;

        let f_img = scaled_waveform_image(f, &layout)?;
        raw[0] += ssim(&f_img, &scaled_waveform_image(d, &layout)?)?;
        raw[1] += ssim(&f_img, &scaled_waveform_image(c, &layout)?)?;

        let fq = scaled_waveform_image(&quantum_normalized_waveform(f, &layout)?, &layout)?;
        let dq = scaled_waveform_image(&quantum_normalized_waveform(d, &layout)?, &layout)?;
        let cq = scaled_waveform_image(&quantum_normalized_waveform(c, &layout)?, &layout)?;
        norm[0] += ssim(&fq, &dq)?;
        norm[1] += ssim(&fq, &cq)?;
    }
    let n = n as f64;

    rule();
    println!("waveform SSIM vs the Q-D-FW reference (mean over {n} samples):");
    println!("  method     6(a) raw scaled   6(b) quantum-normalised   paper (raw → norm)");
    println!("  Q-D-FW       1.0000 (ref)        1.0000 (ref)            1.0 → 1.0");
    println!(
        "  D-Sample     {:>7.4}             {:>7.4}                0.0597 → 0.5253",
        raw[0] / n,
        norm[0] / n
    );
    println!(
        "  Q-D-CNN      {:>7.4}             {:>7.4}                0.9255 → 0.9989",
        raw[1] / n,
        norm[1] / n
    );
    rule();
    println!("shape check: D-Sample ≪ Q-D-CNN on both sides; normalisation helps both.");
    println!(
        "ordering holds: {}",
        if raw[0] < raw[1] && norm[0] < norm[1] { "YES" } else { "NO" }
    );
    Ok(())
}
