//! Extension experiment — curved subsurfaces (the paper's Section 3.2.3
//! generalisation).
//!
//! The layer-wise decoder assumes flat layers; the paper argues it "can
//! be generalized for the non-flat subsurface, such as curve structures"
//! because the medium between curves is uniform. This experiment
//! quantifies that claim on OpenFWI-CurveVel-style data:
//!
//! * Q-M-LY trained/evaluated on flat data (the paper's setting),
//! * Q-M-LY trained/evaluated on curved data (the generalisation),
//! * Q-M-PX on curved data (no flat prior, for reference).
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin extension_curved [--smoke|--full]
//! ```

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::fw_scale_seismic;
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_bench::{header, rule, Preset};
use qugeo_geodata::curved::CurvedLayerGenerator;
use qugeo_geodata::scaling::{ScaledLayout, ScaledSample};
use qugeo_geodata::FlatLayerGenerator;
use qugeo_tensor::{resample, Array2};

/// Builds physics-scaled samples from arbitrary velocity maps (flat or
/// curved) using the Q-D-FW route, which only needs the map itself.
fn scaled_samples_from_maps(
    maps: &[Array2],
    layout: &ScaledLayout,
    extent_m: f64,
) -> Result<Vec<ScaledSample>, qugeo::QuGeoError> {
    let fw = qugeo::pipeline::FwScalingConfig {
        extent_m,
        ..Default::default()
    };
    maps.iter()
        .map(|map| {
            let seismic = fw_scale_seismic(map, layout, &fw)?;
            let velocity =
                resample::nearest2(map, layout.velocity_side, layout.velocity_side);
            Ok(ScaledSample { seismic, velocity })
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Extension — curved subsurfaces (paper §3.2.3 generalisation)", &preset);

    let layout = ScaledLayout::paper_default();
    let (nz, nx) = (preset.grid.nz(), preset.grid.nx());
    let extent = preset.grid.extent_x();
    let n = preset.num_samples.min(60); // FW scaling per map is cheap but bounded

    eprintln!("[curved] generating {n} flat + {n} curved models and FW-scaling them…");
    let flat_gen = FlatLayerGenerator::new(nz, nx)?;
    let curve_gen = CurvedLayerGenerator::new(nz, nx, (nz / 10).max(2))?;
    let flat_maps: Vec<Array2> = (0..n)
        .map(|i| flat_gen.sample(preset.seed + i as u64).into_map())
        .collect();
    let curved_maps: Vec<Array2> = (0..n)
        .map(|i| curve_gen.sample(preset.seed + i as u64).into_map())
        .collect();

    let flat = scaled_samples_from_maps(&flat_maps, &layout, extent)?;
    let curved = scaled_samples_from_maps(&curved_maps, &layout, extent)?;
    let split = n * 3 / 4;
    let (flat_train, flat_test) = (flat[..split].to_vec(), flat[split..].to_vec());
    let (curv_train, curv_test) = (curved[..split].to_vec(), curved[split..].to_vec());

    let ly = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let px = QuGeoVqc::new(VqcConfig::paper_pixel_wise())?;
    let cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };

    eprintln!("[curved] training Q-M-LY on flat…");
    let ly_flat = Trainer::new(cfg).fit(&mut PerSampleVqc::new(&ly, &flat_train, &flat_test)?)?;
    eprintln!("[curved] training Q-M-LY on curved…");
    let ly_curv = Trainer::new(cfg).fit(&mut PerSampleVqc::new(&ly, &curv_train, &curv_test)?)?;
    eprintln!("[curved] training Q-M-PX on curved…");
    let px_curv = Trainer::new(cfg).fit(&mut PerSampleVqc::new(&px, &curv_train, &curv_test)?)?;

    rule();
    println!("setting                         SSIM      MSE");
    println!(
        "Q-M-LY on flat (paper setting)  {:>7.4}   {:.6}",
        ly_flat.final_ssim, ly_flat.final_mse
    );
    println!(
        "Q-M-LY on curved (extension)    {:>7.4}   {:.6}",
        ly_curv.final_ssim, ly_curv.final_mse
    );
    println!(
        "Q-M-PX on curved (no prior)     {:>7.4}   {:.6}",
        px_curv.final_ssim, px_curv.final_mse
    );
    rule();
    println!("expected shape: LY keeps most of its advantage on gently curved data");
    println!("(uniform medium between curves), degrading gracefully vs the flat case.");
    Ok(())
}
