//! Compiler-pipeline benchmark: the structure/bind split and the
//! optimizer passes, on the paper-scale ansatz (10 qubits × 12 `U3+CU3`
//! blocks, 720 trainable angles).
//!
//! The point of the split is that training and serving change *angles*
//! every step, never circuit *structure* — so the per-step cost should be
//! a parameter re-bind, not a re-fusion. This bin times every stage so
//! the split's payoff is tracked in `BENCH_qsim.json`:
//!
//! * `structure_compile` / `structure_compile_passes` — the
//!   parameter-independent fusion plan ([`CircuitStructure::compile`]),
//!   without and with the optimizer pass pipeline. Paid once per circuit
//!   shape.
//! * `bind` / `bind_with_grad` — materialising fused matrices (and
//!   per-slot derivative records) for one parameter vector on a
//!   pre-compiled structure. Paid once per parameter vector.
//! * `rebind` — rewriting a live [`CompiledCircuit`] in place between two
//!   parameter vectors: the steady-state training/serving step.
//! * `compile` / `compile_with_grad` — the monolithic paths (structure +
//!   bind in one call), the pre-split per-step cost.
//!
//! Fused-op counts with passes off/on are recorded for both the bench
//! workload and the paper's 8-qubit ansatz.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin compiler_pipeline [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` shrinks to 6 qubits × 2 blocks with few reps — the CI gate
//! shape (`scripts/verify.sh compiler-smoke`). Results are merged into
//! `BENCH_qsim.json` (override with `--json`): entries this bin owns
//! (names under `compiler_pipeline_*` / `fused_ops_*`) are replaced,
//! everything else in the file is preserved, so the criterion-driven
//! `fused_engine` series and this one share the trajectory file.
//!
//! The run ends with two built-in guards: the bind-vs-recompile
//! differential (re-binding must reproduce a fresh compile bit-for-bit,
//! and its statevector must match the unfused gate-by-gate reference to
//! 1e-10) and, outside smoke mode, the acceptance ratios (bind ≥ 5x
//! faster than `compile_with_grad`; passes strictly shrink the paper
//! ansatz).

use std::time::Instant;

use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::{Circuit, CircuitStructure, CompiledCircuit, PassConfig, State};

struct Config {
    qubits: usize,
    blocks: usize,
    reps: usize,
    smoke: bool,
    json_path: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self {
            qubits: 10,
            blocks: 12,
            reps: 400,
            smoke: false,
            json_path: "BENCH_qsim.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.qubits = 6;
                    cfg.blocks = 2;
                    cfg.reps = 5;
                    cfg.smoke = true;
                }
                "--json" => {
                    cfg.json_path = args.next().expect("--json needs a path");
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: compiler_pipeline [--smoke] [--json PATH]");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// Minimum wall-clock over `reps` runs of `f`, in ns — the usual
/// low-noise estimator for a deterministic workload.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn params_at(circuit: &Circuit, seed: f64) -> Vec<f64> {
    (0..circuit.num_slots())
        .map(|i| ((i as f64 + seed) * 0.13).sin() * 0.4)
        .collect()
}

/// Replaces this bin's entries in the trajectory file, preserving every
/// entry owned by other benches. Both writers emit one object per line,
/// so the merge is line-based.
fn merge_json(path: &str, fresh: &[String]) -> std::io::Result<()> {
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let entry = line.trim().trim_end_matches(',');
            if entry.starts_with('{')
                && !entry.contains("\"name\": \"compiler_pipeline_")
                && !entry.contains("\"name\": \"fused_ops_")
            {
                kept.push(entry.to_string());
            }
        }
    }
    kept.extend(fresh.iter().cloned());
    let mut out = String::from("[\n");
    for (i, entry) in kept.iter().enumerate() {
        let comma = if i + 1 == kept.len() { "" } else { "," };
        out.push_str(&format!("  {entry}{comma}\n"));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn main() {
    let cfg = Config::from_args();
    let circuit = u3_cu3_ansatz(AnsatzConfig {
        num_qubits: cfg.qubits,
        num_blocks: cfg.blocks,
        entangle: EntangleOrder::Ring,
    })
    .expect("valid ansatz");
    let p0 = params_at(&circuit, 0.0);
    let p1 = params_at(&circuit, 0.61);
    let workload = format!("compiler_pipeline_{}q_{}blocks", cfg.qubits, cfg.blocks);

    println!(
        "compiler_pipeline: {}q x {} blocks ({} params), {} rep(s)",
        cfg.qubits,
        cfg.blocks,
        circuit.num_slots(),
        cfg.reps
    );
    println!("{:-<64}", "");
    println!("{:<28} {:>14} {:>14}", "series", "ns/step", "vs compile+grad");

    let structure = CircuitStructure::compile(&circuit);
    let mut entries: Vec<String> = Vec::new();
    let mut timings: Vec<(&'static str, f64)> = Vec::new();

    let mut measure = |series: &'static str, ns: f64| {
        timings.push((series, ns));
        entries.push(format!(
            "{{\"name\": \"{workload}/{series}\", \"ns_per_iter\": {ns:.1}, \"iters\": {}}}",
            cfg.reps
        ));
        ns
    };

    measure(
        "structure_compile",
        time_ns(cfg.reps, || {
            std::hint::black_box(CircuitStructure::compile(&circuit));
        }),
    );
    measure(
        "structure_compile_passes",
        time_ns(cfg.reps, || {
            std::hint::black_box(CircuitStructure::compile_with_passes(
                &circuit,
                &PassConfig::all(),
            ));
        }),
    );
    let bind_ns = measure(
        "bind",
        time_ns(cfg.reps, || {
            std::hint::black_box(structure.bind(&p0).expect("binds"));
        }),
    );
    measure(
        "bind_with_grad",
        time_ns(cfg.reps, || {
            std::hint::black_box(structure.bind_with_grad(&p0).expect("binds"));
        }),
    );
    let mut live = structure.bind(&p0).expect("binds");
    let mut flip = false;
    measure(
        "rebind",
        time_ns(cfg.reps, || {
            flip = !flip;
            live.rebind(if flip { &p1 } else { &p0 }).expect("rebinds");
            std::hint::black_box(live.binding());
        }),
    );
    measure(
        "compile",
        time_ns(cfg.reps, || {
            std::hint::black_box(CompiledCircuit::compile(&circuit, &p0).expect("compiles"));
        }),
    );
    let grad_ns = measure(
        "compile_with_grad",
        time_ns(cfg.reps, || {
            std::hint::black_box(
                CompiledCircuit::compile_with_grad(&circuit, &p0).expect("compiles"),
            );
        }),
    );

    for (series, ns) in &timings {
        println!("{series:<28} {ns:>14.1} {:>14.2}x", grad_ns / ns);
    }
    println!("{:-<64}", "");

    // Fused-op counts, passes off vs on, for this workload and for the
    // paper's 8-qubit ansatz (the acceptance circuit for the shrink).
    let paper = u3_cu3_ansatz(AnsatzConfig::paper_default()).expect("valid ansatz");
    let mut counts: Vec<(String, usize)> = Vec::new();
    for (label, c) in [
        (format!("fused_ops_{}q_{}blocks", cfg.qubits, cfg.blocks), &circuit),
        ("fused_ops_paper_ansatz".to_string(), &paper),
    ] {
        let plain = CircuitStructure::compile(c).num_ops();
        let passed = CircuitStructure::compile_with_passes(c, &PassConfig::all()).num_ops();
        println!(
            "{label}: {} source ops -> {plain} fused (passes off), {passed} (passes on)",
            c.num_ops()
        );
        counts.push((format!("{label}/passes_off"), plain));
        counts.push((format!("{label}/passes_on"), passed));
    }
    for (name, count) in &counts {
        entries.push(format!("{{\"name\": \"{name}\", \"count\": {count}}}"));
    }

    match merge_json(&cfg.json_path, &entries) {
        Ok(()) => println!("results merged into {}", cfg.json_path),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", cfg.json_path);
            std::process::exit(1);
        }
    }

    // Differential guard: a rebind round-trip must reproduce a fresh
    // compile bit-for-bit, and the re-bound circuit's statevector must
    // match the unfused gate-by-gate reference to 1e-10.
    let mut live = structure.bind_with_grad(&p1).expect("binds");
    live.rebind(&p0).expect("rebinds");
    assert_eq!(
        live,
        CompiledCircuit::compile_with_grad(&circuit, &p0).expect("compiles"),
        "rebind diverged from fresh compile"
    );
    let data: Vec<f64> = (0..1usize << cfg.qubits)
        .map(|i| (i as f64 * 0.11).sin() + 0.2)
        .collect();
    let input = State::from_real_normalized(&data).expect("valid state");
    let reference = circuit.run(&input, &p0).expect("reference run");
    for config in [PassConfig::none(), PassConfig::all()] {
        let compiled = CircuitStructure::compile_with_passes(&circuit, &config)
            .bind(&p0)
            .expect("binds");
        let state = compiled.run(&input).expect("runs");
        for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
            assert!(
                (*a - *b).norm() < 1e-10,
                "{config:?}: bound circuit diverged from unfused reference"
            );
        }
    }
    println!("differential check: rebind == fresh compile (bitwise), state to 1e-10 OK");

    // Acceptance ratios — full workload only; smoke runs are too small
    // and too noisy to hold them to the contract.
    if !cfg.smoke {
        assert!(
            bind_ns * 5.0 <= grad_ns,
            "bind ({bind_ns:.0} ns) is not >= 5x faster than compile_with_grad ({grad_ns:.0} ns)"
        );
        println!(
            "acceptance: bind {:.1}x faster than compile_with_grad",
            grad_ns / bind_ns
        );
    }
    let paper_plain = CircuitStructure::compile(&paper).num_ops();
    let paper_passed = CircuitStructure::compile_with_passes(&paper, &PassConfig::all()).num_ops();
    assert!(
        paper_passed < paper_plain,
        "passes did not shrink the paper ansatz ({paper_passed} vs {paper_plain})"
    );
}
