//! Figure 9 — velocity-map visualisation and vertical profiles for the
//! layer-wise model.
//!
//! Regenerates the three-way comparison: Q-M-LY on D-Sample, Q-M-PX on
//! Q-D-FW, and Q-M-LY on Q-D-FW, with the x = 400 m profile analysis.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin fig9 [--smoke|--full]
//! ```
//!
//! Paper numbers (profile SSIM): D-Sample + Q-M-LY 0.9606, Q-D-FW +
//! Q-M-PX 0.9492, Q-D-FW + Q-M-LY 0.9854 — only the full QuGeo stack
//! (physics data + layer decoder) recovers every interface with correct
//! layer ordering.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_bench::report::{analyze, print as print_report};
use qugeo_bench::{build_scaled_triple, header, rule, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Figure 9 — layer-wise model predictions and profiles", &preset);

    let triple = build_scaled_triple(&preset)?;
    let px = QuGeoVqc::new(VqcConfig::paper_pixel_wise())?;
    let ly = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };
    let extent = preset.grid.extent_x();

    let combos: [(&str, &QuGeoVqc, &qugeo::pipeline::ScaledDataset, f64); 3] = [
        ("D-Sample + Q-M-LY", &ly, &triple.d_sample, 0.9606),
        ("Q-D-FW + Q-M-PX", &px, &triple.fw, 0.9492),
        ("Q-D-FW + Q-M-LY", &ly, &triple.fw, 0.9854),
    ];

    let mut reports = Vec::new();
    for (label, model, scaled, paper) in combos {
        eprintln!("[fig9] training {label}…");
        let (train, test) = scaled.try_split(preset.train_count)?;
        let outcome =
            Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(model, &train, &test)?)?;
        let report = analyze(
            &format!("{label} (map SSIM {:.4})", outcome.final_ssim),
            model,
            &outcome.params,
            &test[0],
            extent,
        )?;
        print_report(&report);
        reports.push((label, report, paper));
    }

    rule();
    println!("profile summary at x = 400 m:");
    println!("  combination          profile SSIM   paper    matched (correct order)");
    for (label, r, paper) in &reports {
        println!(
            "  {label:<20} {:>11.4}   {paper:.4}   {}/{} ({})",
            r.profile_ssim, r.matched, r.true_interfaces, r.correct_order
        );
    }
    rule();
    let full_stack = &reports[2].1;
    println!(
        "shape check: the full QuGeo stack (Q-D-FW + Q-M-LY) has the best profile SSIM: {}",
        if reports
            .iter()
            .all(|(_, r, _)| r.profile_ssim <= full_stack.profile_ssim + 1e-12)
        {
            "YES"
        } else {
            "NO"
        }
    );
    Ok(())
}
