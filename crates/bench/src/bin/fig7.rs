//! Figure 7 — predicted velocity maps and vertical velocity profiles
//! for the Q-M-PX model across the three data-scaling routes.
//!
//! Regenerates: per-dataset velocity-map SSIM plus the x = 400 m
//! vertical-profile analysis (profile SSIM and interface recovery).
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin fig7 [--smoke|--full]
//! ```
//!
//! Paper numbers (profile SSIM at x = 400 m): D-Sample 0.9613,
//! Q-D-CNN 0.9742, Q-D-FW 0.9772; D-Sample misses 5 of 7 interface
//! points where the physics-guided routes recover 3 interfaces each.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
use qugeo_bench::report::{analyze, print as print_report};
use qugeo_bench::{build_scaled_triple, header, rule, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Figure 7 — Q-M-PX predictions and vertical profiles", &preset);

    let triple = build_scaled_triple(&preset)?;
    let model = QuGeoVqc::new(VqcConfig::paper_pixel_wise())?;
    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };
    let extent = preset.grid.extent_x();

    let mut summary = Vec::new();
    for (label, scaled, paper_ssim) in [
        ("D-Sample", &triple.d_sample, 0.9613),
        ("Q-D-FW", &triple.fw, 0.9772),
        ("Q-D-CNN", &triple.cnn, 0.9742),
    ] {
        eprintln!("[fig7] training Q-M-PX on {label}…");
        let (train, test) = scaled.try_split(preset.train_count)?;
        let outcome =
            Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;

        // The paper visualises one representative test sample.
        let report = analyze(
            &format!("Q-M-PX on {label} (map SSIM {:.4})", outcome.final_ssim),
            &model,
            &outcome.params,
            &test[0],
            extent,
        )?;
        print_report(&report);
        summary.push((label, outcome.final_ssim, report, paper_ssim));
    }

    rule();
    println!("profile summary at x = 400 m:");
    println!("  dataset    profile SSIM   paper   matched/true interfaces (correct order)");
    for (label, _, report, paper) in &summary {
        println!(
            "  {label:<9}  {:>11.4}   {paper:.4}   {}/{} ({})",
            report.profile_ssim, report.matched, report.true_interfaces, report.correct_order
        );
    }
    rule();
    let ds = &summary[0].2;
    let fw = &summary[1].2;
    println!(
        "shape check: physics-guided recovers ≥ as many interfaces as D-Sample: {}",
        if fw.matched >= ds.matched { "YES" } else { "NO" }
    );
    Ok(())
}
