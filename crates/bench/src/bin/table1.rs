//! Table 1 — QuBatch evaluation: batch size vs extra qubits vs SSIM.
//!
//! Trains Q-M-LY on the Q-D-FW dataset with QuBatch batch sizes 1, 2
//! and 4, reporting extra qubits and final SSIM degradation against the
//! unbatched baseline.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin table1 [--smoke|--full]
//! ```
//!
//! Paper's Table 1: batch 1/2/4 ⇒ 0/1/2 extra qubits, SSIM
//! 0.8926 / 0.8864 / 0.8678 (0.69% / 2.77% degradation) — batching is
//! nearly free in quality while sharing one circuit execution.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::qubatch::QuBatch;
use qugeo::train::{PerSampleVqc, QuBatchVqc, TrainConfig, Trainer};
use qugeo_bench::{build_scaled_triple, header, rule, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Table 1 — QuBatch with different batch sizes (Q-M-LY on Q-D-FW)", &preset);

    let triple = build_scaled_triple(&preset)?;
    let (train, test) = triple.fw.try_split(preset.train_count)?;
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let qubatch = QuBatch::new(&model)?;
    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };

    let mut rows = Vec::new();
    for batch in [1usize, 2, 4] {
        eprintln!("[table1] training with batch size {batch}…");
        let outcome = if batch == 1 {
            Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(&model, &train, &test)?)?
        } else {
            Trainer::new(train_cfg).fit(&mut QuBatchVqc::new(&model, &train, &test, batch)?)?
        };
        rows.push((batch, qubatch.extra_qubits(batch), outcome.final_ssim));
    }

    rule();
    println!("Model   Dataset   Batch   Extra Qubits   SSIM      vs BL      paper SSIM");
    let baseline = rows[0].2;
    let paper = [(0.8926, "BL"), (0.8864, "0.69%"), (0.8678, "2.77%")];
    for ((batch, extra, ssim), (p_ssim, p_deg)) in rows.iter().zip(paper) {
        let vs = if *batch == 1 {
            "BL".to_string()
        } else {
            format!("{:.2}%", (baseline - ssim) / baseline * 100.0)
        };
        println!(
            "Q-M-LY  Q-D-FW    {batch:>5}   {extra:>12}   {ssim:>7.4}   {vs:>7}    {p_ssim:.4} ({p_deg})"
        );
    }
    rule();
    println!(
        "shape check: degradation grows with batch size but stays graceful: {}",
        if rows[1].2 <= rows[0].2 + 0.02 && rows[2].2 <= rows[1].2 + 0.02 {
            "YES"
        } else {
            "NO"
        }
    );
    println!("(root cause per the paper: amplitude-norm sharing reduces data precision)");
    Ok(())
}
