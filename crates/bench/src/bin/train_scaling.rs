//! Data-parallel training scaling: wall-clock per epoch of
//! `DataParallel<MiniBatchVqc>` across replica counts on the paper-scale
//! ansatz (10 qubits × 12 blocks, mini-batch 16, micro-batch 4).
//!
//! At this circuit size (1024 amplitudes) the simulation kernels stay
//! below their intra-circuit threading threshold, so replica workers are
//! the *only* parallelism in play — the curve isolates the data-parallel
//! layer itself. Every row records the machine's simulation-thread
//! budget (`cores`), because the honest expectation depends on it: on a
//! multi-core host replicas=4 must reach ≥2x over replicas=1; on a
//! single core the arms do identical work inline and the bench only
//! asserts the wrapper does not *slow* training down.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin train_scaling [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` shrinks to 6 qubits × 2 blocks, batch 4, replicas {1, 4} —
//! the CI gate shape (`scripts/verify.sh train-smoke`). Whatever the
//! mode, the run ends with the determinism gate: replicas=4 on forced
//! worker threads must produce **bit-identical** trained parameters to
//! replicas=1 inline, or the process exits non-zero. Results are written
//! to `BENCH_TRAIN.json` (override with `--json`).

use std::time::Instant;

use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{DataParallel, MiniBatchVqc, ReplicaThreads, TrainConfig, Trainer};
use qugeo_geodata::scaling::ScaledSample;
use qugeo_qsim::ansatz::EntangleOrder;
use qugeo_qsim::simulation_threads;
use qugeo_tensor::Array2;

struct Config {
    qubits: usize,
    blocks: usize,
    batch: usize,
    micro: usize,
    replicas: Vec<usize>,
    epochs: usize,
    reps: usize,
    smoke: bool,
    json_path: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self {
            qubits: 10,
            blocks: 12,
            batch: 16,
            micro: 4,
            replicas: vec![1, 2, 4],
            epochs: 2,
            reps: 3,
            smoke: false,
            json_path: "BENCH_TRAIN.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.qubits = 6;
                    cfg.blocks = 2;
                    cfg.batch = 4;
                    cfg.micro = 1;
                    cfg.replicas = vec![1, 4];
                    cfg.reps = 5;
                    cfg.smoke = true;
                }
                "--json" => {
                    cfg.json_path = args.next().expect("--json needs a path");
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: train_scaling [--smoke] [--json PATH]");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

struct Row {
    replicas: usize,
    ns_per_epoch: f64,
    speedup_vs_r1: f64,
}

/// Synthetic scaled samples with a learnable seismic→velocity link.
fn synthetic_samples(n: usize, seismic_len: usize) -> Vec<ScaledSample> {
    const SIDE: usize = 4;
    (0..n)
        .map(|k| {
            let depth = 1 + (k % (SIDE - 1));
            let seismic: Vec<f64> = (0..seismic_len)
                .map(|i| {
                    let phase = i as f64 * 0.2 + depth as f64;
                    phase.sin() + 0.3 * (phase * 0.5).cos()
                })
                .collect();
            let velocity = Array2::from_fn(SIDE, SIDE, |r, _| {
                if r < depth {
                    2000.0
                } else {
                    3500.0
                }
            });
            ScaledSample { seismic, velocity }
        })
        .collect()
}

/// Minimum wall-clock over `reps` runs of `f`, in ns.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    let cfg = Config::from_args();
    let cores = simulation_threads();
    let model = QuGeoVqc::new(VqcConfig {
        seismic_len: 1 << cfg.qubits,
        num_groups: 1,
        num_blocks: cfg.blocks,
        mixing_blocks: 0,
        entangle: EntangleOrder::Ring,
        decoder: Decoder::LayerWise { rows: 4 },
        max_qubits: 16,
    })
    .expect("valid model");
    let samples = synthetic_samples(cfg.batch * 2 + 2, 1 << cfg.qubits);
    let (train, test) = samples.split_at(cfg.batch * 2);
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        initial_lr: 0.1,
        seed: 7,
        eval_every: 0,
    };

    println!(
        "train_scaling: {}q x {} blocks, batch {} micro {}, {} epochs/run, \
         {} rep(s), {} simulation thread(s)",
        cfg.qubits, cfg.blocks, cfg.batch, cfg.micro, cfg.epochs, cfg.reps, cores
    );
    println!("{:-<66}", "");
    println!(
        "{:>8}  {:>16} {:>16} {:>12}",
        "replicas", "ms/epoch", "samples/s", "speedup"
    );

    // Timing arms: the production configuration (Auto threading) across
    // the replica ladder. Strategies are built outside the timer —
    // encoding is a one-off cost, the curve is about the epoch loop.
    let mut rows: Vec<Row> = Vec::new();
    let mut r1_ns = f64::NAN;
    for &replicas in &cfg.replicas {
        let strategy = MiniBatchVqc::new(&model, train, test, cfg.batch).expect("strategy");
        let mut dp = DataParallel::new(&strategy, replicas)
            .expect("replicas >= 1")
            .micro_batch(cfg.micro);
        let ns = time_ns(cfg.reps, || {
            let outcome = Trainer::new(train_cfg).fit(&mut dp).expect("training run");
            std::hint::black_box(outcome.params.len());
        }) / cfg.epochs as f64;
        if rows.is_empty() {
            r1_ns = ns;
        }
        let speedup = r1_ns / ns;
        println!(
            "{:>8}  {:>16.3} {:>16.1} {:>11.2}x",
            replicas,
            ns / 1e6,
            (cfg.batch * 2) as f64 / (ns / 1e9),
            speedup
        );
        rows.push(Row {
            replicas,
            ns_per_epoch: ns,
            speedup_vs_r1: speedup,
        });
    }
    println!("{:-<66}", "");

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"workload\": \"train_scaling\", \"qubits\": {}, \"blocks\": {}, \
             \"batch\": {}, \"micro\": {}, \"replicas\": {}, \
             \"ns_per_epoch\": {:.1}, \"speedup_vs_r1\": {:.3}, \"cores\": {}}}{comma}\n",
            cfg.qubits, cfg.blocks, cfg.batch, cfg.micro, r.replicas, r.ns_per_epoch,
            r.speedup_vs_r1, cores
        ));
    }
    json.push_str("]\n");
    match std::fs::write(&cfg.json_path, &json) {
        Ok(()) => println!("results written to {}", cfg.json_path),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", cfg.json_path);
            std::process::exit(1);
        }
    }

    // The determinism gate: replicas=4 on forced worker threads must be
    // bit-identical to replicas=1 inline. This is what makes the bench a
    // verification artifact, not just a stopwatch.
    let strategy = MiniBatchVqc::new(&model, train, test, cfg.batch).expect("strategy");
    let mut single = DataParallel::new(&strategy, 1)
        .expect("one replica")
        .micro_batch(cfg.micro)
        .threading(ReplicaThreads::Never);
    let reference = Trainer::new(train_cfg).fit(&mut single).expect("reference run");
    let mut quad = DataParallel::new(&strategy, 4)
        .expect("four replicas")
        .micro_batch(cfg.micro)
        .threading(ReplicaThreads::Always);
    let parallel = Trainer::new(train_cfg).fit(&mut quad).expect("parallel run");
    assert_eq!(
        parallel.params, reference.params,
        "replicas=4 must train to the same bits as replicas=1"
    );
    assert_eq!(parallel.history, reference.history);
    println!("determinism check: replicas=4 == replicas=1 bit-for-bit OK");

    // Scaling expectation, calibrated to the machine: a multi-core
    // budget must show real speedup at the top of the ladder. A
    // single-core budget evaluates every arm's units inline in the same
    // order, but each replica owns its own adjoint workspace, so the
    // paper-scale shape (four live 10-qubit × batch-4 workspaces instead
    // of one) pays a measurable cache-footprint cost — the floor bounds
    // that overhead rather than pretending it is zero. A budget pinned
    // above the hardware (QUGEO_SIM_THREADS > physical cores)
    // oversubscribes by construction, so wall-clock asserts would only
    // measure the scheduler — skip them and say so.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let top = rows.last().expect("non-empty replica ladder");
    if cores > hw {
        println!(
            "scaling check: skipped (budget {cores} pinned above {hw} hardware thread(s); \
             determinism gate still enforced)"
        );
        return;
    }
    if !cfg.smoke && cores >= 4 {
        assert!(
            top.speedup_vs_r1 >= 2.0,
            "replicas={} reached only {:.2}x on a {}-thread budget",
            top.replicas,
            top.speedup_vs_r1,
            cores
        );
    } else {
        // The smoke shape's epochs are tens of microseconds, where
        // scheduler noise alone can cost >10% even at min-over-reps —
        // the floor leaves room for that; the full shape (ms-scale
        // epochs) is steadier and bounds real workspace overhead.
        let floor = if cfg.smoke { 0.8 } else { 0.75 };
        assert!(
            top.speedup_vs_r1 >= floor,
            "replicas={} slowed training to {:.2}x of replicas=1 (floor {floor})",
            top.replicas,
            top.speedup_vs_r1
        );
    }
    println!(
        "scaling check: replicas={} at {:.2}x ({} thread(s)) OK",
        top.replicas, top.speedup_vs_r1, cores
    );
}
