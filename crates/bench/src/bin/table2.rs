//! Table 2 — quantum vs classical learning at matched parameter count.
//!
//! Trains CNN-PX, CNN-LY (classical, ~600 parameters), Q-M-PX and
//! Q-M-LY (quantum, 576 parameters) on both physics-guided datasets and
//! reports SSIM / MSE with improvements over the CNN-PX baseline.
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin table2 [--smoke|--full]
//! ```
//!
//! Paper's Table 2 shape: Q-M-LY outperforms both classical baselines on
//! both datasets (MSE −19.84% on Q-D-FW, −25.17% on Q-D-CNN vs CNN-PX)
//! with fewer parameters; Q-M-PX trails slightly.

use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::train::{PerSampleVqc, RegressorStep, TrainConfig, Trainer};
use qugeo_bench::{build_scaled_triple, header, improvement_pct, rule, Preset};
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_nn::models::{CnnRegressor, RegressorConfig};
use qugeo_nn::Model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = Preset::from_args();
    header("Table 2 — quantum vs classical learning", &preset);

    let layout = ScaledLayout::paper_default();
    let triple = build_scaled_triple(&preset)?;
    let qm_px = QuGeoVqc::new(VqcConfig::paper_pixel_wise())?;
    let qm_ly = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
    let train_cfg = TrainConfig {
        epochs: preset.epochs,
        initial_lr: 0.1,
        seed: preset.seed,
        eval_every: 0,
    };
    // Classical models converge better from a smaller learning rate; the
    // paper tunes each family on the same schedule shape.
    let cnn_cfg = TrainConfig {
        initial_lr: 0.02,
        ..train_cfg
    };

    // results[model][dataset] = (ssim, mse); datasets = [Q-D-FW, Q-D-CNN].
    type TableRow = (String, usize, Vec<(f64, f64)>);
    let mut table: Vec<TableRow> = Vec::new();

    for (model_label, is_pixel, is_quantum) in [
        ("CNN-PX", true, false),
        ("CNN-LY", false, false),
        ("Q-M-PX", true, true),
        ("Q-M-LY", false, true),
    ] {
        let mut row = Vec::new();
        let mut params_count = 0usize;
        for (ds_label, scaled) in [("Q-D-FW", &triple.fw), ("Q-D-CNN", &triple.cnn)] {
            eprintln!("[table2] training {model_label} on {ds_label}…");
            let (train, test) = scaled.try_split(preset.train_count)?;
            let (ssim, mse, n_params) = if is_quantum {
                let model = if is_pixel { &qm_px } else { &qm_ly };
                let out =
                    Trainer::new(train_cfg).fit(&mut PerSampleVqc::new(model, &train, &test)?)?;
                (out.final_ssim, out.final_mse, model.num_params())
            } else {
                let config = if is_pixel {
                    RegressorConfig::pixel_wise()
                } else {
                    RegressorConfig::layer_wise()
                };
                let mut model = CnnRegressor::new(config, preset.seed ^ 0x77)?;
                let n = model.num_params();
                let out = Trainer::new(cnn_cfg).fit(&mut RegressorStep::new(
                    &mut model,
                    &train,
                    &test,
                    layout.group_len(),
                )?)?;
                (out.final_ssim, out.final_mse, n)
            };
            params_count = n_params;
            row.push((ssim, mse));
        }
        table.push((model_label.to_string(), params_count, row));
    }

    rule();
    println!("Model    Par.   | Q-D-FW:  SSIM    vs BL     MSE        vs BL   | Q-D-CNN: SSIM    vs BL     MSE        vs BL");
    let baseline = table[0].2.clone(); // CNN-PX row
    for (label, params, row) in &table {
        print!("{label:<8} {params:>5}  |");
        for (d, (ssim, mse)) in row.iter().enumerate() {
            let (bs, bm) = baseline[d];
            let svs = if label == "CNN-PX" {
                "BL".to_string()
            } else {
                format!("{:+.2}%", improvement_pct(*ssim, bs, true))
            };
            let mvs = if label == "CNN-PX" {
                "BL".to_string()
            } else {
                format!("{:+.2}%", improvement_pct(*mse, bm, false))
            };
            print!("          {ssim:.4}  {svs:>7}  {mse:.2e}  {mvs:>7}  |");
        }
        println!();
    }
    rule();
    println!("paper reference (SSIM / MSE-vs-BL): CNN-PX 0.870/BL · CNN-LY 0.871/−0.4% ·");
    println!("Q-M-PX 0.859/−6.1% · Q-M-LY 0.893/+19.8% (Q-D-FW); Q-M-LY 0.91/+25.2% (Q-D-CNN)");

    let qly = &table[3].2;
    let wins = qly
        .iter()
        .zip(&baseline)
        .filter(|((_, qm), (_, bm))| qm < bm)
        .count();
    println!("shape check: Q-M-LY beats the CNN-PX baseline on MSE for {wins}/2 datasets (paper: 2/2)");
    println!(
        "parameter check: quantum models use {} params vs classical {}–{}",
        table[2].1,
        table[0].1.min(table[1].1),
        table[0].1.max(table[1].1)
    );
    Ok(())
}
