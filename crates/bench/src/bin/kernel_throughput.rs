//! Kernel-layer throughput: the SIMD tier vs the pinned scalar tier on
//! the acceptance workload (10 qubits × 12 `U3+CU3` blocks, batch 16).
//!
//! Both tiers run in one process via [`set_simd_enabled`], so the A/B is
//! same-binary, same-buffers, same-compile — the only variable is the
//! kernel bodies the dispatchers select:
//!
//! * `scalar_per_sample` / `simd_per_sample` — one
//!   [`CompiledCircuit::run`] per batch member (the interleaved-lane
//!   kernels when SIMD is on).
//! * `scalar_batched` / `simd_batched` — one
//!   [`BatchedState::apply_compiled`] sweep for the whole batch (the
//!   batch-major tile path when SIMD is on).
//! * `scalar_fused_batched` / `simd_fused_batched` — the full adjoint
//!   training step ([`adjoint_gradient_batch_with`]) through a
//!   persistent [`AdjointWorkspace`].
//!
//! ```text
//! cargo run --release -p qugeo-bench --bin kernel_throughput [--smoke] [--json PATH]
//! ```
//!
//! `--smoke` shrinks to 6 qubits × 2 blocks with one rep — the CI gate
//! shape (`scripts/verify.sh kernel-smoke`). Results are merged into
//! `BENCH_qsim.json` (entries under `simd_*` are replaced, everything
//! else is preserved), alongside the detected CPU feature level.
//!
//! Every run ends with a built-in differential: scalar and SIMD tiers
//! must agree on forward amplitudes and adjoint values/gradients to
//! 1e-12. Outside smoke mode the acceptance ratios are asserted too:
//! SIMD ≥ 2x scalar on the batched forward, ≥ 1.5x on the fused adjoint,
//! and the batched sweep ≥ 1.2x the per-sample path on the SIMD tier.

use std::time::Instant;

use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::{
    adjoint_gradient_batch_with, set_simd_enabled, simd_feature_level, AdjointWorkspace,
    BatchedState, Circuit, CompiledCircuit, DiagonalObservable, State,
};

struct Config {
    qubits: usize,
    blocks: usize,
    batch: usize,
    reps: usize,
    smoke: bool,
    json_path: String,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self {
            qubits: 10,
            blocks: 12,
            batch: 16,
            reps: 7,
            smoke: false,
            json_path: "BENCH_qsim.json".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.qubits = 6;
                    cfg.blocks = 2;
                    cfg.batch = 8;
                    cfg.reps = 1;
                    cfg.smoke = true;
                }
                "--json" => {
                    cfg.json_path = args.next().expect("--json needs a path");
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("usage: kernel_throughput [--smoke] [--json PATH]");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// One timed call, in ns. Series are timed round-robin — every series
/// once per round, minimum across rounds — so slow clock drift (thermal
/// or frequency-governor) hits all series alike instead of biasing
/// whichever one runs last.
fn time_once(f: &mut dyn FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64
}

fn member_states(circuit: &Circuit, batch: usize) -> Vec<State> {
    (0..batch)
        .map(|k| {
            let data: Vec<f64> = (0..1usize << circuit.num_qubits())
                .map(|i| ((i + k * 17) as f64 * 0.11).sin() + 0.2)
                .collect();
            State::from_real_normalized(&data).expect("valid state")
        })
        .collect()
}

/// Replaces this bin's entries (`simd_*`) in the trajectory file,
/// preserving every entry owned by other benches. Both writers emit one
/// object per line, so the merge is line-based.
fn merge_json(path: &str, fresh: &[String]) -> std::io::Result<()> {
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let entry = line.trim().trim_end_matches(',');
            if entry.starts_with('{') && !entry.contains("\"name\": \"simd_") {
                kept.push(entry.to_string());
            }
        }
    }
    kept.extend(fresh.iter().cloned());
    let mut out = String::from("[\n");
    for (i, entry) in kept.iter().enumerate() {
        let comma = if i + 1 == kept.len() { "" } else { "," };
        out.push_str(&format!("  {entry}{comma}\n"));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Minimum time per series, round-robin across tiers: each round runs
/// scalar per-sample / batched / adjoint then the SIMD triple, so every
/// series samples the same portion of any clock drift. Returns
/// `([scalar_per_sample, scalar_batched, scalar_adjoint], [simd_...])`.
fn measure(
    cfg: &Config,
    circuit: &Circuit,
    params: &[f64],
    compiled: &CompiledCircuit,
    states: &[State],
    obs: &DiagonalObservable,
) -> ([f64; 3], [f64; 3]) {
    let inputs = BatchedState::from_states(states).expect("batch");
    let mut ws = AdjointWorkspace::new();
    let mut per_sample = || {
        for s in states {
            std::hint::black_box(compiled.run(s).expect("runs"));
        }
    };
    let mut batched = || {
        let mut batch = BatchedState::from_states(states).expect("batch");
        batch.apply_compiled(compiled).expect("applies");
        std::hint::black_box(batch.amps().len());
    };
    let mut adjoint = || {
        adjoint_gradient_batch_with(circuit, params, &inputs, obs, 1, &mut ws).expect("grads");
        std::hint::black_box(ws.values().len());
    };

    let mut mins = [[f64::INFINITY; 3]; 2];
    // One untimed warm-up round per tier, then the timed rounds.
    for round in 0..cfg.reps.max(1) + 1 {
        for (tier, simd_on) in [false, true].into_iter().enumerate() {
            set_simd_enabled(simd_on);
            let samples = [
                time_once(&mut per_sample),
                time_once(&mut batched),
                time_once(&mut adjoint),
            ];
            if round > 0 {
                for (min, s) in mins[tier].iter_mut().zip(samples) {
                    *min = min.min(s);
                }
            }
        }
    }
    set_simd_enabled(true);
    (mins[0], mins[1])
}

/// The outputs of one tier's forward + adjoint pass, for the built-in
/// scalar-vs-SIMD differential. Captured outside the timed region.
struct TierOutputs {
    batched_amps: Vec<qugeo_qsim::Complex64>,
    values: Vec<f64>,
    grads: Vec<f64>,
}

fn capture_outputs(
    circuit: &Circuit,
    params: &[f64],
    compiled: &CompiledCircuit,
    states: &[State],
    obs: &DiagonalObservable,
) -> TierOutputs {
    let mut batch = BatchedState::from_states(states).expect("batch");
    batch.apply_compiled(compiled).expect("applies");
    let inputs = BatchedState::from_states(states).expect("batch");
    let mut ws = AdjointWorkspace::new();
    adjoint_gradient_batch_with(circuit, params, &inputs, obs, 1, &mut ws).expect("grads");
    TierOutputs {
        batched_amps: batch.amps().to_vec(),
        values: ws.values().to_vec(),
        grads: (0..inputs.batch_len()).flat_map(|b| ws.grad(b).to_vec()).collect(),
    }
}

fn main() {
    let cfg = Config::from_args();
    let circuit = u3_cu3_ansatz(AnsatzConfig {
        num_qubits: cfg.qubits,
        num_blocks: cfg.blocks,
        entangle: EntangleOrder::Ring,
    })
    .expect("valid ansatz");
    let params: Vec<f64> = (0..circuit.num_slots())
        .map(|i| (i as f64 * 0.13).sin() * 0.4)
        .collect();
    let compiled = CompiledCircuit::compile(&circuit, &params).expect("compiles");
    let states = member_states(&circuit, cfg.batch);
    let obs = DiagonalObservable::z(cfg.qubits, 0).expect("valid observable");

    let level = simd_feature_level();
    println!(
        "kernel_throughput: {}q x {} blocks, batch {}, {} rep(s), detected feature level: {level}",
        cfg.qubits, cfg.blocks, cfg.batch, cfg.reps
    );

    let ([scalar_per_sample, scalar_batched, scalar_adjoint], [simd_per_sample, simd_batched, simd_adjoint]) =
        measure(&cfg, &circuit, &params, &compiled, &states, &obs);

    set_simd_enabled(false);
    let scalar = capture_outputs(&circuit, &params, &compiled, &states, &obs);
    set_simd_enabled(true);
    let simd = capture_outputs(&circuit, &params, &compiled, &states, &obs);

    // Built-in differential: the two tiers must agree to 1e-12.
    assert_eq!(scalar.batched_amps.len(), simd.batched_amps.len());
    for (i, (s, v)) in scalar.batched_amps.iter().zip(&simd.batched_amps).enumerate() {
        assert!(
            (*s - *v).norm() < 1e-12,
            "scalar/simd forward diverge at amplitude {i}: {s:?} vs {v:?}"
        );
    }
    for (i, (s, v)) in scalar.values.iter().zip(&simd.values).enumerate() {
        assert!((s - v).abs() < 1e-12, "scalar/simd values diverge at member {i}");
    }
    for (i, (s, v)) in scalar.grads.iter().zip(&simd.grads).enumerate() {
        assert!((s - v).abs() < 1e-12, "scalar/simd gradients diverge at entry {i}");
    }
    println!("differential: scalar and {level} tiers agree to 1e-12");

    let fwd = format!("simd_forward_{}q_{}blocks_batch{}", cfg.qubits, cfg.blocks, cfg.batch);
    let adj = format!("simd_adjoint_{}q_{}blocks_batch{}", cfg.qubits, cfg.blocks, cfg.batch);
    let rows = [
        (format!("{fwd}/scalar_per_sample"), scalar_per_sample),
        (format!("{fwd}/scalar_batched"), scalar_batched),
        (format!("{fwd}/simd_per_sample"), simd_per_sample),
        (format!("{fwd}/simd_batched"), simd_batched),
        (format!("{adj}/scalar_fused_batched"), scalar_adjoint),
        (format!("{adj}/simd_fused_batched"), simd_adjoint),
    ];
    println!("{:-<66}", "");
    println!("{:<46} {:>12} {:>6}", "series", "ns/step", "vs scalar");
    let baselines = [
        scalar_per_sample,
        scalar_batched,
        scalar_per_sample,
        scalar_batched,
        scalar_adjoint,
        scalar_adjoint,
    ];
    for ((name, ns), base) in rows.iter().zip(baselines) {
        println!("{name:<46} {ns:>12.0} {:>5.2}x", base / ns);
    }
    println!("{:-<66}", "");

    let mut entries: Vec<String> = rows
        .iter()
        .map(|(name, ns)| {
            format!(
                "{{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}, \"iters\": {}}}",
                cfg.reps
            )
        })
        .collect();
    entries.push(format!("{{\"name\": \"simd_feature_level\", \"value\": \"{level}\"}}"));
    match merge_json(&cfg.json_path, &entries) {
        Ok(()) => println!("results merged into {}", cfg.json_path),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", cfg.json_path);
            std::process::exit(1);
        }
    }

    // Acceptance ratios (full mode on SIMD-capable hosts only; the smoke
    // gate checks correctness, not machine-dependent speedups).
    if !cfg.smoke && level != "scalar" {
        let fwd_speedup = scalar_batched / simd_batched;
        let adj_speedup = scalar_adjoint / simd_adjoint;
        let batch_edge = simd_per_sample / simd_batched;
        println!(
            "acceptance: forward {fwd_speedup:.2}x (need 2.0), \
             adjoint {adj_speedup:.2}x (need 1.5), batched-vs-per-sample {batch_edge:.2}x (need 1.2)"
        );
        assert!(fwd_speedup >= 2.0, "SIMD batched forward below 2x: {fwd_speedup:.2}x");
        assert!(adj_speedup >= 1.5, "SIMD fused adjoint below 1.5x: {adj_speedup:.2}x");
        assert!(batch_edge >= 1.2, "batched sweep below 1.2x per-sample: {batch_edge:.2}x");
    }
}
