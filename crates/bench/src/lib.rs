//! Shared experiment harness for the per-figure/per-table binaries.
//!
//! Every binary follows the same pattern:
//!
//! 1. parse a [`Preset`] from the command line (`--smoke`, default, or
//!    `--full` = the paper's exact scale, plus `--samples`/`--epochs`
//!    overrides),
//! 2. obtain the synthetic FlatVelA-style dataset (cached on disk under
//!    `target/qugeo-cache/` so repeated experiment runs skip the FDTD
//!    cost),
//! 3. build the scaled datasets and models it needs,
//! 4. print the table/series the paper reports, with the paper's own
//!    numbers alongside for shape comparison.

use std::path::PathBuf;

use qugeo::pipeline::{
    scale_cnn, scale_d_sample, scale_forward_model, train_cnn_scaler, CnnScalingConfig,
    FwScalingConfig, ScaledDataset,
};
use qugeo::QuGeoError;
use qugeo_geodata::scaling::ScaledLayout;
use qugeo_geodata::{Dataset, DatasetConfig};
use qugeo_nn::models::CnnCompressor;
use qugeo_wavesim::{Grid, SpaceOrder, Survey};

/// Scale of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Preset {
    /// Human-readable name printed in headers.
    pub name: &'static str,
    /// Total FlatVelA-style samples (paper: 500).
    pub num_samples: usize,
    /// Leading samples used for training (paper: 400).
    pub train_count: usize,
    /// Training epochs (paper: 500).
    pub epochs: usize,
    /// Auxiliary samples for the Q-D-CNN compressor (paper: 500 extra).
    pub aux_samples: usize,
    /// Compressor training epochs.
    pub cnn_epochs: usize,
    /// Model grid (paper: OpenFWI 70×70, 1000 steps).
    pub grid: Grid,
    /// Acquisition geometry (paper: 5 sources, 70 receivers).
    pub survey: Survey,
    /// Master seed.
    pub seed: u64,
}

impl Preset {
    /// The default preset: the paper's geometry at reduced sample/epoch
    /// counts, sized to finish in minutes.
    pub fn default_scale() -> Self {
        Self {
            name: "default",
            num_samples: 80,
            train_count: 60,
            epochs: 80,
            aux_samples: 60,
            cnn_epochs: 80,
            grid: Grid::openfwi_default(),
            survey: Survey::openfwi_default(),
            seed: 2024,
        }
    }

    /// A seconds-scale smoke preset on a shrunken geometry.
    pub fn smoke() -> Self {
        Self {
            name: "smoke",
            num_samples: 12,
            train_count: 9,
            epochs: 15,
            aux_samples: 6,
            cnn_epochs: 10,
            grid: Grid::new(32, 32, 10.0, 0.001, 128).expect("static grid"),
            survey: Survey::surface(32, 5, 32, 1).expect("static survey"),
            seed: 2024,
        }
    }

    /// The paper's full scale: 500 samples (400/100), 500 epochs.
    pub fn full() -> Self {
        Self {
            name: "full",
            num_samples: 500,
            train_count: 400,
            epochs: 500,
            aux_samples: 500,
            cnn_epochs: 200,
            ..Self::default_scale()
        }
    }

    /// Parses `--smoke` / `--full` / `--samples N` / `--epochs N` from
    /// the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut preset = if args.iter().any(|a| a == "--smoke") {
            Self::smoke()
        } else if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::default_scale()
        };
        let grab = |flag: &str| -> Option<usize> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(n) = grab("--samples") {
            preset.num_samples = n;
            preset.train_count = n * 4 / 5;
        }
        if let Some(e) = grab("--epochs") {
            preset.epochs = e;
        }
        if let Some(s) = grab("--seed") {
            preset.seed = s as u64;
        }
        preset
    }

    /// The forward-modelling rescaling configuration matching this
    /// preset's physical extent.
    pub fn fw_config(&self) -> FwScalingConfig {
        FwScalingConfig {
            extent_m: self.grid.extent_x(),
            ..FwScalingConfig::default()
        }
    }

    /// Dataset configuration for the evaluation samples.
    pub fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig {
            num_samples: self.num_samples,
            grid: self.grid,
            survey: self.survey.clone(),
            wavelet_hz: 15.0,
            space_order: SpaceOrder::Order4,
            seed: self.seed,
        }
    }

    /// Dataset configuration for the auxiliary (compressor-training)
    /// samples — disjoint seed range from the evaluation set.
    pub fn aux_config(&self) -> DatasetConfig {
        DatasetConfig {
            num_samples: self.aux_samples,
            seed: self.seed.wrapping_add(0xA0_000),
            ..self.dataset_config()
        }
    }
}

/// Location of the on-disk dataset cache.
pub fn cache_dir() -> PathBuf {
    let root = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let dir = PathBuf::from(root).join("qugeo-cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Generates a dataset or loads it from the cache.
///
/// # Errors
///
/// Propagates generation errors; cache corruption falls back to
/// regeneration.
pub fn cached_dataset(tag: &str, config: &DatasetConfig) -> Result<Dataset, QuGeoError> {
    let key = format!(
        "{tag}-{}x{}-n{}-s{}-nt{}.bin",
        config.grid.nz(),
        config.grid.nx(),
        config.num_samples,
        config.seed,
        config.grid.nt()
    );
    let path = cache_dir().join(key);
    if path.exists() {
        if let Ok(ds) = Dataset::load_bin(&path) {
            if ds.len() == config.num_samples {
                return Ok(ds);
            }
        }
    }
    let ds = Dataset::generate(config)?;
    ds.save_bin(&path).ok(); // cache failures are non-fatal
    Ok(ds)
}

/// The three scaled datasets of the paper's comparison, in the order
/// (D-Sample, Q-D-FW, Q-D-CNN), plus the trained compressor.
pub struct ScaledTriple {
    /// Nearest-neighbour baseline.
    pub d_sample: ScaledDataset,
    /// Physics-guided forward modelling.
    pub fw: ScaledDataset,
    /// CNN compression.
    pub cnn: ScaledDataset,
    /// The compressor behind `cnn`.
    pub compressor: CnnCompressor,
}

/// Builds all three scaled datasets for a preset.
///
/// # Errors
///
/// Propagates scaling and training errors.
pub fn build_scaled_triple(preset: &Preset) -> Result<ScaledTriple, QuGeoError> {
    let layout = ScaledLayout::paper_default();
    let dataset = cached_dataset("eval", &preset.dataset_config())?;
    let aux = cached_dataset("aux", &preset.aux_config())?;
    let fw_cfg = preset.fw_config();

    eprintln!("[harness] scaling with D-Sample…");
    let d_sample = scale_d_sample(&dataset, &layout)?;
    eprintln!("[harness] scaling with Q-D-FW…");
    let fw = scale_forward_model(&dataset, &layout, &fw_cfg)?;
    eprintln!(
        "[harness] training Q-D-CNN compressor ({} aux samples, {} epochs)…",
        preset.aux_samples, preset.cnn_epochs
    );
    let compressor = train_cnn_scaler(
        &aux,
        &layout,
        &fw_cfg,
        &CnnScalingConfig {
            epochs: preset.cnn_epochs,
            initial_lr: 0.01,
            seed: preset.seed ^ 0x5A5A,
        },
    )?;
    eprintln!("[harness] scaling with Q-D-CNN…");
    let cnn = scale_cnn(&dataset, &compressor, &layout)?;

    Ok(ScaledTriple {
        d_sample,
        fw,
        cnn,
        compressor,
    })
}

/// Prints a horizontal rule sized to the harness' tables.
pub fn rule() {
    println!("{}", "-".repeat(72));
}

/// Prints the standard experiment header.
pub fn header(title: &str, preset: &Preset) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!(
        "preset: {} ({} samples = {} train / {} test, {} epochs, seed {})",
        preset.name,
        preset.num_samples,
        preset.train_count,
        preset.num_samples - preset.train_count,
        preset.epochs,
        preset.seed
    );
    println!("{}", "=".repeat(72));
}

/// Formats a relative improvement in percent, as the paper's "vs BL"
/// columns do (positive = better than baseline).
pub fn improvement_pct(value: f64, baseline: f64, higher_is_better: bool) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    if higher_is_better {
        (value - baseline) / baseline * 100.0
    } else {
        (baseline - value) / baseline * 100.0
    }
}

/// Vertical-profile reporting shared by the `fig7` and `fig9` binaries.
pub mod report {
    use qugeo::model::QuGeoVqc;
    use qugeo::profile::{
        column_for_distance, compare_interfaces, profile_similarity, vertical_profile,
    };
    use qugeo::QuGeoError;
    use qugeo_geodata::scaling::{denormalize_velocity, ScaledSample};

    /// The paper profiles at x = 400 m.
    pub const PROFILE_DISTANCE_M: f64 = 400.0;
    /// Velocity step (m/s) that counts as a layer interface.
    pub const INTERFACE_THRESHOLD: f64 = 200.0;

    /// One row of the Figure 7/9 profile analysis.
    #[derive(Debug, Clone)]
    pub struct ProfileReport {
        /// Label of the (model, dataset) combination.
        pub label: String,
        /// SSIM between true and predicted profile.
        pub profile_ssim: f64,
        /// True interface count.
        pub true_interfaces: usize,
        /// Matched interface count (±1 cell).
        pub matched: usize,
        /// Matched interfaces with the correct layer ordering.
        pub correct_order: usize,
        /// The predicted profile in m/s.
        pub predicted: Vec<f64>,
        /// The true profile in m/s.
        pub truth: Vec<f64>,
    }

    /// Runs the profile analysis of one trained model on one sample.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn analyze(
        label: &str,
        model: &QuGeoVqc,
        params: &[f64],
        sample: &ScaledSample,
        extent_m: f64,
    ) -> Result<ProfileReport, QuGeoError> {
        let pred_norm = model.predict(&sample.seismic, params)?;
        let pred = denormalize_velocity(&pred_norm);
        let side = sample.velocity.cols();
        let col = column_for_distance(side, PROFILE_DISTANCE_M, extent_m);
        let truth = vertical_profile(&sample.velocity, col)?;
        let predicted = vertical_profile(&pred, col)?;
        let cmp = compare_interfaces(&truth, &predicted, INTERFACE_THRESHOLD);
        Ok(ProfileReport {
            label: label.to_string(),
            profile_ssim: profile_similarity(&truth, &predicted)?,
            true_interfaces: cmp.true_interfaces.len(),
            matched: cmp.matched,
            correct_order: cmp.correct_order,
            predicted,
            truth,
        })
    }

    /// Prints one report as a table block.
    pub fn print(report: &ProfileReport) {
        println!("\n{}", report.label);
        println!("  depth   truth (m/s)   predicted (m/s)");
        for (i, (t, p)) in report.truth.iter().zip(&report.predicted).enumerate() {
            println!("  {:>5}   {:>11.0}   {:>15.0}", i, t, p);
        }
        println!(
            "  profile SSIM {:.4} | interfaces: {} true, {} matched, {} correct order",
            report.profile_ssim, report.true_interfaces, report.matched, report.correct_order
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_sensibly() {
        let smoke = Preset::smoke();
        let default = Preset::default_scale();
        let full = Preset::full();
        assert!(smoke.num_samples < default.num_samples);
        assert!(default.num_samples < full.num_samples);
        assert_eq!(full.num_samples, 500);
        assert_eq!(full.train_count, 400);
        assert_eq!(full.epochs, 500);
        assert!(smoke.train_count < smoke.num_samples);
    }

    #[test]
    fn fw_config_tracks_extent() {
        let p = Preset::smoke();
        assert_eq!(p.fw_config().extent_m, p.grid.extent_x());
    }

    #[test]
    fn improvement_signs() {
        // Higher-is-better (SSIM): 0.9 vs 0.8 baseline = +12.5%.
        assert!((improvement_pct(0.9, 0.8, true) - 12.5).abs() < 1e-9);
        // Lower-is-better (MSE): 0.5 vs 1.0 baseline = +50%.
        assert!((improvement_pct(0.5, 1.0, false) - 50.0).abs() < 1e-9);
        assert_eq!(improvement_pct(1.0, 0.0, true), 0.0);
    }

    #[test]
    fn cache_dir_exists() {
        assert!(cache_dir().exists());
    }

    #[test]
    fn aux_config_uses_disjoint_seed() {
        let p = Preset::smoke();
        assert_ne!(p.aux_config().seed, p.dataset_config().seed);
    }
}
