//! Criterion benchmarks of the computational kernels behind every
//! experiment: statevector gate application, the three gradient methods,
//! FDTD stepping, SSIM, and QuBatch vs sequential execution.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qugeo_metrics::ssim;
use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::encoding::encode_batched;
use qugeo_qsim::{
    adjoint_gradient, finite_difference_gradient, parameter_shift_gradient, DiagonalObservable,
    Matrix2, State,
};
use qugeo_tensor::Array2;
use qugeo_wavesim::{Grid, RickerWavelet, Solver, SpaceOrder, SpongeBoundary};

fn paper_ansatz(num_qubits: usize, blocks: usize) -> qugeo_qsim::Circuit {
    u3_cu3_ansatz(AnsatzConfig {
        num_qubits,
        num_blocks: blocks,
        entangle: EntangleOrder::Ring,
    })
    .expect("valid ansatz")
}

fn params_for(circuit: &qugeo_qsim::Circuit) -> Vec<f64> {
    (0..circuit.num_slots())
        .map(|i| (i as f64 * 0.13).sin() * 0.4)
        .collect()
}

fn uniform_state(num_qubits: usize) -> State {
    State::from_real_normalized(&vec![1.0; 1 << num_qubits]).expect("valid state")
}

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_gates");
    for qubits in [8usize, 12, 16] {
        let gate = Matrix2::u3(0.3, -0.7, 1.1);
        group.bench_with_input(BenchmarkId::new("single_u3", qubits), &qubits, |b, &q| {
            let mut state = uniform_state(q);
            b.iter(|| state.apply_single(black_box(&gate), q / 2));
        });
        group.bench_with_input(BenchmarkId::new("cu3", qubits), &qubits, |b, &q| {
            let mut state = uniform_state(q);
            b.iter(|| state.apply_controlled(black_box(&gate), 0, q / 2));
        });
    }
    group.finish();
}

fn bench_paper_circuit_forward(c: &mut Criterion) {
    // The paper's 8-qubit, 12-block, 576-parameter circuit.
    let circuit = paper_ansatz(8, 12);
    let params = params_for(&circuit);
    let input = uniform_state(8);
    c.bench_function("qugeo_vqc_forward_576_params", |b| {
        b.iter(|| circuit.run(black_box(&input), black_box(&params)).expect("runs"))
    });
}

fn bench_gradient_methods(c: &mut Criterion) {
    // Gradients on a reduced circuit so parameter-shift / finite
    // difference stay benchable; adjoint additionally measured at the
    // paper's full size.
    let mut group = c.benchmark_group("gradients");
    let circuit = paper_ansatz(6, 2);
    let params = params_for(&circuit);
    let input = uniform_state(6);
    let obs = DiagonalObservable::z(6, 0).expect("valid observable");

    group.bench_function("adjoint_6q_2blocks", |b| {
        b.iter(|| adjoint_gradient(&circuit, &params, &input, &obs).expect("grad"))
    });
    group.bench_function("parameter_shift_6q_2blocks", |b| {
        b.iter(|| parameter_shift_gradient(&circuit, &params, &input, &obs).expect("grad"))
    });
    group.bench_function("finite_difference_6q_2blocks", |b| {
        b.iter(|| finite_difference_gradient(&circuit, &params, &input, &obs, 1e-5).expect("grad"))
    });

    let full = paper_ansatz(8, 12);
    let full_params = params_for(&full);
    let full_input = uniform_state(8);
    let full_obs = DiagonalObservable::z(8, 0).expect("valid observable");
    group.bench_function("adjoint_paper_8q_12blocks", |b| {
        b.iter(|| adjoint_gradient(&full, &full_params, &full_input, &full_obs).expect("grad"))
    });
    group.finish();
}

fn bench_qubatch_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubatch");
    let circuit = paper_ansatz(8, 12);
    let params = params_for(&circuit);
    let samples: Vec<Vec<f64>> = (0..4)
        .map(|k| (0..256).map(|i| ((i + k * 17) as f64 * 0.11).sin() + 0.2).collect())
        .collect();

    group.bench_function("sequential_4_samples", |b| {
        b.iter(|| {
            for s in &samples {
                let state = State::from_real_normalized(s).expect("valid");
                circuit.run(black_box(&state), &params).expect("runs");
            }
        })
    });
    group.bench_function("batched_4_samples", |b| {
        let batched = encode_batched(&samples).expect("encodes");
        let wide = circuit.widened(batched.batch_qubits());
        b.iter(|| wide.run(black_box(batched.state()), &params).expect("runs"))
    });
    group.finish();
}

fn bench_fdtd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fdtd");
    group.sample_size(10);
    for (label, order) in [
        ("order2", SpaceOrder::Order2),
        ("order4", SpaceOrder::Order4),
        ("order8", SpaceOrder::Order8),
    ] {
        let vel = Array2::filled(70, 70, 2500.0);
        let grid = Grid::new(70, 70, 10.0, 0.001, 200).expect("grid");
        let solver = Solver::new(&vel, &grid, order, SpongeBoundary::default()).expect("solver");
        let w = RickerWavelet::new(15.0, grid.dt()).expect("wavelet");
        group.bench_function(BenchmarkId::new("shot_70x70_200steps", label), |b| {
            b.iter(|| solver.run_shot((35, 1), &w, &[(10, 1), (60, 1)]).expect("shot"))
        });
    }
    group.finish();
}

fn bench_ssim(c: &mut Criterion) {
    let a = Array2::from_fn(8, 8, |r, cc| (r * 8 + cc) as f64);
    let b2 = a.map(|v| v * 1.01 + 0.5);
    c.bench_function("ssim_8x8", |b| {
        b.iter(|| ssim(black_box(&a), black_box(&b2)).expect("ssim"))
    });
    let big_a = Array2::from_fn(70, 70, |r, cc| ((r * 31 + cc * 7) % 101) as f64);
    let big_b = big_a.map(|v| v + 1.0);
    c.bench_function("ssim_70x70", |b| {
        b.iter(|| ssim(black_box(&big_a), black_box(&big_b)).expect("ssim"))
    });
}

criterion_group!(
    benches,
    bench_gate_application,
    bench_paper_circuit_forward,
    bench_gradient_methods,
    bench_qubatch_vs_sequential,
    bench_fdtd,
    bench_ssim
);
criterion_main!(benches);
