//! Head-to-head benchmark of the gate-fused batched execution engine
//! against the seed's serial per-sample path, on the acceptance workload:
//! a 10-qubit, 12-block `U3+CU3` ansatz over a batch of 16 samples.
//!
//! `seed_serial_per_sample` reimplements the seed's kernels locally
//! (masked full-array scans, one gate at a time, one sample at a time) so
//! the baseline stays frozen even as the library's own kernels improve.
//!
//! Run with `cargo bench -p qugeo-bench --bench fused_engine`. Set
//! `QUGEO_BENCH_JSON=BENCH_qsim.json` to additionally dump every result
//! as machine-readable JSON (the perf-trajectory file this repo tracks;
//! `grad_engine` writes the sibling `BENCH_grad.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::{
    adjoint_gradient, adjoint_gradient_batch_with, parameter_shift_gradient_batched,
    AdjointWorkspace, BatchedState, Circuit, Complex64, CompiledCircuit, DiagonalObservable,
    Matrix2, NaiveBackend, Op, QuantumBackend, ShotSamplerBackend, State, StatevectorBackend,
};

const QUBITS: usize = 10;
const BLOCKS: usize = 12;
const BATCH: usize = 16;

fn ansatz() -> Circuit {
    u3_cu3_ansatz(AnsatzConfig {
        num_qubits: QUBITS,
        num_blocks: BLOCKS,
        entangle: EntangleOrder::Ring,
    })
    .expect("valid ansatz")
}

fn params_for(circuit: &Circuit) -> Vec<f64> {
    (0..circuit.num_slots())
        .map(|i| (i as f64 * 0.13).sin() * 0.4)
        .collect()
}

fn batch_states() -> Vec<State> {
    (0..BATCH)
        .map(|k| {
            let data: Vec<f64> = (0..1usize << QUBITS)
                .map(|i| ((i + k * 17) as f64 * 0.11).sin() + 0.2)
                .collect();
            State::from_real_normalized(&data).expect("valid state")
        })
        .collect()
}

/// The seed's gate kernels, frozen: full-index scans with mask tests.
mod seed_baseline {
    use super::*;

    fn apply_single(amps: &mut [Complex64], gate: &Matrix2, q: usize) {
        let mask = 1usize << q;
        let [[m00, m01], [m10, m11]] = gate.m;
        for i in 0..amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = amps[i];
                let a1 = amps[j];
                amps[i] = m00 * a0 + m01 * a1;
                amps[j] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn apply_controlled(amps: &mut [Complex64], gate: &Matrix2, c: usize, t: usize) {
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let [[m00, m01], [m10, m11]] = gate.m;
        for i in 0..amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                let a0 = amps[i];
                let a1 = amps[j];
                amps[i] = m00 * a0 + m01 * a1;
                amps[j] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn apply_swap(amps: &mut [Complex64], a: usize, b: usize) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..amps.len() {
            if i & amask != 0 && i & bmask == 0 {
                let j = (i & !amask) | bmask;
                amps.swap(i, j);
            }
        }
    }

    /// Gate-by-gate execution of one sample, exactly as the seed ran it.
    pub fn run(circuit: &Circuit, params: &[f64], input: &State) -> Vec<Complex64> {
        let mut amps = input.amplitudes().to_vec();
        for op in circuit.ops() {
            match op {
                Op::Single { gate, qubit } => {
                    apply_single(&mut amps, &gate.matrix(params), *qubit)
                }
                Op::Controlled {
                    gate,
                    control,
                    target,
                } => apply_controlled(&mut amps, &gate.matrix(params), *control, *target),
                Op::Swap { a, b } => apply_swap(&mut amps, *a, *b),
            }
        }
        amps
    }
}

fn bench_forward_batch(c: &mut Criterion) {
    let circuit = ansatz();
    let params = params_for(&circuit);
    let states = batch_states();

    let mut group = c.benchmark_group("forward_10q_12blocks_batch16");

    group.bench_function("seed_serial_per_sample", |b| {
        b.iter(|| {
            for s in &states {
                black_box(seed_baseline::run(&circuit, &params, s));
            }
        })
    });

    group.bench_function("fused_per_sample", |b| {
        b.iter(|| {
            let compiled = CompiledCircuit::compile(&circuit, &params).expect("compiles");
            for s in &states {
                black_box(compiled.run(s).expect("runs"));
            }
        })
    });

    group.bench_function("fused_batched_engine", |b| {
        b.iter(|| {
            // Compile + batch assembly included: this is the per-training-
            // step cost, params change every step.
            let compiled = CompiledCircuit::compile(&circuit, &params).expect("compiles");
            let mut batch = BatchedState::from_states(&states).expect("batch");
            batch.apply_compiled(&compiled).expect("applies");
            black_box(batch.member_amps(BATCH - 1).expect("member").len())
        })
    });

    group.finish();
}

fn bench_parameter_shift(c: &mut Criterion) {
    // Parameter shift on a reduced depth so the serial oracle stays
    // benchable: 10 qubits, 2 blocks, 120 params -> 480 circuit
    // evaluations per gradient.
    let circuit = u3_cu3_ansatz(AnsatzConfig {
        num_qubits: QUBITS,
        num_blocks: 2,
        entangle: EntangleOrder::Ring,
    })
    .expect("valid ansatz");
    let params = params_for(&circuit);
    let input = batch_states().remove(0);
    let obs = DiagonalObservable::z(QUBITS, 0).expect("valid observable");

    let mut group = c.benchmark_group("parameter_shift_10q_2blocks");

    group.bench_function("seed_serial_per_shift", |b| {
        b.iter(|| {
            qugeo_qsim::parameter_shift_gradient(&circuit, &params, &input, &obs).expect("grad")
        })
    });

    group.bench_function("batched_engine_all_shifts", |b| {
        b.iter(|| {
            parameter_shift_gradient_batched(&circuit, &params, &input, &obs).expect("grad")
        })
    });

    group.finish();
}

/// Execution-backend throughput on the paper ansatz: one forward sweep of
/// the batch plus per-member ⟨Z₀⟩ estimation, per backend. Series are
/// labelled with each backend's `name()` so output lines read as
/// `backend_forward_.../statevector`, `/naive`, `/shot-sampler-1k`, …
///
/// `statevector` vs `naive` is the engineered-vs-reference gap;
/// `shot-sampler` adds the cost of drawing finite measurement shots on
/// top of exact evolution (1k and 100k shots bracket the convergence
/// study in `examples/shot_budget.rs`).
fn bench_execution_backends(c: &mut Criterion) {
    let circuit = ansatz();
    let params = params_for(&circuit);
    let states = batch_states();
    let compiled = CompiledCircuit::compile(&circuit, &params).expect("compiles");
    let obs = DiagonalObservable::z(QUBITS, 0).expect("valid observable");

    let backends: Vec<(String, Box<dyn QuantumBackend>)> = vec![
        (
            StatevectorBackend::default().name().to_string(),
            Box::new(StatevectorBackend::default()),
        ),
        (
            NaiveBackend::default().name().to_string(),
            Box::new(NaiveBackend::default()),
        ),
        (
            format!("{}-1k", ShotSamplerBackend::new(1_000, 7).name()),
            Box::new(ShotSamplerBackend::new(1_000, 7)),
        ),
        (
            format!("{}-100k", ShotSamplerBackend::new(100_000, 7).name()),
            Box::new(ShotSamplerBackend::new(100_000, 7)),
        ),
    ];

    let mut group = c.benchmark_group("backend_forward_10q_12blocks_batch16");
    for (label, backend) in &backends {
        group.bench_function(label.as_str(), |b| {
            b.iter(|| {
                let mut batch = BatchedState::from_states(&states).expect("batch");
                backend.run_batch(&compiled, &mut batch).expect("runs");
                black_box(backend.expectations(&batch, &obs).expect("measures"))
            })
        });
    }
    group.finish();
}

fn bench_fusion_compile_overhead(c: &mut Criterion) {
    let circuit = ansatz();
    let params = params_for(&circuit);
    c.bench_function("compile_10q_12blocks", |b| {
        b.iter(|| CompiledCircuit::compile(black_box(&circuit), black_box(&params)).expect("ok"))
    });
    c.bench_function("compile_with_grad_10q_12blocks", |b| {
        b.iter(|| {
            CompiledCircuit::compile_with_grad(black_box(&circuit), black_box(&params))
                .expect("ok")
        })
    });
}

/// The training gradient itself: the serial unfused adjoint (one call
/// per member, the pre-rewire path) against the fused batched engine
/// sweeping the whole batch through one reusable workspace. The detailed
/// batch-size scan lives in the `grad_engine` bin; this group keeps the
/// headline number in the qsim bench trajectory.
fn bench_adjoint_gradient(c: &mut Criterion) {
    let circuit = ansatz();
    let params = params_for(&circuit);
    let states = batch_states();
    let inputs = BatchedState::from_states(&states).expect("batch");
    let obs = DiagonalObservable::z(QUBITS, 0).expect("valid observable");

    let mut group = c.benchmark_group("adjoint_grad_10q_12blocks_batch16");
    group.bench_function("serial_unfused_per_sample", |b| {
        b.iter(|| {
            for s in &states {
                black_box(adjoint_gradient(&circuit, &params, s, &obs).expect("grad"));
            }
        })
    });
    let mut ws = AdjointWorkspace::new();
    group.bench_function("fused_batched_workspace", |b| {
        b.iter(|| {
            adjoint_gradient_batch_with(&circuit, &params, &inputs, &obs, 1, &mut ws)
                .expect("grad");
            black_box(ws.values().len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward_batch,
    bench_parameter_shift,
    bench_execution_backends,
    bench_fusion_compile_overhead,
    bench_adjoint_gradient
);
criterion_main!(benches);
