//! Criterion benchmarks of the end-to-end pipeline stages: data
//! scaling, one VQC training step (the unit the per-figure experiments
//! repeat thousands of times), QuBatch training steps, and the classical
//! baseline step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qugeo::decoder::Decoder;
use qugeo::model::{QuGeoVqc, VqcConfig};
use qugeo::pipeline::{fw_scale_seismic, normalized_target, FwScalingConfig};
use qugeo::qubatch::QuBatch;
use qugeo_geodata::scaling::{d_sample, ScaledLayout, ScaledSample};
use qugeo_geodata::{FlatLayerGenerator, Sample};
use qugeo_nn::models::{CnnRegressor, RegressorConfig};
use qugeo_tensor::Array3;

fn synthetic_scaled(seed: usize) -> ScaledSample {
    let generator = FlatLayerGenerator::new(70, 70).expect("generator");
    let model = generator.sample(seed as u64);
    let seismic: Vec<f64> = (0..256)
        .map(|i| ((i + seed * 13) as f64 * 0.17).sin() + 0.1)
        .collect();
    ScaledSample {
        seismic,
        velocity: qugeo_tensor::resample::nearest2(model.map(), 8, 8),
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_scaling");
    group.sample_size(10);
    let generator = FlatLayerGenerator::new(70, 70).expect("generator");
    let model = generator.sample(5);
    let layout = ScaledLayout::paper_default();

    // D-Sample on a realistic raw cube.
    let cube = Array3::from_fn(5, 1000, 70, |s, t, r| {
        ((s * 997 + t * 31 + r * 7) % 211) as f64 * 0.01 - 1.0
    });
    let raw = Sample {
        velocity: model.clone(),
        seismic: cube,
    };
    group.bench_function("d_sample_5x1000x70", |b| {
        b.iter(|| d_sample(black_box(&raw), &layout).expect("scales"))
    });

    // Physics-guided rescaling (includes the coarse FDTD run).
    let fw_cfg = FwScalingConfig::default();
    group.bench_function("fw_rescale_70x70", |b| {
        b.iter(|| fw_scale_seismic(black_box(model.map()), &layout, &fw_cfg).expect("scales"))
    });
    group.finish();
}

fn bench_vqc_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    let sample = synthetic_scaled(1);
    let target = normalized_target(&sample);

    for (label, decoder) in [
        ("q_m_px", Decoder::paper_pixel_wise()),
        ("q_m_ly", Decoder::paper_layer_wise()),
    ] {
        let model = QuGeoVqc::new(VqcConfig {
            decoder,
            ..VqcConfig::paper_pixel_wise()
        })
        .expect("model");
        let params = model.init_params(3);
        group.bench_function(BenchmarkId::new("loss_and_grad", label), |b| {
            b.iter(|| {
                model
                    .loss_and_grad(black_box(&sample.seismic), &target, &params)
                    .expect("grad")
            })
        });
    }

    // Classical baseline step at the same parameter scale.
    let cnn = CnnRegressor::new(RegressorConfig::layer_wise(), 7).expect("cnn");
    let input: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).cos()).collect();
    let cnn_target = vec![0.5; 8];
    group.bench_function("cnn_ly_loss_and_grad", |b| {
        b.iter(|| cnn.loss_and_grad(black_box(&input), &cnn_target).expect("grad"))
    });
    group.finish();
}

fn bench_qubatch_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubatch_training_step");
    let model = QuGeoVqc::new(VqcConfig::paper_layer_wise()).expect("model");
    let qubatch = QuBatch::new(&model).expect("qubatch");
    let params = model.init_params(3);

    for batch in [1usize, 2, 4] {
        let samples: Vec<ScaledSample> = (0..batch).map(synthetic_scaled).collect();
        let seismic: Vec<Vec<f64>> = samples.iter().map(|s| s.seismic.clone()).collect();
        let targets: Vec<_> = samples.iter().map(normalized_target).collect();
        group.bench_with_input(
            BenchmarkId::new("loss_and_grad_batch", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    qubatch
                        .loss_and_grad_batch(black_box(&seismic), &targets, &params)
                        .expect("grad")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_vqc_training_step,
    bench_qubatch_training_step
);
criterion_main!(benches);
