//! Synthetic OpenFWI FlatVelA-style data for the QuGeo experiments.
//!
//! The paper evaluates on OpenFWI's **FlatVelA** dataset: 70×70 velocity
//! maps of flat subsurface layers paired with seismic data of shape
//! `5 × 1000 × 70` (sources × time steps × receivers). That dataset is a
//! multi-gigabyte download — and is itself synthetic, produced by drawing
//! random flat-layered models and running acoustic forward modelling. This
//! crate regenerates the same distribution locally:
//!
//! * [`VelocityModel`] / [`FlatLayerGenerator`] — random flat-layered
//!   velocity maps (2–5 layers, 1500–4000 m/s, increasing with depth),
//! * [`Dataset`] / [`DatasetConfig`] — paired velocity/seismic samples,
//!   seismic data simulated with [`qugeo_wavesim`] (15 Hz Ricker, 5
//!   surface sources, 70 surface receivers),
//! * [`scaling`] — the "D-Sample" nearest-neighbour baseline that shrinks
//!   raw samples to quantum size (256 seismic values, 8×8 velocity maps),
//! * binary save/load so experiment harnesses can cache generation.
//!
//! # Examples
//!
//! ```
//! use qugeo_geodata::{DatasetConfig, FlatLayerGenerator};
//!
//! # fn main() -> Result<(), qugeo_geodata::GeodataError> {
//! let generator = FlatLayerGenerator::new(70, 70)?;
//! let model = generator.sample(42);
//! assert_eq!(model.map().shape(), (70, 70));
//! assert!(model.num_layers() >= 2);
//! # Ok(())
//! # }
//! ```

mod dataset;
mod error;
mod velocity;

pub mod curved;
pub mod npy;
pub mod scaling;

pub use dataset::{Dataset, DatasetConfig, Sample};
pub use error::GeodataError;
pub use velocity::{FlatLayerGenerator, VelocityModel, VELOCITY_MAX, VELOCITY_MIN};
