use std::io::{Read, Write};
use std::path::Path;

use qugeo_tensor::{Array2, Array3};
use qugeo_wavesim::{model_shots, Grid, RickerWavelet, SpaceOrder, Survey};

use crate::{FlatLayerGenerator, GeodataError, VelocityModel};

/// One FlatVelA-style sample: a velocity model and its modelled seismic
/// data (`sources × time steps × receivers`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The subsurface model the seismic data was generated from.
    pub velocity: VelocityModel,
    /// The shot-gather cube recorded at the surface.
    pub seismic: Array3,
}

/// Configuration for synthesising a [`Dataset`].
///
/// Defaults mirror OpenFWI FlatVelA: 70×70 maps, 5 sources, 70 receivers,
/// 1000 time steps of 1 ms, 15 Hz Ricker wavelet.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of samples to generate.
    pub num_samples: usize,
    /// Spatial/temporal discretisation.
    pub grid: Grid,
    /// Acquisition geometry.
    pub survey: Survey,
    /// Source wavelet peak frequency in Hz.
    pub wavelet_hz: f64,
    /// Spatial stencil order for the modelling.
    pub space_order: SpaceOrder,
    /// Master seed; sample `i` uses `seed + i`.
    pub seed: u64,
}

impl DatasetConfig {
    /// The paper's full setup: 500 FlatVelA samples.
    ///
    /// # Errors
    ///
    /// Never fails in practice; returns a `Result` for API uniformity
    /// with the validating constructors it is built on.
    pub fn openfwi_flatvel_a(num_samples: usize, seed: u64) -> Result<Self, GeodataError> {
        Ok(Self {
            num_samples,
            grid: Grid::openfwi_default(),
            survey: Survey::openfwi_default(),
            wavelet_hz: 15.0,
            space_order: SpaceOrder::Order4,
            seed,
        })
    }

    /// A reduced geometry for fast tests: 30×30 maps, 2 sources, 16
    /// receivers, 150 steps.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the grid and survey
    /// constructors.
    pub fn small_for_tests(num_samples: usize, seed: u64) -> Result<Self, GeodataError> {
        Ok(Self {
            num_samples,
            grid: Grid::new(30, 30, 10.0, 0.001, 150)?,
            survey: Survey::surface(30, 2, 16, 1)?,
            wavelet_hz: 15.0,
            space_order: SpaceOrder::Order4,
            seed,
        })
    }
}

/// A collection of paired velocity/seismic samples.
///
/// # Examples
///
/// ```no_run
/// use qugeo_geodata::{Dataset, DatasetConfig};
///
/// # fn main() -> Result<(), qugeo_geodata::GeodataError> {
/// let config = DatasetConfig::small_for_tests(4, 7)?;
/// let dataset = Dataset::generate(&config)?;
/// let (train, test) = dataset.split(3);
/// assert_eq!(train.len(), 3);
/// assert_eq!(test.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Wraps existing samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Self { samples }
    }

    /// Synthesises the dataset: draws a random layered model per sample
    /// and runs acoustic forward modelling for every source.
    ///
    /// Samples are generated on parallel threads (modelling dominates the
    /// cost).
    ///
    /// # Errors
    ///
    /// Propagates generator and modelling errors.
    pub fn generate(config: &DatasetConfig) -> Result<Self, GeodataError> {
        let generator = FlatLayerGenerator::new(config.grid.nz(), config.grid.nx())?;
        let wavelet = RickerWavelet::new(config.wavelet_hz, config.grid.dt())?;

        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(config.num_samples.max(1));

        let mut results: Vec<Option<Result<Sample, GeodataError>>> = Vec::new();
        results.resize_with(config.num_samples, || None);
        let results_chunks: Vec<_> = results.chunks_mut(config.num_samples.div_ceil(workers.max(1))).collect();

        std::thread::scope(|scope| {
            let mut start = 0usize;
            let mut handles = Vec::new();
            for chunk in results_chunks {
                let chunk_len = chunk.len();
                let cfg = &*config;
                let gen = &generator;
                let wav = &wavelet;
                handles.push(scope.spawn(move || {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let i = start + offset;
                        let model = gen.sample(cfg.seed.wrapping_add(i as u64));
                        let seismic = model_shots(
                            model.map(),
                            &cfg.grid,
                            &cfg.survey,
                            wav,
                            cfg.space_order,
                        )
                        .map_err(GeodataError::from);
                        *slot = Some(seismic.map(|s| Sample {
                            velocity: model,
                            seismic: s,
                        }));
                    }
                }));
                start += chunk_len;
            }
            for h in handles {
                h.join().expect("generation thread panicked");
            }
        });

        let mut samples = Vec::with_capacity(config.num_samples);
        for slot in results {
            samples.push(slot.expect("all slots filled")?);
        }
        Ok(Self { samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Splits into `(first n, rest)` — the paper's 400/100 train/test
    /// split.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split(&self, n: usize) -> (Self, Self) {
        assert!(n <= self.len(), "split point beyond dataset");
        (
            Self {
                samples: self.samples[..n].to_vec(),
            },
            Self {
                samples: self.samples[n..].to_vec(),
            },
        )
    }

    /// Saves the dataset to a compact binary cache file.
    ///
    /// # Errors
    ///
    /// Returns [`GeodataError::Io`] on filesystem failures.
    pub fn save_bin(&self, path: &Path) -> Result<(), GeodataError> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(b"QGDS0001")?;
        write_u64(&mut f, self.samples.len() as u64)?;
        for s in &self.samples {
            // Velocity model: layer structure then map dims.
            let (nz, nx) = s.velocity.map().shape();
            write_u64(&mut f, nz as u64)?;
            write_u64(&mut f, nx as u64)?;
            write_u64(&mut f, s.velocity.layer_tops().len() as u64)?;
            for &t in s.velocity.layer_tops() {
                write_u64(&mut f, t as u64)?;
            }
            for &v in s.velocity.layer_velocities() {
                write_f64(&mut f, v)?;
            }
            // Seismic cube.
            let (d0, d1, d2) = s.seismic.shape();
            write_u64(&mut f, d0 as u64)?;
            write_u64(&mut f, d1 as u64)?;
            write_u64(&mut f, d2 as u64)?;
            for &v in s.seismic.as_slice() {
                write_f64(&mut f, v)?;
            }
        }
        f.flush()?;
        Ok(())
    }

    /// Loads a dataset previously written by [`Dataset::save_bin`].
    ///
    /// # Errors
    ///
    /// Returns [`GeodataError::Io`] on filesystem failures or
    /// [`GeodataError::CorruptCache`] for malformed files.
    pub fn load_bin(path: &Path) -> Result<Self, GeodataError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != b"QGDS0001" {
            return Err(GeodataError::CorruptCache {
                reason: "bad magic header".into(),
            });
        }
        let count = read_u64(&mut f)? as usize;
        if count > 1_000_000 {
            return Err(GeodataError::CorruptCache {
                reason: format!("implausible sample count {count}"),
            });
        }
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            let nz = read_u64(&mut f)? as usize;
            let nx = read_u64(&mut f)? as usize;
            let n_layers = read_u64(&mut f)? as usize;
            if n_layers == 0 || n_layers > nz {
                return Err(GeodataError::CorruptCache {
                    reason: format!("bad layer count {n_layers}"),
                });
            }
            let mut tops = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                tops.push(read_u64(&mut f)? as usize);
            }
            let mut vels = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                vels.push(read_f64(&mut f)?);
            }
            let velocity =
                VelocityModel::from_layers(nz, nx, tops, vels).map_err(|e| {
                    GeodataError::CorruptCache {
                        reason: format!("invalid layers: {e}"),
                    }
                })?;

            let d0 = read_u64(&mut f)? as usize;
            let d1 = read_u64(&mut f)? as usize;
            let d2 = read_u64(&mut f)? as usize;
            let total = d0
                .checked_mul(d1)
                .and_then(|v| v.checked_mul(d2))
                .ok_or_else(|| GeodataError::CorruptCache {
                    reason: "seismic dims overflow".into(),
                })?;
            if total > 500_000_000 {
                return Err(GeodataError::CorruptCache {
                    reason: format!("implausible cube size {total}"),
                });
            }
            let mut data = Vec::with_capacity(total);
            for _ in 0..total {
                data.push(read_f64(&mut f)?);
            }
            let seismic = Array3::from_vec(d0, d1, d2, data).map_err(|e| {
                GeodataError::CorruptCache {
                    reason: format!("invalid cube: {e}"),
                }
            })?;
            samples.push(Sample { velocity, seismic });
        }
        Ok(Self { samples })
    }

    /// The mean velocity map over the dataset — a trivial predictor used
    /// as a sanity baseline in the experiments.
    ///
    /// Returns `None` for an empty dataset or inconsistent shapes.
    pub fn mean_velocity_map(&self) -> Option<Array2> {
        let first = self.samples.first()?;
        let shape = first.velocity.map().shape();
        let mut acc = Array2::zeros(shape.0, shape.1);
        for s in &self.samples {
            if s.velocity.map().shape() != shape {
                return None;
            }
            acc = &acc + s.velocity.map();
        }
        Some(acc.scaled(1.0 / self.samples.len() as f64))
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64<R: Read>(r: &mut R) -> std::io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(n: usize) -> DatasetConfig {
        DatasetConfig {
            num_samples: n,
            grid: Grid::new(20, 20, 10.0, 0.001, 60).unwrap(),
            survey: Survey::surface(20, 2, 8, 1).unwrap(),
            wavelet_hz: 15.0,
            space_order: SpaceOrder::Order4,
            seed: 11,
        }
    }

    #[test]
    fn generate_produces_paired_samples() {
        let ds = Dataset::generate(&tiny_config(3)).unwrap();
        assert_eq!(ds.len(), 3);
        for s in ds.iter() {
            assert_eq!(s.velocity.map().shape(), (20, 20));
            assert_eq!(s.seismic.shape(), (2, 60, 8));
            let energy: f64 = s.seismic.iter().map(|v| v * v).sum();
            assert!(energy > 0.0, "seismic data has no signal");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&tiny_config(2)).unwrap();
        let b = Dataset::generate(&tiny_config(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = tiny_config(1);
        let a = Dataset::generate(&cfg).unwrap();
        cfg.seed = 99;
        let b = Dataset::generate(&cfg).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn split_partitions() {
        let ds = Dataset::generate(&tiny_config(4)).unwrap();
        let (train, test) = ds.split(3);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(train.samples()[0], ds.samples()[0]);
        assert_eq!(test.samples()[0], ds.samples()[3]);
    }

    #[test]
    #[should_panic(expected = "beyond dataset")]
    fn split_out_of_range_panics() {
        let ds = Dataset::from_samples(vec![]);
        let _ = ds.split(1);
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = Dataset::generate(&tiny_config(2)).unwrap();
        let dir = std::env::temp_dir().join("qugeo_geodata_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        ds.save_bin(&path).unwrap();
        let loaded = Dataset::load_bin(&path).unwrap();
        assert_eq!(ds, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("qugeo_geodata_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a dataset").unwrap();
        assert!(Dataset::load_bin(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mean_velocity_map_averages() {
        let m1 = VelocityModel::from_layers(4, 4, vec![0], vec![2000.0]).unwrap();
        let m2 = VelocityModel::from_layers(4, 4, vec![0], vec![4000.0]).unwrap();
        let ds = Dataset::from_samples(vec![
            Sample {
                velocity: m1,
                seismic: Array3::zeros(1, 1, 1),
            },
            Sample {
                velocity: m2,
                seismic: Array3::zeros(1, 1, 1),
            },
        ]);
        let mean = ds.mean_velocity_map().unwrap();
        assert!(mean.iter().all(|&v| v == 3000.0));
        assert!(Dataset::default().mean_velocity_map().is_none());
    }
}
