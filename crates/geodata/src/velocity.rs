use qugeo_tensor::Array2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::GeodataError;

/// Smallest layer velocity in m/s (FlatVelA's range floor).
pub const VELOCITY_MIN: f64 = 1500.0;
/// Largest layer velocity in m/s (FlatVelA's range ceiling).
pub const VELOCITY_MAX: f64 = 4000.0;

/// A flat-layered subsurface velocity model.
///
/// Wraps the `nz × nx` velocity map together with the layer geometry it
/// was built from, so experiments can compare predicted interfaces against
/// the true ones (the paper's Figures 7 and 9 count interface hits).
#[derive(Debug, Clone, PartialEq)]
pub struct VelocityModel {
    map: Array2,
    /// Depth index where each layer starts (first is always 0).
    layer_tops: Vec<usize>,
    /// Velocity of each layer in m/s.
    layer_velocities: Vec<f64>,
}

impl VelocityModel {
    /// Builds a model from explicit layer tops and velocities.
    ///
    /// # Errors
    ///
    /// Returns [`GeodataError::InvalidConfig`] if the vectors are empty,
    /// differ in length, tops are not strictly increasing from 0, or any
    /// top reaches past `nz`.
    pub fn from_layers(
        nz: usize,
        nx: usize,
        layer_tops: Vec<usize>,
        layer_velocities: Vec<f64>,
    ) -> Result<Self, GeodataError> {
        if layer_tops.is_empty()
            || layer_tops.len() != layer_velocities.len()
            || layer_tops[0] != 0
        {
            return Err(GeodataError::InvalidConfig {
                reason: "layers must be non-empty, equal-length, starting at depth 0".into(),
            });
        }
        for w in layer_tops.windows(2) {
            if w[1] <= w[0] {
                return Err(GeodataError::InvalidConfig {
                    reason: "layer tops must be strictly increasing".into(),
                });
            }
        }
        if *layer_tops.last().expect("non-empty") >= nz {
            return Err(GeodataError::InvalidConfig {
                reason: "layer top beyond model depth".into(),
            });
        }
        let map = Array2::from_fn(nz, nx, |z, _| {
            let layer = layer_tops
                .iter()
                .rposition(|&top| z >= top)
                .expect("first top is 0");
            layer_velocities[layer]
        });
        Ok(Self {
            map,
            layer_tops,
            layer_velocities,
        })
    }

    /// The `nz × nx` velocity map in m/s.
    pub fn map(&self) -> &Array2 {
        &self.map
    }

    /// Consumes the model, returning the velocity map.
    pub fn into_map(self) -> Array2 {
        self.map
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layer_tops.len()
    }

    /// Depth indices where layers start (first is 0).
    pub fn layer_tops(&self) -> &[usize] {
        &self.layer_tops
    }

    /// Layer velocities in m/s, top to bottom.
    pub fn layer_velocities(&self) -> &[f64] {
        &self.layer_velocities
    }

    /// The depth indices of layer interfaces (excluding the surface).
    pub fn interfaces(&self) -> &[usize] {
        &self.layer_tops[1..]
    }

    /// Vertical velocity profile at horizontal cell `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of range.
    pub fn profile_at(&self, ix: usize) -> Vec<f64> {
        self.map.column(ix)
    }
}

/// Random generator of FlatVelA-style velocity models.
///
/// Each sample draws a layer count in `[2, 5]`, random strictly
/// increasing layer tops, and layer velocities increasing with depth
/// within `[`[`VELOCITY_MIN`]`, `[`VELOCITY_MAX`]`]` — the construction
/// OpenFWI's FlatVel family uses.
///
/// # Examples
///
/// ```
/// use qugeo_geodata::FlatLayerGenerator;
///
/// # fn main() -> Result<(), qugeo_geodata::GeodataError> {
/// let generator = FlatLayerGenerator::new(70, 70)?;
/// let a = generator.sample(1);
/// let b = generator.sample(1);
/// assert_eq!(a.map(), b.map()); // seed-deterministic
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatLayerGenerator {
    nz: usize,
    nx: usize,
    min_layers: usize,
    max_layers: usize,
}

impl FlatLayerGenerator {
    /// Creates a generator for `nz × nx` maps with 2–5 layers.
    ///
    /// # Errors
    ///
    /// Returns [`GeodataError::InvalidConfig`] for dimensions too small to
    /// hold the maximum layer count.
    pub fn new(nz: usize, nx: usize) -> Result<Self, GeodataError> {
        Self::with_layer_range(nz, nx, 2, 5)
    }

    /// Creates a generator with an explicit layer-count range.
    ///
    /// # Errors
    ///
    /// Returns [`GeodataError::InvalidConfig`] if the range is empty,
    /// starts below 1, or `nz` cannot fit `max_layers` distinct tops.
    pub fn with_layer_range(
        nz: usize,
        nx: usize,
        min_layers: usize,
        max_layers: usize,
    ) -> Result<Self, GeodataError> {
        if nx == 0 || nz == 0 || min_layers < 1 || min_layers > max_layers || nz < max_layers * 2 {
            return Err(GeodataError::InvalidConfig {
                reason: format!(
                    "cannot fit {min_layers}..={max_layers} layers in a {nz}x{nx} model"
                ),
            });
        }
        Ok(Self {
            nz,
            nx,
            min_layers,
            max_layers,
        })
    }

    /// Map height (depth cells).
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Map width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Draws the model for `seed`. The same seed always produces the same
    /// model.
    pub fn sample(&self, seed: u64) -> VelocityModel {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let num_layers = rng.gen_range(self.min_layers..=self.max_layers);

        // Strictly increasing tops: first at 0, the rest drawn from the
        // remaining depth with a minimum thickness of 2 cells.
        let mut tops = vec![0usize];
        let min_thickness = 2usize;
        let available = self.nz - min_thickness; // last layer needs room too
        let mut candidates: Vec<usize> = (min_thickness..available).collect();
        for _ in 1..num_layers {
            if candidates.is_empty() {
                break;
            }
            let pick = candidates[rng.gen_range(0..candidates.len())];
            tops.push(pick);
            candidates.retain(|&c| c.abs_diff(pick) >= min_thickness);
        }
        tops.sort_unstable();

        // Velocities increase with depth (compaction), uniformly spread
        // with jitter across the FlatVelA range.
        let n = tops.len();
        let velocities: Vec<f64> = (0..n)
            .map(|i| {
                let base = VELOCITY_MIN
                    + (VELOCITY_MAX - VELOCITY_MIN) * (i as f64 + 0.5) / n as f64;
                let jitter_span = (VELOCITY_MAX - VELOCITY_MIN) / (2.5 * n as f64);
                (base + rng.gen_range(-jitter_span..jitter_span))
                    .clamp(VELOCITY_MIN, VELOCITY_MAX)
            })
            .collect();

        VelocityModel::from_layers(self.nz, self.nx, tops, velocities)
            .expect("generator invariants guarantee valid layers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_layers_builds_expected_map() {
        let m = VelocityModel::from_layers(6, 4, vec![0, 3], vec![1500.0, 3000.0]).unwrap();
        assert_eq!(m.map()[(0, 0)], 1500.0);
        assert_eq!(m.map()[(2, 3)], 1500.0);
        assert_eq!(m.map()[(3, 0)], 3000.0);
        assert_eq!(m.map()[(5, 3)], 3000.0);
        assert_eq!(m.interfaces(), &[3]);
    }

    #[test]
    fn from_layers_validates() {
        assert!(VelocityModel::from_layers(6, 4, vec![], vec![]).is_err());
        assert!(VelocityModel::from_layers(6, 4, vec![1], vec![1500.0]).is_err()); // must start at 0
        assert!(VelocityModel::from_layers(6, 4, vec![0, 0], vec![1.0, 2.0]).is_err());
        assert!(VelocityModel::from_layers(6, 4, vec![0, 9], vec![1.0, 2.0]).is_err());
        assert!(VelocityModel::from_layers(6, 4, vec![0, 3], vec![1.0]).is_err());
    }

    #[test]
    fn generator_validates() {
        assert!(FlatLayerGenerator::new(0, 70).is_err());
        assert!(FlatLayerGenerator::new(70, 0).is_err());
        assert!(FlatLayerGenerator::with_layer_range(70, 70, 3, 2).is_err());
        assert!(FlatLayerGenerator::with_layer_range(6, 70, 2, 5).is_err());
        assert!(FlatLayerGenerator::with_layer_range(70, 70, 0, 5).is_err());
    }

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let g = FlatLayerGenerator::new(70, 70).unwrap();
        assert_eq!(g.sample(5).map(), g.sample(5).map());
        // Different seeds almost surely differ.
        let distinct = (0..10)
            .map(|s| g.sample(s))
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0].map() != w[1].map())
            .count();
        assert!(distinct >= 8, "only {distinct} of 9 adjacent pairs differ");
    }

    #[test]
    fn sample_respects_layer_and_velocity_ranges() {
        let g = FlatLayerGenerator::new(70, 70).unwrap();
        for seed in 0..50 {
            let m = g.sample(seed);
            assert!(
                (2..=5).contains(&m.num_layers()),
                "seed {seed}: {} layers",
                m.num_layers()
            );
            for &v in m.layer_velocities() {
                assert!((VELOCITY_MIN..=VELOCITY_MAX).contains(&v), "seed {seed}: v={v}");
            }
            // Velocities increase with depth.
            for w in m.layer_velocities().windows(2) {
                assert!(w[1] > w[0], "seed {seed}: velocities must increase");
            }
            // Map values match layer velocities exactly.
            for &v in m.map().iter() {
                assert!(m.layer_velocities().contains(&v));
            }
        }
    }

    #[test]
    fn layers_are_flat() {
        let g = FlatLayerGenerator::new(40, 30).unwrap();
        let m = g.sample(9);
        for z in 0..40 {
            let row = m.map().row(z);
            assert!(row.iter().all(|&v| v == row[0]), "row {z} not constant");
        }
    }

    #[test]
    fn profile_matches_map_column() {
        let g = FlatLayerGenerator::new(40, 30).unwrap();
        let m = g.sample(3);
        let p = m.profile_at(7);
        for (z, v) in p.iter().enumerate() {
            assert_eq!(*v, m.map()[(z, 7)]);
        }
    }
}
