//! Curved-layer velocity models — the paper's Section 3.2.3 extension.
//!
//! The QuGeo layer-wise decoder is motivated by flat subsurfaces, but the
//! paper notes the approach "can be generalized for the non-flat
//! subsurface, such as curve structures. Because the subsurface mediums
//! between curves have the same material". This module provides the
//! matching data: layered models whose interfaces follow smooth curves
//! (OpenFWI's CurveVel family), so the generalisation can be evaluated.

use qugeo_tensor::Array2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GeodataError, VELOCITY_MAX, VELOCITY_MIN};

/// A velocity model with curved layer interfaces.
///
/// Interfaces are sinusoidal perturbations of flat horizons; every point
/// between two interfaces shares the layer's velocity (uniform material
/// between curves, exactly the structure the paper's generalisation
/// assumes).
#[derive(Debug, Clone, PartialEq)]
pub struct CurvedModel {
    map: Array2,
    /// Interface depth at every column, per interface.
    interface_depths: Vec<Vec<usize>>,
    layer_velocities: Vec<f64>,
}

impl CurvedModel {
    /// The `nz × nx` velocity map in m/s.
    pub fn map(&self) -> &Array2 {
        &self.map
    }

    /// Consumes the model, returning the map.
    pub fn into_map(self) -> Array2 {
        self.map
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layer_velocities.len()
    }

    /// Layer velocities top to bottom (m/s).
    pub fn layer_velocities(&self) -> &[f64] {
        &self.layer_velocities
    }

    /// Depth of interface `k` at column `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `ix` is out of range.
    pub fn interface_depth(&self, k: usize, ix: usize) -> usize {
        self.interface_depths[k][ix]
    }

    /// Maximum depth variation of any interface across the width — a
    /// measure of how far the model is from flat (0 = flat).
    pub fn curvature(&self) -> usize {
        self.interface_depths
            .iter()
            .map(|d| {
                let lo = *d.iter().min().expect("non-empty");
                let hi = *d.iter().max().expect("non-empty");
                hi - lo
            })
            .max()
            .unwrap_or(0)
    }
}

/// Random generator of curved-layer models.
///
/// # Examples
///
/// ```
/// use qugeo_geodata::curved::CurvedLayerGenerator;
///
/// # fn main() -> Result<(), qugeo_geodata::GeodataError> {
/// let generator = CurvedLayerGenerator::new(70, 70, 6)?;
/// let model = generator.sample(3);
/// // A sinusoid of amplitude ≤ 6 spans at most 12 cells peak-to-peak.
/// assert!(model.curvature() <= 12);
/// assert!(model.num_layers() >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurvedLayerGenerator {
    nz: usize,
    nx: usize,
    max_amplitude: usize,
}

impl CurvedLayerGenerator {
    /// Creates a generator for `nz × nx` maps whose interfaces deviate at
    /// most `max_amplitude` cells from flat.
    ///
    /// # Errors
    ///
    /// Returns [`GeodataError::InvalidConfig`] for degenerate dimensions
    /// or an amplitude too large for the depth.
    pub fn new(nz: usize, nx: usize, max_amplitude: usize) -> Result<Self, GeodataError> {
        if nx == 0 || nz < 10 || max_amplitude * 2 + 6 >= nz {
            return Err(GeodataError::InvalidConfig {
                reason: format!(
                    "cannot fit curved layers with amplitude {max_amplitude} in a {nz}x{nx} model"
                ),
            });
        }
        Ok(Self {
            nz,
            nx,
            max_amplitude,
        })
    }

    /// Draws a model for `seed` (deterministic per seed).
    pub fn sample(&self, seed: u64) -> CurvedModel {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let num_layers = rng.gen_range(2..=4usize);
        let num_interfaces = num_layers - 1;

        // Base (flat) depths, evenly spread with jitter, leaving room for
        // the curve amplitude at both ends.
        let margin = self.max_amplitude + 2;
        let usable = self.nz - 2 * margin;
        let mut bases: Vec<usize> = (0..num_interfaces)
            .map(|i| {
                let frac = (i as f64 + 1.0) / (num_interfaces as f64 + 1.0);
                margin + (frac * usable as f64) as usize
            })
            .collect();
        bases.sort_unstable();

        // Each interface follows base + A·sin(2π f x/nx + φ).
        let mut interface_depths = Vec::with_capacity(num_interfaces);
        for &base in &bases {
            let amplitude = if self.max_amplitude == 0 {
                0.0
            } else {
                rng.gen_range(1.0..=self.max_amplitude as f64)
            };
            let freq = rng.gen_range(0.5..2.0);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let depths: Vec<usize> = (0..self.nx)
                .map(|ix| {
                    let x = ix as f64 / self.nx as f64;
                    let d = base as f64
                        + amplitude * (std::f64::consts::TAU * freq * x + phase).sin();
                    (d.round() as usize).clamp(1, self.nz - 2)
                })
                .collect();
            interface_depths.push(depths);
        }

        // Velocities increase with depth.
        let velocities: Vec<f64> = (0..num_layers)
            .map(|i| {
                let base = VELOCITY_MIN
                    + (VELOCITY_MAX - VELOCITY_MIN) * (i as f64 + 0.5) / num_layers as f64;
                let jitter = (VELOCITY_MAX - VELOCITY_MIN) / (2.5 * num_layers as f64);
                (base + rng.gen_range(-jitter..jitter)).clamp(VELOCITY_MIN, VELOCITY_MAX)
            })
            .collect();

        let map = Array2::from_fn(self.nz, self.nx, |z, x| {
            let mut layer = 0usize;
            for (k, depths) in interface_depths.iter().enumerate() {
                if z >= depths[x] {
                    layer = k + 1;
                }
            }
            velocities[layer]
        });

        CurvedModel {
            map,
            interface_depths,
            layer_velocities: velocities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_validates() {
        assert!(CurvedLayerGenerator::new(0, 70, 4).is_err());
        assert!(CurvedLayerGenerator::new(70, 0, 4).is_err());
        assert!(CurvedLayerGenerator::new(12, 70, 5).is_err()); // amplitude too big
        assert!(CurvedLayerGenerator::new(70, 70, 6).is_ok());
    }

    #[test]
    fn samples_are_deterministic() {
        let g = CurvedLayerGenerator::new(40, 40, 4).unwrap();
        assert_eq!(g.sample(7).map(), g.sample(7).map());
        assert_ne!(g.sample(7).map(), g.sample(8).map());
    }

    #[test]
    fn velocities_increase_with_depth() {
        let g = CurvedLayerGenerator::new(50, 50, 5).unwrap();
        for seed in 0..20 {
            let m = g.sample(seed);
            for w in m.layer_velocities().windows(2) {
                assert!(w[1] > w[0], "seed {seed}");
            }
            for &v in m.layer_velocities() {
                assert!((VELOCITY_MIN..=VELOCITY_MAX).contains(&v));
            }
        }
    }

    #[test]
    fn curvature_bounded_by_amplitude() {
        let g = CurvedLayerGenerator::new(50, 50, 5).unwrap();
        for seed in 0..20 {
            let m = g.sample(seed);
            // Sinusoid of amplitude ≤ 5 spans at most 10 cells.
            assert!(m.curvature() <= 10, "seed {seed}: curvature {}", m.curvature());
        }
    }

    #[test]
    fn columns_follow_their_interfaces() {
        let g = CurvedLayerGenerator::new(50, 50, 5).unwrap();
        let m = g.sample(3);
        // At every column, the velocity changes exactly at the recorded
        // interface depths (for non-crossing interfaces).
        for ix in (0..50).step_by(7) {
            let col = m.map().column(ix);
            let d0 = m.interface_depth(0, ix);
            assert_ne!(
                col[d0 - 1], col[d0],
                "column {ix}: no velocity change at recorded interface {d0}"
            );
        }
    }

    #[test]
    fn zero_amplitude_gives_flat_layers() {
        let g = CurvedLayerGenerator::new(50, 50, 0).unwrap();
        let m = g.sample(5);
        assert_eq!(m.curvature(), 0);
        for z in 0..50 {
            let row = m.map().row(z);
            assert!(row.iter().all(|&v| v == row[0]), "row {z} not flat");
        }
    }

    #[test]
    fn curved_models_are_actually_curved() {
        let g = CurvedLayerGenerator::new(50, 50, 6).unwrap();
        let curved = (0..10).filter(|&s| g.sample(s).curvature() > 0).count();
        assert!(curved >= 9, "only {curved}/10 models have curvature");
    }
}
