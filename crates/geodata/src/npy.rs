//! Minimal NumPy `.npy` reading — load *real* OpenFWI files.
//!
//! The reproduction regenerates FlatVelA synthetically, but users who
//! have downloaded the actual OpenFWI archives (`seisN.npy` of shape
//! `(n, 5, 1000, 70)` f32 and `velN.npy` of shape `(n, 1, 70, 70)` f32)
//! can load them directly with this module — no NumPy dependency.
//!
//! Supports `.npy` format versions 1.x with little-endian `f4`/`f8`
//! arrays in C order, which covers every OpenFWI release file.

use std::io::Read;
use std::path::Path;

use qugeo_tensor::{Array2, Array3};

use crate::GeodataError;

/// A parsed `.npy` array: shape plus flat C-order data widened to `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct NpyArray {
    /// Dimension sizes, outermost first.
    pub shape: Vec<usize>,
    /// Flat data in C (row-major) order.
    pub data: Vec<f64>,
}

impl NpyArray {
    /// Total element count implied by the shape.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reads a `.npy` file of little-endian `f4` or `f8` data.
///
/// # Errors
///
/// Returns [`GeodataError::Io`] for filesystem failures and
/// [`GeodataError::CorruptCache`] for malformed or unsupported files
/// (fortran order, big-endian, or non-float dtypes).
pub fn read_npy(path: &Path) -> Result<NpyArray, GeodataError> {
    let mut file = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    parse_npy(&bytes)
}

/// Parses `.npy` bytes (see [`read_npy`]).
///
/// # Errors
///
/// Returns [`GeodataError::CorruptCache`] for malformed input.
pub fn parse_npy(bytes: &[u8]) -> Result<NpyArray, GeodataError> {
    let bad = |reason: String| GeodataError::CorruptCache { reason };
    if bytes.len() < 10 || &bytes[..6] != b"\x93NUMPY" {
        return Err(bad("missing NUMPY magic".into()));
    }
    let major = bytes[6];
    if major != 1 && major != 2 {
        return Err(bad(format!("unsupported npy version {major}")));
    }
    let (header_len, header_start) = if major == 1 {
        (u16::from_le_bytes([bytes[8], bytes[9]]) as usize, 10usize)
    } else {
        if bytes.len() < 12 {
            return Err(bad("truncated v2 header".into()));
        }
        (
            u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize,
            12usize,
        )
    };
    let data_start = header_start + header_len;
    if bytes.len() < data_start {
        return Err(bad("truncated header".into()));
    }
    let header = std::str::from_utf8(&bytes[header_start..data_start])
        .map_err(|_| bad("header not utf-8".into()))?;

    let descr = extract_quoted(header, "descr").ok_or_else(|| bad("missing descr".into()))?;
    let elem_size = match descr.as_str() {
        "<f4" | "|f4" => 4usize,
        "<f8" | "|f8" => 8usize,
        other => return Err(bad(format!("unsupported dtype {other}"))),
    };
    if header.contains("'fortran_order': True") {
        return Err(bad("fortran order not supported".into()));
    }
    let shape = extract_shape(header).ok_or_else(|| bad("missing shape".into()))?;

    let count: usize = shape.iter().product();
    let data_bytes = &bytes[data_start..];
    if data_bytes.len() < count * elem_size {
        return Err(bad(format!(
            "data truncated: need {} bytes, have {}",
            count * elem_size,
            data_bytes.len()
        )));
    }
    let mut data = Vec::with_capacity(count);
    match elem_size {
        4 => {
            for chunk in data_bytes[..count * 4].chunks_exact(4) {
                data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as f64);
            }
        }
        _ => {
            for chunk in data_bytes[..count * 8].chunks_exact(8) {
                data.push(f64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6],
                    chunk[7],
                ]));
            }
        }
    }
    Ok(NpyArray { shape, data })
}

/// Extracts `'key': '<value>'` from the header dict.
fn extract_quoted(header: &str, key: &str) -> Option<String> {
    let pat = format!("'{key}':");
    let rest = &header[header.find(&pat)? + pat.len()..];
    let first = rest.find('\'')?;
    let rest = &rest[first + 1..];
    let second = rest.find('\'')?;
    Some(rest[..second].to_string())
}

/// Extracts `'shape': (a, b, …)` from the header dict.
fn extract_shape(header: &str) -> Option<Vec<usize>> {
    let pat = "'shape':";
    let rest = &header[header.find(pat)? + pat.len()..];
    let open = rest.find('(')?;
    let close = rest.find(')')?;
    let inner = &rest[open + 1..close];
    let mut shape = Vec::new();
    for part in inner.split(',') {
        let t = part.trim();
        if t.is_empty() {
            continue;
        }
        shape.push(t.parse().ok()?);
    }
    Some(shape)
}

/// Loads an OpenFWI seismic archive (`(n, s, t, r)` f32) as one
/// [`Array3`] cube per sample.
///
/// # Errors
///
/// Returns [`GeodataError::CorruptCache`] unless the file is 4-D.
pub fn load_openfwi_seismic(path: &Path) -> Result<Vec<Array3>, GeodataError> {
    let arr = read_npy(path)?;
    let [n, s, t, r] = arr.shape[..] else {
        return Err(GeodataError::CorruptCache {
            reason: format!("expected 4-d seismic archive, got shape {:?}", arr.shape),
        });
    };
    let per = s * t * r;
    (0..n)
        .map(|i| {
            Array3::from_vec(s, t, r, arr.data[i * per..(i + 1) * per].to_vec()).map_err(|e| {
                GeodataError::CorruptCache {
                    reason: format!("sample {i}: {e}"),
                }
            })
        })
        .collect()
}

/// Loads an OpenFWI velocity archive (`(n, 1, h, w)` or `(n, h, w)` f32)
/// as one [`Array2`] map per sample.
///
/// # Errors
///
/// Returns [`GeodataError::CorruptCache`] unless the file is 3-D or 4-D
/// with a singleton channel.
pub fn load_openfwi_velocity(path: &Path) -> Result<Vec<Array2>, GeodataError> {
    let arr = read_npy(path)?;
    let (n, h, w) = match arr.shape[..] {
        [n, 1, h, w] => (n, h, w),
        [n, h, w] => (n, h, w),
        _ => {
            return Err(GeodataError::CorruptCache {
                reason: format!("expected velocity archive, got shape {:?}", arr.shape),
            })
        }
    };
    let per = h * w;
    (0..n)
        .map(|i| {
            Array2::from_vec(h, w, arr.data[i * per..(i + 1) * per].to_vec()).map_err(|e| {
                GeodataError::CorruptCache {
                    reason: format!("map {i}: {e}"),
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a v1 .npy byte buffer around little-endian f4 data.
    fn npy_f32(shape: &[usize], values: &[f32]) -> Vec<u8> {
        let shape_str = match shape.len() {
            1 => format!("({},)", shape[0]),
            _ => format!(
                "({})",
                shape
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let mut header = format!(
            "{{'descr': '<f4', 'fortran_order': False, 'shape': {shape_str}, }}"
        );
        // Pad so that total header size is a multiple of 16 (the spec).
        while (10 + header.len() + 1) % 16 != 0 {
            header.push(' ');
        }
        header.push('\n');
        let mut out = Vec::new();
        out.extend_from_slice(b"\x93NUMPY");
        out.push(1);
        out.push(0);
        out.extend_from_slice(&(header.len() as u16).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn parses_simple_f32_array() {
        let bytes = npy_f32(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let arr = parse_npy(&bytes).unwrap();
        assert_eq!(arr.shape, vec![2, 3]);
        assert_eq!(arr.data, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(arr.len(), 6);
    }

    #[test]
    fn parses_1d_trailing_comma_shape() {
        let bytes = npy_f32(&[4], &[0.5, 1.5, 2.5, 3.5]);
        let arr = parse_npy(&bytes).unwrap();
        assert_eq!(arr.shape, vec![4]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_npy(b"not numpy at all").is_err());
        assert!(parse_npy(b"\x93NUMPY").is_err());
        // Valid magic, truncated data.
        let mut bytes = npy_f32(&[10], &[1.0; 10]);
        bytes.truncate(bytes.len() - 8);
        assert!(parse_npy(&bytes).is_err());
    }

    #[test]
    fn rejects_unsupported_dtype() {
        let mut bytes = npy_f32(&[1], &[1.0]);
        // Corrupt descr '<f4' -> '<i4'.
        let pos = bytes.windows(3).position(|w| w == b"<f4").unwrap();
        bytes[pos + 1] = b'i';
        assert!(parse_npy(&bytes).is_err());
    }

    #[test]
    fn openfwi_seismic_layout_roundtrip() {
        // 2 samples × 2 sources × 3 steps × 2 receivers.
        let values: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let bytes = npy_f32(&[2, 2, 3, 2], &values);
        let dir = std::env::temp_dir().join("qugeo_npy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seis.npy");
        std::fs::write(&path, &bytes).unwrap();

        let cubes = load_openfwi_seismic(&path).unwrap();
        assert_eq!(cubes.len(), 2);
        assert_eq!(cubes[0].shape(), (2, 3, 2));
        assert_eq!(cubes[0][(0, 0, 0)], 0.0);
        assert_eq!(cubes[1][(0, 0, 0)], 12.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn openfwi_velocity_layout_roundtrip() {
        let values: Vec<f32> = (0..18).map(|i| 1500.0 + i as f32).collect();
        let bytes = npy_f32(&[2, 1, 3, 3], &values);
        let dir = std::env::temp_dir().join("qugeo_npy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vel.npy");
        std::fs::write(&path, &bytes).unwrap();

        let maps = load_openfwi_velocity(&path).unwrap();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].shape(), (3, 3));
        assert_eq!(maps[1][(0, 0)], 1509.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_dimensionality_rejected() {
        let bytes = npy_f32(&[4], &[1.0; 4]);
        let dir = std::env::temp_dir().join("qugeo_npy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flat.npy");
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_openfwi_seismic(&path).is_err());
        assert!(load_openfwi_velocity(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
