//! Quantum-size data layouts and the "D-Sample" scaling baseline.
//!
//! The paper constrains the quantum backend to ≤16 qubits, scaling
//! seismic data to 256 values and velocity maps to 8×8. The layout keeps
//! the seismic source structure: 4 sources × 8 time steps × 8 receivers,
//! grouped per source so the ST-Encoder can map each source to its own
//! qubit subset.
//!
//! `D-Sample` — plain nearest-neighbour resampling of the raw data — is
//! the baseline the physics-guided approaches (implemented in the `qugeo`
//! core crate) are compared against.

use qugeo_tensor::{resample, Array2};

use crate::{GeodataError, Sample, VELOCITY_MAX, VELOCITY_MIN};

/// The shape of quantum-scaled seismic data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledLayout {
    /// Seismic sources kept (each becomes an encoder group).
    pub num_sources: usize,
    /// Time samples per source.
    pub time_steps: usize,
    /// Receivers per source.
    pub receivers: usize,
    /// Velocity map side length.
    pub velocity_side: usize,
}

impl ScaledLayout {
    /// The paper's layout: 4 × 8 × 8 = 256 seismic values, 8×8 velocity
    /// maps (16-qubit budget: 8 data qubits for the seismic vector, up to
    /// 8 more for grouping/batching headroom).
    pub fn paper_default() -> Self {
        Self {
            num_sources: 4,
            time_steps: 8,
            receivers: 8,
            velocity_side: 8,
        }
    }

    /// Total scaled seismic length (`sources × time × receivers`).
    pub fn seismic_len(&self) -> usize {
        self.num_sources * self.time_steps * self.receivers
    }

    /// Values per source group.
    pub fn group_len(&self) -> usize {
        self.time_steps * self.receivers
    }
}

/// One quantum-ready sample: a scaled seismic vector (grouped by source)
/// and the scaled ground-truth velocity map in m/s.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledSample {
    /// Scaled seismic data, laid out `[source0 | source1 | …]`.
    pub seismic: Vec<f64>,
    /// Scaled `velocity_side × velocity_side` velocity map (m/s).
    pub velocity: Array2,
}

/// Picks `wanted` source indices evenly from `total` available.
///
/// # Panics
///
/// Panics if `wanted` is zero or exceeds `total`.
pub fn select_source_indices(total: usize, wanted: usize) -> Vec<usize> {
    assert!(
        wanted > 0 && wanted <= total,
        "cannot select {wanted} of {total} sources"
    );
    if wanted == 1 {
        return vec![total / 2];
    }
    (0..wanted)
        .map(|i| (i * (total - 1)) / (wanted - 1))
        .collect()
}

/// The D-Sample baseline: nearest-neighbour resampling of raw seismic
/// data and velocity map down to the quantum layout.
///
/// # Errors
///
/// Returns [`GeodataError::InvalidConfig`] if the sample has fewer
/// sources than the layout requires.
pub fn d_sample(sample: &Sample, layout: &ScaledLayout) -> Result<ScaledSample, GeodataError> {
    let (num_sources, _, _) = sample.seismic.shape();
    if num_sources < layout.num_sources {
        return Err(GeodataError::InvalidConfig {
            reason: format!(
                "sample has {num_sources} sources, layout needs {}",
                layout.num_sources
            ),
        });
    }
    let picks = select_source_indices(num_sources, layout.num_sources);
    let mut seismic = Vec::with_capacity(layout.seismic_len());
    for &s in &picks {
        let gather = sample.seismic.slice(s);
        let small = resample::nearest2(&gather, layout.time_steps, layout.receivers);
        seismic.extend_from_slice(small.as_slice());
    }
    let velocity = resample::nearest2(
        sample.velocity.map(),
        layout.velocity_side,
        layout.velocity_side,
    );
    Ok(ScaledSample { seismic, velocity })
}

/// Coarsens a velocity map to `side × side` with bilinear averaging —
/// the first step of the physics-guided (Q-D-FW) rescaling, which then
/// re-runs forward modelling on the coarse model.
pub fn coarsen_velocity(map: &Array2, side: usize) -> Array2 {
    resample::bilinear2(map, side, side)
}

/// Normalises a velocity map from m/s into `[0, 1]` using the FlatVelA
/// range.
pub fn normalize_velocity(map: &Array2) -> Array2 {
    map.map(|v| (v - VELOCITY_MIN) / (VELOCITY_MAX - VELOCITY_MIN))
}

/// Inverse of [`normalize_velocity`].
pub fn denormalize_velocity(map: &Array2) -> Array2 {
    map.map(|v| VELOCITY_MIN + v * (VELOCITY_MAX - VELOCITY_MIN))
}

/// Normalises one scalar velocity into `[0, 1]`.
pub fn normalize_velocity_value(v: f64) -> f64 {
    (v - VELOCITY_MIN) / (VELOCITY_MAX - VELOCITY_MIN)
}

/// Inverse of [`normalize_velocity_value`].
pub fn denormalize_velocity_value(v: f64) -> f64 {
    VELOCITY_MIN + v * (VELOCITY_MAX - VELOCITY_MIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VelocityModel;
    use qugeo_tensor::Array3;

    fn fake_sample(num_sources: usize, nt: usize, nr: usize) -> Sample {
        let velocity =
            VelocityModel::from_layers(20, 20, vec![0, 10], vec![1500.0, 3500.0]).unwrap();
        let seismic = Array3::from_fn(num_sources, nt, nr, |s, t, r| {
            (s * 1000 + t * 10 + r) as f64 * 0.001
        });
        Sample { velocity, seismic }
    }

    #[test]
    fn paper_layout_is_256() {
        let l = ScaledLayout::paper_default();
        assert_eq!(l.seismic_len(), 256);
        assert_eq!(l.group_len(), 64);
        assert_eq!(l.velocity_side, 8);
    }

    #[test]
    fn select_sources_even_coverage() {
        assert_eq!(select_source_indices(5, 4), vec![0, 1, 2, 4]);
        assert_eq!(select_source_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(select_source_indices(5, 1), vec![2]);
        assert_eq!(select_source_indices(5, 2), vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn select_sources_validates() {
        let _ = select_source_indices(3, 4);
    }

    #[test]
    fn d_sample_shapes() {
        let sample = fake_sample(5, 100, 20);
        let scaled = d_sample(&sample, &ScaledLayout::paper_default()).unwrap();
        assert_eq!(scaled.seismic.len(), 256);
        assert_eq!(scaled.velocity.shape(), (8, 8));
    }

    #[test]
    fn d_sample_values_come_from_input() {
        let sample = fake_sample(5, 100, 20);
        let scaled = d_sample(&sample, &ScaledLayout::paper_default()).unwrap();
        for &v in &scaled.seismic {
            assert!(
                sample.seismic.iter().any(|&x| x == v),
                "{v} not from input"
            );
        }
        for &v in scaled.velocity.iter() {
            assert!(sample.velocity.map().iter().any(|&x| x == v));
        }
    }

    #[test]
    fn d_sample_groups_follow_sources() {
        // Each group of 64 must come from one source (values encode the
        // source index in the thousands digit).
        let sample = fake_sample(4, 64, 64);
        let scaled = d_sample(&sample, &ScaledLayout::paper_default()).unwrap();
        for g in 0..4 {
            for &v in &scaled.seismic[g * 64..(g + 1) * 64] {
                let source = (v * 1000.0).round() as usize / 1000;
                assert_eq!(source, g, "group {g} contains value {v}");
            }
        }
    }

    #[test]
    fn d_sample_rejects_too_few_sources() {
        let sample = fake_sample(2, 50, 20);
        assert!(d_sample(&sample, &ScaledLayout::paper_default()).is_err());
    }

    #[test]
    fn velocity_normalisation_roundtrip() {
        let m = Array2::from_vec(1, 3, vec![1500.0, 2750.0, 4000.0]).unwrap();
        let n = normalize_velocity(&m);
        assert_eq!(n.as_slice(), &[0.0, 0.5, 1.0]);
        let back = denormalize_velocity(&n);
        for (a, b) in back.iter().zip(m.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(normalize_velocity_value(4000.0), 1.0);
        assert_eq!(denormalize_velocity_value(0.0), 1500.0);
    }

    #[test]
    fn coarsen_velocity_preserves_layering() {
        let model =
            VelocityModel::from_layers(16, 16, vec![0, 8], vec![1500.0, 3500.0]).unwrap();
        let coarse = coarsen_velocity(model.map(), 4);
        assert_eq!(coarse.shape(), (4, 4));
        // Top rows slow, bottom rows fast.
        assert!(coarse[(0, 0)] < coarse[(3, 0)]);
        // Rows stay constant (flat layers).
        for r in 0..4 {
            let row = coarse.row(r);
            assert!(row.iter().all(|&v| (v - row[0]).abs() < 1e-9));
        }
    }
}
