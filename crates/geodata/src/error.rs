use std::error::Error;
use std::fmt;

use qugeo_wavesim::WavesimError;

/// Errors from dataset synthesis, scaling or (de)serialisation.
///
/// # Examples
///
/// ```
/// use qugeo_geodata::{FlatLayerGenerator, GeodataError};
///
/// let err = FlatLayerGenerator::new(0, 70).unwrap_err();
/// assert!(matches!(err, GeodataError::InvalidConfig { .. }));
/// ```
#[derive(Debug)]
pub enum GeodataError {
    /// A generator or dataset configuration is degenerate.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// Forward modelling failed while synthesising seismic data.
    Modeling(WavesimError),
    /// Reading or writing a cached dataset failed.
    Io(std::io::Error),
    /// A cached dataset file is corrupt or from an incompatible version.
    CorruptCache {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for GeodataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::Modeling(e) => write!(f, "forward modelling failed: {e}"),
            Self::Io(e) => write!(f, "dataset io failed: {e}"),
            Self::CorruptCache { reason } => write!(f, "corrupt dataset cache: {reason}"),
        }
    }
}

impl Error for GeodataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Modeling(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WavesimError> for GeodataError {
    fn from(e: WavesimError) -> Self {
        Self::Modeling(e)
    }
}

impl From<std::io::Error> for GeodataError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GeodataError::InvalidConfig {
            reason: "zero".into(),
        };
        assert!(e.to_string().contains("zero"));
        assert!(e.source().is_none());

        let m: GeodataError = WavesimError::EmptySurvey.into();
        assert!(m.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GeodataError>();
    }
}
