//! Property-based tests for the dataset generators and scaling.

use proptest::prelude::*;
use qugeo_geodata::curved::CurvedLayerGenerator;
use qugeo_geodata::scaling::{
    d_sample, normalize_velocity_value, select_source_indices, ScaledLayout,
};
use qugeo_geodata::{FlatLayerGenerator, Sample, VelocityModel, VELOCITY_MAX, VELOCITY_MIN};
use qugeo_tensor::Array3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flat_generator_invariants(seed in 0u64..10_000) {
        let g = FlatLayerGenerator::new(70, 70).expect("generator");
        let m = g.sample(seed);
        // Layer count, velocity range, monotonicity.
        prop_assert!((2..=5).contains(&m.num_layers()));
        for w in m.layer_velocities().windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for &v in m.layer_velocities() {
            prop_assert!((VELOCITY_MIN..=VELOCITY_MAX).contains(&v));
        }
        // Tops strictly increasing from zero.
        prop_assert_eq!(m.layer_tops()[0], 0);
        for w in m.layer_tops().windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Every row constant (flat).
        for z in (0..70).step_by(13) {
            let row = m.map().row(z);
            prop_assert!(row.iter().all(|&v| v == row[0]));
        }
    }

    #[test]
    fn curved_generator_invariants(seed in 0u64..10_000) {
        let g = CurvedLayerGenerator::new(70, 70, 6).expect("generator");
        let m = g.sample(seed);
        prop_assert!((2..=4).contains(&m.num_layers()));
        for w in m.layer_velocities().windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Every column is monotone in layer index: velocities only
        // increase going down a column.
        for ix in (0..70).step_by(17) {
            let col = m.map().column(ix);
            let mut last = col[0];
            for &v in &col {
                prop_assert!(v >= last - 1e-9, "velocity decreased going down");
                last = last.max(v);
            }
        }
    }

    #[test]
    fn d_sample_preserves_flatness_and_range(
        seed in 0u64..1000,
        nt in 16usize..64,
        nr in 8usize..32,
    ) {
        let g = FlatLayerGenerator::new(32, 32).expect("generator");
        let velocity = g.sample(seed);
        let seismic = Array3::from_fn(5, nt, nr, |s, t, r| {
            ((s * 7 + t * 3 + r) % 17) as f64 * 0.01
        });
        let sample = Sample { velocity, seismic };
        let layout = ScaledLayout::paper_default();
        let scaled = d_sample(&sample, &layout).expect("scales");
        prop_assert_eq!(scaled.seismic.len(), 256);
        for r in 0..8 {
            let row = scaled.velocity.row(r);
            prop_assert!(row.iter().all(|&v| v == row[0]), "row {} not flat", r);
            prop_assert!((VELOCITY_MIN..=VELOCITY_MAX).contains(&row[0]));
        }
    }

    #[test]
    fn source_selection_is_sorted_unique_in_range(total in 1usize..20, wanted in 1usize..20) {
        prop_assume!(wanted <= total);
        let picks = select_source_indices(total, wanted);
        prop_assert_eq!(picks.len(), wanted);
        for w in picks.windows(2) {
            prop_assert!(w[1] > w[0], "picks must be strictly increasing");
        }
        prop_assert!(*picks.last().expect("non-empty") < total);
    }

    #[test]
    fn velocity_normalisation_bijective(v in VELOCITY_MIN..VELOCITY_MAX) {
        let n = normalize_velocity_value(v);
        prop_assert!((0.0..=1.0).contains(&n));
        let back = qugeo_geodata::scaling::denormalize_velocity_value(n);
        prop_assert!((back - v).abs() < 1e-9);
    }

    #[test]
    fn explicit_model_roundtrip(
        top in 1usize..30,
        v1 in VELOCITY_MIN..2500.0,
        v2 in 2500.0f64..VELOCITY_MAX,
    ) {
        let m = VelocityModel::from_layers(32, 16, vec![0, top], vec![v1, v2]).expect("model");
        prop_assert_eq!(m.interfaces(), &[top]);
        let p = m.profile_at(7);
        prop_assert_eq!(p[top - 1], v1);
        prop_assert_eq!(p[top], v2);
    }
}
