//! Image-quality metrics for velocity-map evaluation.
//!
//! The QuGeo paper reports two metrics between predicted and ground-truth
//! velocity maps: the Structural Similarity Index ([`ssim`]) and the mean
//! squared error ([`mse`]). Both operate on [`Array2`] values; SSIM
//! follows the Wang et al. (2004) formulation with a sliding uniform
//! window and the standard `K₁ = 0.01`, `K₂ = 0.03` stabilisers, matching
//! the scikit-image defaults OpenFWI evaluations use.
//!
//! # Examples
//!
//! ```
//! use qugeo_tensor::Array2;
//! use qugeo_metrics::{mse, ssim};
//!
//! let a = Array2::from_fn(8, 8, |r, c| (r + c) as f64);
//! assert_eq!(mse(&a, &a).unwrap(), 0.0);
//! assert!((ssim(&a, &a).unwrap() - 1.0).abs() < 1e-12);
//! ```

use qugeo_tensor::{Array2, ShapeError};

/// Mean squared error between two same-shape arrays.
///
/// # Errors
///
/// Returns [`ShapeError`] if the shapes differ or the arrays are empty.
pub fn mse(a: &Array2, b: &Array2) -> Result<f64, ShapeError> {
    if a.shape() != b.shape() || a.is_empty() {
        return Err(ShapeError::new(
            vec![a.rows(), a.cols()],
            vec![b.rows(), b.cols()],
            "mse",
        ));
    }
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    Ok(sum / a.len() as f64)
}

/// Mean absolute error between two same-shape arrays.
///
/// # Errors
///
/// Returns [`ShapeError`] if the shapes differ or the arrays are empty.
pub fn mae(a: &Array2, b: &Array2) -> Result<f64, ShapeError> {
    if a.shape() != b.shape() || a.is_empty() {
        return Err(ShapeError::new(
            vec![a.rows(), a.cols()],
            vec![b.rows(), b.cols()],
            "mae",
        ));
    }
    let sum: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
    Ok(sum / a.len() as f64)
}

/// Peak signal-to-noise ratio in dB, using the joint dynamic range of the
/// two images. Identical images give `f64::INFINITY`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the shapes differ or the arrays are empty.
pub fn psnr(a: &Array2, b: &Array2) -> Result<f64, ShapeError> {
    let err = mse(a, b)?;
    if err == 0.0 {
        return Ok(f64::INFINITY);
    }
    let hi = a.max().max(b.max());
    let lo = a.min().min(b.min());
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    Ok(10.0 * ((range * range) / err).log10())
}

/// Options for [`ssim_with`]: window size and stabiliser constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimOptions {
    /// Side length of the sliding window (odd; clamped to image size).
    pub window: usize,
    /// Luminance stabiliser `K₁`.
    pub k1: f64,
    /// Contrast stabiliser `K₂`.
    pub k2: f64,
    /// Dynamic range `L`; `None` derives it from the data (max − min over
    /// both images), which is how scikit-image treats float images.
    pub data_range: Option<f64>,
}

impl Default for SsimOptions {
    fn default() -> Self {
        Self {
            window: 7,
            k1: 0.01,
            k2: 0.03,
            data_range: None,
        }
    }
}

/// Structural similarity with default options (7×7 uniform window).
///
/// Returns a value in `[-1, 1]`; 1.0 means identical images.
///
/// # Errors
///
/// Returns [`ShapeError`] if the shapes differ or the arrays are empty.
pub fn ssim(a: &Array2, b: &Array2) -> Result<f64, ShapeError> {
    ssim_with(a, b, SsimOptions::default())
}

/// Structural similarity with explicit options.
///
/// The mean SSIM over all window positions is returned. For images
/// smaller than the window, the window shrinks to the image.
///
/// # Errors
///
/// Returns [`ShapeError`] if the shapes differ or the arrays are empty.
pub fn ssim_with(a: &Array2, b: &Array2, opts: SsimOptions) -> Result<f64, ShapeError> {
    if a.shape() != b.shape() || a.is_empty() {
        return Err(ShapeError::new(
            vec![a.rows(), a.cols()],
            vec![b.rows(), b.cols()],
            "ssim",
        ));
    }
    let (rows, cols) = a.shape();
    let win = opts.window.max(1).min(rows).min(cols);

    let range = match opts.data_range {
        Some(r) => r,
        None => {
            let hi = a.max().max(b.max());
            let lo = a.min().min(b.min());
            hi - lo
        }
    };
    // Constant images with no range: SSIM is 1 when identical, else
    // judged on the difference via a tiny stabiliser.
    let range = if range > 0.0 { range } else { 1e-12 };
    let c1 = (opts.k1 * range) * (opts.k1 * range);
    let c2 = (opts.k2 * range) * (opts.k2 * range);

    let n = (win * win) as f64;
    let mut total = 0.0;
    let mut count = 0usize;
    for r0 in 0..=(rows - win) {
        for c0 in 0..=(cols - win) {
            let mut sa = 0.0;
            let mut sb = 0.0;
            let mut saa = 0.0;
            let mut sbb = 0.0;
            let mut sab = 0.0;
            for r in r0..r0 + win {
                for c in c0..c0 + win {
                    let x = a[(r, c)];
                    let y = b[(r, c)];
                    sa += x;
                    sb += y;
                    saa += x * x;
                    sbb += y * y;
                    sab += x * y;
                }
            }
            let mu_a = sa / n;
            let mu_b = sb / n;
            // Sample (unbiased) variance/covariance, as scikit-image uses.
            let denom = (n - 1.0).max(1.0);
            let var_a = (saa - n * mu_a * mu_a) / denom;
            let var_b = (sbb - n * mu_b * mu_b) / denom;
            let cov = (sab - n * mu_a * mu_b) / denom;

            let num = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2);
            let den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
            total += num / den;
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// SSIM between two 1-D profiles (treated as single-row images with a 1-D
/// sliding window). Used for the paper's vertical-velocity-profile
/// comparisons (Figures 7 and 9).
///
/// # Errors
///
/// Returns [`ShapeError`] if lengths differ or the profiles are empty.
pub fn profile_ssim(a: &[f64], b: &[f64]) -> Result<f64, ShapeError> {
    if a.len() != b.len() || a.is_empty() {
        return Err(ShapeError::new(vec![a.len()], vec![b.len()], "profile_ssim"));
    }
    let ia = Array2::from_vec(1, a.len(), a.to_vec())?;
    let ib = Array2::from_vec(1, b.len(), b.to_vec())?;
    ssim_with(
        &ia,
        &ib,
        SsimOptions {
            window: 7.min(a.len()),
            ..SsimOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> Array2 {
        Array2::from_fn(16, 16, |r, c| (r * 2 + c) as f64)
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let a = gradient_image();
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Array2::filled(2, 2, 1.0);
        let b = Array2::filled(2, 2, 3.0);
        assert_eq!(mse(&a, &b).unwrap(), 4.0);
        assert_eq!(mae(&a, &b).unwrap(), 2.0);
    }

    #[test]
    fn mse_shape_mismatch() {
        let a = Array2::zeros(2, 2);
        let b = Array2::zeros(2, 3);
        assert!(mse(&a, &b).is_err());
        assert!(mae(&a, &b).is_err());
        assert!(ssim(&a, &b).is_err());
        assert!(mse(&Array2::zeros(0, 0), &Array2::zeros(0, 0)).is_err());
    }

    #[test]
    fn ssim_identical_is_one() {
        let a = gradient_image();
        assert!((ssim(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_bounded() {
        let a = gradient_image();
        let b = a.map(|v| 30.0 - v * 0.5);
        let s = ssim(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let a = gradient_image();
        let slight = a.map(|v| v + ((v as usize * 7919) % 3) as f64 * 0.3);
        let heavy = a.map(|v| v + ((v as usize * 7919) % 13) as f64 * 3.0);
        let s_slight = ssim(&a, &slight).unwrap();
        let s_heavy = ssim(&a, &heavy).unwrap();
        assert!(s_slight > s_heavy, "{s_slight} should exceed {s_heavy}");
        assert!(s_slight < 1.0);
    }

    #[test]
    fn ssim_symmetric() {
        let a = gradient_image();
        let b = a.map(|v| v * 1.1 + 2.0);
        let ab = ssim(&a, &b).unwrap();
        let ba = ssim(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn ssim_penalises_mean_shift_less_than_structure_loss() {
        let a = gradient_image();
        let shifted = a.map(|v| v + 1.0);
        let scrambled = Array2::from_fn(16, 16, |r, c| (((r * 31 + c * 17) % 32) * 2) as f64);
        assert!(ssim(&a, &shifted).unwrap() > ssim(&a, &scrambled).unwrap());
    }

    #[test]
    fn ssim_constant_images() {
        let a = Array2::filled(8, 8, 5.0);
        assert!((ssim(&a, &a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_small_image_shrinks_window() {
        let a = Array2::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert!((ssim(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ssim_with_explicit_range() {
        let a = gradient_image();
        let b = a.map(|v| v + 0.5);
        let auto = ssim(&a, &b).unwrap();
        let fixed = ssim_with(
            &a,
            &b,
            SsimOptions {
                data_range: Some(45.5), // max(a,b) − min(a,b) computed by hand
                ..SsimOptions::default()
            },
        )
        .unwrap();
        assert!((auto - fixed).abs() < 1e-9);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let a = gradient_image();
        assert_eq!(psnr(&a, &a).unwrap(), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a = gradient_image();
        let small = a.map(|v| v + 0.1);
        let large = a.map(|v| v + 5.0);
        assert!(psnr(&a, &small).unwrap() > psnr(&a, &large).unwrap());
    }

    #[test]
    fn profile_ssim_identical() {
        let p: Vec<f64> = (0..16).map(|i| 1500.0 + 100.0 * i as f64).collect();
        assert!((profile_ssim(&p, &p).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_ssim_detects_missing_interface() {
        // A stepped profile vs a smoothed one: lower similarity than the
        // stepped profile with slight noise.
        let steps: Vec<f64> = (0..32)
            .map(|i| if i < 16 { 1500.0 } else { 3000.0 })
            .collect();
        let noisy: Vec<f64> = steps.iter().map(|v| v + 10.0).collect();
        let smooth: Vec<f64> = (0..32)
            .map(|i| 1500.0 + 1500.0 * (i as f64 / 31.0))
            .collect();
        let s_noisy = profile_ssim(&steps, &noisy).unwrap();
        let s_smooth = profile_ssim(&steps, &smooth).unwrap();
        assert!(s_noisy > s_smooth);
    }

    #[test]
    fn profile_ssim_validates() {
        assert!(profile_ssim(&[1.0], &[1.0, 2.0]).is_err());
        assert!(profile_ssim(&[], &[]).is_err());
    }
}
