//! QuBatch cost model (paper Section 3.3.3).
//!
//! The paper analyses the qubit/depth overhead of batching `B` samples
//! through a `G`-group encoder whose unbatched time–space complexity
//! (qubits × circuit depth) is `X`:
//!
//! * extra qubits: `O(G · log₂B)`,
//! * extra depth per group: `O(log₂B)` (amplitude-encoding depth grows
//!   linearly with qubit count),
//! * batched time–space complexity: `O(G · log₂²B · X)`,
//! * running the batch members independently instead: `O(B · X)`.
//!
//! For `B ≫ G` the batched form wins by an exponential factor, which is
//! the claim the `table1`/ablation benches of this workspace exercise.

/// Ceiling of `log₂(b)`; 0 for `b ≤ 1`.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::complexity::log2_ceil;
///
/// assert_eq!(log2_ceil(1), 0);
/// assert_eq!(log2_ceil(2), 1);
/// assert_eq!(log2_ceil(5), 3);
/// ```
pub fn log2_ceil(b: usize) -> usize {
    if b <= 1 {
        0
    } else {
        (usize::BITS - (b - 1).leading_zeros()) as usize
    }
}

/// Extra qubits QuBatch needs for `batch` samples over `groups` encoder
/// groups: `G · ⌈log₂B⌉`.
pub fn qubit_overhead(groups: usize, batch: usize) -> usize {
    groups * log2_ceil(batch)
}

/// Extra encoding depth per group: `⌈log₂B⌉` (linear-depth amplitude
/// encoding over `log₂B` more qubits).
pub fn depth_overhead(batch: usize) -> usize {
    log2_ceil(batch)
}

/// Time–space complexity of the batched execution,
/// `G · (1 + ⌈log₂B⌉)² · X`, in the same (arbitrary) units as `base_x`.
///
/// The `1 +` keeps the estimate meaningful at `B = 1`, where the paper's
/// asymptotic form degenerates to zero.
pub fn qubatch_time_space(groups: usize, batch: usize, base_x: f64) -> f64 {
    let l = log2_ceil(batch) as f64;
    groups as f64 * (1.0 + l) * (1.0 + l) * base_x
}

/// Time–space complexity of running the `B` batch members independently:
/// `B · X`.
pub fn independent_time_space(batch: usize, base_x: f64) -> f64 {
    batch as f64 * base_x
}

/// The advantage factor `independent / batched`; values above 1.0 mean
/// QuBatch wins.
pub fn qubatch_advantage(groups: usize, batch: usize) -> f64 {
    independent_time_space(batch, 1.0) / qubatch_time_space(groups, batch, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(8), 3);
        assert_eq!(log2_ceil(9), 4);
    }

    #[test]
    fn table1_qubit_overheads() {
        // The paper's Table 1: batch 1/2/4 => 0/1/2 extra qubits (G = 1).
        assert_eq!(qubit_overhead(1, 1), 0);
        assert_eq!(qubit_overhead(1, 2), 1);
        assert_eq!(qubit_overhead(1, 4), 2);
    }

    #[test]
    fn overhead_scales_with_groups() {
        assert_eq!(qubit_overhead(4, 8), 12);
        assert_eq!(depth_overhead(8), 3);
    }

    #[test]
    fn advantage_grows_with_batch() {
        let a16 = qubatch_advantage(1, 16);
        let a256 = qubatch_advantage(1, 256);
        assert!(a256 > a16, "advantage should grow with batch size");
        assert!(a256 > 1.0);
    }

    #[test]
    fn advantage_shrinks_with_groups() {
        assert!(qubatch_advantage(1, 64) > qubatch_advantage(8, 64));
    }

    #[test]
    fn batched_degenerates_gracefully_at_one() {
        assert_eq!(qubatch_time_space(1, 1, 10.0), 10.0);
        assert_eq!(independent_time_space(1, 10.0), 10.0);
    }
}
