//! Gate-fusion circuit compilation.
//!
//! Executing a circuit gate-by-gate sweeps the amplitude array once per
//! gate. Most of those sweeps are avoidable: adjacent single-qubit gates
//! on the same qubit compose into one 2×2 matrix, and a single-qubit gate
//! next to a controlled gate's **target** folds into a *multiplexed*
//! (uniformly-controlled) operation — `a0` on the target where the
//! control is 0, `a1` where it is 1 — which still costs only 2 complex
//! multiplies per amplitude. Fully general overlaps fall back to a dense
//! 4×4 [`Matrix4`].
//!
//! Keeping the multiplexed form (instead of eagerly densifying to 4×4)
//! matters: a dense two-qubit gate costs 4 complex multiplies per
//! amplitude, so naive fusion of QuGeo's `U3+CU3` blocks would *increase*
//! arithmetic. The multiplexed form halves the pass count of a block
//! (U3 layer + CU3 ring → one multiplexed ring) at unchanged arithmetic
//! per pass.
//!
//! "Adjacent" is commutation-aware: gates with disjoint supports commute,
//! so a gate may fuse with the *most recent gate touching its qubits*,
//! not merely its literal predecessor. A last-writer index per qubit
//! makes that an `O(ops)` pass.
//!
//! A [`CompiledCircuit`] is bound to the parameter values it was compiled
//! with (matrices are evaluated during compilation) — recompile per
//! parameter vector. Compilation costs `O(ops)` small matrix products,
//! negligible next to one amplitude sweep.
//!
//! # Gradient-aware compilation
//!
//! [`CompiledCircuit::compile_with_grad`] additionally records, for every
//! fused op `F = U_m ⋯ U_1`, the derivative of the *fused* matrix with
//! respect to each trainable angle it absorbed:
//! `∂F/∂θ = U_m ⋯ U_{j+1} · ∂U_j/∂θ · U_{j-1} ⋯ U_1`, maintained
//! incrementally by the product rule as gates fuse. Because fusion only
//! merges gates with a shared support, every such derivative is itself a
//! 2×2, multiplexed-pair, or 4×4 object on the same qubits as its op
//! ([`SlotDeriv`]) — which is what lets the adjoint backward sweep
//! ([`crate::adjoint`]) walk **fused** ops and still emit exact
//! per-slot `2·Re⟨bra|∂U|ket⟩` contributions, without de-fusing. Fusion
//! reorders gates only across disjoint supports, so the fused product
//! equals the source circuit's unitary identically in the parameters and
//! the recorded derivatives are exact.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig};
//! use qugeo_qsim::{CompiledCircuit, State};
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let circuit = u3_cu3_ansatz(AnsatzConfig::paper_default())?;
//! let params = vec![0.05; circuit.num_slots()];
//! let compiled = CompiledCircuit::compile(&circuit, &params)?;
//! // 192 source gates collapse to ~97 fused ops on the paper's ansatz.
//! assert!(compiled.num_fused_ops() < circuit.num_ops() / 2 + 9);
//!
//! let fused = compiled.run(&State::zero(8))?;
//! let plain = circuit.run(&State::zero(8), &params)?;
//! assert!(fused
//!     .amplitudes()
//!     .iter()
//!     .zip(plain.amplitudes())
//!     .all(|(a, b)| (*a - *b).norm() < 1e-12));
//! # Ok(())
//! # }
//! ```

use crate::circuit::{Circuit, Gate1, Op};
use crate::gates::{Matrix2, Matrix4};
use crate::{kernels, Complex64, QsimError, State};

/// The derivative of one fused op with respect to one absorbed trainable
/// angle. The shape always matches the op's shape: a [`FusedOp::One`]
/// carries [`DerivKind::One`] derivatives, and so on — the adjoint sweep
/// relies on this invariant to apply the derivative on the op's support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DerivKind {
    /// `∂F/∂θ` of a fused single-qubit op (acts on the op's qubit).
    One(Matrix2),
    /// `∂F/∂θ` of a multiplexed op: the control-0 and control-1 branch
    /// derivatives (either may be the zero matrix — e.g. a plain
    /// controlled rotation has no control-0 action).
    Multiplexed(Matrix2, Matrix2),
    /// `∂F/∂θ` of a dense two-qubit op (acts on the op's qubit pair).
    Two(Matrix4),
}

/// One recorded gradient contribution: which parameter slot, and the
/// derivative of the enclosing fused op with respect to this angle
/// occurrence. Several entries may share a slot (shared-slot circuits);
/// their contributions accumulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotDeriv {
    /// Index into the circuit's trainable parameter vector.
    pub slot: usize,
    /// The fused-op derivative for this occurrence.
    pub d: DerivKind,
}

/// One fused operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedOp {
    /// A (possibly composite) single-qubit gate.
    One {
        /// The fused 2×2 unitary.
        m: Matrix2,
        /// Target qubit.
        q: usize,
    },
    /// A multiplexed pair: `a0` acts on `t` where qubit `c` is 0, `a1`
    /// where it is 1. A plain controlled gate is the `a0 = I` case.
    Multiplexed {
        /// Gate applied on the control-0 subspace.
        a0: Matrix2,
        /// Gate applied on the control-1 subspace.
        a1: Matrix2,
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
    /// A dense two-qubit gate on qubits `a < b`, with the [`Matrix4`]
    /// basis convention `index = bit_a + 2·bit_b`.
    Two {
        /// The fused 4×4 unitary.
        m: Matrix4,
        /// Low qubit of the pair.
        a: usize,
        /// High qubit of the pair.
        b: usize,
    },
}

impl FusedOp {
    /// Embeds a 2×2 on `q` into the 4×4 space of the pair `(a, b)`.
    fn embed(m: &Matrix2, q: usize, a: usize, b: usize) -> Matrix4 {
        if q == a {
            Matrix4::single_on_low(m)
        } else {
            debug_assert_eq!(q, b);
            Matrix4::single_on_high(m)
        }
    }

    /// The dense 4×4 of a multiplexed op, with its sorted support.
    fn multiplexed_to_dense(a0: &Matrix2, a1: &Matrix2, c: usize, t: usize) -> (Matrix4, usize, usize) {
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let mut m = Matrix4::zero();
        for (v, g) in [(0usize, a0), (1, a1)] {
            for r in 0..2 {
                for col in 0..2 {
                    // Basis index = bit_lo + 2·bit_hi; the control bit is
                    // pinned to v, the target bit indexes the 2×2 block.
                    let (row_idx, col_idx) = if c == lo {
                        (v + 2 * r, v + 2 * col)
                    } else {
                        (2 * v + r, 2 * v + col)
                    };
                    m.m[row_idx][col_idx] = g.m[r][col];
                }
            }
        }
        (m, lo, hi)
    }
}

/// A circuit lowered to fused operations for fixed parameters.
///
/// Produced by [`CompiledCircuit::compile`]; executed with
/// [`CompiledCircuit::run`], [`CompiledCircuit::apply_in_place`], or — for
/// whole batches at once — [`crate::batch::BatchedState`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCircuit {
    num_qubits: usize,
    num_slots: usize,
    ops: Vec<FusedOp>,
    /// Per-fused-op derivative records; parallel to `ops` when compiled
    /// with gradients, empty otherwise.
    derivs: Vec<Vec<SlotDeriv>>,
    grad_ready: bool,
    source_ops: usize,
}

impl CompiledCircuit {
    /// Lowers `circuit` at the given parameter values, fusing mergeable
    /// gates.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the circuit's slot count.
    pub fn compile(circuit: &Circuit, params: &[f64]) -> Result<Self, QsimError> {
        Self::lower(circuit, params, false)
    }

    /// [`CompiledCircuit::compile`] plus gradient metadata: every fused op
    /// records the derivative of its fused matrix with respect to each
    /// trainable angle it absorbed ([`SlotDeriv`]), enabling the fused
    /// adjoint backward sweep ([`crate::adjoint`]). Costs a handful of
    /// extra small matrix products per parameterised gate at compile
    /// time; forward execution is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the circuit's slot count.
    pub fn compile_with_grad(circuit: &Circuit, params: &[f64]) -> Result<Self, QsimError> {
        Self::lower(circuit, params, true)
    }

    fn lower(circuit: &Circuit, params: &[f64], with_grad: bool) -> Result<Self, QsimError> {
        circuit.check_params(params)?;
        let mut builder = Builder {
            // One tombstone-able slot per source op, compacted at the end.
            ops: Vec::with_capacity(circuit.num_ops()),
            last_touch: vec![None; circuit.num_qubits()],
            with_grad,
        };
        for op in circuit.ops() {
            match *op {
                Op::Single { gate, qubit } => {
                    let derivs = builder.gate_derivs(&gate, params);
                    builder.push_one(gate.matrix(params), derivs, qubit);
                }
                Op::Controlled {
                    gate,
                    control,
                    target,
                } => {
                    let derivs = builder.gate_derivs(&gate, params);
                    builder.push_controlled(gate.matrix(params), derivs, control, target);
                }
                Op::Swap { a: x, b: y } => {
                    let (a, b) = ordered(x, y);
                    builder.push_dense(Matrix4::swap(), a, b);
                }
            }
        }
        let (ops, derivs): (Vec<FusedOp>, Vec<Vec<SlotDeriv>>) = builder
            .ops
            .into_iter()
            .flatten()
            .map(|p| (p.op, p.derivs))
            .unzip();
        Ok(Self {
            num_qubits: circuit.num_qubits(),
            num_slots: circuit.num_slots(),
            ops,
            derivs: if with_grad { derivs } else { Vec::new() },
            grad_ready: with_grad,
            source_ops: circuit.num_ops(),
        })
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Trainable slots of the circuit this was compiled from.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Fused operation count (≤ the source op count).
    pub fn num_fused_ops(&self) -> usize {
        self.ops.len()
    }

    /// Op count of the circuit this was compiled from.
    pub fn num_source_ops(&self) -> usize {
        self.source_ops
    }

    /// The fused operations in execution order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// `true` when this compilation recorded derivative metadata
    /// ([`CompiledCircuit::compile_with_grad`]) and can drive an adjoint
    /// backward sweep.
    pub fn has_gradients(&self) -> bool {
        self.grad_ready
    }

    /// The derivative records of fused op `idx` (empty when compiled
    /// without gradients, or when the op absorbed no trainable angle).
    pub fn op_derivs(&self, idx: usize) -> &[SlotDeriv] {
        if self.grad_ready {
            &self.derivs[idx]
        } else {
            &[]
        }
    }

    /// Applies the compiled circuit to a raw amplitude slice holding one
    /// or more contiguous statevector blocks of `self.num_qubits()`
    /// qubits (the batched execution entry point), using the default
    /// kernel thread count.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `amps.len()` is not a multiple of the block
    /// size.
    pub(crate) fn apply_amps(&self, amps: &mut [Complex64]) {
        self.apply_amps_threaded(amps, kernels::simulation_threads());
    }

    /// Applies the compiled circuit to a raw amplitude slice with an
    /// explicit kernel thread budget (the execution-backend entry point).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `amps.len()` is not a multiple of the block
    /// size.
    pub(crate) fn apply_amps_threaded(&self, amps: &mut [Complex64], threads: usize) {
        debug_assert_eq!(amps.len() % (1usize << self.num_qubits), 0);
        for op in &self.ops {
            match op {
                FusedOp::One { m, q } => kernels::apply_one(amps, m, *q, threads),
                FusedOp::Multiplexed { a0, a1, c, t } => {
                    kernels::apply_multiplexed(amps, a0, a1, *c, *t, threads)
                }
                FusedOp::Two { m, a, b } => kernels::apply_two(amps, m, *a, *b, threads),
            }
        }
    }

    /// Largest member dimension still executed circuit-major when this
    /// circuit sweeps a multi-member amplitude array. A `2^14` member is
    /// 256 KiB of amplitudes — around the point where running a whole
    /// circuit over one member stops fitting in per-core cache and
    /// gate-major whole-array sweeps (which parallelise within a gate)
    /// win instead.
    pub(crate) const CIRCUIT_MAJOR_MAX_DIM: usize = 1 << 14;

    /// Applies the compiled circuit to every `2^n`-amplitude member block
    /// of `amps`, adapting the execution order to the member size: small
    /// members run *circuit-major* (each worker keeps one member hot in
    /// cache through the whole gate sequence), large members (or a batch
    /// of one) run *gate-major* with chunk-parallel kernels. Shared by
    /// [`crate::BatchedState`] and the adjoint workspace so the forward
    /// paths can never diverge.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `amps.len()` is not a multiple of the block
    /// size.
    pub(crate) fn apply_members_threaded(&self, amps: &mut [Complex64], threads: usize) {
        let dim = 1usize << self.num_qubits;
        debug_assert_eq!(amps.len() % dim, 0);
        let batch = amps.len() / dim;
        if dim > Self::CIRCUIT_MAJOR_MAX_DIM || batch <= 1 {
            self.apply_amps_threaded(amps, threads);
            return;
        }
        let threads = threads.min(batch);
        // Spawning workers for a sweep smaller than the kernels' own
        // parallel threshold costs more than it saves.
        if threads <= 1 || amps.len() < kernels::PARALLEL_MIN_AMPS {
            for member in amps.chunks_mut(dim) {
                self.apply_amps_threaded(member, 1);
            }
            return;
        }
        let per = batch.div_ceil(threads);
        std::thread::scope(|scope| {
            for members in amps.chunks_mut(per * dim) {
                scope.spawn(move || {
                    for member in members.chunks_mut(dim) {
                        self.apply_amps_threaded(member, 1);
                    }
                });
            }
        });
    }

    /// Applies the compiled circuit to `state` in place.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the state width
    /// differs from the circuit's.
    pub fn apply_in_place(&self, state: &mut State) -> Result<(), QsimError> {
        if state.num_qubits() != self.num_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.num_qubits,
                actual: state.num_qubits(),
            });
        }
        self.apply_amps(state.amplitudes_mut());
        Ok(())
    }

    /// Runs the compiled circuit on `input`, returning the output state.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the input width
    /// differs from the circuit's.
    pub fn run(&self, input: &State) -> Result<State, QsimError> {
        let mut state = input.clone();
        self.apply_in_place(&mut state)?;
        Ok(state)
    }
}

fn ordered(x: usize, y: usize) -> (usize, usize) {
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

/// A fused op under construction plus the derivative records of the
/// trainable angles it has absorbed so far.
struct PendingOp {
    op: FusedOp,
    derivs: Vec<SlotDeriv>,
}

/// Fusion state: `ops` uses `None` tombstones for absorbed gates so the
/// `last_touch` indices stay stable during the pass.
///
/// Derivative maintenance follows the product rule. Every fusion step
/// composes `result = NEW · OLD` (the new gate applied after), so
///
/// * existing derivatives of `OLD` become `NEW · D`,
/// * the new gate's own derivatives become `D_new · OLD`
///
/// (captured *before* the matrices update), in whatever embedding the
/// op's current shape requires. When `with_grad` is off every derivative
/// list is empty and all of this is dead weightless iteration.
struct Builder {
    ops: Vec<Option<PendingOp>>,
    last_touch: Vec<Option<usize>>,
    with_grad: bool,
}

impl Builder {
    /// The source gate's `(slot, ∂U/∂θ)` pairs, or nothing when gradient
    /// tracking is off.
    fn gate_derivs(&self, gate: &Gate1, params: &[f64]) -> Vec<(usize, Matrix2)> {
        if self.with_grad {
            gate.slot_derivatives(params)
        } else {
            Vec::new()
        }
    }

    /// Adds a single-qubit gate, fusing into the most recent op touching
    /// `q` when profitable (everything since then commutes past `q`).
    fn push_one(&mut self, m: Matrix2, dm: Vec<(usize, Matrix2)>, q: usize) {
        if let Some(idx) = self.last_touch[q] {
            let PendingOp { op, derivs } =
                self.ops[idx].as_mut().expect("last_touch points at live op");
            match op {
                FusedOp::One { m: prev, .. } => {
                    let prev_old = *prev;
                    *prev = m.matmul(prev);
                    for sd in derivs.iter_mut() {
                        let DerivKind::One(d) = &mut sd.d else {
                            unreachable!("One op carries One derivs");
                        };
                        *d = m.matmul(d);
                    }
                    derivs.extend(dm.into_iter().map(|(slot, d)| SlotDeriv {
                        slot,
                        d: DerivKind::One(d.matmul(&prev_old)),
                    }));
                    return;
                }
                // Target-side absorption keeps the multiplexed form.
                FusedOp::Multiplexed { a0, a1, t, .. } if *t == q => {
                    let (a0_old, a1_old) = (*a0, *a1);
                    *a0 = m.matmul(a0);
                    *a1 = m.matmul(a1);
                    for sd in derivs.iter_mut() {
                        let DerivKind::Multiplexed(e0, e1) = &mut sd.d else {
                            unreachable!("Multiplexed op carries Multiplexed derivs");
                        };
                        *e0 = m.matmul(e0);
                        *e1 = m.matmul(e1);
                    }
                    derivs.extend(dm.into_iter().map(|(slot, d)| SlotDeriv {
                        slot,
                        d: DerivKind::Multiplexed(d.matmul(&a0_old), d.matmul(&a1_old)),
                    }));
                    return;
                }
                // Control-side absorption would densify a 2-multiply op
                // into a 4-multiply one — keep the single separate.
                FusedOp::Multiplexed { .. } => {}
                FusedOp::Two { m: prev, a, b } => {
                    let (a, b) = (*a, *b);
                    let prev_old = *prev;
                    let embedded = FusedOp::embed(&m, q, a, b);
                    *prev = embedded.matmul(prev);
                    for sd in derivs.iter_mut() {
                        let DerivKind::Two(d) = &mut sd.d else {
                            unreachable!("Two op carries Two derivs");
                        };
                        *d = embedded.matmul(d);
                    }
                    derivs.extend(dm.into_iter().map(|(slot, d)| SlotDeriv {
                        slot,
                        d: DerivKind::Two(FusedOp::embed(&d, q, a, b).matmul(&prev_old)),
                    }));
                    return;
                }
            }
        }
        let derivs = dm
            .into_iter()
            .map(|(slot, d)| SlotDeriv {
                slot,
                d: DerivKind::One(d),
            })
            .collect();
        self.place(PendingOp {
            op: FusedOp::One { m, q },
            derivs,
        });
    }

    /// Takes the pending single-qubit op most recently touching `q`, if
    /// that is indeed what `last_touch[q]` points at.
    fn take_pending_single(&mut self, q: usize) -> Option<(Matrix2, Vec<SlotDeriv>)> {
        let idx = self.last_touch[q]?;
        if !matches!(
            self.ops[idx],
            Some(PendingOp {
                op: FusedOp::One { .. },
                ..
            })
        ) {
            return None;
        }
        let taken = self.ops[idx].take().expect("checked live above");
        self.last_touch[q] = None;
        let FusedOp::One { m, .. } = taken.op else {
            unreachable!("matched One above");
        };
        Some((m, taken.derivs))
    }

    /// Adds a controlled gate, absorbing a pending single on its target
    /// and merging with a same-support predecessor.
    fn push_controlled(&mut self, g: Matrix2, dg: Vec<(usize, Matrix2)>, c: usize, t: usize) {
        let mut a0 = Matrix2::identity();
        let mut a1 = g;
        let mut derivs: Vec<SlotDeriv> = dg
            .into_iter()
            .map(|(slot, d)| SlotDeriv {
                slot,
                d: DerivKind::Multiplexed(Matrix2::zero(), d),
            })
            .collect();
        // A pending single on the target commutes forward to just before
        // this gate and folds into both branches.
        if let Some((single, single_derivs)) = self.take_pending_single(t) {
            let (a0_old, a1_old) = (a0, a1);
            a0 = a0.matmul(&single);
            a1 = a1.matmul(&single);
            for sd in derivs.iter_mut() {
                let DerivKind::Multiplexed(e0, e1) = &mut sd.d else {
                    unreachable!("controlled push builds Multiplexed derivs");
                };
                *e0 = e0.matmul(&single);
                *e1 = e1.matmul(&single);
            }
            derivs.extend(single_derivs.into_iter().map(|sd| {
                let DerivKind::One(d) = sd.d else {
                    unreachable!("One op carries One derivs");
                };
                SlotDeriv {
                    slot: sd.slot,
                    d: DerivKind::Multiplexed(a0_old.matmul(&d), a1_old.matmul(&d)),
                }
            }));
        }
        // Merge with the most recent op when it covers exactly this pair.
        if let (Some(ia), Some(ib)) = (self.last_touch[c], self.last_touch[t]) {
            if ia == ib {
                let PendingOp {
                    op,
                    derivs: prev_derivs,
                } = self.ops[ia].as_mut().expect("live op");
                match op {
                    FusedOp::Multiplexed {
                        a0: p0,
                        a1: p1,
                        c: pc,
                        t: pt,
                    } if (*pc, *pt) == (c, t) => {
                        let (p0_old, p1_old) = (*p0, *p1);
                        *p0 = a0.matmul(p0);
                        *p1 = a1.matmul(p1);
                        for sd in prev_derivs.iter_mut() {
                            let DerivKind::Multiplexed(e0, e1) = &mut sd.d else {
                                unreachable!("Multiplexed op carries Multiplexed derivs");
                            };
                            *e0 = a0.matmul(e0);
                            *e1 = a1.matmul(e1);
                        }
                        prev_derivs.extend(derivs.into_iter().map(|sd| {
                            let DerivKind::Multiplexed(d0, d1) = sd.d else {
                                unreachable!("controlled push builds Multiplexed derivs");
                            };
                            SlotDeriv {
                                slot: sd.slot,
                                d: DerivKind::Multiplexed(
                                    d0.matmul(&p0_old),
                                    d1.matmul(&p1_old),
                                ),
                            }
                        }));
                        return;
                    }
                    // Same pair, roles swapped: flops are equal after
                    // densifying (4/amp) but two passes become one.
                    FusedOp::Multiplexed {
                        a0: p0,
                        a1: p1,
                        c: pc,
                        t: pt,
                    } if (*pc, *pt) == (t, c) => {
                        let (pc, pt) = (*pc, *pt);
                        let (prev, lo, hi) = FusedOp::multiplexed_to_dense(p0, p1, pc, pt);
                        let (new, _, _) = FusedOp::multiplexed_to_dense(&a0, &a1, c, t);
                        let mut dense_derivs: Vec<SlotDeriv> = prev_derivs
                            .drain(..)
                            .map(|sd| {
                                let DerivKind::Multiplexed(e0, e1) = sd.d else {
                                    unreachable!("Multiplexed op carries Multiplexed derivs");
                                };
                                let (ed, _, _) =
                                    FusedOp::multiplexed_to_dense(&e0, &e1, pc, pt);
                                SlotDeriv {
                                    slot: sd.slot,
                                    d: DerivKind::Two(new.matmul(&ed)),
                                }
                            })
                            .collect();
                        dense_derivs.extend(derivs.into_iter().map(|sd| {
                            let DerivKind::Multiplexed(d0, d1) = sd.d else {
                                unreachable!("controlled push builds Multiplexed derivs");
                            };
                            let (dd, _, _) = FusedOp::multiplexed_to_dense(&d0, &d1, c, t);
                            SlotDeriv {
                                slot: sd.slot,
                                d: DerivKind::Two(dd.matmul(&prev)),
                            }
                        }));
                        *op = FusedOp::Two {
                            m: new.matmul(&prev),
                            a: lo,
                            b: hi,
                        };
                        *prev_derivs = dense_derivs;
                        return;
                    }
                    FusedOp::Two { m: prev, a, b } if (*a, *b) == ordered(c, t) => {
                        let prev_old = *prev;
                        let (new, _, _) = FusedOp::multiplexed_to_dense(&a0, &a1, c, t);
                        *prev = new.matmul(prev);
                        for sd in prev_derivs.iter_mut() {
                            let DerivKind::Two(d) = &mut sd.d else {
                                unreachable!("Two op carries Two derivs");
                            };
                            *d = new.matmul(d);
                        }
                        prev_derivs.extend(derivs.into_iter().map(|sd| {
                            let DerivKind::Multiplexed(d0, d1) = sd.d else {
                                unreachable!("controlled push builds Multiplexed derivs");
                            };
                            let (dd, _, _) = FusedOp::multiplexed_to_dense(&d0, &d1, c, t);
                            SlotDeriv {
                                slot: sd.slot,
                                d: DerivKind::Two(dd.matmul(&prev_old)),
                            }
                        }));
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.place(PendingOp {
            op: FusedOp::Multiplexed { a0, a1, c, t },
            derivs,
        });
    }

    /// Adds a dense two-qubit gate on `(a, b)`, absorbing pending singles
    /// on either qubit (already dense, so absorption is free) and fusing
    /// with an identical-support predecessor. Only SWAP lowers through
    /// here, so the incoming gate itself carries no derivatives — but the
    /// singles it absorbs and the predecessors it merges with may.
    fn push_dense(&mut self, mut m: Matrix4, a: usize, b: usize) {
        let mut derivs: Vec<SlotDeriv> = Vec::new();
        for q in [a, b] {
            if let Some((single, single_derivs)) = self.take_pending_single(q) {
                let m_old = m;
                let embedded = FusedOp::embed(&single, q, a, b);
                m = m.matmul(&embedded);
                for sd in derivs.iter_mut() {
                    let DerivKind::Two(d) = &mut sd.d else {
                        unreachable!("dense push builds Two derivs");
                    };
                    *d = d.matmul(&embedded);
                }
                derivs.extend(single_derivs.into_iter().map(|sd| {
                    let DerivKind::One(d) = sd.d else {
                        unreachable!("One op carries One derivs");
                    };
                    SlotDeriv {
                        slot: sd.slot,
                        d: DerivKind::Two(m_old.matmul(&FusedOp::embed(&d, q, a, b))),
                    }
                }));
            }
        }
        if let (Some(ia), Some(ib)) = (self.last_touch[a], self.last_touch[b]) {
            if ia == ib {
                let PendingOp {
                    op,
                    derivs: prev_derivs,
                } = self.ops[ia].as_mut().expect("live op");
                match op {
                    FusedOp::Two { m: prev, a: pa, b: pb } if (*pa, *pb) == (a, b) => {
                        let prev_old = *prev;
                        *prev = m.matmul(prev);
                        for sd in prev_derivs.iter_mut() {
                            let DerivKind::Two(d) = &mut sd.d else {
                                unreachable!("Two op carries Two derivs");
                            };
                            *d = m.matmul(d);
                        }
                        prev_derivs.extend(derivs.into_iter().map(|sd| {
                            let DerivKind::Two(d) = sd.d else {
                                unreachable!("dense push builds Two derivs");
                            };
                            SlotDeriv {
                                slot: sd.slot,
                                d: DerivKind::Two(d.matmul(&prev_old)),
                            }
                        }));
                        return;
                    }
                    FusedOp::Multiplexed {
                        a0,
                        a1,
                        c,
                        t,
                    } if ordered(*c, *t) == (a, b) => {
                        let (c, t) = (*c, *t);
                        let (prev, _, _) = FusedOp::multiplexed_to_dense(a0, a1, c, t);
                        let mut dense_derivs: Vec<SlotDeriv> = prev_derivs
                            .drain(..)
                            .map(|sd| {
                                let DerivKind::Multiplexed(e0, e1) = sd.d else {
                                    unreachable!("Multiplexed op carries Multiplexed derivs");
                                };
                                let (ed, _, _) = FusedOp::multiplexed_to_dense(&e0, &e1, c, t);
                                SlotDeriv {
                                    slot: sd.slot,
                                    d: DerivKind::Two(m.matmul(&ed)),
                                }
                            })
                            .collect();
                        dense_derivs.extend(derivs.into_iter().map(|sd| {
                            let DerivKind::Two(d) = sd.d else {
                                unreachable!("dense push builds Two derivs");
                            };
                            SlotDeriv {
                                slot: sd.slot,
                                d: DerivKind::Two(d.matmul(&prev)),
                            }
                        }));
                        *op = FusedOp::Two {
                            m: m.matmul(&prev),
                            a,
                            b,
                        };
                        *prev_derivs = dense_derivs;
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.place(PendingOp {
            op: FusedOp::Two { m, a, b },
            derivs,
        });
    }

    fn place(&mut self, pending: PendingOp) {
        let idx = self.ops.len();
        match pending.op {
            FusedOp::One { q, .. } => self.last_touch[q] = Some(idx),
            FusedOp::Multiplexed { c, t, .. } => {
                self.last_touch[c] = Some(idx);
                self.last_touch[t] = Some(idx);
            }
            FusedOp::Two { a, b, .. } => {
                self.last_touch[a] = Some(idx);
                self.last_touch[b] = Some(idx);
            }
        }
        self.ops.push(Some(pending));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};

    fn assert_states_match(a: &State, b: &State, tol: f64) {
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert!((*x - *y).norm() < tol, "amplitude {i}: {x:?} vs {y:?}");
        }
    }

    fn params_for(c: &Circuit) -> Vec<f64> {
        (0..c.num_slots()).map(|i| (i as f64 * 0.31).sin() * 1.3).collect()
    }

    #[test]
    fn fused_matches_unfused_on_paper_ansatz() {
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        let params = params_for(&c);
        let input = State::from_real_normalized(&vec![1.0; 256]).unwrap();
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &params).unwrap(),
            1e-10,
        );
    }

    #[test]
    fn fusion_halves_op_count_on_u3_cu3_blocks() {
        // 8 qubits × 12 blocks = 192 source ops. Each block's U3 layer
        // folds into ring CU3 targets (as multiplexed ops); only the very
        // first block's U3 on qubit 0 has no absorber: 1 + 96 fused ops.
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        let compiled = CompiledCircuit::compile(&c, &params_for(&c)).unwrap();
        assert_eq!(compiled.num_source_ops(), 192);
        assert_eq!(compiled.num_fused_ops(), 97);
        // And nothing should have densified on this ansatz.
        assert!(compiled
            .ops()
            .iter()
            .all(|op| !matches!(op, FusedOp::Two { .. })));
    }

    #[test]
    fn adjacent_singles_fuse_to_one_op() {
        let mut c = Circuit::new(2);
        c.ry_fixed(0, 0.3).unwrap();
        c.ry_fixed(0, 0.4).unwrap();
        c.ry_fixed(1, -0.2).unwrap();
        c.ry_fixed(0, 0.1).unwrap(); // the qubit-1 gate in between commutes
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 2);
        assert_states_match(
            &compiled.run(&State::zero(2)).unwrap(),
            &c.run(&State::zero(2), &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn repeated_controlled_pairs_fuse() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).unwrap();
        c.h(2).unwrap(); // disjoint, commutes
        c.cx(0, 1).unwrap(); // fuses with the first CX -> identity branches
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 2);
        let input = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn reversed_control_roles_densify_to_one_op() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).unwrap();
        c.cx(1, 0).unwrap();
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 1);
        assert!(matches!(compiled.ops()[0], FusedOp::Two { .. }));
        let input = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn swap_and_reversed_controls_lower_correctly() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap();
        c.swap(0, 2).unwrap();
        c.cx(2, 0).unwrap(); // control above target
        c.cx(0, 2).unwrap(); // control below target
        let params: [f64; 0] = [];
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        let input = State::from_real_normalized(&[0.5, -1.0, 0.25, 2.0, 1.5, -0.5, 0.75, 1.0])
            .unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &params).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn singles_after_multiplexed_target_keep_fusing() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).unwrap();
        c.ry_fixed(1, 0.7).unwrap(); // target side: folds into branches
        c.ry_fixed(0, 0.4).unwrap(); // control side: stays separate
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 2);
        let input = State::from_real_normalized(&[1.0, -2.0, 0.5, 3.0]).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn linear_entanglement_fuses_too() {
        let cfg = AnsatzConfig {
            num_qubits: 5,
            num_blocks: 4,
            entangle: EntangleOrder::Linear,
        };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let params = params_for(&c);
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        assert!(compiled.num_fused_ops() < c.num_ops());
        let input = State::from_real_normalized(&(1..=32).map(f64::from).collect::<Vec<_>>())
            .unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &params).unwrap(),
            1e-10,
        );
    }

    #[test]
    fn compile_validates_params_and_run_validates_width() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        assert!(CompiledCircuit::compile(&c, &[]).is_err());
        let compiled = CompiledCircuit::compile(&c, &[0.4]).unwrap();
        assert!(compiled.run(&State::zero(2)).is_err());
    }
}
