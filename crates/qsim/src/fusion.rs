//! Gate-fusion circuit compilation, split into a parameter-independent
//! **structure compile** and a cheap per-parameter **bind**.
//!
//! Executing a circuit gate-by-gate sweeps the amplitude array once per
//! gate. Most of those sweeps are avoidable: adjacent single-qubit gates
//! on the same qubit compose into one 2×2 matrix, and a single-qubit gate
//! next to a controlled gate's **target** folds into a *multiplexed*
//! (uniformly-controlled) operation — `a0` on the target where the
//! control is 0, `a1` where it is 1 — which still costs only 2 complex
//! multiplies per amplitude. Fully general overlaps fall back to a dense
//! 4×4 [`Matrix4`].
//!
//! Keeping the multiplexed form (instead of eagerly densifying to 4×4)
//! matters: a dense two-qubit gate costs 4 complex multiplies per
//! amplitude, so naive fusion of QuGeo's `U3+CU3` blocks would *increase*
//! arithmetic. The multiplexed form halves the pass count of a block
//! (U3 layer + CU3 ring → one multiplexed ring) at unchanged arithmetic
//! per pass.
//!
//! "Adjacent" is commutation-aware: gates with disjoint supports commute,
//! so a gate may fuse with the *most recent gate touching its qubits*,
//! not merely its literal predecessor. A last-writer index per qubit
//! makes that an `O(ops)` pass.
//!
//! # Structure vs. bind
//!
//! Which gates fuse, into which shape, on which qubits depends only on
//! the circuit's *layout* — never on the angle values. A
//! [`CircuitStructure`] therefore records the fusion plan once: one
//! *recipe* per fused op, listing the source gates (factors) it absorbed
//! in application order. [`CircuitStructure::bind`] then evaluates the
//! recipes at concrete parameters into a [`CompiledCircuit`], and
//! [`CompiledCircuit::rebind`] overwrites the fused matrices in place for
//! new parameters — `O(source gates)` small-matrix work, no re-fusion,
//! no re-layout, and no steady-state allocation. Training loops and
//! serving compile the structure once and re-bind per step.
//!
//! [`CompiledCircuit::compile`] / [`compile_with_grad`] remain as the
//! one-shot conveniences; they are exactly structure-compile + bind, so a
//! re-bound circuit matches a freshly compiled one bit for bit.
//!
//! Optimizer passes ([`crate::passes`]) can rewrite the recipe list
//! between structure compilation and binding
//! ([`CircuitStructure::compile_with_passes`]): merging fixed-angle
//! rotations, cancelling constant identity ops, and widening fusible
//! pairs. Passes change only *how much* work a bind and an amplitude
//! sweep do, never the circuit's unitary.
//!
//! Every bind stamps the result with a globally unique `binding`
//! generation ([`CompiledCircuit::binding`]); consumers that must span
//! one consistent binding across several calls (the adjoint engine's
//! forward/backward pair) record the stamp and fail with
//! [`QsimError::StaleBinding`] instead of silently mixing parameters.
//!
//! [`compile_with_grad`]: CompiledCircuit::compile_with_grad
//!
//! # Gradient-aware compilation
//!
//! [`CompiledCircuit::compile_with_grad`] (and
//! [`CircuitStructure::bind_with_grad`]) additionally record, for every
//! fused op `F = U_m ⋯ U_1`, the derivative of the *fused* matrix with
//! respect to each trainable angle it absorbed:
//! `∂F/∂θ = U_m ⋯ U_{j+1} · ∂U_j/∂θ · U_{j-1} ⋯ U_1`, maintained
//! incrementally by the product rule as factors evaluate. Because fusion
//! only merges gates with a shared support, every such derivative is
//! itself a 2×2, multiplexed-pair, or 4×4 object on the same qubits as
//! its op ([`SlotDeriv`]) — which is what lets the adjoint backward sweep
//! ([`crate::adjoint`]) walk **fused** ops and still emit exact
//! per-slot `2·Re⟨bra|∂U|ket⟩` contributions, without de-fusing. Fusion
//! reorders gates only across disjoint supports, so the fused product
//! equals the source circuit's unitary identically in the parameters and
//! the recorded derivatives are exact.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig};
//! use qugeo_qsim::{CircuitStructure, CompiledCircuit, State};
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let circuit = u3_cu3_ansatz(AnsatzConfig::paper_default())?;
//! let structure = CircuitStructure::compile(&circuit);
//! let params = vec![0.05; circuit.num_slots()];
//! let mut compiled = structure.bind(&params)?;
//! // 192 source gates collapse to ~97 fused ops on the paper's ansatz.
//! assert!(compiled.num_fused_ops() < circuit.num_ops() / 2 + 9);
//!
//! let fused = compiled.run(&State::zero(8))?;
//! let plain = circuit.run(&State::zero(8), &params)?;
//! assert!(fused
//!     .amplitudes()
//!     .iter()
//!     .zip(plain.amplitudes())
//!     .all(|(a, b)| (*a - *b).norm() < 1e-12));
//!
//! // New angles re-bind in place — no re-fusion, and bit-identical to a
//! // fresh compile.
//! let params2 = vec![0.11; circuit.num_slots()];
//! compiled.rebind(&params2)?;
//! assert_eq!(compiled, CompiledCircuit::compile(&circuit, &params2)?);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::circuit::{Circuit, Gate1, Op};
use crate::gates::{Matrix2, Matrix4};
use crate::passes::PassConfig;
use crate::{kernels, Complex64, QsimError, State};

/// Hands out process-unique generation stamps for structures and binds.
/// One shared counter keeps the invariant simple: two stamps are equal
/// only if they came from the very same compile or bind event.
fn next_stamp() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The derivative of one fused op with respect to one absorbed trainable
/// angle. The shape always matches the op's shape: a [`FusedOp::One`]
/// carries [`DerivKind::One`] derivatives, and so on — the adjoint sweep
/// relies on this invariant to apply the derivative on the op's support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DerivKind {
    /// `∂F/∂θ` of a fused single-qubit op (acts on the op's qubit).
    One(Matrix2),
    /// `∂F/∂θ` of a multiplexed op: the control-0 and control-1 branch
    /// derivatives (either may be the zero matrix — e.g. a plain
    /// controlled rotation has no control-0 action).
    Multiplexed(Matrix2, Matrix2),
    /// `∂F/∂θ` of a dense two-qubit op (acts on the op's qubit pair).
    Two(Matrix4),
}

/// One recorded gradient contribution: which parameter slot, and the
/// derivative of the enclosing fused op with respect to this angle
/// occurrence. Several entries may share a slot (shared-slot circuits);
/// their contributions accumulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotDeriv {
    /// Index into the circuit's trainable parameter vector.
    pub slot: usize,
    /// The fused-op derivative for this occurrence.
    pub d: DerivKind,
}

/// One fused operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedOp {
    /// A (possibly composite) single-qubit gate.
    One {
        /// The fused 2×2 unitary.
        m: Matrix2,
        /// Target qubit.
        q: usize,
    },
    /// A multiplexed pair: `a0` acts on `t` where qubit `c` is 0, `a1`
    /// where it is 1. A plain controlled gate is the `a0 = I` case.
    Multiplexed {
        /// Gate applied on the control-0 subspace.
        a0: Matrix2,
        /// Gate applied on the control-1 subspace.
        a1: Matrix2,
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
    /// A dense two-qubit gate on qubits `a < b`, with the [`Matrix4`]
    /// basis convention `index = bit_a + 2·bit_b`.
    Two {
        /// The fused 4×4 unitary.
        m: Matrix4,
        /// Low qubit of the pair.
        a: usize,
        /// High qubit of the pair.
        b: usize,
    },
}

impl FusedOp {
    /// Embeds a 2×2 on `q` into the 4×4 space of the pair `(a, b)`.
    fn embed(m: &Matrix2, q: usize, a: usize, b: usize) -> Matrix4 {
        if q == a {
            Matrix4::single_on_low(m)
        } else {
            debug_assert_eq!(q, b);
            Matrix4::single_on_high(m)
        }
    }

    /// The dense 4×4 of a multiplexed op, with its sorted support.
    fn multiplexed_to_dense(
        a0: &Matrix2,
        a1: &Matrix2,
        c: usize,
        t: usize,
    ) -> (Matrix4, usize, usize) {
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let mut m = Matrix4::zero();
        for (v, g) in [(0usize, a0), (1, a1)] {
            for r in 0..2 {
                for col in 0..2 {
                    // Basis index = bit_lo + 2·bit_hi; the control bit is
                    // pinned to v, the target bit indexes the 2×2 block.
                    let (row_idx, col_idx) = if c == lo {
                        (v + 2 * r, v + 2 * col)
                    } else {
                        (2 * v + r, 2 * v + col)
                    };
                    m.m[row_idx][col_idx] = g.m[r][col];
                }
            }
        }
        (m, lo, hi)
    }
}

pub(crate) fn ordered(x: usize, y: usize) -> (usize, usize) {
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

/// The parameter-independent shape of one fused op: which kernel it will
/// run through and on which qubits. Decided entirely by the circuit
/// layout during structure compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum OpShape {
    /// A fused single-qubit op on `q`.
    One {
        /// Target qubit.
        q: usize,
    },
    /// A multiplexed op with control `c` and target `t`.
    Multiplexed {
        /// Control qubit.
        c: usize,
        /// Target qubit.
        t: usize,
    },
    /// A dense two-qubit op on the sorted pair `a < b`.
    Two {
        /// Low qubit.
        a: usize,
        /// High qubit.
        b: usize,
    },
}

/// One source gate absorbed into a fused op, in application order
/// (index 0 applies first). Binding re-evaluates the factors against a
/// parameter vector; the factor kind together with the recipe's
/// [`OpShape`] determines the embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Factor {
    /// A single-qubit gate on `q`. At [`OpShape::Multiplexed`] this is
    /// always a target-side gate (applied on both branches).
    Single {
        /// The source gate.
        gate: Gate1,
        /// Its qubit.
        q: usize,
    },
    /// A controlled gate. At [`OpShape::Two`] the roles may be reversed
    /// relative to the shape's sorted pair.
    Controlled {
        /// The controlled source gate.
        gate: Gate1,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// A SWAP of the recipe's qubit pair (only occurs at
    /// [`OpShape::Two`]).
    Swap,
}

impl Factor {
    /// `true` when the factor references no trainable slot, so its
    /// matrix is the same under every parameter vector.
    pub(crate) fn is_constant(&self) -> bool {
        match self {
            Factor::Single { gate, .. } | Factor::Controlled { gate, .. } => gate
                .angle_sources()
                .into_iter()
                .all(|s| s.slot().is_none()),
            Factor::Swap => true,
        }
    }
}

/// The recipe for one fused op: its shape plus the source factors it
/// absorbed, in application order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OpRecipe {
    pub(crate) shape: OpShape,
    pub(crate) factors: Vec<Factor>,
}

/// A circuit's parameter-independent fusion plan: which source gates fuse
/// into which ops, on which qubits, in which shape — everything about
/// compilation except the angle values.
///
/// Produced once per circuit layout by [`CircuitStructure::compile`] (or
/// [`CircuitStructure::compile_with_passes`] to run optimizer passes);
/// evaluated at concrete parameters by [`CircuitStructure::bind`] /
/// [`CircuitStructure::bind_with_grad`], and re-evaluated in place by
/// [`CompiledCircuit::rebind`]. Structures are immutable and shared via
/// [`Arc`], so every binding of the same structure points at the same
/// plan.
#[derive(Debug)]
pub struct CircuitStructure {
    id: u64,
    num_qubits: usize,
    num_slots: usize,
    source_ops: usize,
    recipes: Vec<OpRecipe>,
}

impl CircuitStructure {
    /// Computes the fusion plan for `circuit` (no optimizer passes).
    ///
    /// Infallible: the circuit validated its qubits and slots at
    /// construction, and no angle values are involved yet.
    pub fn compile(circuit: &Circuit) -> Arc<Self> {
        Self::from_recipes(circuit, build_recipes(circuit))
    }

    /// [`CircuitStructure::compile`], then runs the optimizer passes
    /// enabled in `config` ([`crate::passes`]) over the fusion plan.
    pub fn compile_with_passes(circuit: &Circuit, config: &PassConfig) -> Arc<Self> {
        let mut recipes = build_recipes(circuit);
        crate::passes::run_pipeline(config, circuit.num_qubits(), &mut recipes);
        Self::from_recipes(circuit, recipes)
    }

    pub(crate) fn from_recipes(circuit: &Circuit, recipes: Vec<OpRecipe>) -> Arc<Self> {
        Arc::new(Self {
            id: next_stamp(),
            num_qubits: circuit.num_qubits(),
            num_slots: circuit.num_slots(),
            source_ops: circuit.num_ops(),
            recipes,
        })
    }

    /// Process-unique identity of this structure (two separately compiled
    /// structures never share an id, even for identical circuits).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Trainable slots of the source circuit.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Op count of the source circuit.
    pub fn num_source_ops(&self) -> usize {
        self.source_ops
    }

    /// Number of fused ops a binding of this structure will hold.
    pub fn num_ops(&self) -> usize {
        self.recipes.len()
    }

    /// Total source factors across all fused ops — the amount of
    /// small-matrix work one bind performs. Optimizer passes may shrink
    /// this below the source op count.
    pub fn num_factors(&self) -> usize {
        self.recipes.iter().map(|r| r.factors.len()).sum()
    }

    fn check_params(&self, params: &[f64]) -> Result<(), QsimError> {
        if params.len() != self.num_slots {
            return Err(QsimError::ParamCountMismatch {
                expected: self.num_slots,
                actual: params.len(),
            });
        }
        Ok(())
    }

    /// Evaluates the fusion plan at `params` into an executable
    /// [`CompiledCircuit`] (no gradient metadata).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the source circuit's slot count.
    pub fn bind(self: &Arc<Self>, params: &[f64]) -> Result<CompiledCircuit, QsimError> {
        self.bind_impl(params, false)
    }

    /// [`CircuitStructure::bind`] plus per-op derivative records
    /// ([`SlotDeriv`]) for the adjoint backward sweep.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the source circuit's slot count.
    pub fn bind_with_grad(self: &Arc<Self>, params: &[f64]) -> Result<CompiledCircuit, QsimError> {
        self.bind_impl(params, true)
    }

    fn bind_impl(self: &Arc<Self>, params: &[f64], with_grad: bool) -> Result<CompiledCircuit, QsimError> {
        self.check_params(params)?;
        let mut ops = Vec::with_capacity(self.recipes.len());
        let mut derivs: Vec<Vec<SlotDeriv>> = if with_grad {
            Vec::with_capacity(self.recipes.len())
        } else {
            Vec::new()
        };
        for recipe in &self.recipes {
            if with_grad {
                let mut dv = Vec::new();
                ops.push(eval_recipe(recipe, params, Some(&mut dv)));
                derivs.push(dv);
            } else {
                ops.push(eval_recipe(recipe, params, None));
            }
        }
        Ok(CompiledCircuit {
            structure: Arc::clone(self),
            binding: next_stamp(),
            ops,
            derivs,
            grad_ready: with_grad,
        })
    }
}

/// A circuit lowered to fused operations for fixed parameters: a
/// [`CircuitStructure`] evaluated at one parameter vector.
///
/// Produced by [`CircuitStructure::bind`] or the one-shot
/// [`CompiledCircuit::compile`]; executed with [`CompiledCircuit::run`],
/// [`CompiledCircuit::apply_in_place`], or — for whole batches at once —
/// [`crate::batch::BatchedState`]. Re-bound to new parameters in place
/// with [`CompiledCircuit::rebind`].
///
/// Equality (`==`) compares the bound numerical content (fused matrices,
/// derivative records, and dimensions), **not** the structure identity or
/// the bind generation stamp — so two independent compilations of the
/// same circuit at the same parameters compare equal, as does a re-bound
/// circuit against a fresh compile.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    structure: Arc<CircuitStructure>,
    /// Process-unique generation stamp of the most recent bind.
    binding: u64,
    ops: Vec<FusedOp>,
    /// Per-fused-op derivative records; parallel to `ops` when bound
    /// with gradients, empty otherwise.
    derivs: Vec<Vec<SlotDeriv>>,
    grad_ready: bool,
}

impl PartialEq for CompiledCircuit {
    fn eq(&self, other: &Self) -> bool {
        // Deliberately excludes `structure.id` and `binding`: those are
        // event stamps, not content.
        self.num_qubits() == other.num_qubits()
            && self.num_slots() == other.num_slots()
            && self.num_source_ops() == other.num_source_ops()
            && self.grad_ready == other.grad_ready
            && self.ops == other.ops
            && self.derivs == other.derivs
    }
}

impl CompiledCircuit {
    /// Lowers `circuit` at the given parameter values, fusing mergeable
    /// gates. Exactly [`CircuitStructure::compile`] followed by
    /// [`CircuitStructure::bind`] — callers that evaluate the same
    /// circuit at many parameter vectors should hold the structure (or a
    /// bound circuit) and re-bind instead.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the circuit's slot count.
    pub fn compile(circuit: &Circuit, params: &[f64]) -> Result<Self, QsimError> {
        CircuitStructure::compile(circuit).bind(params)
    }

    /// [`CompiledCircuit::compile`] plus gradient metadata: every fused op
    /// records the derivative of its fused matrix with respect to each
    /// trainable angle it absorbed ([`SlotDeriv`]), enabling the fused
    /// adjoint backward sweep ([`crate::adjoint`]). Costs a handful of
    /// extra small matrix products per parameterised gate at bind time;
    /// forward execution is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the circuit's slot count.
    pub fn compile_with_grad(circuit: &Circuit, params: &[f64]) -> Result<Self, QsimError> {
        CircuitStructure::compile(circuit).bind_with_grad(params)
    }

    /// Re-evaluates this circuit's fusion plan at new parameter values,
    /// overwriting the fused matrices (and derivative records, when bound
    /// with gradients) in place. No re-fusion, no re-layout, and no
    /// steady-state allocation: the op buffer is rewritten index by index
    /// and each derivative list's capacity is reused.
    ///
    /// The circuit receives a fresh [`CompiledCircuit::binding`] stamp;
    /// consumers holding the old stamp observe
    /// [`QsimError::StaleBinding`] instead of mixed-parameter results.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] if `params` disagrees
    /// with the source circuit's slot count (the binding is untouched on
    /// error).
    pub fn rebind(&mut self, params: &[f64]) -> Result<(), QsimError> {
        self.structure.check_params(params)?;
        let structure = Arc::clone(&self.structure);
        for (i, recipe) in structure.recipes.iter().enumerate() {
            if self.grad_ready {
                let dv = &mut self.derivs[i];
                dv.clear();
                self.ops[i] = eval_recipe(recipe, params, Some(dv));
            } else {
                self.ops[i] = eval_recipe(recipe, params, None);
            }
        }
        self.binding = next_stamp();
        Ok(())
    }

    /// The shared fusion plan this binding evaluates.
    pub fn structure(&self) -> &Arc<CircuitStructure> {
        &self.structure
    }

    /// Process-unique generation stamp of the most recent bind; changes
    /// on every [`CompiledCircuit::rebind`]. Two compiled circuits carry
    /// the same stamp only if one is a clone of the other taken between
    /// binds.
    pub fn binding(&self) -> u64 {
        self.binding
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.structure.num_qubits
    }

    /// Trainable slots of the circuit this was compiled from.
    pub fn num_slots(&self) -> usize {
        self.structure.num_slots
    }

    /// Fused operation count (≤ the source op count).
    pub fn num_fused_ops(&self) -> usize {
        self.ops.len()
    }

    /// Op count of the circuit this was compiled from.
    pub fn num_source_ops(&self) -> usize {
        self.structure.source_ops
    }

    /// The fused operations in execution order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// `true` when this binding carries derivative metadata
    /// ([`CompiledCircuit::compile_with_grad`] /
    /// [`CircuitStructure::bind_with_grad`]) and can drive an adjoint
    /// backward sweep.
    pub fn has_gradients(&self) -> bool {
        self.grad_ready
    }

    /// The derivative records of fused op `idx` (empty when bound
    /// without gradients, or when the op absorbed no trainable angle).
    pub fn op_derivs(&self, idx: usize) -> &[SlotDeriv] {
        if self.grad_ready {
            &self.derivs[idx]
        } else {
            &[]
        }
    }

    /// Applies the compiled circuit to a raw amplitude slice holding one
    /// or more contiguous statevector blocks of `self.num_qubits()`
    /// qubits (the batched execution entry point), using the default
    /// kernel thread count.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `amps.len()` is not a multiple of the block
    /// size.
    pub(crate) fn apply_amps(&self, amps: &mut [Complex64]) {
        self.apply_amps_threaded(amps, kernels::simulation_threads());
    }

    /// Applies the compiled circuit to a raw amplitude slice with an
    /// explicit kernel thread budget (the execution-backend entry point).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `amps.len()` is not a multiple of the block
    /// size.
    pub(crate) fn apply_amps_threaded(&self, amps: &mut [Complex64], threads: usize) {
        debug_assert_eq!(amps.len() % (1usize << self.num_qubits()), 0);
        for op in &self.ops {
            match op {
                FusedOp::One { m, q } => kernels::apply_one(amps, m, *q, threads),
                FusedOp::Multiplexed { a0, a1, c, t } => {
                    kernels::apply_multiplexed(amps, a0, a1, *c, *t, threads)
                }
                FusedOp::Two { m, a, b } => kernels::apply_two(amps, m, *a, *b, threads),
            }
        }
    }

    /// Largest member dimension still executed circuit-major when this
    /// circuit sweeps a multi-member amplitude array. A `2^14` member is
    /// 256 KiB of amplitudes — around the point where running a whole
    /// circuit over one member stops fitting in per-core cache and
    /// gate-major whole-array sweeps (which parallelise within a gate)
    /// win instead.
    ///
    /// Measured crossover (Xeon @2.1 GHz, AVX-512, `kernel_throughput`,
    /// 2026-08): at 10 qubits × batch 16 the batched tile sweep runs the
    /// paper ansatz 1.46× faster than 16 per-sample `run` calls, despite
    /// the transpose in/out of member-major layout (~100 µs of the
    /// ~600 µs sweep). The edge comes from the tile's unit-stride lanes
    /// plus L1 chunk-blocking (`tile::x86::CHUNK_AMPS`), not from
    /// threading — 16 × 2^10 amplitudes stays under the serial threshold
    /// [`crate::kernels::PARALLEL_MIN_AMPS`]. Members of `2^14` amps put
    /// a 4-member tile at 2 MiB (full L2), which is where the tile's
    /// working-set advantage dies and gate-major threading takes over.
    pub(crate) const CIRCUIT_MAJOR_MAX_DIM: usize = 1 << 14;

    /// Applies the compiled circuit to every `2^n`-amplitude member block
    /// of `amps`, adapting the execution order to the member size: small
    /// members run *circuit-major* (each worker keeps one member hot in
    /// cache through the whole gate sequence), large members (or a batch
    /// of one) run *gate-major* with chunk-parallel kernels. Shared by
    /// [`crate::BatchedState`] and the adjoint workspace so the forward
    /// paths can never diverge.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `amps.len()` is not a multiple of the block
    /// size.
    pub(crate) fn apply_members_threaded(&self, amps: &mut [Complex64], threads: usize) {
        let dim = 1usize << self.num_qubits();
        debug_assert_eq!(amps.len() % dim, 0);
        let batch = amps.len() / dim;
        if dim > Self::CIRCUIT_MAJOR_MAX_DIM || batch <= 1 {
            self.apply_amps_threaded(amps, threads);
            return;
        }
        let threads = threads.min(batch);
        // Spawning workers for a sweep smaller than the kernels' own
        // parallel threshold costs more than it saves.
        if threads <= 1 || amps.len() < kernels::PARALLEL_MIN_AMPS {
            self.apply_members_serial(amps, dim);
            return;
        }
        let per = batch.div_ceil(threads);
        std::thread::scope(|scope| {
            for members in amps.chunks_mut(per * dim) {
                scope.spawn(move || {
                    self.apply_members_serial(members, dim);
                });
            }
        });
    }

    /// Circuit-major sweep of one worker's member range: groups of four
    /// members go through the batch-major SIMD tile
    /// ([`kernels::tile::apply_members`] — zero members when the SIMD
    /// tier is off), the remainder through the per-member kernels.
    fn apply_members_serial(&self, amps: &mut [Complex64], dim: usize) {
        let done = kernels::tile::apply_members(&self.ops, amps, dim);
        for member in amps[done * dim..].chunks_mut(dim) {
            self.apply_amps_threaded(member, 1);
        }
    }

    /// Applies the compiled circuit to `state` in place.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the state width
    /// differs from the circuit's.
    pub fn apply_in_place(&self, state: &mut State) -> Result<(), QsimError> {
        if state.num_qubits() != self.num_qubits() {
            return Err(QsimError::QubitCountMismatch {
                expected: self.num_qubits(),
                actual: state.num_qubits(),
            });
        }
        self.apply_amps(state.amplitudes_mut());
        Ok(())
    }

    /// Runs the compiled circuit on `input`, returning the output state.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the input width
    /// differs from the circuit's.
    pub fn run(&self, input: &State) -> Result<State, QsimError> {
        let mut state = input.clone();
        self.apply_in_place(&mut state)?;
        Ok(state)
    }
}

/// Computes the fusion plan: which source ops merge into which recipes.
/// This mirrors the matrix-level fusion rules exactly, but records the
/// factor list instead of multiplying matrices — the branch decisions
/// depend only on shapes and qubits, never on angle values, which is
/// what makes the plan parameter-independent.
pub(crate) fn build_recipes(circuit: &Circuit) -> Vec<OpRecipe> {
    let mut b = StructBuilder {
        // One tombstone-able slot per source op, compacted at the end.
        recipes: Vec::with_capacity(circuit.num_ops()),
        last_touch: vec![None; circuit.num_qubits()],
    };
    for op in circuit.ops() {
        match *op {
            Op::Single { gate, qubit } => b.push_single(gate, qubit),
            Op::Controlled {
                gate,
                control,
                target,
            } => b.push_controlled(gate, control, target),
            Op::Swap { a, b: y } => b.push_swap(a, y),
        }
    }
    b.recipes.into_iter().flatten().collect()
}

/// Fusion state: `recipes` uses `None` tombstones for absorbed gates so
/// the `last_touch` indices stay stable during the pass.
struct StructBuilder {
    recipes: Vec<Option<OpRecipe>>,
    last_touch: Vec<Option<usize>>,
}

impl StructBuilder {
    /// Adds a single-qubit gate, fusing into the most recent op touching
    /// `q` when profitable (everything since then commutes past `q`).
    fn push_single(&mut self, gate: Gate1, q: usize) {
        if let Some(idx) = self.last_touch[q] {
            let recipe = self.recipes[idx]
                .as_mut()
                .expect("last_touch points at live recipe");
            match recipe.shape {
                OpShape::One { .. } => {
                    recipe.factors.push(Factor::Single { gate, q });
                    return;
                }
                // Target-side absorption keeps the multiplexed form.
                OpShape::Multiplexed { t, .. } if t == q => {
                    recipe.factors.push(Factor::Single { gate, q });
                    return;
                }
                // Control-side absorption would densify a 2-multiply op
                // into a 4-multiply one — keep the single separate.
                OpShape::Multiplexed { .. } => {}
                OpShape::Two { .. } => {
                    recipe.factors.push(Factor::Single { gate, q });
                    return;
                }
            }
        }
        self.place(OpRecipe {
            shape: OpShape::One { q },
            factors: vec![Factor::Single { gate, q }],
        });
    }

    /// Takes the pending single-qubit recipe most recently touching `q`,
    /// if that is indeed what `last_touch[q]` points at.
    fn take_pending_single(&mut self, q: usize) -> Option<Vec<Factor>> {
        let idx = self.last_touch[q]?;
        if !matches!(
            self.recipes[idx],
            Some(OpRecipe {
                shape: OpShape::One { .. },
                ..
            })
        ) {
            return None;
        }
        let taken = self.recipes[idx].take().expect("checked live above");
        self.last_touch[q] = None;
        Some(taken.factors)
    }

    /// Adds a controlled gate, absorbing a pending single on its target
    /// and merging with a same-support predecessor.
    fn push_controlled(&mut self, gate: Gate1, control: usize, target: usize) {
        // A pending single on the target commutes forward to just before
        // this gate and folds into both branches.
        let mut factors = self.take_pending_single(target).unwrap_or_default();
        factors.push(Factor::Controlled {
            gate,
            control,
            target,
        });
        // Merge with the most recent op when it covers exactly this pair.
        if let (Some(ia), Some(ib)) = (self.last_touch[control], self.last_touch[target]) {
            if ia == ib {
                let recipe = self.recipes[ia].as_mut().expect("live recipe");
                match recipe.shape {
                    OpShape::Multiplexed { c, t } if (c, t) == (control, target) => {
                        recipe.factors.append(&mut factors);
                        return;
                    }
                    // Same pair, roles swapped: flops are equal after
                    // densifying (4/amp) but two passes become one.
                    OpShape::Multiplexed { c, t } if (c, t) == (target, control) => {
                        let (a, b) = ordered(control, target);
                        recipe.shape = OpShape::Two { a, b };
                        recipe.factors.append(&mut factors);
                        return;
                    }
                    OpShape::Two { a, b } if (a, b) == ordered(control, target) => {
                        recipe.factors.append(&mut factors);
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.place(OpRecipe {
            shape: OpShape::Multiplexed {
                c: control,
                t: target,
            },
            factors,
        });
    }

    /// Adds a SWAP on `(x, y)`, absorbing pending singles on either qubit
    /// (the shape is already dense, so absorption is free) and fusing
    /// with an identical-support predecessor.
    fn push_swap(&mut self, x: usize, y: usize) {
        let (a, b) = ordered(x, y);
        let mut factors: Vec<Factor> = Vec::new();
        for q in [a, b] {
            if let Some(taken) = self.take_pending_single(q) {
                factors.extend(taken);
            }
        }
        factors.push(Factor::Swap);
        if let (Some(ia), Some(ib)) = (self.last_touch[a], self.last_touch[b]) {
            if ia == ib {
                let recipe = self.recipes[ia].as_mut().expect("live recipe");
                match recipe.shape {
                    OpShape::Two { a: pa, b: pb } if (pa, pb) == (a, b) => {
                        recipe.factors.append(&mut factors);
                        return;
                    }
                    OpShape::Multiplexed { c, t } if ordered(c, t) == (a, b) => {
                        recipe.shape = OpShape::Two { a, b };
                        recipe.factors.append(&mut factors);
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.place(OpRecipe {
            shape: OpShape::Two { a, b },
            factors,
        });
    }

    fn place(&mut self, recipe: OpRecipe) {
        let idx = self.recipes.len();
        match recipe.shape {
            OpShape::One { q } => self.last_touch[q] = Some(idx),
            OpShape::Multiplexed { c, t } => {
                self.last_touch[c] = Some(idx);
                self.last_touch[t] = Some(idx);
            }
            OpShape::Two { a, b } => {
                self.last_touch[a] = Some(idx);
                self.last_touch[b] = Some(idx);
            }
        }
        self.recipes.push(Some(recipe));
    }
}

/// Evaluates one recipe at `params` into its fused op, optionally
/// accumulating [`SlotDeriv`] records into `derivs`.
///
/// Derivative maintenance follows the product rule. Every factor
/// composes `result = NEW · OLD` (the factor applies after the
/// accumulator), so
///
/// * existing derivatives of `OLD` become `NEW · D`,
/// * the factor's own derivatives become `D_new · OLD`
///
/// (pushed *before* the accumulator updates), in whatever embedding the
/// recipe's shape requires.
pub(crate) fn eval_recipe(
    recipe: &OpRecipe,
    params: &[f64],
    derivs: Option<&mut Vec<SlotDeriv>>,
) -> FusedOp {
    match recipe.shape {
        OpShape::One { q } => eval_one(&recipe.factors, q, params, derivs),
        OpShape::Multiplexed { c, t } => eval_multiplexed(&recipe.factors, c, t, params, derivs),
        OpShape::Two { a, b } => eval_two(&recipe.factors, a, b, params, derivs),
    }
}

fn eval_one(
    factors: &[Factor],
    q: usize,
    params: &[f64],
    mut derivs: Option<&mut Vec<SlotDeriv>>,
) -> FusedOp {
    let mut acc = Matrix2::identity();
    for factor in factors {
        let Factor::Single { gate, .. } = factor else {
            unreachable!("One-shaped recipes hold only single-qubit factors");
        };
        match derivs.as_deref_mut() {
            Some(dv) => {
                let start = dv.len();
                let g = gate.matrix_with_slot_derivs(params, &mut |slot, dg| {
                    dv.push(SlotDeriv {
                        slot,
                        d: DerivKind::One(dg.matmul(&acc)),
                    });
                });
                for sd in &mut dv[..start] {
                    let DerivKind::One(d) = &mut sd.d else {
                        unreachable!("One op carries One derivs");
                    };
                    *d = g.matmul(d);
                }
                acc = g.matmul(&acc);
            }
            None => acc = gate.matrix(params).matmul(&acc),
        }
    }
    FusedOp::One { m: acc, q }
}

fn eval_multiplexed(
    factors: &[Factor],
    c: usize,
    t: usize,
    params: &[f64],
    mut derivs: Option<&mut Vec<SlotDeriv>>,
) -> FusedOp {
    let mut a0 = Matrix2::identity();
    let mut a1 = Matrix2::identity();
    for factor in factors {
        match *factor {
            Factor::Single { gate, q } => {
                debug_assert_eq!(q, t, "multiplexed recipes absorb singles on the target only");
                match derivs.as_deref_mut() {
                    Some(dv) => {
                        let start = dv.len();
                        let g = gate.matrix_with_slot_derivs(params, &mut |slot, dg| {
                            dv.push(SlotDeriv {
                                slot,
                                d: DerivKind::Multiplexed(dg.matmul(&a0), dg.matmul(&a1)),
                            });
                        });
                        for sd in &mut dv[..start] {
                            let DerivKind::Multiplexed(e0, e1) = &mut sd.d else {
                                unreachable!("Multiplexed op carries Multiplexed derivs");
                            };
                            *e0 = g.matmul(e0);
                            *e1 = g.matmul(e1);
                        }
                        a0 = g.matmul(&a0);
                        a1 = g.matmul(&a1);
                    }
                    None => {
                        let g = gate.matrix(params);
                        a0 = g.matmul(&a0);
                        a1 = g.matmul(&a1);
                    }
                }
            }
            Factor::Controlled { gate, control, target } => {
                debug_assert_eq!(
                    (control, target),
                    (c, t),
                    "reversed-role controlled factors force the Two shape"
                );
                match derivs.as_deref_mut() {
                    Some(dv) => {
                        let start = dv.len();
                        // The control-0 branch of a controlled gate is the
                        // identity: `a0` is untouched and the new
                        // derivative's control-0 component is zero.
                        let g = gate.matrix_with_slot_derivs(params, &mut |slot, dg| {
                            dv.push(SlotDeriv {
                                slot,
                                d: DerivKind::Multiplexed(Matrix2::zero(), dg.matmul(&a1)),
                            });
                        });
                        for sd in &mut dv[..start] {
                            let DerivKind::Multiplexed(_, e1) = &mut sd.d else {
                                unreachable!("Multiplexed op carries Multiplexed derivs");
                            };
                            *e1 = g.matmul(e1);
                        }
                        a1 = g.matmul(&a1);
                    }
                    None => a1 = gate.matrix(params).matmul(&a1),
                }
            }
            Factor::Swap => unreachable!("swap factors only occur at Two shape"),
        }
    }
    FusedOp::Multiplexed { a0, a1, c, t }
}

fn eval_two(
    factors: &[Factor],
    a: usize,
    b: usize,
    params: &[f64],
    mut derivs: Option<&mut Vec<SlotDeriv>>,
) -> FusedOp {
    let mut acc = Matrix4::identity();
    for factor in factors {
        match *factor {
            Factor::Single { gate, q } => match derivs.as_deref_mut() {
                Some(dv) => {
                    let start = dv.len();
                    let g = gate.matrix_with_slot_derivs(params, &mut |slot, dg| {
                        dv.push(SlotDeriv {
                            slot,
                            d: DerivKind::Two(FusedOp::embed(&dg, q, a, b).matmul(&acc)),
                        });
                    });
                    let f = FusedOp::embed(&g, q, a, b);
                    for sd in &mut dv[..start] {
                        let DerivKind::Two(d) = &mut sd.d else {
                            unreachable!("Two op carries Two derivs");
                        };
                        *d = f.matmul(d);
                    }
                    acc = f.matmul(&acc);
                }
                None => {
                    let f = FusedOp::embed(&gate.matrix(params), q, a, b);
                    acc = f.matmul(&acc);
                }
            },
            Factor::Controlled { gate, control, target } => match derivs.as_deref_mut() {
                Some(dv) => {
                    let start = dv.len();
                    let g = gate.matrix_with_slot_derivs(params, &mut |slot, dg| {
                        let zero = Matrix2::zero();
                        let (dd, _, _) =
                            FusedOp::multiplexed_to_dense(&zero, &dg, control, target);
                        dv.push(SlotDeriv {
                            slot,
                            d: DerivKind::Two(dd.matmul(&acc)),
                        });
                    });
                    let id = Matrix2::identity();
                    let (f, _, _) = FusedOp::multiplexed_to_dense(&id, &g, control, target);
                    for sd in &mut dv[..start] {
                        let DerivKind::Two(d) = &mut sd.d else {
                            unreachable!("Two op carries Two derivs");
                        };
                        *d = f.matmul(d);
                    }
                    acc = f.matmul(&acc);
                }
                None => {
                    let id = Matrix2::identity();
                    let (f, _, _) = FusedOp::multiplexed_to_dense(
                        &id,
                        &gate.matrix(params),
                        control,
                        target,
                    );
                    acc = f.matmul(&acc);
                }
            },
            Factor::Swap => {
                let f = Matrix4::swap();
                if let Some(dv) = derivs.as_deref_mut() {
                    for sd in dv.iter_mut() {
                        let DerivKind::Two(d) = &mut sd.d else {
                            unreachable!("Two op carries Two derivs");
                        };
                        *d = f.matmul(d);
                    }
                }
                acc = f.matmul(&acc);
            }
        }
    }
    FusedOp::Two { m: acc, a, b }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};

    fn assert_states_match(a: &State, b: &State, tol: f64) {
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert!((*x - *y).norm() < tol, "amplitude {i}: {x:?} vs {y:?}");
        }
    }

    fn params_for(c: &Circuit) -> Vec<f64> {
        (0..c.num_slots()).map(|i| (i as f64 * 0.31).sin() * 1.3).collect()
    }

    #[test]
    fn fused_matches_unfused_on_paper_ansatz() {
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        let params = params_for(&c);
        let input = State::from_real_normalized(&vec![1.0; 256]).unwrap();
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &params).unwrap(),
            1e-10,
        );
    }

    #[test]
    fn fusion_halves_op_count_on_u3_cu3_blocks() {
        // 8 qubits × 12 blocks = 192 source ops. Each block's U3 layer
        // folds into ring CU3 targets (as multiplexed ops); only the very
        // first block's U3 on qubit 0 has no absorber: 1 + 96 fused ops.
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        let compiled = CompiledCircuit::compile(&c, &params_for(&c)).unwrap();
        assert_eq!(compiled.num_source_ops(), 192);
        assert_eq!(compiled.num_fused_ops(), 97);
        // And nothing should have densified on this ansatz.
        assert!(compiled
            .ops()
            .iter()
            .all(|op| !matches!(op, FusedOp::Two { .. })));
    }

    #[test]
    fn adjacent_singles_fuse_to_one_op() {
        let mut c = Circuit::new(2);
        c.ry_fixed(0, 0.3).unwrap();
        c.ry_fixed(0, 0.4).unwrap();
        c.ry_fixed(1, -0.2).unwrap();
        c.ry_fixed(0, 0.1).unwrap(); // the qubit-1 gate in between commutes
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 2);
        assert_states_match(
            &compiled.run(&State::zero(2)).unwrap(),
            &c.run(&State::zero(2), &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn repeated_controlled_pairs_fuse() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).unwrap();
        c.h(2).unwrap(); // disjoint, commutes
        c.cx(0, 1).unwrap(); // fuses with the first CX -> identity branches
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 2);
        let input = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn reversed_control_roles_densify_to_one_op() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).unwrap();
        c.cx(1, 0).unwrap();
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 1);
        assert!(matches!(compiled.ops()[0], FusedOp::Two { .. }));
        let input = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn swap_and_reversed_controls_lower_correctly() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap();
        c.swap(0, 2).unwrap();
        c.cx(2, 0).unwrap(); // control above target
        c.cx(0, 2).unwrap(); // control below target
        let params: [f64; 0] = [];
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        let input = State::from_real_normalized(&[0.5, -1.0, 0.25, 2.0, 1.5, -0.5, 0.75, 1.0])
            .unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &params).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn singles_after_multiplexed_target_keep_fusing() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).unwrap();
        c.ry_fixed(1, 0.7).unwrap(); // target side: folds into branches
        c.ry_fixed(0, 0.4).unwrap(); // control side: stays separate
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        assert_eq!(compiled.num_fused_ops(), 2);
        let input = State::from_real_normalized(&[1.0, -2.0, 0.5, 3.0]).unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &[]).unwrap(),
            1e-12,
        );
    }

    #[test]
    fn linear_entanglement_fuses_too() {
        let cfg = AnsatzConfig {
            num_qubits: 5,
            num_blocks: 4,
            entangle: EntangleOrder::Linear,
        };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let params = params_for(&c);
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        assert!(compiled.num_fused_ops() < c.num_ops());
        let input = State::from_real_normalized(&(1..=32).map(f64::from).collect::<Vec<_>>())
            .unwrap();
        assert_states_match(
            &compiled.run(&input).unwrap(),
            &c.run(&input, &params).unwrap(),
            1e-10,
        );
    }

    #[test]
    fn compile_validates_params_and_run_validates_width() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        assert!(CompiledCircuit::compile(&c, &[]).is_err());
        let compiled = CompiledCircuit::compile(&c, &[0.4]).unwrap();
        assert!(compiled.run(&State::zero(2)).is_err());
    }

    /// A circuit exercising every fusion branch: shared slots, U3/CU3,
    /// reversed control roles (densified), a SWAP, and leftovers.
    fn adversarial_circuit() -> (Circuit, Vec<f64>) {
        let mut c = Circuit::new(3);
        let s0 = c.alloc_slots(3);
        let shared = c.alloc_slot();
        c.h(0).unwrap();
        c.u3_slots(1, s0).unwrap();
        c.ry_slot(0, shared).unwrap();
        c.ry_slot(2, shared).unwrap();
        c.cu3_slots(0, 2, s0).unwrap();
        c.cu3_slots(2, 0, s0).unwrap();
        c.swap(1, 2).unwrap();
        c.ry_slot(1, shared).unwrap();
        c.cx(0, 1).unwrap();
        (c, vec![0.7, -0.2, 1.1, 0.45])
    }

    #[test]
    fn rebind_matches_fresh_compile_bitwise() {
        let (c, params) = adversarial_circuit();
        let mut compiled = CompiledCircuit::compile_with_grad(&c, &params).unwrap();
        let params2: Vec<f64> = params.iter().map(|p| p * -0.6 + 0.11).collect();
        compiled.rebind(&params2).unwrap();
        let fresh = CompiledCircuit::compile_with_grad(&c, &params2).unwrap();
        assert_eq!(compiled, fresh);
        // Same for plain (gradient-free) bindings, and after re-binding
        // back to the original parameters.
        let mut plain = CompiledCircuit::compile(&c, &params).unwrap();
        plain.rebind(&params2).unwrap();
        plain.rebind(&params).unwrap();
        assert_eq!(plain, CompiledCircuit::compile(&c, &params).unwrap());
    }

    #[test]
    fn rebind_reuses_structure_and_restamps() {
        let (c, params) = adversarial_circuit();
        let structure = CircuitStructure::compile(&c);
        let mut compiled = structure.bind_with_grad(&params).unwrap();
        let stamp0 = compiled.binding();
        assert!(Arc::ptr_eq(compiled.structure(), &structure));
        compiled.rebind(&params).unwrap();
        assert!(Arc::ptr_eq(compiled.structure(), &structure));
        assert_ne!(compiled.binding(), stamp0, "every rebind gets a fresh stamp");
        // A failed rebind leaves the binding untouched.
        let stamp1 = compiled.binding();
        assert!(matches!(
            compiled.rebind(&[0.0]),
            Err(QsimError::ParamCountMismatch { .. })
        ));
        assert_eq!(compiled.binding(), stamp1);
    }

    #[test]
    fn equality_ignores_stamps_but_sees_values() {
        let (c, params) = adversarial_circuit();
        let a = CompiledCircuit::compile_with_grad(&c, &params).unwrap();
        let b = CompiledCircuit::compile_with_grad(&c, &params).unwrap();
        assert_ne!(a.binding(), b.binding());
        assert_ne!(a.structure().id(), b.structure().id());
        assert_eq!(a, b);
        let params2: Vec<f64> = params.iter().map(|p| p + 0.01).collect();
        let d = CompiledCircuit::compile_with_grad(&c, &params2).unwrap();
        assert_ne!(a, d);
        // Gradient metadata is content too.
        let plain = CompiledCircuit::compile(&c, &params).unwrap();
        assert_ne!(a, plain);
    }

    #[test]
    fn structure_bind_validates_params() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        let structure = CircuitStructure::compile(&c);
        assert_eq!(structure.num_slots(), 1);
        assert_eq!(structure.num_ops(), 1);
        assert_eq!(structure.num_factors(), 1);
        assert!(matches!(
            structure.bind(&[]),
            Err(QsimError::ParamCountMismatch { .. })
        ));
        assert!(structure.bind(&[0.3]).is_ok());
    }

    #[test]
    fn structure_counts_match_compiled_counts_on_paper_ansatz() {
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        let structure = CircuitStructure::compile(&c);
        assert_eq!(structure.num_ops(), 97);
        assert_eq!(structure.num_source_ops(), 192);
        assert_eq!(structure.num_factors(), 192); // every source gate is a factor
        let compiled = structure.bind(&params_for(&c)).unwrap();
        assert_eq!(compiled.num_fused_ops(), structure.num_ops());
    }

    #[test]
    fn grad_binding_matches_serial_adjoint_after_rebind() {
        use crate::DiagonalObservable;
        let (c, params) = adversarial_circuit();
        let params2: Vec<f64> = params.iter().map(|p| p * 0.8 - 0.2).collect();
        let obs = DiagonalObservable::z(3, 1).unwrap();
        let input = State::from_real_normalized(&[1.0, -0.5, 0.25, 2.0, 0.75, -1.5, 0.5, 1.0])
            .unwrap();
        let mut compiled = CompiledCircuit::compile_with_grad(&c, &params).unwrap();
        compiled.rebind(&params2).unwrap();
        let (_, reference) =
            crate::adjoint_gradient(&c, &params2, &input, &obs).unwrap();
        // Walk fused ops forward, then check each op's derivative records
        // against the fresh compile (already bit-identical by
        // rebind_matches_fresh_compile_bitwise) and the serial reference
        // via the batch engine in adjoint.rs tests; here assert the
        // re-bound derivative metadata is present and well-shaped.
        assert!(compiled.has_gradients());
        let total_derivs: usize = (0..compiled.num_fused_ops())
            .map(|i| compiled.op_derivs(i).len())
            .sum();
        assert_eq!(total_derivs, c.num_trainable_refs());
        assert_eq!(reference.len(), c.num_slots());
    }
}
