//! NISQ noise modelling: stochastic Pauli channels and readout error.
//!
//! The paper positions QuGeoVQC as "key to achieving practical usage of
//! near-term noisy quantum computers". This module lets every experiment
//! be re-run under a device-like noise model without leaving the
//! statevector representation: noise channels are unravelled into random
//! Pauli insertions (Monte-Carlo trajectories), and measurement error is
//! applied to readout distributions directly.
//!
//! * [`NoiseModel`] — per-gate depolarizing probabilities (one- and
//!   two-qubit) plus a symmetric readout bit-flip probability.
//! * [`NoisyExecutor`] — runs a [`Circuit`] as an ensemble of noisy
//!   trajectories and averages basis-state probabilities.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::noise::{NoiseModel, NoisyExecutor};
//! use qugeo_qsim::{Circuit, State};
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let mut circuit = Circuit::new(1);
//! circuit.h(0)?;
//! let noise = NoiseModel::uniform_depolarizing(0.01)?;
//! let executor = NoisyExecutor::new(noise, 64, 7);
//! let probs = executor.probabilities(&circuit, &State::zero(1), &[])?;
//! assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::{Circuit, Op};
use crate::{Matrix2, QsimError, State};

/// A simple device noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after every single-qubit gate.
    pub single_qubit_depolarizing: f64,
    /// Depolarizing probability (per involved qubit) after every
    /// two-qubit gate.
    pub two_qubit_depolarizing: f64,
    /// Probability that a measured bit is reported flipped.
    pub readout_flip: f64,
}

impl NoiseModel {
    /// A noiseless model (all probabilities zero).
    pub fn noiseless() -> Self {
        Self {
            single_qubit_depolarizing: 0.0,
            two_qubit_depolarizing: 0.0,
            readout_flip: 0.0,
        }
    }

    /// Uniform depolarizing noise: `p` after single-qubit gates, `2p`
    /// after two-qubit gates (the usual hardware ratio), no readout
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] unless `0 ≤ p ≤ 0.5`.
    pub fn uniform_depolarizing(p: f64) -> Result<Self, QsimError> {
        if !(0.0..=0.5).contains(&p) {
            return Err(QsimError::InvalidEncoding {
                reason: format!("depolarizing probability {p} outside [0, 0.5]"),
            });
        }
        Ok(Self {
            single_qubit_depolarizing: p,
            two_qubit_depolarizing: (2.0 * p).min(0.5),
            readout_flip: 0.0,
        })
    }

    /// Adds a symmetric readout flip probability.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] unless `0 ≤ p ≤ 0.5`.
    pub fn with_readout_flip(mut self, p: f64) -> Result<Self, QsimError> {
        if !(0.0..=0.5).contains(&p) {
            return Err(QsimError::InvalidEncoding {
                reason: format!("readout flip probability {p} outside [0, 0.5]"),
            });
        }
        self.readout_flip = p;
        Ok(self)
    }

    /// `true` when every probability is zero.
    pub fn is_noiseless(&self) -> bool {
        self.single_qubit_depolarizing == 0.0
            && self.two_qubit_depolarizing == 0.0
            && self.readout_flip == 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::noiseless()
    }
}

/// Monte-Carlo executor of circuits under a [`NoiseModel`].
///
/// Each trajectory applies the ideal gate sequence, inserting a uniformly
/// random Pauli (X, Y or Z) on the affected qubit(s) with the channel's
/// probability after each gate — the standard stochastic unravelling of
/// the depolarizing channel. Output probabilities are averaged over
/// trajectories and then passed through the readout-error map.
#[derive(Debug, Clone)]
pub struct NoisyExecutor {
    noise: NoiseModel,
    trajectories: usize,
    seed: u64,
}

impl NoisyExecutor {
    /// Creates an executor averaging over `trajectories` runs.
    pub fn new(noise: NoiseModel, trajectories: usize, seed: u64) -> Self {
        Self {
            noise,
            trajectories: trajectories.max(1),
            seed,
        }
    }

    /// The noise model in use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Number of Monte-Carlo trajectories.
    pub fn trajectories(&self) -> usize {
        self.trajectories
    }

    /// Noisy basis-state probabilities of the circuit output.
    ///
    /// For a noiseless model this collapses to one ideal execution.
    ///
    /// # Errors
    ///
    /// Propagates circuit validation errors.
    pub fn probabilities(
        &self,
        circuit: &Circuit,
        input: &State,
        params: &[f64],
    ) -> Result<Vec<f64>, QsimError> {
        circuit.check_params(params)?;
        if input.num_qubits() != circuit.num_qubits() {
            return Err(QsimError::QubitCountMismatch {
                expected: circuit.num_qubits(),
                actual: input.num_qubits(),
            });
        }
        if self.noise.is_noiseless() {
            let out = circuit.run(input, params)?;
            return Ok(out.probabilities());
        }

        let dim = 1usize << circuit.num_qubits();
        let mut acc = vec![0.0; dim];
        for t in 0..self.trajectories {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(t as u64));
            let mut state = input.clone();
            for op in circuit.ops() {
                Circuit::apply_op(op, &mut state, params, false);
                self.insert_pauli_noise(op, &mut state, &mut rng);
            }
            for (a, p) in acc.iter_mut().zip(state.probabilities()) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trajectories as f64;
        for a in &mut acc {
            *a *= inv;
        }
        Ok(self.apply_readout_error(&acc, circuit.num_qubits()))
    }

    /// Noisy per-qubit ⟨Z⟩ expectations.
    ///
    /// # Errors
    ///
    /// Propagates circuit validation errors.
    pub fn z_expectations(
        &self,
        circuit: &Circuit,
        input: &State,
        params: &[f64],
    ) -> Result<Vec<f64>, QsimError> {
        let probs = self.probabilities(circuit, input, params)?;
        let n = circuit.num_qubits();
        Ok((0..n)
            .map(|q| {
                let mask = 1usize << q;
                probs
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| if i & mask == 0 { p } else { -p })
                    .sum()
            })
            .collect())
    }

    fn insert_pauli_noise(&self, op: &Op, state: &mut State, rng: &mut StdRng) {
        let (qubits, p): (Vec<usize>, f64) = match op {
            Op::Single { qubit, .. } => (vec![*qubit], self.noise.single_qubit_depolarizing),
            Op::Controlled {
                control, target, ..
            } => (
                vec![*control, *target],
                self.noise.two_qubit_depolarizing,
            ),
            Op::Swap { a, b } => (vec![*a, *b], self.noise.two_qubit_depolarizing),
        };
        if p == 0.0 {
            return;
        }
        for q in qubits {
            if rng.gen::<f64>() < p {
                let pauli = match rng.gen_range(0..3) {
                    0 => Matrix2::x(),
                    1 => Matrix2::y(),
                    _ => Matrix2::z(),
                };
                state.apply_single(&pauli, q);
            }
        }
    }

    /// Applies the symmetric readout-flip map to a probability vector:
    /// each measured bit independently flips with probability `r`.
    fn apply_readout_error(&self, probs: &[f64], num_qubits: usize) -> Vec<f64> {
        apply_readout_flip(probs, num_qubits, self.noise.readout_flip)
    }
}

/// Applies the symmetric readout-error map to a probability vector: each
/// measured bit independently flips with probability `r`. Shared by
/// [`NoisyExecutor`] and the noisy execution backend
/// ([`crate::backend::NoisyBackend`]).
pub fn apply_readout_flip(probs: &[f64], num_qubits: usize, r: f64) -> Vec<f64> {
    if r == 0.0 {
        return probs.to_vec();
    }
    // Apply the single-bit confusion matrix qubit by qubit:
    // p'(b) = (1-r)·p(b) + r·p(b with bit q flipped).
    let mut current = probs.to_vec();
    let mut next = vec![0.0; probs.len()];
    for q in 0..num_qubits {
        let mask = 1usize << q;
        for (i, n) in next.iter_mut().enumerate() {
            *n = (1.0 - r) * current[i] + r * current[i ^ mask];
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

/// Draws `shots` measurement outcomes from a probability vector,
/// returning per-basis-state counts — finite-shot statistics for
/// hardware-faithful evaluation.
///
/// Sampling builds the cumulative distribution once and binary-searches
/// it per shot (`O(dim + shots · log dim)`), so wide registers — e.g. a
/// QuBatch-packed register whose one shot budget is shared by a whole
/// request batch — cost barely more per shot than narrow ones. One RNG
/// draw is consumed per shot.
///
/// # Errors
///
/// Returns [`QsimError::InvalidStateLength`] if `probs` is empty, or
/// [`QsimError::InvalidEncoding`] if probabilities are negative or do not
/// sum to ~1.
pub fn sample_counts(probs: &[f64], shots: usize, seed: u64) -> Result<Vec<usize>, QsimError> {
    if probs.is_empty() {
        return Err(QsimError::InvalidStateLength { len: 0 });
    }
    let total: f64 = probs.iter().sum();
    if probs.iter().any(|&p| p < -1e-12) || (total - 1.0).abs() > 1e-6 {
        return Err(QsimError::InvalidEncoding {
            reason: format!("probabilities must be non-negative and sum to 1 (sum {total})"),
        });
    }
    // Inclusive prefix sums: cdf[i] = p_0 + … + p_i. A shot landing at
    // u ∈ [0, total) selects the first i with u < cdf[i], which matches
    // the subtract-and-scan selection this function used to make.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in probs {
        acc += p;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; probs.len()];
    for _ in 0..shots {
        let u: f64 = rng.gen::<f64>() * total;
        // partition_point returns the first index whose cdf entry is
        // > u; rounding at the top end can only land past the final
        // entry, which the old scan also mapped to the last state.
        let chosen = cdf.partition_point(|&c| c <= u).min(probs.len() - 1);
        counts[chosen] += 1;
    }
    Ok(counts)
}

/// Converts sampled counts into an empirical probability vector.
///
/// # Panics
///
/// Panics if `counts` is empty or all zero.
pub fn empirical_probabilities(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    assert!(total > 0, "need at least one shot");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).expect("valid");
        c.cx(0, 1).expect("valid");
        c
    }

    #[test]
    fn noiseless_model_matches_ideal_run() {
        let c = bell_circuit();
        let exec = NoisyExecutor::new(NoiseModel::noiseless(), 10, 1);
        let probs = exec.probabilities(&c, &State::zero(2), &[]).unwrap();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_model_validation() {
        assert!(NoiseModel::uniform_depolarizing(-0.1).is_err());
        assert!(NoiseModel::uniform_depolarizing(0.6).is_err());
        assert!(NoiseModel::noiseless().with_readout_flip(0.7).is_err());
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(!NoiseModel::uniform_depolarizing(0.01).unwrap().is_noiseless());
    }

    #[test]
    fn probabilities_stay_normalised_under_noise() {
        let c = bell_circuit();
        let noise = NoiseModel::uniform_depolarizing(0.05)
            .unwrap()
            .with_readout_flip(0.02)
            .unwrap();
        let exec = NoisyExecutor::new(noise, 32, 3);
        let probs = exec.probabilities(&c, &State::zero(2), &[]).unwrap();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn noise_degrades_bell_correlations() {
        // Ideal Bell state: P(01) = P(10) = 0. Depolarizing noise leaks
        // probability into those outcomes.
        let c = bell_circuit();
        let noise = NoiseModel::uniform_depolarizing(0.15).unwrap();
        let exec = NoisyExecutor::new(noise, 256, 9);
        let probs = exec.probabilities(&c, &State::zero(2), &[]).unwrap();
        let leakage = probs[1] + probs[2];
        assert!(leakage > 0.01, "noise should leak probability, got {leakage}");
        // But the ideal outcomes still dominate at this noise level.
        assert!(probs[0] + probs[3] > leakage);
    }

    #[test]
    fn more_noise_means_more_degradation() {
        let c = bell_circuit();
        let leak = |p: f64| {
            let noise = NoiseModel::uniform_depolarizing(p).unwrap();
            let exec = NoisyExecutor::new(noise, 256, 11);
            let probs = exec.probabilities(&c, &State::zero(2), &[]).unwrap();
            probs[1] + probs[2]
        };
        assert!(leak(0.02) < leak(0.2));
    }

    #[test]
    fn readout_error_mixes_towards_uniform() {
        // Deterministic |0>: readout flip r gives P(1) = r on one qubit.
        let mut c = Circuit::new(1);
        c.x(0).unwrap(); // |1>
        let noise = NoiseModel::noiseless().with_readout_flip(0.1).unwrap();
        let exec = NoisyExecutor::new(noise, 1, 0);
        let probs = exec.probabilities(&c, &State::zero(1), &[]).unwrap();
        assert!((probs[0] - 0.1).abs() < 1e-9);
        assert!((probs[1] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn z_expectations_shrink_under_readout_error() {
        let mut c = Circuit::new(1);
        c.x(0).unwrap();
        let ideal = NoisyExecutor::new(NoiseModel::noiseless(), 1, 0);
        let noisy = NoisyExecutor::new(
            NoiseModel::noiseless().with_readout_flip(0.25).unwrap(),
            1,
            0,
        );
        let zi = ideal.z_expectations(&c, &State::zero(1), &[]).unwrap()[0];
        let zn = noisy.z_expectations(&c, &State::zero(1), &[]).unwrap()[0];
        assert!((zi + 1.0).abs() < 1e-12);
        // E[Z] scales by (1 - 2r) = 0.5.
        assert!((zn + 0.5).abs() < 1e-9, "got {zn}");
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let c = bell_circuit();
        let noise = NoiseModel::uniform_depolarizing(0.1).unwrap();
        let a = NoisyExecutor::new(noise, 16, 5)
            .probabilities(&c, &State::zero(2), &[])
            .unwrap();
        let b = NoisyExecutor::new(noise, 16, 5)
            .probabilities(&c, &State::zero(2), &[])
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_concentrates_with_shots() {
        let probs = vec![0.25, 0.75];
        let counts = sample_counts(&probs, 10_000, 42).unwrap();
        let freq1 = counts[1] as f64 / 10_000.0;
        assert!((freq1 - 0.75).abs() < 0.03, "empirical {freq1}");
        let emp = empirical_probabilities(&counts);
        assert!((emp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_validates_input() {
        assert!(sample_counts(&[], 10, 0).is_err());
        assert!(sample_counts(&[0.5, 0.2], 10, 0).is_err()); // sums to 0.7
        assert!(sample_counts(&[-0.1, 1.1], 10, 0).is_err());
    }

    #[test]
    fn sampling_handles_point_masses_and_zero_tails() {
        // All mass on one interior state: every shot must land there,
        // including shots whose uniform draw rounds to the CDF boundary.
        let counts = sample_counts(&[0.0, 1.0, 0.0, 0.0], 1_000, 7).unwrap();
        assert_eq!(counts, vec![0, 1_000, 0, 0]);
        // A zero-probability head never absorbs shots.
        let counts = sample_counts(&[0.0, 0.5, 0.5], 5_000, 8).unwrap();
        assert_eq!(counts[0], 0);
        assert_eq!(counts.iter().sum::<usize>(), 5_000);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn empirical_probabilities_needs_shots() {
        let _ = empirical_probabilities(&[0, 0]);
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let c = bell_circuit();
        let exec = NoisyExecutor::new(NoiseModel::noiseless(), 1, 0);
        assert!(exec.probabilities(&c, &State::zero(3), &[]).is_err());
        assert!(exec.probabilities(&c, &State::zero(2), &[0.1]).is_err());
    }
}
