//! Low-level gate-application kernels over raw amplitude slices.
//!
//! Everything that touches amplitudes funnels through here: [`crate::State`]
//! for single statevectors and [`crate::batch::BatchedState`] for
//! contiguously-stored batches. Two properties distinguish these kernels
//! from a textbook implementation:
//!
//! * **Branch-free index enumeration.** Instead of scanning all `2^n`
//!   basis indices and testing bit masks (the obvious loop, which
//!   mispredicts on every other index), each kernel iterates directly
//!   over the `2^n / 2` pairs (or `2^n / 4` quads) it updates, expanding
//!   a dense counter into a basis index with shift/mask bit insertion.
//! * **Chunked data-parallelism.** Above [`PARALLEL_MIN_AMPS`] amplitudes
//!   the pair/quad index space is split into contiguous chunks executed
//!   on scoped threads ([`std::thread::scope`] — the offline build has no
//!   `rayon`). Distinct pair/quad indices touch disjoint amplitude sets,
//!   so the split is race-free. Below the threshold (or on single-core
//!   hosts) the serial loop runs unchanged: thread spawn costs more than
//!   a small statevector sweep.
//!
//! Every kernel takes an explicit `threads` argument so execution
//! backends ([`crate::backend::BackendConfig`]) can own their thread
//! budget. Callers without a configured count use
//! [`simulation_threads`]: [`std::thread::available_parallelism`],
//! overridable (e.g. pinned to 1 for timing experiments) with the
//! `QUGEO_SIM_THREADS` environment variable.
//!
//! # SIMD dispatch
//!
//! Each kernel is a thin dispatcher over two tiers:
//!
//! * **avx2** — explicit AVX2/FMA lane kernels ([`simd`]) processing two
//!   complex amplitudes per 256-bit register, selected at runtime when
//!   the CPU reports `avx2` *and* `fma`.
//! * **scalar** — the original branch-free loops (`*_scalar`), always
//!   available and bit-identical to the pre-SIMD engine.
//!
//! The tier is resolved once per process; `QUGEO_SIMD=off` (also `0` or
//! `scalar`) pins the scalar tier for A/B testing, and
//! [`set_simd_enabled`] offers the same switch programmatically for
//! in-process benchmarking. On top of the lane kernels, [`tile`] provides
//! batch-major cache-blocked sweeps for [`crate::BatchedState`]-shaped
//! workloads (several members per register, one broadcast-FMA stream per
//! fused gate); where the CPU additionally reports `avx512f`, the
//! forward tile widens from four members per 256-bit register to eight
//! per 512-bit register (`QUGEO_SIMD=avx2` pins the narrower tile).

use std::sync::OnceLock;

pub(crate) mod simd;
pub(crate) mod tile;

use crate::gates::{Matrix2, Matrix4};
use crate::Complex64;

/// The kernel dispatch tier currently in effect: `"avx512"` when the
/// AVX2/FMA kernels are active *and* the 512-bit batched tile is enabled
/// (`avx512f` detected, not pinned down by `QUGEO_SIMD=avx2`), `"avx2"`
/// for the 256-bit kernels alone, `"scalar"` otherwise (unsupported CPU,
/// `QUGEO_SIMD=off`, or [`set_simd_enabled`]`(false)`).
///
/// Benchmark tooling records this next to its series so numbers are
/// attributable to a specific kernel tier.
pub fn simd_feature_level() -> &'static str {
    simd::level_name()
}

/// Programmatically pins (`false`) or releases (`true`) the scalar kernel
/// tier. `set_simd_enabled(true)` never enables more than the environment
/// allows: it only clears a previous `set_simd_enabled(false)`, and the
/// resolved tier still honours `QUGEO_SIMD=off` and the CPU feature
/// detection. Intended for in-process A/B measurement (scalar vs SIMD in
/// one benchmark run); production code should leave the dispatch alone.
pub fn set_simd_enabled(enabled: bool) {
    simd::set_enabled(enabled)
}

/// Minimum amplitude count before kernels fan out to threads. `2^15`
/// amplitudes ≈ 512 KiB of complex data — below that, spawn overhead
/// dominates any speedup.
///
/// Measured (Xeon @2.1 GHz, `kernel_throughput` 10q × 12 blocks ×
/// batch 16, 2026-08): the whole benchmark batch is 16 × 2^10 = 2^14
/// amplitudes, so it takes the serial branch — and on that branch the
/// AVX-512 tile sweep already delivers 4.7× over scalar per-sample
/// execution. Sweeps this size are FMA-port-bound, not memory-bound;
/// scoped-thread spawn/join (tens of µs) would eat most of a ~600 µs
/// sweep. The threshold only pays off once a single member (or the
/// flattened batch) is ≥ 512 KiB and a gate sweep streams from L2/LLC.
pub const PARALLEL_MIN_AMPS: usize = 1 << 15;

/// The default worker-thread count: the `QUGEO_SIM_THREADS` environment
/// variable when set, otherwise [`std::thread::available_parallelism`]
/// (cached). Execution backends may override this per instance via
/// [`crate::backend::BackendConfig::threads`].
pub fn simulation_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("QUGEO_SIM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Expands a dense counter `k` into a basis index with a zero bit
/// inserted at position `pos`.
#[inline(always)]
fn insert_zero_bit(k: usize, pos: usize) -> usize {
    let low = (1usize << pos) - 1;
    ((k & !low) << 1) | (k & low)
}

/// Raw pointer that may cross thread boundaries. Safety is established at
/// each use site: parallel loops partition the pair/quad index space into
/// disjoint ranges, and distinct indices address disjoint amplitudes.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Runs `work(range)` over `0..total` split into contiguous chunks on at
/// most `threads` scoped worker threads, or inline when `total` is small
/// or only one thread is allowed.
fn for_each_chunk(
    total: usize,
    amps_len: usize,
    threads: usize,
    work: impl Fn(std::ops::Range<usize>) + Sync,
) {
    if threads <= 1 || amps_len < PARALLEL_MIN_AMPS || total < threads {
        work(0..total);
        return;
    }
    let chunk = total.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(total);
            if lo >= hi {
                break;
            }
            let work = &work;
            scope.spawn(move || work(lo..hi));
        }
    });
}

/// Applies a 2×2 gate to qubit `q` of every statevector block in `amps`.
///
/// `amps` may hold one statevector or `B` concatenated ones, as long as
/// `q` addresses bits *within* a block and `amps.len()` is a multiple of
/// the block size — pair enumeration is oblivious to block boundaries.
///
/// # Panics
///
/// Panics (debug) if `amps.len()` is not a multiple of `2^(q+1)`.
pub(crate) fn apply_one(amps: &mut [Complex64], g: &Matrix2, q: usize, threads: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: the avx2 tier is only resolved on CPUs reporting
        // AVX2 and FMA.
        unsafe { simd::avx2::apply_one(amps, g, q, threads) };
        return;
    }
    apply_one_scalar(amps, g, q, threads)
}

/// Scalar tier of [`apply_one`] — the original branch-free loop.
pub(crate) fn apply_one_scalar(amps: &mut [Complex64], g: &Matrix2, q: usize, threads: usize) {
    debug_assert_eq!(amps.len() % (1 << (q + 1)), 0);
    let mask = 1usize << q;
    let [[m00, m01], [m10, m11]] = g.m;
    let pairs = amps.len() / 2;
    let ptr = SendPtr(amps.as_mut_ptr());
    for_each_chunk(pairs, amps.len(), threads, move |range| {
        let ptr = ptr;
        for k in range {
            let i = insert_zero_bit(k, q);
            let j = i | mask;
            // SAFETY: i != j, and distinct k map to distinct {i, j} sets;
            // chunk ranges are disjoint, so no two threads alias.
            unsafe {
                let a0 = *ptr.0.add(i);
                let a1 = *ptr.0.add(j);
                *ptr.0.add(i) = m00 * a0 + m01 * a1;
                *ptr.0.add(j) = m10 * a0 + m11 * a1;
            }
        }
    });
}

/// Applies a 4×4 gate to the qubit pair `(a, b)`, `a < b`, of every
/// statevector block in `amps`. Basis ordering within a quad follows
/// [`Matrix4`]: index `bit_a + 2·bit_b`.
///
/// # Panics
///
/// Panics (debug) if `a >= b` or `amps.len()` is not a multiple of
/// `2^(b+1)`.
pub(crate) fn apply_two(amps: &mut [Complex64], g: &Matrix4, a: usize, b: usize, threads: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        unsafe { simd::avx2::apply_two(amps, g, a, b, threads) };
        return;
    }
    apply_two_scalar(amps, g, a, b, threads)
}

/// Scalar tier of [`apply_two`].
pub(crate) fn apply_two_scalar(
    amps: &mut [Complex64],
    g: &Matrix4,
    a: usize,
    b: usize,
    threads: usize,
) {
    debug_assert!(a < b);
    debug_assert_eq!(amps.len() % (1 << (b + 1)), 0);
    let ma = 1usize << a;
    let mb = 1usize << b;
    let m = g.m;
    let quads = amps.len() / 4;
    let ptr = SendPtr(amps.as_mut_ptr());
    for_each_chunk(quads, amps.len(), threads, move |range| {
        let ptr = ptr;
        for k in range {
            let i00 = insert_zero_bit(insert_zero_bit(k, a), b);
            let i01 = i00 | ma;
            let i10 = i00 | mb;
            let i11 = i00 | ma | mb;
            // SAFETY: the four indices are distinct and the quad sets of
            // distinct k are disjoint; chunk ranges are disjoint.
            unsafe {
                let v0 = *ptr.0.add(i00);
                let v1 = *ptr.0.add(i01);
                let v2 = *ptr.0.add(i10);
                let v3 = *ptr.0.add(i11);
                *ptr.0.add(i00) = m[0][0] * v0 + m[0][1] * v1 + m[0][2] * v2 + m[0][3] * v3;
                *ptr.0.add(i01) = m[1][0] * v0 + m[1][1] * v1 + m[1][2] * v2 + m[1][3] * v3;
                *ptr.0.add(i10) = m[2][0] * v0 + m[2][1] * v1 + m[2][2] * v2 + m[2][3] * v3;
                *ptr.0.add(i11) = m[3][0] * v0 + m[3][1] * v1 + m[3][2] * v2 + m[3][3] * v3;
            }
        }
    });
}

/// Applies a controlled 2×2 gate (control `c`, target `t`), visiting only
/// the `2^n / 4` basis pairs with the control bit set — the sparse
/// structure a dense 4×4 embedding would throw away.
///
/// # Panics
///
/// Panics (debug) if `c == t` or the slice is not a multiple of the
/// enclosing block size.
pub(crate) fn apply_controlled(
    amps: &mut [Complex64],
    g: &Matrix2,
    c: usize,
    t: usize,
    threads: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        unsafe { simd::avx2::apply_controlled(amps, g, c, t, threads) };
        return;
    }
    apply_controlled_scalar(amps, g, c, t, threads)
}

/// Scalar tier of [`apply_controlled`].
pub(crate) fn apply_controlled_scalar(
    amps: &mut [Complex64],
    g: &Matrix2,
    c: usize,
    t: usize,
    threads: usize,
) {
    debug_assert_ne!(c, t);
    let (lo, hi) = if c < t { (c, t) } else { (t, c) };
    debug_assert_eq!(amps.len() % (1 << (hi + 1)), 0);
    let cmask = 1usize << c;
    let tmask = 1usize << t;
    let [[m00, m01], [m10, m11]] = g.m;
    let quads = amps.len() / 4;
    let ptr = SendPtr(amps.as_mut_ptr());
    for_each_chunk(quads, amps.len(), threads, move |range| {
        let ptr = ptr;
        for k in range {
            // Control bit forced to 1, target bit 0.
            let i = insert_zero_bit(insert_zero_bit(k, lo), hi) | cmask;
            let j = i | tmask;
            // SAFETY: disjoint pairs per k, disjoint chunk ranges.
            unsafe {
                let a0 = *ptr.0.add(i);
                let a1 = *ptr.0.add(j);
                *ptr.0.add(i) = m00 * a0 + m01 * a1;
                *ptr.0.add(j) = m10 * a0 + m11 * a1;
            }
        }
    });
}

/// Applies a multiplexed (uniformly-controlled) pair of 2×2 gates:
/// `a0` on `t` where bit `c` is 0, `a1` where it is 1. This preserves the
/// sparsity fusion would otherwise destroy — a controlled gate with an
/// absorbed target-side single costs 2 complex multiplies per amplitude
/// here versus 4 for a dense 4×4 embedding.
///
/// When `a0` is exactly the identity this degrades to the plain
/// controlled kernel (half the amplitudes untouched).
///
/// # Panics
///
/// Panics (debug) if `c == t` or the slice is not a multiple of the
/// enclosing block size.
pub(crate) fn apply_multiplexed(
    amps: &mut [Complex64],
    a0: &Matrix2,
    a1: &Matrix2,
    c: usize,
    t: usize,
    threads: usize,
) {
    if *a0 == Matrix2::identity() {
        apply_controlled(amps, a1, c, t, threads);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        unsafe { simd::avx2::apply_multiplexed(amps, a0, a1, c, t, threads) };
        return;
    }
    apply_multiplexed_scalar(amps, a0, a1, c, t, threads)
}

/// Scalar tier of [`apply_multiplexed`] (assumes the identity-`a0`
/// degradation was already handled by the dispatcher).
pub(crate) fn apply_multiplexed_scalar(
    amps: &mut [Complex64],
    a0: &Matrix2,
    a1: &Matrix2,
    c: usize,
    t: usize,
    threads: usize,
) {
    debug_assert_ne!(c, t);
    let (lo, hi) = if c < t { (c, t) } else { (t, c) };
    debug_assert_eq!(amps.len() % (1 << (hi + 1)), 0);
    let cmask = 1usize << c;
    let tmask = 1usize << t;
    let [[z00, z01], [z10, z11]] = a0.m;
    let [[o00, o01], [o10, o11]] = a1.m;
    let quads = amps.len() / 4;
    let ptr = SendPtr(amps.as_mut_ptr());
    for_each_chunk(quads, amps.len(), threads, move |range| {
        let ptr = ptr;
        for k in range {
            let base = insert_zero_bit(insert_zero_bit(k, lo), hi);
            let i0 = base;
            let j0 = base | tmask;
            let i1 = base | cmask;
            let j1 = i1 | tmask;
            // SAFETY: the four indices are distinct; quad sets of distinct
            // k are disjoint; chunk ranges are disjoint.
            unsafe {
                let x0 = *ptr.0.add(i0);
                let x1 = *ptr.0.add(j0);
                *ptr.0.add(i0) = z00 * x0 + z01 * x1;
                *ptr.0.add(j0) = z10 * x0 + z11 * x1;
                let y0 = *ptr.0.add(i1);
                let y1 = *ptr.0.add(j1);
                *ptr.0.add(i1) = o00 * y0 + o01 * y1;
                *ptr.0.add(j1) = o10 * y0 + o11 * y1;
            }
        }
    });
}

/// Fixed partial-sum granularity for [`reduce_chunks`]. The chunk size is
/// a constant — never derived from the thread count — so the grouping of
/// floating-point partial sums, and therefore the bit-exact result, is a
/// function of `total` alone. Any thread count (including 1) produces the
/// same chunk partials and the same left-to-right final accumulation.
const REDUCE_CHUNK: usize = 1 << 12;

/// Sums `work(range)` over `0..total`, splitting the range into
/// fixed-size [`REDUCE_CHUNK`] chunks whose partial sums are accumulated
/// left-to-right in chunk order. Threads only pick up disjoint slot
/// ranges of the partial-sum table, so the reduction order — and the
/// bit-exact floating-point result — is invariant under the thread
/// count. The reduction analogue of [`for_each_chunk`].
fn reduce_chunks<const N: usize>(
    total: usize,
    amps_len: usize,
    threads: usize,
    work: impl Fn(std::ops::Range<usize>) -> [Complex64; N] + Sync,
) -> [Complex64; N] {
    if amps_len < PARALLEL_MIN_AMPS || total <= REDUCE_CHUNK {
        return work(0..total);
    }
    let chunks = total.div_ceil(REDUCE_CHUNK);
    let mut partials = vec![[Complex64::ZERO; N]; chunks];
    let slot_range = |slot: usize| {
        let lo = slot * REDUCE_CHUNK;
        lo..(lo + REDUCE_CHUNK).min(total)
    };
    if threads <= 1 {
        for (slot, part) in partials.iter_mut().enumerate() {
            *part = work(slot_range(slot));
        }
    } else {
        let per = chunks.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slots) in partials.chunks_mut(per).enumerate() {
                let work = &work;
                let slot_range = &slot_range;
                scope.spawn(move || {
                    for (k, part) in slots.iter_mut().enumerate() {
                        *part = work(slot_range(t * per + k));
                    }
                });
            }
        });
    }
    let mut acc = [Complex64::ZERO; N];
    for part in &partials {
        for (a, p) in acc.iter_mut().zip(part) {
            *a += *p;
        }
    }
    acc
}

// ---- Adjoint backward-step kernels -----------------------------------------
//
// One fused op's entire backward step in a single pass: `ket := G† ket`,
// `bra := G† bra`, plus the *reduction matrix* `R[x][y] = Σ k'_x·conj(b_y)`
// accumulated over all pairs/quads (with `b` read BEFORE its update, as
// the adjoint method requires). Every recorded derivative `D` of the op
// then contributes `⟨bra|D|ket⟩ = Σ_{r,c} D[r][c]·R[c][r]` in O(1) —
// independent of both the state size and the number of trainable angles
// the op absorbed. This is what turns the adjoint backward sweep from
// one array pass per *angle* (720 on the paper ansatz) into one array
// pass per *fused op* (~121).

/// Backward step for a fused single-qubit op: applies the (already
/// daggered) `g` to `ket` and `bra` on qubit `q` and returns the 2×2
/// reduction matrix over all pairs.
pub(crate) fn backward_step_one(
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    g: &Matrix2,
    q: usize,
    threads: usize,
) -> Matrix2 {
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        return unsafe { simd::avx2::backward_step_one(ket, bra, g, q, threads) };
    }
    backward_step_one_scalar(ket, bra, g, q, threads)
}

/// Scalar tier of [`backward_step_one`].
pub(crate) fn backward_step_one_scalar(
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    g: &Matrix2,
    q: usize,
    threads: usize,
) -> Matrix2 {
    debug_assert_eq!(bra.len(), ket.len());
    debug_assert_eq!(ket.len() % (1 << (q + 1)), 0);
    let mask = 1usize << q;
    let [[g00, g01], [g10, g11]] = g.m;
    let pairs = ket.len() / 2;
    let kp = SendPtr(ket.as_mut_ptr());
    let bp = SendPtr(bra.as_mut_ptr());
    let r = reduce_chunks::<4>(pairs, ket.len(), threads, move |range| {
        let (kp, bp) = (kp, bp);
        let mut acc = [Complex64::ZERO; 4];
        for k in range {
            let i = insert_zero_bit(k, q);
            let j = i | mask;
            // SAFETY: i != j, distinct k map to disjoint pairs, chunk
            // ranges are disjoint — no two threads alias.
            unsafe {
                let k0 = *kp.0.add(i);
                let k1 = *kp.0.add(j);
                let nk0 = g00 * k0 + g01 * k1;
                let nk1 = g10 * k0 + g11 * k1;
                *kp.0.add(i) = nk0;
                *kp.0.add(j) = nk1;
                let b0 = *bp.0.add(i);
                let b1 = *bp.0.add(j);
                let c0 = b0.conj();
                let c1 = b1.conj();
                acc[0] += nk0 * c0;
                acc[1] += nk0 * c1;
                acc[2] += nk1 * c0;
                acc[3] += nk1 * c1;
                *bp.0.add(i) = g00 * b0 + g01 * b1;
                *bp.0.add(j) = g10 * b0 + g11 * b1;
            }
        }
        acc
    });
    Matrix2 {
        m: [[r[0], r[1]], [r[2], r[3]]],
    }
}

/// Backward step for a multiplexed op: applies the (already daggered)
/// branches `z`/`o` on the control-0/control-1 subspaces and returns the
/// pair of per-branch 2×2 reduction matrices.
pub(crate) fn backward_step_multiplexed(
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    z: &Matrix2,
    o: &Matrix2,
    c: usize,
    t: usize,
    threads: usize,
) -> (Matrix2, Matrix2) {
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        return unsafe { simd::avx2::backward_step_multiplexed(ket, bra, z, o, c, t, threads) };
    }
    backward_step_multiplexed_scalar(ket, bra, z, o, c, t, threads)
}

/// Scalar tier of [`backward_step_multiplexed`].
pub(crate) fn backward_step_multiplexed_scalar(
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    z: &Matrix2,
    o: &Matrix2,
    c: usize,
    t: usize,
    threads: usize,
) -> (Matrix2, Matrix2) {
    debug_assert_eq!(bra.len(), ket.len());
    debug_assert_ne!(c, t);
    let (lo, hi) = if c < t { (c, t) } else { (t, c) };
    debug_assert_eq!(ket.len() % (1 << (hi + 1)), 0);
    let cmask = 1usize << c;
    let tmask = 1usize << t;
    let [[z00, z01], [z10, z11]] = z.m;
    let [[o00, o01], [o10, o11]] = o.m;
    let quads = ket.len() / 4;
    let kp = SendPtr(ket.as_mut_ptr());
    let bp = SendPtr(bra.as_mut_ptr());
    let r = reduce_chunks::<8>(quads, ket.len(), threads, move |range| {
        let (kp, bp) = (kp, bp);
        let mut acc = [Complex64::ZERO; 8];
        for k in range {
            let base = insert_zero_bit(insert_zero_bit(k, lo), hi);
            // SAFETY: the four indices are distinct per k, quad sets of
            // distinct k are disjoint, chunk ranges are disjoint.
            unsafe {
                let i = base;
                let j = base | tmask;
                let k0 = *kp.0.add(i);
                let k1 = *kp.0.add(j);
                let nk0 = z00 * k0 + z01 * k1;
                let nk1 = z10 * k0 + z11 * k1;
                *kp.0.add(i) = nk0;
                *kp.0.add(j) = nk1;
                let b0 = *bp.0.add(i);
                let b1 = *bp.0.add(j);
                let c0 = b0.conj();
                let c1 = b1.conj();
                acc[0] += nk0 * c0;
                acc[1] += nk0 * c1;
                acc[2] += nk1 * c0;
                acc[3] += nk1 * c1;
                *bp.0.add(i) = z00 * b0 + z01 * b1;
                *bp.0.add(j) = z10 * b0 + z11 * b1;

                let i = base | cmask;
                let j = i | tmask;
                let k0 = *kp.0.add(i);
                let k1 = *kp.0.add(j);
                let nk0 = o00 * k0 + o01 * k1;
                let nk1 = o10 * k0 + o11 * k1;
                *kp.0.add(i) = nk0;
                *kp.0.add(j) = nk1;
                let b0 = *bp.0.add(i);
                let b1 = *bp.0.add(j);
                let c0 = b0.conj();
                let c1 = b1.conj();
                acc[4] += nk0 * c0;
                acc[5] += nk0 * c1;
                acc[6] += nk1 * c0;
                acc[7] += nk1 * c1;
                *bp.0.add(i) = o00 * b0 + o01 * b1;
                *bp.0.add(j) = o10 * b0 + o11 * b1;
            }
        }
        acc
    });
    (
        Matrix2 {
            m: [[r[0], r[1]], [r[2], r[3]]],
        },
        Matrix2 {
            m: [[r[4], r[5]], [r[6], r[7]]],
        },
    )
}

/// Backward step for a dense two-qubit op (`a < b`, [`Matrix4`] basis
/// convention): applies the (already daggered) `g` and returns the 4×4
/// reduction matrix over all quads.
pub(crate) fn backward_step_two(
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    g: &Matrix4,
    a: usize,
    b: usize,
    threads: usize,
) -> Matrix4 {
    // The a == 0 layout (no contiguous quad runs) stays on the scalar
    // tier: dense two-qubit ops are rare in fused circuits (the paper
    // ansatz compiles to none) and the adjacent-lane accumulator shuffle
    // is not worth the code for a cold path.
    #[cfg(target_arch = "x86_64")]
    if a > 0 && simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        return unsafe { simd::avx2::backward_step_two(ket, bra, g, a, b, threads) };
    }
    backward_step_two_scalar(ket, bra, g, a, b, threads)
}

/// Scalar tier of [`backward_step_two`].
pub(crate) fn backward_step_two_scalar(
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    g: &Matrix4,
    a: usize,
    b: usize,
    threads: usize,
) -> Matrix4 {
    debug_assert_eq!(bra.len(), ket.len());
    debug_assert!(a < b);
    debug_assert_eq!(ket.len() % (1 << (b + 1)), 0);
    let ma = 1usize << a;
    let mb = 1usize << b;
    let m = g.m;
    let quads = ket.len() / 4;
    let kp = SendPtr(ket.as_mut_ptr());
    let bp = SendPtr(bra.as_mut_ptr());
    let r = reduce_chunks::<16>(quads, ket.len(), threads, move |range| {
        let (kp, bp) = (kp, bp);
        let mut acc = [Complex64::ZERO; 16];
        for k in range {
            let i00 = insert_zero_bit(insert_zero_bit(k, a), b);
            let idx = [i00, i00 | ma, i00 | mb, i00 | ma | mb];
            // SAFETY: distinct indices per k, disjoint quads, disjoint
            // chunk ranges.
            unsafe {
                let kv = idx.map(|i| *kp.0.add(i));
                let bv = idx.map(|i| *bp.0.add(i));
                let cv = bv.map(Complex64::conj);
                for (r_idx, &i) in idx.iter().enumerate() {
                    let nk = m[r_idx][0] * kv[0]
                        + m[r_idx][1] * kv[1]
                        + m[r_idx][2] * kv[2]
                        + m[r_idx][3] * kv[3];
                    *kp.0.add(i) = nk;
                    for (col, &cb) in cv.iter().enumerate() {
                        acc[r_idx * 4 + col] += nk * cb;
                    }
                    let nb = m[r_idx][0] * bv[0]
                        + m[r_idx][1] * bv[1]
                        + m[r_idx][2] * bv[2]
                        + m[r_idx][3] * bv[3];
                    *bp.0.add(i) = nb;
                }
            }
        }
        acc
    });
    let mut out = Matrix4::zero();
    for row in 0..4 {
        for col in 0..4 {
            out.m[row][col] = r[row * 4 + col];
        }
    }
    out
}

/// Swaps qubits `a` and `b` in every block of `amps`.
///
/// # Panics
///
/// Panics (debug) if `a == b` or the slice is not a multiple of the
/// enclosing block size.
pub(crate) fn apply_swap(amps: &mut [Complex64], a: usize, b: usize, threads: usize) {
    debug_assert_ne!(a, b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    debug_assert_eq!(amps.len() % (1 << (hi + 1)), 0);
    let lomask = 1usize << lo;
    let himask = 1usize << hi;
    let quads = amps.len() / 4;
    let ptr = SendPtr(amps.as_mut_ptr());
    for_each_chunk(quads, amps.len(), threads, move |range| {
        let ptr = ptr;
        for k in range {
            let base = insert_zero_bit(insert_zero_bit(k, lo), hi);
            let i01 = base | lomask;
            let i10 = base | himask;
            // SAFETY: disjoint pairs per k, disjoint chunk ranges.
            unsafe {
                std::ptr::swap(ptr.0.add(i01), ptr.0.add(i10));
            }
        }
    });
}

// ---- Vectorized reductions -------------------------------------------------
//
// The norm²/probability/expectation sweeps the observable layer runs after
// every forward pass are pure reductions over the amplitude array; they
// share the SIMD dispatch with the gate kernels. All three keep the same
// left-to-right association as the scalar loops within each 4-wide block,
// so the scalar tier remains bit-identical to the pre-SIMD engine.

/// `Σ |aᵢ|²` over the slice (the squared norm).
pub(crate) fn norm_sqr_sum(amps: &[Complex64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        return unsafe { simd::avx2::norm_sqr_sum(amps) };
    }
    amps.iter().map(|a| a.norm_sqr()).sum()
}

/// Writes `|aᵢ|²` per amplitude into `out`.
///
/// # Panics
///
/// Panics (debug) if the lengths differ.
pub(crate) fn probabilities_into(amps: &[Complex64], out: &mut [f64]) {
    debug_assert_eq!(amps.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        unsafe { simd::avx2::probabilities_into(amps, out) };
        return;
    }
    for (o, a) in out.iter_mut().zip(amps) {
        *o = a.norm_sqr();
    }
}

/// `Σ dᵢ·|aᵢ|²` — the expectation of a diagonal observable.
///
/// # Panics
///
/// Panics (debug) if the lengths differ.
pub(crate) fn expectation_diag(amps: &[Complex64], diag: &[f64]) -> f64 {
    debug_assert_eq!(amps.len(), diag.len());
    #[cfg(target_arch = "x86_64")]
    if simd::level() == simd::SimdLevel::Avx2 {
        // SAFETY: avx2 tier implies runtime AVX2+FMA support.
        return unsafe { simd::avx2::expectation_diag(amps, diag) };
    }
    amps.iter().zip(diag).map(|(a, d)| a.norm_sqr() * d).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_amps(n_qubits: usize, seed: u64) -> Vec<Complex64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1usize << n_qubits)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    /// Reference kernels: the seed's masked full-scan loops.
    fn naive_one(amps: &mut [Complex64], g: &Matrix2, q: usize) {
        let mask = 1usize << q;
        let [[m00, m01], [m10, m11]] = g.m;
        for i in 0..amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = amps[i];
                let a1 = amps[j];
                amps[i] = m00 * a0 + m01 * a1;
                amps[j] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn naive_controlled(amps: &mut [Complex64], g: &Matrix2, c: usize, t: usize) {
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let [[m00, m01], [m10, m11]] = g.m;
        for i in 0..amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                let a0 = amps[i];
                let a1 = amps[j];
                amps[i] = m00 * a0 + m01 * a1;
                amps[j] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn assert_amps_eq(a: &[Complex64], b: &[Complex64], tol: f64) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).norm() < tol, "amplitude {i}: {x:?} vs {y:?}");
        }
    }

    /// The partial-sum grouping of `reduce_chunks` must be a function of
    /// `total` alone — never of the thread count — so that gradients are
    /// bit-identical whatever thread budget a backend was handed.
    #[test]
    fn reduce_chunks_is_bitwise_thread_invariant() {
        // Non-associative-friendly work: wildly varying magnitudes so any
        // regrouping of the floating-point sums would change low bits.
        let work = |range: std::ops::Range<usize>| {
            let mut acc = [Complex64::ZERO; 4];
            for k in range {
                let x = ((k as f64) * 0.7390851332151607).sin() * 1e8f64.powf((k % 7) as f64 / 6.0 - 0.5);
                let y = ((k as f64) * 1.324_717_957_244_746).cos() * 1e6f64.powf((k % 5) as f64 / 4.0 - 0.5);
                for (s, a) in acc.iter_mut().enumerate() {
                    *a += Complex64::new(x * (s as f64 + 1.0), y - s as f64);
                }
            }
            acc
        };
        // amps_len at the parallel threshold, total spanning many chunks
        // (not a multiple of REDUCE_CHUNK, to cover the ragged tail).
        let total = (1 << 14) + 123;
        let amps_len = PARALLEL_MIN_AMPS;
        let reference = reduce_chunks::<4>(total, amps_len, 1, work);
        for threads in [2, 3, 5, 8] {
            let got = reduce_chunks::<4>(total, amps_len, threads, work);
            for (slot, (r, g)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(
                    r.re.to_bits(),
                    g.re.to_bits(),
                    "slot {slot} re differs at {threads} threads"
                );
                assert_eq!(
                    r.im.to_bits(),
                    g.im.to_bits(),
                    "slot {slot} im differs at {threads} threads"
                );
            }
        }
        // The small-state single-sweep path must agree with itself too
        // (trivially) and stay in use below the parallel threshold.
        let small = reduce_chunks::<4>(256, 512, 8, work);
        let small_ref = work(0..256);
        for (r, g) in small_ref.iter().zip(&small) {
            assert_eq!(r.re.to_bits(), g.re.to_bits());
            assert_eq!(r.im.to_bits(), g.im.to_bits());
        }
    }

    #[test]
    fn branch_free_one_matches_naive() {
        let g = Matrix2::u3(0.7, -0.4, 1.2);
        for q in 0..5 {
            let mut fast = random_amps(5, 11);
            let mut slow = fast.clone();
            apply_one(&mut fast, &g, q, simulation_threads());
            naive_one(&mut slow, &g, q);
            assert_amps_eq(&fast, &slow, 1e-14);
        }
    }

    #[test]
    fn branch_free_controlled_matches_naive() {
        let g = Matrix2::u3(1.1, 0.3, -0.8);
        for (c, t) in [(0usize, 4usize), (4, 0), (2, 3), (3, 2)] {
            let mut fast = random_amps(5, 7);
            let mut slow = fast.clone();
            apply_controlled(&mut fast, &g, c, t, simulation_threads());
            naive_controlled(&mut slow, &g, c, t);
            assert_amps_eq(&fast, &slow, 1e-14);
        }
    }

    #[test]
    fn two_qubit_kernel_matches_composed_embeddings() {
        // A dense 4×4 built as CU3 · (I ⊗ u3) must equal applying the u3
        // then the controlled gate with the 2×2 kernels.
        let u = Matrix2::u3(0.5, 0.9, -1.3);
        let cg = Matrix2::u3(-0.6, 0.2, 0.7);
        for (a, b, control_on_low) in [(0usize, 3usize, true), (1, 4, false)] {
            let fused = Matrix4::controlled(&cg, control_on_low).matmul(&Matrix4::single_on_low(&u));
            let mut via_fused = random_amps(5, 23);
            let mut via_steps = via_fused.clone();
            apply_two(&mut via_fused, &fused, a, b, 1);
            apply_one(&mut via_steps, &u, a, 1);
            let (c, t) = if control_on_low { (a, b) } else { (b, a) };
            apply_controlled(&mut via_steps, &cg, c, t, 1);
            assert_amps_eq(&via_fused, &via_steps, 1e-13);
        }
    }

    #[test]
    fn multiplexed_kernel_matches_two_step_reference() {
        let a0 = Matrix2::u3(0.3, -0.9, 0.4);
        let a1 = Matrix2::u3(1.2, 0.1, -0.6);
        for (c, t) in [(0usize, 3usize), (3, 0), (2, 4)] {
            let mut fast = random_amps(5, 31);
            let mut slow = fast.clone();
            apply_multiplexed(&mut fast, &a0, &a1, c, t, simulation_threads());
            // Reference: a0 everywhere, then "undo a0 / apply a1" on the
            // control-set half.
            naive_one(&mut slow, &a0, t);
            let fixup = a1.matmul(&a0.dagger());
            naive_controlled(&mut slow, &fixup, c, t);
            assert_amps_eq(&fast, &slow, 1e-13);
        }
    }

    #[test]
    fn multiplexed_with_identity_a0_equals_controlled() {
        let g = Matrix2::u3(0.8, 0.2, -1.4);
        let mut fast = random_amps(4, 9);
        let mut slow = fast.clone();
        apply_multiplexed(&mut fast, &Matrix2::identity(), &g, 1, 3, 1);
        naive_controlled(&mut slow, &g, 1, 3);
        assert_amps_eq(&fast, &slow, 1e-14);
    }

    #[test]
    fn swap_kernel_is_involutive_and_moves_bits() {
        let mut amps = random_amps(4, 3);
        let orig = amps.clone();
        apply_swap(&mut amps, 1, 3, 1);
        assert!(amps.iter().zip(&orig).any(|(x, y)| (*x - *y).norm() > 1e-12));
        apply_swap(&mut amps, 3, 1, 1);
        assert_amps_eq(&amps, &orig, 1e-15); // pure permutation: bit-exact
    }

    #[test]
    fn kernels_apply_per_block_on_batched_layouts() {
        // Two concatenated 3-qubit blocks must evolve independently.
        let block_a = random_amps(3, 1);
        let block_b = random_amps(3, 2);
        let mut batched: Vec<Complex64> = block_a.iter().chain(&block_b).copied().collect();
        let g = Matrix2::h();
        apply_one(&mut batched, &g, 1, 1);
        let mut expect_a = block_a;
        let mut expect_b = block_b;
        apply_one(&mut expect_a, &g, 1, 1);
        apply_one(&mut expect_b, &g, 1, 1);
        assert_amps_eq(&batched[..8], &expect_a, 1e-14);
        assert_amps_eq(&batched[8..], &expect_b, 1e-14);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force the chunked path by exceeding the amplitude threshold.
        let n = 16; // 65536 amplitudes >= PARALLEL_MIN_AMPS
        let g = Matrix2::u3(0.3, 0.8, -0.2);
        let g4 = Matrix4::controlled(&Matrix2::ry(0.77), true).matmul(&Matrix4::single_on_high(&g));
        let mut parallel = random_amps(n, 5);
        let mut serial = parallel.clone();

        apply_one(&mut parallel, &g, n - 1, simulation_threads());
        apply_two(&mut parallel, &g4, 2, n - 2, simulation_threads());

        // Serial reference on the same data via chunk-free loops.
        naive_one(&mut serial, &g, n - 1);
        let quads = serial.len() / 4;
        let (a, b) = (2usize, n - 2);
        let (ma, mb) = (1usize << a, 1usize << b);
        for k in 0..quads {
            let i00 = insert_zero_bit(insert_zero_bit(k, a), b);
            let v = [
                serial[i00],
                serial[i00 | ma],
                serial[i00 | mb],
                serial[i00 | ma | mb],
            ];
            for (r, idx) in [i00, i00 | ma, i00 | mb, i00 | ma | mb].into_iter().enumerate() {
                serial[idx] =
                    g4.m[r][0] * v[0] + g4.m[r][1] * v[1] + g4.m[r][2] * v[2] + g4.m[r][3] * v[3];
            }
        }
        assert_amps_eq(&parallel, &serial, 1e-13);
    }
}
