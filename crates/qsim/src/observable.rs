use crate::{QsimError, State};

/// A diagonal observable on `n` qubits: a real weight per basis state.
///
/// Every measurement the QuGeo decoders need is diagonal in the
/// computational basis:
///
/// * the layer-wise decoder reads per-qubit Pauli-Z expectations
///   ([`DiagonalObservable::z`]),
/// * the pixel-wise decoder reads basis-state probabilities, i.e.
///   projector expectations ([`DiagonalObservable::projector`]),
/// * loss gradients combine those into one weighted sum
///   ([`DiagonalObservable::weighted_sum`]), which is what the adjoint
///   differentiation pass consumes.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{DiagonalObservable, State};
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let z0 = DiagonalObservable::z(2, 0)?;
/// let state = State::zero(2);
/// assert_eq!(z0.expectation(&state), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalObservable {
    num_qubits: usize,
    diag: Vec<f64>,
}

impl DiagonalObservable {
    /// Builds an observable from an explicit diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidStateLength`] unless the length is a
    /// positive power of two.
    pub fn from_diagonal(diag: Vec<f64>) -> Result<Self, QsimError> {
        let len = diag.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(QsimError::InvalidStateLength { len });
        }
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            diag,
        })
    }

    /// Pauli-Z on qubit `q` of an `num_qubits`-qubit register.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] if `q >= num_qubits`.
    pub fn z(num_qubits: usize, q: usize) -> Result<Self, QsimError> {
        if q >= num_qubits {
            return Err(QsimError::QubitOutOfRange {
                qubit: q,
                num_qubits,
            });
        }
        let mask = 1usize << q;
        let diag = (0..1usize << num_qubits)
            .map(|i| if i & mask == 0 { 1.0 } else { -1.0 })
            .collect();
        Ok(Self { num_qubits, diag })
    }

    /// Projector `|index⟩⟨index|` on the full register.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidStateLength`] if
    /// `index >= 2^num_qubits`.
    pub fn projector(num_qubits: usize, index: usize) -> Result<Self, QsimError> {
        let dim = 1usize << num_qubits;
        if index >= dim {
            return Err(QsimError::InvalidStateLength { len: index });
        }
        let mut diag = vec![0.0; dim];
        diag[index] = 1.0;
        Ok(Self { num_qubits, diag })
    }

    /// Projector onto the low-`k`-qubit pattern `pattern` (marginal
    /// probability observable): weight 1 on every basis state whose low
    /// `k` bits equal `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidStateLength`] if `k > num_qubits` or
    /// `pattern >= 2^k`.
    pub fn low_bits_projector(
        num_qubits: usize,
        k: usize,
        pattern: usize,
    ) -> Result<Self, QsimError> {
        if k > num_qubits || pattern >= (1usize << k) {
            return Err(QsimError::InvalidStateLength { len: pattern });
        }
        let mask = (1usize << k) - 1;
        let diag = (0..1usize << num_qubits)
            .map(|i| if i & mask == pattern { 1.0 } else { 0.0 })
            .collect();
        Ok(Self { num_qubits, diag })
    }

    /// Weighted sum `Σ wᵢ Oᵢ` of same-size diagonal observables.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the observables differ
    /// in size, or [`QsimError::InvalidStateLength`] when `terms` is empty
    /// or lengths differ between `weights` and `terms`.
    pub fn weighted_sum(terms: &[Self], weights: &[f64]) -> Result<Self, QsimError> {
        if terms.is_empty() || terms.len() != weights.len() {
            return Err(QsimError::InvalidStateLength { len: terms.len() });
        }
        let num_qubits = terms[0].num_qubits;
        let mut diag = vec![0.0; terms[0].diag.len()];
        for (t, &w) in terms.iter().zip(weights) {
            if t.num_qubits != num_qubits {
                return Err(QsimError::QubitCountMismatch {
                    expected: num_qubits,
                    actual: t.num_qubits,
                });
            }
            for (d, &v) in diag.iter_mut().zip(&t.diag) {
                *d += w * v;
            }
        }
        Ok(Self { num_qubits, diag })
    }

    /// Number of qubits the observable acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The diagonal entries.
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// Expectation value `⟨ψ|O|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the state has a different qubit count.
    pub fn expectation(&self, state: &State) -> f64 {
        assert_eq!(
            state.num_qubits(),
            self.num_qubits,
            "observable and state disagree on qubit count"
        );
        crate::kernels::expectation_diag(state.amplitudes(), &self.diag)
    }

    /// Applies the observable to a state, producing `O|ψ⟩` (element-wise
    /// scaling of amplitudes). Used as the seed of adjoint
    /// differentiation.
    ///
    /// # Panics
    ///
    /// Panics if the state has a different qubit count.
    pub fn apply(&self, state: &State) -> State {
        assert_eq!(
            state.num_qubits(),
            self.num_qubits,
            "observable and state disagree on qubit count"
        );
        let amps = state
            .amplitudes()
            .iter()
            .zip(&self.diag)
            .map(|(a, &d)| a.scale(d))
            .collect();
        State::from_amplitudes(amps).expect("same power-of-two length as input state")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix2;

    const EPS: f64 = 1e-12;

    #[test]
    fn z_observable_matches_state_method() {
        let mut s = State::zero(3);
        s.apply_single(&Matrix2::h(), 0);
        s.apply_single(&Matrix2::x(), 2);
        for q in 0..3 {
            let o = DiagonalObservable::z(3, q).unwrap();
            assert!((o.expectation(&s) - s.z_expectation(q)).abs() < EPS);
        }
    }

    #[test]
    fn z_rejects_out_of_range() {
        assert!(DiagonalObservable::z(2, 2).is_err());
    }

    #[test]
    fn projector_expectation_is_probability() {
        let s = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        for i in 0..4 {
            let p = DiagonalObservable::projector(2, i).unwrap();
            assert!((p.expectation(&s) - s.probability(i)).abs() < EPS);
        }
        assert!(DiagonalObservable::projector(2, 4).is_err());
    }

    #[test]
    fn low_bits_projector_matches_marginal() {
        let s = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let marg = s.marginal_low(2);
        for (pat, m) in marg.iter().enumerate() {
            let p = DiagonalObservable::low_bits_projector(3, 2, pat).unwrap();
            assert!((p.expectation(&s) - m).abs() < EPS);
        }
        assert!(DiagonalObservable::low_bits_projector(3, 4, 0).is_err());
        assert!(DiagonalObservable::low_bits_projector(3, 2, 4).is_err());
    }

    #[test]
    fn weighted_sum_is_linear() {
        let s = State::from_real_normalized(&[1.0, -1.0, 2.0, 0.5]).unwrap();
        let z0 = DiagonalObservable::z(2, 0).unwrap();
        let z1 = DiagonalObservable::z(2, 1).unwrap();
        let sum = DiagonalObservable::weighted_sum(&[z0.clone(), z1.clone()], &[2.0, -3.0]).unwrap();
        let expect = 2.0 * z0.expectation(&s) - 3.0 * z1.expectation(&s);
        assert!((sum.expectation(&s) - expect).abs() < EPS);
    }

    #[test]
    fn weighted_sum_validates() {
        let z0 = DiagonalObservable::z(2, 0).unwrap();
        let z1 = DiagonalObservable::z(3, 0).unwrap();
        assert!(DiagonalObservable::weighted_sum(&[], &[]).is_err());
        assert!(DiagonalObservable::weighted_sum(std::slice::from_ref(&z0), &[1.0, 2.0]).is_err());
        assert!(DiagonalObservable::weighted_sum(&[z0, z1], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn apply_scales_amplitudes() {
        let s = State::from_real_normalized(&[1.0, 1.0]).unwrap();
        let z = DiagonalObservable::z(1, 0).unwrap();
        let zs = z.apply(&s);
        assert!((zs.amplitudes()[0].re - s.amplitudes()[0].re).abs() < EPS);
        assert!((zs.amplitudes()[1].re + s.amplitudes()[1].re).abs() < EPS);
        // <ψ|Z|ψ> via inner product equals expectation.
        let ip = s.inner(&zs).unwrap();
        assert!((ip.re - z.expectation(&s)).abs() < EPS);
    }

    #[test]
    fn from_diagonal_validates_length() {
        assert!(DiagonalObservable::from_diagonal(vec![1.0, 2.0, 3.0]).is_err());
        assert!(DiagonalObservable::from_diagonal(vec![]).is_err());
        let o = DiagonalObservable::from_diagonal(vec![1.0, 2.0]).unwrap();
        assert_eq!(o.num_qubits(), 1);
        assert_eq!(o.diagonal(), &[1.0, 2.0]);
    }
}
