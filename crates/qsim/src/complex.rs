use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The offline dependency set contains no complex-number crate, so the
/// simulator carries its own. Only the operations a statevector simulator
/// needs are provided.
///
/// The layout is `#[repr(C)]` — `re` at offset 0, `im` at offset 8 — so a
/// `&[Complex64]` can be reinterpreted as an interleaved `f64` stream by
/// the SIMD kernels in `kernels::simd`.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert_eq!(Complex64::new(3.0, 4.0).norm_sqr(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qugeo_qsim::Complex64;
    ///
    /// let half_turn = Complex64::cis(std::f64::consts::PI);
    /// assert!((half_turn.re + 1.0).abs() < 1e-15);
    /// ```
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Self;
    /// # Panics
    ///
    /// Division by a complex zero produces non-finite components rather
    /// than panicking, mirroring `f64` semantics.
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, Complex64::new(-2.0, 3.0));
    }

    #[test]
    fn multiplication_formula() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -0.5);
        let b = Complex64::new(-2.0, 3.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-12);
        assert!((q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).im, 0.0);
    }

    #[test]
    fn cis_special_angles() {
        let e0 = Complex64::cis(0.0);
        assert_eq!(e0, Complex64::ONE);
        let e90 = Complex64::cis(FRAC_PI_2);
        assert!(e90.re.abs() < 1e-15);
        assert!((e90.im - 1.0).abs() < 1e-15);
        let e180 = Complex64::cis(PI);
        assert!((e180.re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn arg_of_quadrants() {
        assert!((Complex64::new(1.0, 1.0).arg() - PI / 4.0).abs() < 1e-12);
        assert!((Complex64::new(-1.0, 0.0).arg() - PI).abs() < 1e-12);
    }

    #[test]
    fn compound_assignment() {
        let mut z = Complex64::ONE;
        z += Complex64::I;
        z -= Complex64::ONE;
        z *= Complex64::I;
        assert_eq!(z, -Complex64::ONE);
    }

    #[test]
    fn display_both_signs() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn from_real() {
        let z: Complex64 = 4.5.into();
        assert_eq!(z, Complex64::new(4.5, 0.0));
    }

    #[test]
    fn scale_matches_real_mul() {
        let z = Complex64::new(2.0, -1.0);
        assert_eq!(z.scale(3.0), z * 3.0);
    }
}
