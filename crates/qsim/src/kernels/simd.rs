//! Runtime-dispatched SIMD tiers for the statevector kernels.
//!
//! The public face of this module is tiny: [`level`] resolves the active
//! [`SimdLevel`] once per process (CPU detection gated by the
//! `QUGEO_SIMD` environment variable and the [`set_enabled`] override),
//! and the [`avx2`] submodule holds the explicit-lane kernel bodies the
//! dispatchers in [`super`] jump to.
//!
//! # Lane layout
//!
//! Amplitudes are interleaved `re, im` pairs ([`Complex64`] is
//! `#[repr(C)]`), so one 256-bit register holds **two complex values**:
//! `[re₀, im₀, re₁, im₁]`. A complex multiply by a constant `c` becomes
//! two FMAs against a precomputed coefficient pair ([`avx2::Coef`]):
//! `re` broadcast to all lanes and `im` pre-negated on the real slots
//! (`[-im, +im, -im, +im]`), giving
//! `z·c = fmadd(swap_within(z), c.im, fmadd(z, c.re, acc))`.
//!
//! # Pair-run contiguity
//!
//! The branch-free index enumeration in [`super`] maps a dense counter to
//! basis indices with zero-bit insertion; for a gate on qubit `q ≥ 1`
//! every run of `2^q` consecutive counters yields **contiguous** address
//! streams for each butterfly leg, which is what the vector loops walk.
//! The `q = 0` (and `min(c,t) = 0`) layouts have no runs; those cases use
//! in-register butterflies instead — per-128-bit-lane coefficients plus a
//! cross-lane swap — so every qubit position stays on the SIMD tier.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The kernel tiers the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimdLevel {
    /// The original scalar loops — always available, bit-identical to the
    /// pre-SIMD engine.
    Scalar,
    /// AVX2 + FMA lane kernels (x86-64 only, runtime-detected).
    Avx2,
}

/// When `true`, [`level`] reports [`SimdLevel::Scalar`] regardless of what
/// the CPU supports (the [`crate::set_simd_enabled`] switch).
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// The environment/CPU-resolved tier, computed once per process.
fn detected_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if matches!(
            std::env::var("QUGEO_SIMD").as_deref(),
            Ok("off") | Ok("0") | Ok("scalar")
        ) {
            return SimdLevel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// The tier kernel dispatchers should use right now.
pub(crate) fn level() -> SimdLevel {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        SimdLevel::Scalar
    } else {
        detected_level()
    }
}

/// Backs [`crate::set_simd_enabled`]: `false` pins the scalar tier,
/// `true` restores environment/CPU resolution.
pub(crate) fn set_enabled(enabled: bool) {
    FORCE_SCALAR.store(!enabled, Ordering::Relaxed);
}

/// Whether the batch-major tile may use its 512-bit lane variant (eight
/// members per register). Deliberately *not* a third [`SimdLevel`]: the
/// interleaved per-member kernels stay AVX2 either way, so every
/// `level() == Avx2` dispatch check keeps its meaning. `QUGEO_SIMD=avx2`
/// pins the 256-bit tile for A/B runs; `off`/[`set_enabled`]`(false)`
/// disable this along with the rest of the SIMD tier via [`level`].
pub(crate) fn avx512_tile() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static WIDE: OnceLock<bool> = OnceLock::new();
        level() == SimdLevel::Avx2
            && *WIDE.get_or_init(|| {
                !matches!(std::env::var("QUGEO_SIMD").as_deref(), Ok("avx2"))
                    && std::arch::is_x86_feature_detected!("avx512f")
            })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Human-readable name of the active tier (`avx512` means the AVX2
/// kernels plus the 512-bit batch tile).
pub(crate) fn level_name() -> &'static str {
    match level() {
        SimdLevel::Scalar => "scalar",
        SimdLevel::Avx2 => {
            if avx512_tile() {
                "avx512"
            } else {
                "avx2"
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    //! The AVX2/FMA kernel bodies. Every function here carries
    //! `#[target_feature(enable = "avx2,fma")]` and is only reachable
    //! through dispatchers that checked [`super::level`] first.

    use std::arch::x86_64::*;

    use super::super::{for_each_chunk, insert_zero_bit, reduce_chunks, SendPtr};
    use crate::gates::{Matrix2, Matrix4};
    use crate::Complex64;

    /// Two interleaved complex values: `[re₀, im₀, re₁, im₁]`.
    type F4 = __m256d;

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load2(p: *const Complex64) -> F4 {
        _mm256_loadu_pd(p.cast())
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store2(p: *mut Complex64, v: F4) {
        _mm256_storeu_pd(p.cast(), v)
    }

    /// `[im₀, re₀, im₁, re₁]` — swaps re/im inside each complex lane.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn swap_within(v: F4) -> F4 {
        _mm256_permute_pd(v, 0b0101)
    }

    /// `[re₁, im₁, re₀, im₀]` — swaps the two complex lanes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn swap_lanes(v: F4) -> F4 {
        _mm256_permute2f128_pd(v, v, 0x01)
    }

    /// `[re₀, im₀, re₀, im₀]` — the low complex lane in both lanes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dup_lo(v: F4) -> F4 {
        _mm256_permute2f128_pd(v, v, 0x00)
    }

    /// `[re₁, im₁, re₁, im₁]` — the high complex lane in both lanes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dup_hi(v: F4) -> F4 {
        _mm256_permute2f128_pd(v, v, 0x11)
    }

    /// Spills the two complex lanes of a register.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn lanes(v: F4) -> (Complex64, Complex64) {
        let mut out = [Complex64::ZERO; 2];
        _mm256_storeu_pd(out.as_mut_ptr().cast(), v);
        (out[0], out[1])
    }

    /// Sums the two complex lanes into one value.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: F4) -> Complex64 {
        let (a, b) = lanes(v);
        a + b
    }

    /// `z · conj(w)`, lane-wise: `fmsubadd` adds on the even (real) slots
    /// and subtracts on the odd (imaginary) slots, which is exactly the
    /// conjugated product `(z_r·w_r + z_i·w_i, z_i·w_r − z_r·w_i)`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mul_conj(z: F4, w: F4) -> F4 {
        let wr = _mm256_movedup_pd(w);
        let wi = _mm256_permute_pd(w, 0b1111);
        _mm256_fmsubadd_pd(z, wr, _mm256_mul_pd(swap_within(z), wi))
    }

    /// A complex coefficient prepared for lane-wise multiply:
    /// `re` broadcast everywhere and `im` pre-negated on the real slots,
    /// so `z·c` costs two FMAs (see the module docs).
    #[derive(Clone, Copy)]
    pub(crate) struct Coef {
        re: F4,
        im: F4,
    }

    impl Coef {
        /// The same constant on both complex lanes.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn splat(c: Complex64) -> Self {
            Self {
                re: _mm256_set1_pd(c.re),
                im: _mm256_setr_pd(-c.im, c.im, -c.im, c.im),
            }
        }

        /// Distinct constants on the low/high complex lane — the
        /// in-register butterfly layouts put two different matrix entries
        /// in one register.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn per_lane(lo: Complex64, hi: Complex64) -> Self {
            Self {
                re: _mm256_setr_pd(lo.re, lo.re, hi.re, hi.re),
                im: _mm256_setr_pd(-lo.im, lo.im, -hi.im, hi.im),
            }
        }

        /// `acc + self·z`.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn mul_add(self, z: F4, acc: F4) -> F4 {
            _mm256_fmadd_pd(swap_within(z), self.im, _mm256_fmadd_pd(z, self.re, acc))
        }

        /// `self·z`.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn mul(self, z: F4) -> F4 {
            _mm256_fmadd_pd(swap_within(z), self.im, _mm256_mul_pd(z, self.re))
        }
    }

    /// In-register 2×2 butterfly: the register holds both legs
    /// `[a₀, a₁]`; `c0` carries the first column `(m00, m10)` per output
    /// lane, `c1` the second column `(m01, m11)`. The association —
    /// round `m_r1·a₁` first, then fold `m_r0·a₀` in fused — is the
    /// **canonical row order** every forward layout follows, so one
    /// member's amplitudes round identically whether it runs through
    /// contiguous runs, in-register butterflies, or the batch-major tile
    /// (the engine's cross-layout bit-identity contract).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bfly2(v: F4, c0: Coef, c1: Coef) -> F4 {
        c0.mul_add(dup_lo(v), c1.mul(dup_hi(v)))
    }

    // ---- Forward kernels ---------------------------------------------------

    /// AVX2 tier of [`super::super::apply_one`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn apply_one(amps: &mut [Complex64], g: &Matrix2, q: usize, threads: usize) {
        debug_assert_eq!(amps.len() % (1 << (q + 1)), 0);
        let [[m00, m01], [m10, m11]] = g.m;
        let ptr = SendPtr(amps.as_mut_ptr());
        if q == 0 {
            // Pair k is the adjacent amplitudes (2k, 2k+1): one register
            // per butterfly, per-lane column coefficients on the
            // duplicated legs.
            let c0 = Coef::per_lane(m00, m10);
            let c1 = Coef::per_lane(m01, m11);
            let pairs = amps.len() / 2;
            for_each_chunk(pairs, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for k in range {
                    let p = ptr.0.add(2 * k);
                    store2(p, bfly2(load2(p), c0, c1));
                }
            });
            return;
        }
        // q >= 1: pair counter k = r·2^q + s maps to amplitude
        // i = r·2^(q+1) + s, so each run r is two contiguous streams of
        // 2^q amplitudes (the a₀ leg and the a₁ leg) — walk them two
        // complex values per register.
        let c00 = Coef::splat(m00);
        let c01 = Coef::splat(m01);
        let c10 = Coef::splat(m10);
        let c11 = Coef::splat(m11);
        let half = 1usize << q;
        let runs = amps.len() >> (q + 1);
        for_each_chunk(runs, amps.len(), threads, move |range| unsafe {
            let ptr = ptr;
            for r in range {
                let lo = ptr.0.add(r << (q + 1));
                let hi = lo.add(half);
                let mut s = 0;
                while s < half {
                    let v0 = load2(lo.add(s));
                    let v1 = load2(hi.add(s));
                    store2(lo.add(s), c00.mul_add(v0, c01.mul(v1)));
                    store2(hi.add(s), c10.mul_add(v0, c11.mul(v1)));
                    s += 2;
                }
            }
        });
    }

    /// AVX2 tier of [`super::super::apply_controlled`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn apply_controlled(
        amps: &mut [Complex64],
        g: &Matrix2,
        c: usize,
        t: usize,
        threads: usize,
    ) {
        debug_assert_ne!(c, t);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        debug_assert_eq!(amps.len() % (1 << (hi + 1)), 0);
        let [[m00, m01], [m10, m11]] = g.m;
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let quads = amps.len() / 4;
        let ptr = SendPtr(amps.as_mut_ptr());
        if lo >= 1 {
            // Quad counter k = r·2^lo + s keeps s below both insertion
            // points, so each run is contiguous streams for the two
            // control-set butterfly legs; the control-clear half is never
            // touched (the sparsity advantage over a dense 4×4).
            let c00 = Coef::splat(m00);
            let c01 = Coef::splat(m01);
            let c10 = Coef::splat(m10);
            let c11 = Coef::splat(m11);
            let run = 1usize << lo;
            let runs = quads >> lo;
            for_each_chunk(runs, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for r in range {
                    let base = insert_zero_bit(insert_zero_bit(r << lo, lo), hi);
                    let ip = ptr.0.add(base | cmask);
                    let jp = ptr.0.add(base | cmask | tmask);
                    let mut s = 0;
                    while s < run {
                        let v0 = load2(ip.add(s));
                        let v1 = load2(jp.add(s));
                        store2(ip.add(s), c00.mul_add(v0, c01.mul(v1)));
                        store2(jp.add(s), c10.mul_add(v0, c11.mul(v1)));
                        s += 2;
                    }
                }
            });
        } else if t == 0 {
            // t = 0, c = hi: the butterfly legs are adjacent amplitudes on
            // the control-set stream — in-register butterflies, walking
            // addresses base + cmask + 2s.
            let c0 = Coef::per_lane(m00, m10);
            let c1 = Coef::per_lane(m01, m11);
            for_each_chunk(quads, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for k in range {
                    let p = ptr.0.add(insert_zero_bit(2 * k, hi) | cmask);
                    store2(p, bfly2(load2(p), c0, c1));
                }
            });
        } else {
            // c = 0, t = hi: the control-clear and control-set values sit
            // in adjacent lanes. Butterfly every lane, then blend the
            // original low (control-clear) lane back in — that subspace
            // must keep its exact bits (even a -0.0), like every other
            // controlled layout leaves it untouched.
            let c00 = Coef::splat(m00);
            let c01 = Coef::splat(m01);
            let c10 = Coef::splat(m10);
            let c11 = Coef::splat(m11);
            for_each_chunk(quads, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for k in range {
                    let base = insert_zero_bit(2 * k, hi);
                    let up = ptr.0.add(base);
                    let wp = ptr.0.add(base | tmask);
                    let u = load2(up);
                    let w = load2(wp);
                    let nu = c00.mul_add(u, c01.mul(w));
                    let nw = c10.mul_add(u, c11.mul(w));
                    store2(up, _mm256_blend_pd(u, nu, 0b1100));
                    store2(wp, _mm256_blend_pd(w, nw, 0b1100));
                }
            });
        }
    }

    /// Shared body for the `c = 0, t = hi` multiplexed layout: the
    /// register `[x, y]` holds the control-clear (`x`, gets `a0`) and
    /// control-set (`y`, gets `a1`) values of the *same* target bit, so
    /// both branch matrices ride in per-lane coefficients and no shuffle
    /// is needed at all.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn multiplexed_c0(
        ptr: SendPtr,
        quads: usize,
        amps_len: usize,
        a0: &Matrix2,
        a1: &Matrix2,
        hi: usize,
        threads: usize,
    ) {
        let [[z00, z01], [z10, z11]] = a0.m;
        let [[o00, o01], [o10, o11]] = a1.m;
        let c00 = Coef::per_lane(z00, o00);
        let c01 = Coef::per_lane(z01, o01);
        let c10 = Coef::per_lane(z10, o10);
        let c11 = Coef::per_lane(z11, o11);
        let tmask = 1usize << hi;
        for_each_chunk(quads, amps_len, threads, move |range| unsafe {
            let ptr = ptr;
            for k in range {
                let base = insert_zero_bit(2 * k, hi);
                let up = ptr.0.add(base);
                let wp = ptr.0.add(base | tmask);
                let u = load2(up);
                let w = load2(wp);
                store2(up, c00.mul_add(u, c01.mul(w)));
                store2(wp, c10.mul_add(u, c11.mul(w)));
            }
        });
    }

    /// AVX2 tier of [`super::super::apply_multiplexed`] (the dispatcher
    /// already peeled off identity `a0`).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn apply_multiplexed(
        amps: &mut [Complex64],
        a0: &Matrix2,
        a1: &Matrix2,
        c: usize,
        t: usize,
        threads: usize,
    ) {
        debug_assert_ne!(c, t);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        debug_assert_eq!(amps.len() % (1 << (hi + 1)), 0);
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let quads = amps.len() / 4;
        let ptr = SendPtr(amps.as_mut_ptr());
        if lo >= 1 {
            let [[z00, z01], [z10, z11]] = a0.m;
            let [[o00, o01], [o10, o11]] = a1.m;
            let cz00 = Coef::splat(z00);
            let cz01 = Coef::splat(z01);
            let cz10 = Coef::splat(z10);
            let cz11 = Coef::splat(z11);
            let co00 = Coef::splat(o00);
            let co01 = Coef::splat(o01);
            let co10 = Coef::splat(o10);
            let co11 = Coef::splat(o11);
            let run = 1usize << lo;
            let runs = quads >> lo;
            for_each_chunk(runs, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for r in range {
                    let base = insert_zero_bit(insert_zero_bit(r << lo, lo), hi);
                    let i0 = ptr.0.add(base);
                    let j0 = ptr.0.add(base | tmask);
                    let i1 = ptr.0.add(base | cmask);
                    let j1 = ptr.0.add(base | cmask | tmask);
                    let mut s = 0;
                    while s < run {
                        let x0 = load2(i0.add(s));
                        let x1 = load2(j0.add(s));
                        store2(i0.add(s), cz00.mul_add(x0, cz01.mul(x1)));
                        store2(j0.add(s), cz10.mul_add(x0, cz11.mul(x1)));
                        let y0 = load2(i1.add(s));
                        let y1 = load2(j1.add(s));
                        store2(i1.add(s), co00.mul_add(y0, co01.mul(y1)));
                        store2(j1.add(s), co10.mul_add(y0, co11.mul(y1)));
                        s += 2;
                    }
                }
            });
        } else if t == 0 {
            // t = 0, c = hi: each branch is its own stream of in-register
            // butterflies.
            let [[z00, z01], [z10, z11]] = a0.m;
            let [[o00, o01], [o10, o11]] = a1.m;
            let zc0 = Coef::per_lane(z00, z10);
            let zc1 = Coef::per_lane(z01, z11);
            let oc0 = Coef::per_lane(o00, o10);
            let oc1 = Coef::per_lane(o01, o11);
            for_each_chunk(quads, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for k in range {
                    let base = insert_zero_bit(2 * k, hi);
                    let zp = ptr.0.add(base);
                    let op = ptr.0.add(base | cmask);
                    store2(zp, bfly2(load2(zp), zc0, zc1));
                    store2(op, bfly2(load2(op), oc0, oc1));
                }
            });
        } else {
            multiplexed_c0(ptr, quads, amps.len(), a0, a1, hi, threads);
        }
    }

    /// AVX2 tier of [`super::super::apply_two`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn apply_two(
        amps: &mut [Complex64],
        g: &Matrix4,
        a: usize,
        b: usize,
        threads: usize,
    ) {
        debug_assert!(a < b);
        debug_assert_eq!(amps.len() % (1 << (b + 1)), 0);
        let ma = 1usize << a;
        let mb = 1usize << b;
        let m = g.m;
        let quads = amps.len() / 4;
        let ptr = SendPtr(amps.as_mut_ptr());
        if a >= 1 {
            let mut co = [[Coef::splat(Complex64::ZERO); 4]; 4];
            for (row, mrow) in co.iter_mut().zip(&m) {
                for (coef, entry) in row.iter_mut().zip(mrow) {
                    *coef = Coef::splat(*entry);
                }
            }
            let run = 1usize << a;
            let runs = quads >> a;
            for_each_chunk(runs, amps.len(), threads, move |range| unsafe {
                let ptr = ptr;
                for r in range {
                    let base = insert_zero_bit(insert_zero_bit(r << a, a), b);
                    let p = [
                        ptr.0.add(base),
                        ptr.0.add(base | ma),
                        ptr.0.add(base | mb),
                        ptr.0.add(base | ma | mb),
                    ];
                    let mut s = 0;
                    while s < run {
                        let v = [
                            load2(p[0].add(s)),
                            load2(p[1].add(s)),
                            load2(p[2].add(s)),
                            load2(p[3].add(s)),
                        ];
                        for (row, out) in co.iter().zip(p) {
                            let acc = row[1].mul_add(v[1], row[0].mul(v[0]));
                            let acc = row[2].mul_add(v[2], acc);
                            store2(out.add(s), row[3].mul_add(v[3], acc));
                        }
                        s += 2;
                    }
                }
            });
            return;
        }
        // a = 0, b = hi: registers u = [v0, v1] and w = [v2, v3]; the
        // dense 4×4 becomes per-lane column coefficients on the
        // duplicated legs, folded in the canonical 4×4 row order
        // (column 0 rounded first, then columns 1–3 fused) so one
        // member rounds identically to the a ≥ 1 and tile layouts.
        let cu = [
            Coef::per_lane(m[0][0], m[1][0]),
            Coef::per_lane(m[0][1], m[1][1]),
            Coef::per_lane(m[0][2], m[1][2]),
            Coef::per_lane(m[0][3], m[1][3]),
        ];
        let cw = [
            Coef::per_lane(m[2][0], m[3][0]),
            Coef::per_lane(m[2][1], m[3][1]),
            Coef::per_lane(m[2][2], m[3][2]),
            Coef::per_lane(m[2][3], m[3][3]),
        ];
        for_each_chunk(quads, amps.len(), threads, move |range| unsafe {
            let ptr = ptr;
            for k in range {
                let base = insert_zero_bit(2 * k, b);
                let up = ptr.0.add(base);
                let wp = ptr.0.add(base | mb);
                let u = load2(up);
                let w = load2(wp);
                let legs = [dup_lo(u), dup_hi(u), dup_lo(w), dup_hi(w)];
                let nu = cu[0].mul(legs[0]);
                let nu = cu[1].mul_add(legs[1], nu);
                let nu = cu[2].mul_add(legs[2], nu);
                let nu = cu[3].mul_add(legs[3], nu);
                let nw = cw[0].mul(legs[0]);
                let nw = cw[1].mul_add(legs[1], nw);
                let nw = cw[2].mul_add(legs[2], nw);
                let nw = cw[3].mul_add(legs[3], nw);
                store2(up, nu);
                store2(wp, nw);
            }
        });
    }

    // ---- Backward (adjoint) kernels ----------------------------------------

    /// AVX2 tier of [`super::super::backward_step_one`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn backward_step_one(
        ket: &mut [Complex64],
        bra: &mut [Complex64],
        g: &Matrix2,
        q: usize,
        threads: usize,
    ) -> Matrix2 {
        debug_assert_eq!(bra.len(), ket.len());
        debug_assert_eq!(ket.len() % (1 << (q + 1)), 0);
        let [[m00, m01], [m10, m11]] = g.m;
        let kp = SendPtr(ket.as_mut_ptr());
        let bp = SendPtr(bra.as_mut_ptr());
        let r = if q == 0 {
            // In-register butterflies; the reduction matrix splits into a
            // lane-aligned diagonal product (R00/R11) and a lane-swapped
            // cross product (R01/R10).
            let c0 = Coef::per_lane(m00, m10);
            let c1 = Coef::per_lane(m01, m11);
            let pairs = ket.len() / 2;
            reduce_chunks::<4>(pairs, ket.len(), threads, move |range| unsafe {
                let (kp, bp) = (kp, bp);
                let mut acc_d = _mm256_setzero_pd();
                let mut acc_x = _mm256_setzero_pd();
                for k in range {
                    let pk = kp.0.add(2 * k);
                    let pb = bp.0.add(2 * k);
                    let nk = bfly2(load2(pk), c0, c1);
                    store2(pk, nk);
                    let b = load2(pb);
                    acc_d = _mm256_add_pd(acc_d, mul_conj(nk, b));
                    acc_x = _mm256_add_pd(acc_x, mul_conj(nk, swap_lanes(b)));
                    store2(pb, bfly2(b, c0, c1));
                }
                let (r00, r11) = lanes(acc_d);
                let (r01, r10) = lanes(acc_x);
                [r00, r01, r10, r11]
            })
        } else {
            let c00 = Coef::splat(m00);
            let c01 = Coef::splat(m01);
            let c10 = Coef::splat(m10);
            let c11 = Coef::splat(m11);
            let half = 1usize << q;
            let runs = ket.len() >> (q + 1);
            reduce_chunks::<4>(runs, ket.len(), threads, move |range| unsafe {
                let (kp, bp) = (kp, bp);
                let mut acc = [_mm256_setzero_pd(); 4];
                for r in range {
                    let klo = kp.0.add(r << (q + 1));
                    let khi = klo.add(half);
                    let blo = bp.0.add(r << (q + 1));
                    let bhi = blo.add(half);
                    let mut s = 0;
                    while s < half {
                        let k0 = load2(klo.add(s));
                        let k1 = load2(khi.add(s));
                        let nk0 = c00.mul_add(k0, c01.mul(k1));
                        let nk1 = c10.mul_add(k0, c11.mul(k1));
                        store2(klo.add(s), nk0);
                        store2(khi.add(s), nk1);
                        let b0 = load2(blo.add(s));
                        let b1 = load2(bhi.add(s));
                        acc[0] = _mm256_add_pd(acc[0], mul_conj(nk0, b0));
                        acc[1] = _mm256_add_pd(acc[1], mul_conj(nk0, b1));
                        acc[2] = _mm256_add_pd(acc[2], mul_conj(nk1, b0));
                        acc[3] = _mm256_add_pd(acc[3], mul_conj(nk1, b1));
                        store2(blo.add(s), c00.mul_add(b0, c01.mul(b1)));
                        store2(bhi.add(s), c10.mul_add(b0, c11.mul(b1)));
                        s += 2;
                    }
                }
                [hsum(acc[0]), hsum(acc[1]), hsum(acc[2]), hsum(acc[3])]
            })
        };
        Matrix2 {
            m: [[r[0], r[1]], [r[2], r[3]]],
        }
    }

    /// AVX2 tier of [`super::super::backward_step_multiplexed`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn backward_step_multiplexed(
        ket: &mut [Complex64],
        bra: &mut [Complex64],
        z: &Matrix2,
        o: &Matrix2,
        c: usize,
        t: usize,
        threads: usize,
    ) -> (Matrix2, Matrix2) {
        debug_assert_eq!(bra.len(), ket.len());
        debug_assert_ne!(c, t);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        debug_assert_eq!(ket.len() % (1 << (hi + 1)), 0);
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let [[z00, z01], [z10, z11]] = z.m;
        let [[o00, o01], [o10, o11]] = o.m;
        let quads = ket.len() / 4;
        let kp = SendPtr(ket.as_mut_ptr());
        let bp = SendPtr(bra.as_mut_ptr());
        let r = if lo >= 1 {
            let cz00 = Coef::splat(z00);
            let cz01 = Coef::splat(z01);
            let cz10 = Coef::splat(z10);
            let cz11 = Coef::splat(z11);
            let co00 = Coef::splat(o00);
            let co01 = Coef::splat(o01);
            let co10 = Coef::splat(o10);
            let co11 = Coef::splat(o11);
            let run = 1usize << lo;
            let runs = quads >> lo;
            reduce_chunks::<8>(runs, ket.len(), threads, move |range| unsafe {
                let (kp, bp) = (kp, bp);
                let mut acc = [_mm256_setzero_pd(); 8];
                for r in range {
                    let base = insert_zero_bit(insert_zero_bit(r << lo, lo), hi);
                    let mut s = 0;
                    while s < run {
                        // Control-clear branch (z).
                        let ki = kp.0.add(base).add(s);
                        let kj = kp.0.add(base | tmask).add(s);
                        let bi = bp.0.add(base).add(s);
                        let bj = bp.0.add(base | tmask).add(s);
                        let k0 = load2(ki);
                        let k1 = load2(kj);
                        let nk0 = cz00.mul_add(k0, cz01.mul(k1));
                        let nk1 = cz10.mul_add(k0, cz11.mul(k1));
                        store2(ki, nk0);
                        store2(kj, nk1);
                        let b0 = load2(bi);
                        let b1 = load2(bj);
                        acc[0] = _mm256_add_pd(acc[0], mul_conj(nk0, b0));
                        acc[1] = _mm256_add_pd(acc[1], mul_conj(nk0, b1));
                        acc[2] = _mm256_add_pd(acc[2], mul_conj(nk1, b0));
                        acc[3] = _mm256_add_pd(acc[3], mul_conj(nk1, b1));
                        store2(bi, cz00.mul_add(b0, cz01.mul(b1)));
                        store2(bj, cz10.mul_add(b0, cz11.mul(b1)));
                        // Control-set branch (o).
                        let ki = kp.0.add(base | cmask).add(s);
                        let kj = kp.0.add(base | cmask | tmask).add(s);
                        let bi = bp.0.add(base | cmask).add(s);
                        let bj = bp.0.add(base | cmask | tmask).add(s);
                        let k0 = load2(ki);
                        let k1 = load2(kj);
                        let nk0 = co00.mul_add(k0, co01.mul(k1));
                        let nk1 = co10.mul_add(k0, co11.mul(k1));
                        store2(ki, nk0);
                        store2(kj, nk1);
                        let b0 = load2(bi);
                        let b1 = load2(bj);
                        acc[4] = _mm256_add_pd(acc[4], mul_conj(nk0, b0));
                        acc[5] = _mm256_add_pd(acc[5], mul_conj(nk0, b1));
                        acc[6] = _mm256_add_pd(acc[6], mul_conj(nk1, b0));
                        acc[7] = _mm256_add_pd(acc[7], mul_conj(nk1, b1));
                        store2(bi, co00.mul_add(b0, co01.mul(b1)));
                        store2(bj, co10.mul_add(b0, co11.mul(b1)));
                        s += 2;
                    }
                }
                [
                    hsum(acc[0]),
                    hsum(acc[1]),
                    hsum(acc[2]),
                    hsum(acc[3]),
                    hsum(acc[4]),
                    hsum(acc[5]),
                    hsum(acc[6]),
                    hsum(acc[7]),
                ]
            })
        } else if t == 0 {
            // t = 0, c = hi: per-branch in-register butterflies, each with
            // the diagonal/cross accumulator split of the q = 0 one-qubit
            // case.
            let zc0 = Coef::per_lane(z00, z10);
            let zc1 = Coef::per_lane(z01, z11);
            let oc0 = Coef::per_lane(o00, o10);
            let oc1 = Coef::per_lane(o01, o11);
            reduce_chunks::<8>(quads, ket.len(), threads, move |range| unsafe {
                let (kp, bp) = (kp, bp);
                let mut zacc_d = _mm256_setzero_pd();
                let mut zacc_x = _mm256_setzero_pd();
                let mut oacc_d = _mm256_setzero_pd();
                let mut oacc_x = _mm256_setzero_pd();
                for k in range {
                    let base = insert_zero_bit(2 * k, hi);
                    let kz = kp.0.add(base);
                    let bz = bp.0.add(base);
                    let nk = bfly2(load2(kz), zc0, zc1);
                    store2(kz, nk);
                    let b = load2(bz);
                    zacc_d = _mm256_add_pd(zacc_d, mul_conj(nk, b));
                    zacc_x = _mm256_add_pd(zacc_x, mul_conj(nk, swap_lanes(b)));
                    store2(bz, bfly2(b, zc0, zc1));
                    let ko = kp.0.add(base | cmask);
                    let bo = bp.0.add(base | cmask);
                    let nk = bfly2(load2(ko), oc0, oc1);
                    store2(ko, nk);
                    let b = load2(bo);
                    oacc_d = _mm256_add_pd(oacc_d, mul_conj(nk, b));
                    oacc_x = _mm256_add_pd(oacc_x, mul_conj(nk, swap_lanes(b)));
                    store2(bo, bfly2(b, oc0, oc1));
                }
                let (z00r, z11r) = lanes(zacc_d);
                let (z01r, z10r) = lanes(zacc_x);
                let (o00r, o11r) = lanes(oacc_d);
                let (o01r, o10r) = lanes(oacc_x);
                [z00r, z01r, z10r, z11r, o00r, o01r, o10r, o11r]
            })
        } else {
            // c = 0, t = hi: lanes are branches, so every reduction
            // product is lane-aligned — branch z lands in the low lane,
            // branch o in the high lane, with no shuffles at all.
            let c00 = Coef::per_lane(z00, o00);
            let c01 = Coef::per_lane(z01, o01);
            let c10 = Coef::per_lane(z10, o10);
            let c11 = Coef::per_lane(z11, o11);
            reduce_chunks::<8>(quads, ket.len(), threads, move |range| unsafe {
                let (kp, bp) = (kp, bp);
                let mut acc = [_mm256_setzero_pd(); 4];
                for k in range {
                    let base = insert_zero_bit(2 * k, hi);
                    let ku = kp.0.add(base);
                    let kw = kp.0.add(base | tmask);
                    let bu = bp.0.add(base);
                    let bw = bp.0.add(base | tmask);
                    let u = load2(ku);
                    let w = load2(kw);
                    let nu = c00.mul_add(u, c01.mul(w));
                    let nw = c10.mul_add(u, c11.mul(w));
                    store2(ku, nu);
                    store2(kw, nw);
                    let vu = load2(bu);
                    let vw = load2(bw);
                    acc[0] = _mm256_add_pd(acc[0], mul_conj(nu, vu));
                    acc[1] = _mm256_add_pd(acc[1], mul_conj(nu, vw));
                    acc[2] = _mm256_add_pd(acc[2], mul_conj(nw, vu));
                    acc[3] = _mm256_add_pd(acc[3], mul_conj(nw, vw));
                    store2(bu, c00.mul_add(vu, c01.mul(vw)));
                    store2(bw, c10.mul_add(vu, c11.mul(vw)));
                }
                let (z00r, o00r) = lanes(acc[0]);
                let (z01r, o01r) = lanes(acc[1]);
                let (z10r, o10r) = lanes(acc[2]);
                let (z11r, o11r) = lanes(acc[3]);
                [z00r, z01r, z10r, z11r, o00r, o01r, o10r, o11r]
            })
        };
        (
            Matrix2 {
                m: [[r[0], r[1]], [r[2], r[3]]],
            },
            Matrix2 {
                m: [[r[4], r[5]], [r[6], r[7]]],
            },
        )
    }

    /// AVX2 tier of [`super::super::backward_step_two`] for `a ≥ 1` (the
    /// dispatcher keeps `a = 0` on the scalar tier).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn backward_step_two(
        ket: &mut [Complex64],
        bra: &mut [Complex64],
        g: &Matrix4,
        a: usize,
        b: usize,
        threads: usize,
    ) -> Matrix4 {
        debug_assert_eq!(bra.len(), ket.len());
        debug_assert!(a >= 1 && a < b);
        debug_assert_eq!(ket.len() % (1 << (b + 1)), 0);
        let ma = 1usize << a;
        let mb = 1usize << b;
        let mut co = [[Coef::splat(Complex64::ZERO); 4]; 4];
        for (row, mrow) in co.iter_mut().zip(&g.m) {
            for (coef, entry) in row.iter_mut().zip(mrow) {
                *coef = Coef::splat(*entry);
            }
        }
        let run = 1usize << a;
        let runs = (ket.len() / 4) >> a;
        let kp = SendPtr(ket.as_mut_ptr());
        let bp = SendPtr(bra.as_mut_ptr());
        let r = reduce_chunks::<16>(runs, ket.len(), threads, move |range| unsafe {
            let (kp, bp) = (kp, bp);
            let mut acc = [_mm256_setzero_pd(); 16];
            for r in range {
                let base = insert_zero_bit(insert_zero_bit(r << a, a), b);
                let off = [base, base | ma, base | mb, base | ma | mb];
                let mut s = 0;
                while s < run {
                    let kv = [
                        load2(kp.0.add(off[0]).add(s)),
                        load2(kp.0.add(off[1]).add(s)),
                        load2(kp.0.add(off[2]).add(s)),
                        load2(kp.0.add(off[3]).add(s)),
                    ];
                    let bv = [
                        load2(bp.0.add(off[0]).add(s)),
                        load2(bp.0.add(off[1]).add(s)),
                        load2(bp.0.add(off[2]).add(s)),
                        load2(bp.0.add(off[3]).add(s)),
                    ];
                    for (row, (crow, &o)) in co.iter().zip(&off).enumerate() {
                        let nk = crow[1].mul_add(kv[1], crow[0].mul(kv[0]));
                        let nk = crow[2].mul_add(kv[2], nk);
                        let nk = crow[3].mul_add(kv[3], nk);
                        store2(kp.0.add(o).add(s), nk);
                        for (col, &bcol) in bv.iter().enumerate() {
                            acc[row * 4 + col] =
                                _mm256_add_pd(acc[row * 4 + col], mul_conj(nk, bcol));
                        }
                        let nb = crow[1].mul_add(bv[1], crow[0].mul(bv[0]));
                        let nb = crow[2].mul_add(bv[2], nb);
                        let nb = crow[3].mul_add(bv[3], nb);
                        store2(bp.0.add(o).add(s), nb);
                    }
                    s += 2;
                }
            }
            let mut out = [Complex64::ZERO; 16];
            for (o, v) in out.iter_mut().zip(acc) {
                *o = hsum(v);
            }
            out
        });
        let mut out = Matrix4::zero();
        for (row, orow) in out.m.iter_mut().enumerate() {
            for (col, entry) in orow.iter_mut().enumerate() {
                *entry = r[row * 4 + col];
            }
        }
        out
    }

    // ---- Reductions --------------------------------------------------------

    /// AVX2 tier of [`super::super::norm_sqr_sum`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn norm_sqr_sum(amps: &[Complex64]) -> f64 {
        let mut acc = _mm256_setzero_pd();
        let p = amps.as_ptr();
        let pairs = amps.len() / 2;
        for k in 0..pairs {
            let v = load2(p.add(2 * k));
            acc = _mm256_fmadd_pd(v, v, acc);
        }
        let (a, b) = lanes(acc);
        let mut total = a.re + a.im + b.re + b.im;
        for a in &amps[2 * pairs..] {
            total += a.norm_sqr();
        }
        total
    }

    /// Squares-and-pairs four probabilities from two amplitude registers:
    /// `hadd` leaves them in `[p0, p2, p1, p3]` order, fixed up with a
    /// cross-lane permute.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn four_probs(v0: F4, v1: F4) -> F4 {
        let h = _mm256_hadd_pd(_mm256_mul_pd(v0, v0), _mm256_mul_pd(v1, v1));
        _mm256_permute4x64_pd(h, 0b11_01_10_00)
    }

    /// AVX2 tier of [`super::super::probabilities_into`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn probabilities_into(amps: &[Complex64], out: &mut [f64]) {
        debug_assert_eq!(amps.len(), out.len());
        let p = amps.as_ptr();
        let o = out.as_mut_ptr();
        let blocks = amps.len() / 4;
        for k in 0..blocks {
            let probs = four_probs(load2(p.add(4 * k)), load2(p.add(4 * k + 2)));
            _mm256_storeu_pd(o.add(4 * k), probs);
        }
        for (o, a) in out[4 * blocks..].iter_mut().zip(&amps[4 * blocks..]) {
            *o = a.norm_sqr();
        }
    }

    /// AVX2 tier of [`super::super::expectation_diag`].
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn expectation_diag(amps: &[Complex64], diag: &[f64]) -> f64 {
        debug_assert_eq!(amps.len(), diag.len());
        let p = amps.as_ptr();
        let d = diag.as_ptr();
        let blocks = amps.len() / 4;
        let mut acc = _mm256_setzero_pd();
        for k in 0..blocks {
            let probs = four_probs(load2(p.add(4 * k)), load2(p.add(4 * k + 2)));
            acc = _mm256_fmadd_pd(probs, _mm256_loadu_pd(d.add(4 * k)), acc);
        }
        let (a, b) = lanes(acc);
        let mut total = a.re + a.im + b.re + b.im;
        for (a, d) in amps[4 * blocks..].iter().zip(&diag[4 * blocks..]) {
            total += a.norm_sqr() * d;
        }
        total
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    //! Differential tests pinning every AVX2 kernel body to its scalar
    //! tier: same inputs through both paths, compared at 1e-12. Qubit
    //! positions are swept exhaustively (including the in-register q = 0
    //! and q = 1 layouts) per generated case; matrices and amplitudes are
    //! property-generated. Each test no-ops on hardware without AVX2+FMA —
    //! there the dispatcher never selects these bodies either.
    use super::super::{
        apply_controlled_scalar, apply_multiplexed_scalar, apply_one_scalar, apply_two_scalar,
        backward_step_multiplexed_scalar, backward_step_one_scalar, backward_step_two_scalar,
    };
    use super::avx2;
    use crate::complex::Complex64;
    use crate::gates::{Matrix2, Matrix4};
    use proptest::prelude::*;

    const N: usize = 6;
    const TOL: f64 = 1e-12;

    fn to_amps(raw: &[f64]) -> Vec<Complex64> {
        raw.chunks_exact(2).map(|c| Complex64::new(c[0], c[1])).collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).norm() < TOL, "amplitude {i}: {x:?} vs {y:?}");
        }
    }

    fn assert_m2_close(a: &Matrix2, b: &Matrix2) {
        for r in 0..2 {
            for c in 0..2 {
                assert!((a.m[r][c] - b.m[r][c]).norm() < TOL, "entry ({r},{c})");
            }
        }
    }

    fn assert_m4_close(a: &Matrix4, b: &Matrix4) {
        for r in 0..4 {
            for c in 0..4 {
                assert!((a.m[r][c] - b.m[r][c]).norm() < TOL, "entry ({r},{c})");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn avx2_apply_one_matches_scalar(
            angles in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            raw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            let g = Matrix2::u3(angles.0, angles.1, angles.2);
            for q in 0..N {
                let mut fast = to_amps(&raw);
                let mut slow = fast.clone();
                unsafe { avx2::apply_one(&mut fast, &g, q, 1) };
                apply_one_scalar(&mut slow, &g, q, 1);
                assert_close(&fast, &slow);
            }
        }

        #[test]
        fn avx2_apply_controlled_matches_scalar(
            angles in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            raw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            let g = Matrix2::u3(angles.0, angles.1, angles.2);
            for c in 0..N {
                for t in 0..N {
                    if c == t {
                        continue;
                    }
                    let mut fast = to_amps(&raw);
                    let mut slow = fast.clone();
                    unsafe { avx2::apply_controlled(&mut fast, &g, c, t, 1) };
                    apply_controlled_scalar(&mut slow, &g, c, t, 1);
                    assert_close(&fast, &slow);
                }
            }
        }

        #[test]
        fn avx2_apply_multiplexed_matches_scalar(
            za in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            oa in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            raw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            let a0 = Matrix2::u3(za.0, za.1, za.2);
            let a1 = Matrix2::u3(oa.0, oa.1, oa.2);
            for c in 0..N {
                for t in 0..N {
                    if c == t {
                        continue;
                    }
                    let mut fast = to_amps(&raw);
                    let mut slow = fast.clone();
                    unsafe { avx2::apply_multiplexed(&mut fast, &a0, &a1, c, t, 1) };
                    apply_multiplexed_scalar(&mut slow, &a0, &a1, c, t, 1);
                    assert_close(&fast, &slow);
                }
            }
        }

        #[test]
        fn avx2_apply_two_matches_scalar(
            ua in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            ca in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            raw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            // A generic (non-sparse) 4x4: CU3 stacked on a one-qubit U3.
            let g = Matrix4::controlled(&Matrix2::u3(ca.0, ca.1, ca.2), true)
                .matmul(&Matrix4::single_on_low(&Matrix2::u3(ua.0, ua.1, ua.2)));
            for a in 0..N {
                for b in (a + 1)..N {
                    let mut fast = to_amps(&raw);
                    let mut slow = fast.clone();
                    unsafe { avx2::apply_two(&mut fast, &g, a, b, 1) };
                    apply_two_scalar(&mut slow, &g, a, b, 1);
                    assert_close(&fast, &slow);
                }
            }
        }

        #[test]
        fn avx2_backward_one_matches_scalar(
            angles in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            kraw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
            braw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            let g = Matrix2::u3(angles.0, angles.1, angles.2);
            for q in 0..N {
                let mut kf = to_amps(&kraw);
                let mut bf = to_amps(&braw);
                let mut ks = kf.clone();
                let mut bs = bf.clone();
                let rf = unsafe { avx2::backward_step_one(&mut kf, &mut bf, &g, q, 1) };
                let rs = backward_step_one_scalar(&mut ks, &mut bs, &g, q, 1);
                assert_close(&kf, &ks);
                assert_close(&bf, &bs);
                assert_m2_close(&rf, &rs);
            }
        }

        #[test]
        fn avx2_backward_multiplexed_matches_scalar(
            za in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            oa in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            kraw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
            braw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            let z = Matrix2::u3(za.0, za.1, za.2);
            let o = Matrix2::u3(oa.0, oa.1, oa.2);
            for c in 0..N {
                for t in 0..N {
                    if c == t {
                        continue;
                    }
                    let mut kf = to_amps(&kraw);
                    let mut bf = to_amps(&braw);
                    let mut ks = kf.clone();
                    let mut bs = bf.clone();
                    let (rzf, rof) =
                        unsafe { avx2::backward_step_multiplexed(&mut kf, &mut bf, &z, &o, c, t, 1) };
                    let (rzs, ros) =
                        backward_step_multiplexed_scalar(&mut ks, &mut bs, &z, &o, c, t, 1);
                    assert_close(&kf, &ks);
                    assert_close(&bf, &bs);
                    assert_m2_close(&rzf, &rzs);
                    assert_m2_close(&rof, &ros);
                }
            }
        }

        #[test]
        fn avx2_backward_two_matches_scalar(
            ua in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            ca in (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
            kraw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
            braw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            let g = Matrix4::controlled(&Matrix2::u3(ca.0, ca.1, ca.2), false)
                .matmul(&Matrix4::single_on_high(&Matrix2::u3(ua.0, ua.1, ua.2)));
            // The dispatcher keeps a == 0 on the scalar tier, so the AVX2
            // body only ever sees contiguous quad runs (a >= 1).
            for a in 1..N {
                for b in (a + 1)..N {
                    let mut kf = to_amps(&kraw);
                    let mut bf = to_amps(&braw);
                    let mut ks = kf.clone();
                    let mut bs = bf.clone();
                    let rf = unsafe { avx2::backward_step_two(&mut kf, &mut bf, &g, a, b, 1) };
                    let rs = backward_step_two_scalar(&mut ks, &mut bs, &g, a, b, 1);
                    assert_close(&kf, &ks);
                    assert_close(&bf, &bs);
                    assert_m4_close(&rf, &rs);
                }
            }
        }

        #[test]
        fn avx2_reductions_match_scalar(
            raw in prop::collection::vec(-1.0f64..1.0, 1 << (N + 1)),
            diag in prop::collection::vec(-2.0f64..2.0, 1 << N),
            len in 1usize..(1 << N),
        ) {
            if !is_x86_feature_detected!("avx2") || !is_x86_feature_detected!("fma") {
                return;
            }
            // Sub-slice lengths exercise the scalar tails (len % 4 != 0).
            let amps = to_amps(&raw);
            let amps = &amps[..len];
            let diag = &diag[..len];
            let norm_ref: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
            assert!((unsafe { avx2::norm_sqr_sum(amps) } - norm_ref).abs() < TOL);
            let exp_ref: f64 = amps.iter().zip(diag).map(|(a, d)| a.norm_sqr() * d).sum();
            assert!((unsafe { avx2::expectation_diag(amps, diag) } - exp_ref).abs() < TOL);
            let mut probs = vec![0.0; len];
            unsafe { avx2::probabilities_into(amps, &mut probs) };
            for (p, a) in probs.iter().zip(amps) {
                assert!((p - a.norm_sqr()).abs() < TOL);
            }
        }
    }
}
