//! Cache-blocked, batch-major SIMD sweeps for [`crate::BatchedState`].
//!
//! The interleaved kernels in [`super::simd`] put two *amplitudes of one
//! member* in a register, which forces per-qubit-position layouts (the
//! `q = 0` butterfly needs in-register shuffles). This module uses the
//! orthogonal decomposition: a register holds the **same amplitude index
//! of several batch members**, stored as split re/im planes
//! (`re[idx·G + member]`). In that layout every gate — any qubit
//! position, controlled or dense — is a pure broadcast-FMA with zero
//! shuffles, and the control-clear half of a controlled op is skipped
//! exactly like the scalar kernels do.
//!
//! Two tile widths share this design: [`x86`] packs [`GROUP`] = 4
//! members per 256-bit AVX2 register, and [`w8`] packs 8 per 512-bit
//! register where `avx512f` is available (twice the f64 FMA throughput
//! on server cores with dual 512-bit FMA ports — the fused-ansatz sweep
//! is FMA-port-bound, so the wider tile is where most of the batched
//! speedup comes from). [`apply_members`] dispatches widest-first and
//! leaves any remainder to the caller's per-member path.
//!
//! A group of members is transposed into a thread-local scratch tile
//! once, swept through **all** fused ops of the circuit, and transposed
//! back out. Two cache refinements keep the hot loops fed:
//!
//! * **L1-chunked sweeps.** A full tile is `G·dim` complex amplitudes —
//!   128 KiB at 10 qubits for the 4-member tile, which no longer fits
//!   L1. Maximal runs of ops whose [`op_span`] fits an L1-sized window
//!   (`CHUNK_AMPS` per width) are applied chunk-by-chunk: every op of
//!   the run visits one aligned window before the sweep moves to the
//!   next, so the window stays L1-resident across the whole run. Ops
//!   spanning the top qubits (24 of the paper ansatz's 121 fused ops
//!   touch q9) are applied whole-tile between runs. The reordering is
//!   bit-transparent: an op with span ≤ chunk is block-diagonal over
//!   aligned windows, so the same FP operations run in the same
//!   per-amplitude order.
//! * **Blocked transposes.** The member-major↔plane transpose is done in
//!   `TRANSPOSE_BLOCK`-amplitude blocks so the strided plane accesses
//!   reuse L1 lines instead of touching a fresh cache line per scalar —
//!   without blocking the transposes re-streamed the whole tile once
//!   per member and cost ~20% of the sweep.
//!
//! Entry points return the number of members handled (a multiple of 4,
//! or 0 when the SIMD tier is off or the arch is not x86-64); callers
//! run the remainder through the per-member path.

#![allow(dead_code)] // the non-x86 build compiles the entry points only

use super::simd;
use crate::fusion::{CompiledCircuit, FusedOp};
use crate::Complex64;

/// Members per tile group — one AVX2 register of `f64` lanes. The
/// 512-bit tile variant ([`w8`]) packs [`w8::GROUP`] = 8 members instead.
pub(crate) const GROUP: usize = 4;

/// Smallest aligned window size an op is block-diagonal over:
/// `2^(highest qubit + 1)` amplitudes. Both tile widths use this to plan
/// their L1-blocked sweeps.
fn op_span(op: &FusedOp) -> usize {
    let top = match op {
        FusedOp::One { q, .. } => *q,
        FusedOp::Multiplexed { c, t, .. } => (*c).max(*t),
        FusedOp::Two { a, b, .. } => (*a).max(*b),
    };
    1usize << (top + 1)
}

/// Batch-major forward sweep: applies `ops` to as many leading groups of
/// [`GROUP`] members of `amps` (member-major, `dim` amplitudes each) as
/// the tile layout covers. Returns the number of members handled.
pub(crate) fn apply_members(ops: &[FusedOp], amps: &mut [Complex64], dim: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if simd::level() == simd::SimdLevel::Avx2 && dim >= 2 {
            // Widest groups first: eight-member 512-bit tiles where the
            // CPU has them, four-member 256-bit tiles on the remainder,
            // per-member kernels (the caller's job) on what's left.
            let mut done = 0;
            if simd::avx512_tile() {
                done = w8::apply_members(ops, amps, dim);
            }
            done += x86::apply_members(ops, &mut amps[done * dim..], dim);
            return done;
        }
    }
    let _ = (ops, amps, dim);
    0
}

/// Batch-major backward sweep: the tile analogue of the per-member
/// adjoint pass. `ket`/`bra` hold member-major amplitudes, `grads` holds
/// member-major gradient rows of `num_slots` entries for the same
/// members. Returns the number of members handled.
pub(crate) fn backward_members(
    compiled: &CompiledCircuit,
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    grads: &mut [f64],
    dim: usize,
    num_slots: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if simd::level() == simd::SimdLevel::Avx2 && dim >= 2 {
            return x86::backward_members(compiled, ket, bra, grads, dim, num_slots);
        }
    }
    let _ = (compiled, ket, bra, grads, dim, num_slots);
    0
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    use super::super::insert_zero_bit;
    use crate::fusion::{CompiledCircuit, DerivKind, FusedOp};
    use crate::gates::{Matrix2, Matrix4};
    use crate::Complex64;

    use super::GROUP;

    std::thread_local! {
        /// Per-thread tile scratch, grown once and reused — keeps the
        /// engine's zero-steady-state-allocation contract.
        static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    }

    /// One split-plane tile: `re[idx·4 + m]` / `im[idx·4 + m]` for the
    /// four members of the current group. Raw pointers into the
    /// thread-local scratch; never shared across threads.
    #[derive(Clone, Copy)]
    struct Plane {
        re: *mut f64,
        im: *mut f64,
    }

    /// Four members' worth of one amplitude index.
    #[derive(Clone, Copy)]
    struct V4 {
        re: __m256d,
        im: __m256d,
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn v4_zero() -> V4 {
        V4 {
            re: _mm256_setzero_pd(),
            im: _mm256_setzero_pd(),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn v4_load(p: Plane, idx: usize) -> V4 {
        V4 {
            re: _mm256_loadu_pd(p.re.add(idx * GROUP)),
            im: _mm256_loadu_pd(p.im.add(idx * GROUP)),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn v4_store(p: Plane, idx: usize, v: V4) {
        _mm256_storeu_pd(p.re.add(idx * GROUP), v.re);
        _mm256_storeu_pd(p.im.add(idx * GROUP), v.im);
    }

    /// `acc + a·conj(b)` lane-wise — the reduction product of the
    /// backward steps.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn mul_conj_add(a: V4, b: V4, acc: V4) -> V4 {
        V4 {
            re: _mm256_fmadd_pd(a.re, b.re, _mm256_fmadd_pd(a.im, b.im, acc.re)),
            im: _mm256_fnmadd_pd(a.re, b.im, _mm256_fmadd_pd(a.im, b.re, acc.im)),
        }
    }

    /// Spills a reduction accumulator to the four members' values.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn v4_lanes(v: V4) -> [Complex64; GROUP] {
        let mut re = [0.0f64; GROUP];
        let mut im = [0.0f64; GROUP];
        _mm256_storeu_pd(re.as_mut_ptr(), v.re);
        _mm256_storeu_pd(im.as_mut_ptr(), v.im);
        [
            Complex64::new(re[0], im[0]),
            Complex64::new(re[1], im[1]),
            Complex64::new(re[2], im[2]),
            Complex64::new(re[3], im[3]),
        ]
    }

    /// A complex coefficient broadcast across the member lanes.
    #[derive(Clone, Copy)]
    struct K {
        rr: __m256d,
        ii: __m256d,
    }

    impl K {
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn new(c: Complex64) -> Self {
            Self {
                rr: _mm256_set1_pd(c.re),
                ii: _mm256_set1_pd(c.im),
            }
        }

        /// `self·v`.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn mul(self, v: V4) -> V4 {
            V4 {
                re: _mm256_fnmadd_pd(v.im, self.ii, _mm256_mul_pd(v.re, self.rr)),
                im: _mm256_fmadd_pd(v.re, self.ii, _mm256_mul_pd(v.im, self.rr)),
            }
        }

        /// `acc + self·v`.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn mul_add(self, v: V4, acc: V4) -> V4 {
            V4 {
                re: _mm256_fnmadd_pd(v.im, self.ii, _mm256_fmadd_pd(v.re, self.rr, acc.re)),
                im: _mm256_fmadd_pd(v.re, self.ii, _mm256_fmadd_pd(v.im, self.rr, acc.im)),
            }
        }
    }

    /// Broadcast coefficients of a 2×2.
    #[derive(Clone, Copy)]
    struct K2 {
        k: [[K; 2]; 2],
    }

    impl K2 {
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn new(g: &Matrix2) -> Self {
            Self {
                k: [
                    [K::new(g.m[0][0]), K::new(g.m[0][1])],
                    [K::new(g.m[1][0]), K::new(g.m[1][1])],
                ],
            }
        }

        /// In-place butterfly on amplitude indices `i`, `j`.
        #[inline]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn butterfly(self, p: Plane, i: usize, j: usize) {
            let vi = v4_load(p, i);
            let vj = v4_load(p, j);
            // Canonical 2×2 row order (cross-layout bit-identity contract):
            // fold column 1 first, then fuse column 0 on top, matching the
            // interleaved kernels' `bfly2`/two-stream bodies exactly.
            v4_store(p, i, self.k[0][0].mul_add(vi, self.k[0][1].mul(vj)));
            v4_store(p, j, self.k[1][0].mul_add(vi, self.k[1][1].mul(vj)));
        }
    }

    // ---- Transpose in/out --------------------------------------------------

    /// Amp-index block size for the transposes — see the wide tile's
    /// [`super::w8::TRANSPOSE_BLOCK`] note; blocking keeps the strided
    /// side of the transpose on L1-resident lines.
    const TRANSPOSE_BLOCK: usize = 64;

    /// Member-major → split-plane tile for one group of four members.
    fn transpose_in(members: &[Complex64], dim: usize, p: Plane) {
        let bs = dim.min(TRANSPOSE_BLOCK);
        for start in (0..dim).step_by(bs) {
            for (m, member) in members.chunks_exact(dim).enumerate() {
                for (i, a) in member[start..start + bs].iter().enumerate() {
                    // SAFETY: the scratch tile holds dim·GROUP entries per
                    // plane; start + i < dim and m < GROUP.
                    unsafe {
                        *p.re.add((start + i) * GROUP + m) = a.re;
                        *p.im.add((start + i) * GROUP + m) = a.im;
                    }
                }
            }
        }
    }

    /// Split-plane tile → member-major for one group of four members.
    fn transpose_out(members: &mut [Complex64], dim: usize, p: Plane) {
        let bs = dim.min(TRANSPOSE_BLOCK);
        for start in (0..dim).step_by(bs) {
            for (m, member) in members.chunks_exact_mut(dim).enumerate() {
                for (i, a) in member[start..start + bs].iter_mut().enumerate() {
                    // SAFETY: same bounds as `transpose_in`.
                    unsafe {
                        a.re = *p.re.add((start + i) * GROUP + m);
                        a.im = *p.im.add((start + i) * GROUP + m);
                    }
                }
            }
        }
    }

    // ---- Forward op sweeps -------------------------------------------------
    //
    // Every forward kernel takes a `(base, len)` window: the op is applied
    // to amplitude indices `[base, base + len)` only. An op whose qubits
    // all lie below `log2(len)` is block-diagonal over aligned windows of
    // that size, so a full sweep (`base = 0, len = dim`) and a
    // window-by-window sweep compute the *identical* floating-point
    // operations per amplitude — the L1 chunking below is bit-transparent.

    /// One-qubit op on a tile window: `len/2` uniform butterflies, any `q`
    /// with `2^(q+1) <= len`. Enumerated as nested unit-stride loops (not
    /// `insert_zero_bit`) so the inner loop walks contiguous addresses.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_one(p: Plane, base: usize, len: usize, g: &Matrix2, q: usize) {
        let k = K2::new(g);
        let mask = 1usize << q;
        let mut block = base;
        while block < base + len {
            for i in block..block + mask {
                k.butterfly(p, i, i | mask);
            }
            block += 2 * mask;
        }
    }

    /// Controlled op (`a0 = I`): butterflies on the control-set quarter
    /// only — the tile keeps the scalar kernels' sparsity advantage.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_controlled(p: Plane, base: usize, len: usize, g: &Matrix2, c: usize, t: usize) {
        let k = K2::new(g);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let mlo = 1usize << lo;
        let mhi = 1usize << hi;
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let mut outer = base;
        while outer < base + len {
            let mut inner = outer;
            while inner < outer + mhi {
                for i in inner..inner + mlo {
                    let x = i | cmask;
                    k.butterfly(p, x, x | tmask);
                }
                inner += 2 * mlo;
            }
            outer += 2 * mhi;
        }
    }

    /// General multiplexed op: independent butterflies on both branches.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_multiplexed(
        p: Plane,
        base: usize,
        len: usize,
        a0: &Matrix2,
        a1: &Matrix2,
        c: usize,
        t: usize,
    ) {
        let k0 = K2::new(a0);
        let k1 = K2::new(a1);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let mlo = 1usize << lo;
        let mhi = 1usize << hi;
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let mut outer = base;
        while outer < base + len {
            let mut inner = outer;
            while inner < outer + mhi {
                for quad in inner..inner + mlo {
                    k0.butterfly(p, quad, quad | tmask);
                    k1.butterfly(p, quad | cmask, quad | cmask | tmask);
                }
                inner += 2 * mlo;
            }
            outer += 2 * mhi;
        }
    }

    /// Dense two-qubit op: a 4×4 on every quad.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_two(p: Plane, base: usize, len: usize, g: &Matrix4, a: usize, b: usize) {
        let mut k = [[K::new(Complex64::ZERO); 4]; 4];
        for (row, mrow) in k.iter_mut().zip(&g.m) {
            for (coef, entry) in row.iter_mut().zip(mrow) {
                *coef = K::new(*entry);
            }
        }
        let ma = 1usize << a;
        let mb = 1usize << b;
        let mut outer = base;
        while outer < base + len {
            let mut inner = outer;
            while inner < outer + mb {
                for quad in inner..inner + ma {
                    let idx = [quad, quad | ma, quad | mb, quad | ma | mb];
                    let v = [
                        v4_load(p, idx[0]),
                        v4_load(p, idx[1]),
                        v4_load(p, idx[2]),
                        v4_load(p, idx[3]),
                    ];
                    for (krow, &i) in k.iter().zip(&idx) {
                        let acc = krow[1].mul_add(v[1], krow[0].mul(v[0]));
                        let acc = krow[2].mul_add(v[2], acc);
                        v4_store(p, i, krow[3].mul_add(v[3], acc));
                    }
                }
                inner += 2 * ma;
            }
            outer += 2 * mb;
        }
    }

    /// Applies one fused op to a tile window, peeling the identity-`a0`
    /// controlled case like the interleaved dispatcher does.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_op(p: Plane, base: usize, len: usize, op: &FusedOp) {
        match op {
            FusedOp::One { m, q } => tile_one(p, base, len, m, *q),
            FusedOp::Multiplexed { a0, a1, c, t } => {
                if *a0 == Matrix2::identity() {
                    tile_controlled(p, base, len, a1, *c, *t);
                } else {
                    tile_multiplexed(p, base, len, a0, a1, *c, *t);
                }
            }
            FusedOp::Two { m, a, b } => tile_two(p, base, len, m, *a, *b),
        }
    }

    use super::op_span;

    /// L1-blocking chunk, in amplitudes. One chunk's working set is
    /// `2 planes × GROUP lanes × CHUNK_AMPS × 8 B = 32 KiB` — inside a
    /// 48 KiB L1d with room for the coefficient broadcasts. Above ~9
    /// qubits the full group tile (64 KiB at 10 qubits) no longer fits
    /// L1, and streaming it from L2 once per op erases the tile's
    /// fewer-ops advantage over the per-member path; chunked runs keep
    /// the hot window L1-resident across consecutive low-qubit ops.
    const CHUNK_AMPS: usize = 512;

    /// Forward sweep of all ops over one group tile, L1-blocked: maximal
    /// runs of ops spanning at most [`CHUNK_AMPS`] are applied
    /// chunk-by-chunk (every op of the run to one chunk, then the next
    /// chunk), ops reaching higher qubits sweep the full tile alone.
    /// Bit-identical to the naive per-op sweep — see the window note on
    /// the kernels above.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_sweep(p: Plane, dim: usize, ops: &[FusedOp]) {
        let chunk = dim.min(CHUNK_AMPS);
        let mut i = 0;
        while i < ops.len() {
            let mut j = i;
            while j < ops.len() && op_span(&ops[j]) <= chunk {
                j += 1;
            }
            if j == i {
                tile_op(p, 0, dim, &ops[i]);
                i += 1;
            } else {
                for base in (0..dim).step_by(chunk) {
                    for op in &ops[i..j] {
                        tile_op(p, base, chunk, op);
                    }
                }
                i = j;
            }
        }
    }

    pub(super) fn apply_members(ops: &[FusedOp], amps: &mut [Complex64], dim: usize) -> usize {
        let batch = amps.len() / dim;
        let groups = batch / GROUP;
        if groups == 0 {
            return 0;
        }
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.resize(2 * GROUP * dim, 0.0);
            let (re, im) = scratch.split_at_mut(GROUP * dim);
            let p = Plane {
                re: re.as_mut_ptr(),
                im: im.as_mut_ptr(),
            };
            for chunk in amps.chunks_exact_mut(GROUP * dim).take(groups) {
                transpose_in(chunk, dim, p);
                // SAFETY: callers checked the avx2 tier (AVX2 + FMA
                // present); the tile covers indices below dim.
                unsafe { tile_sweep(p, dim, ops) };
                transpose_out(chunk, dim, p);
            }
        });
        groups * GROUP
    }

    // ---- Backward op sweeps ------------------------------------------------

    /// Backward one-qubit step on the tile: applies the daggered op to
    /// ket and bra planes while reducing the four per-member 2×2
    /// matrices `R[x][y] = Σ k'_x·conj(b_y)`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_backward_one(
        ket: Plane,
        bra: Plane,
        dim: usize,
        g: &Matrix2,
        q: usize,
    ) -> [Matrix2; GROUP] {
        let k = K2::new(g);
        let mask = 1usize << q;
        let mut acc = [v4_zero(); 4];
        for r in 0..dim / 2 {
            let i = insert_zero_bit(r, q);
            let j = i | mask;
            let k0 = v4_load(ket, i);
            let k1 = v4_load(ket, j);
            let nk0 = k.k[0][0].mul_add(k0, k.k[0][1].mul(k1));
            let nk1 = k.k[1][0].mul_add(k0, k.k[1][1].mul(k1));
            v4_store(ket, i, nk0);
            v4_store(ket, j, nk1);
            let b0 = v4_load(bra, i);
            let b1 = v4_load(bra, j);
            acc[0] = mul_conj_add(nk0, b0, acc[0]);
            acc[1] = mul_conj_add(nk0, b1, acc[1]);
            acc[2] = mul_conj_add(nk1, b0, acc[2]);
            acc[3] = mul_conj_add(nk1, b1, acc[3]);
            v4_store(bra, i, k.k[0][0].mul_add(b0, k.k[0][1].mul(b1)));
            v4_store(bra, j, k.k[1][0].mul_add(b0, k.k[1][1].mul(b1)));
        }
        let l = [
            v4_lanes(acc[0]),
            v4_lanes(acc[1]),
            v4_lanes(acc[2]),
            v4_lanes(acc[3]),
        ];
        std::array::from_fn(|m| Matrix2 {
            m: [[l[0][m], l[1][m]], [l[2][m], l[3][m]]],
        })
    }

    /// Backward multiplexed step on the tile; when `skip_zero` is set the
    /// control-clear branch is untouched (identity `a0` with all-zero
    /// branch derivatives) and its reduction matrices are returned as
    /// zero.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_backward_multiplexed(
        ket: Plane,
        bra: Plane,
        dim: usize,
        a0: &Matrix2,
        a1: &Matrix2,
        c: usize,
        t: usize,
        skip_zero: bool,
    ) -> ([Matrix2; GROUP], [Matrix2; GROUP]) {
        let k0 = K2::new(a0);
        let k1 = K2::new(a1);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let mut acc = [v4_zero(); 8];
        for r in 0..dim / 4 {
            let base = insert_zero_bit(insert_zero_bit(r, lo), hi);
            if !skip_zero {
                let (i, j) = (base, base | tmask);
                let x0 = v4_load(ket, i);
                let x1 = v4_load(ket, j);
                let nk0 = k0.k[0][0].mul_add(x0, k0.k[0][1].mul(x1));
                let nk1 = k0.k[1][0].mul_add(x0, k0.k[1][1].mul(x1));
                v4_store(ket, i, nk0);
                v4_store(ket, j, nk1);
                let b0 = v4_load(bra, i);
                let b1 = v4_load(bra, j);
                acc[0] = mul_conj_add(nk0, b0, acc[0]);
                acc[1] = mul_conj_add(nk0, b1, acc[1]);
                acc[2] = mul_conj_add(nk1, b0, acc[2]);
                acc[3] = mul_conj_add(nk1, b1, acc[3]);
                v4_store(bra, i, k0.k[0][0].mul_add(b0, k0.k[0][1].mul(b1)));
                v4_store(bra, j, k0.k[1][0].mul_add(b0, k0.k[1][1].mul(b1)));
            }
            let (i, j) = (base | cmask, base | cmask | tmask);
            let x0 = v4_load(ket, i);
            let x1 = v4_load(ket, j);
            let nk0 = k1.k[0][0].mul_add(x0, k1.k[0][1].mul(x1));
            let nk1 = k1.k[1][0].mul_add(x0, k1.k[1][1].mul(x1));
            v4_store(ket, i, nk0);
            v4_store(ket, j, nk1);
            let b0 = v4_load(bra, i);
            let b1 = v4_load(bra, j);
            acc[4] = mul_conj_add(nk0, b0, acc[4]);
            acc[5] = mul_conj_add(nk0, b1, acc[5]);
            acc[6] = mul_conj_add(nk1, b0, acc[6]);
            acc[7] = mul_conj_add(nk1, b1, acc[7]);
            v4_store(bra, i, k1.k[0][0].mul_add(b0, k1.k[0][1].mul(b1)));
            v4_store(bra, j, k1.k[1][0].mul_add(b0, k1.k[1][1].mul(b1)));
        }
        let l: [[Complex64; GROUP]; 8] = std::array::from_fn(|i| unsafe { v4_lanes(acc[i]) });
        (
            std::array::from_fn(|m| Matrix2 {
                m: [[l[0][m], l[1][m]], [l[2][m], l[3][m]]],
            }),
            std::array::from_fn(|m| Matrix2 {
                m: [[l[4][m], l[5][m]], [l[6][m], l[7][m]]],
            }),
        )
    }

    /// Backward dense two-qubit step on the tile.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_backward_two(
        ket: Plane,
        bra: Plane,
        dim: usize,
        g: &Matrix4,
        a: usize,
        b: usize,
    ) -> [Matrix4; GROUP] {
        let mut k = [[K::new(Complex64::ZERO); 4]; 4];
        for (row, mrow) in k.iter_mut().zip(&g.m) {
            for (coef, entry) in row.iter_mut().zip(mrow) {
                *coef = K::new(*entry);
            }
        }
        let ma = 1usize << a;
        let mb = 1usize << b;
        let mut acc = [v4_zero(); 16];
        for r in 0..dim / 4 {
            let base = insert_zero_bit(insert_zero_bit(r, a), b);
            let idx = [base, base | ma, base | mb, base | ma | mb];
            let kv = [
                v4_load(ket, idx[0]),
                v4_load(ket, idx[1]),
                v4_load(ket, idx[2]),
                v4_load(ket, idx[3]),
            ];
            let bv = [
                v4_load(bra, idx[0]),
                v4_load(bra, idx[1]),
                v4_load(bra, idx[2]),
                v4_load(bra, idx[3]),
            ];
            for (row, (krow, &i)) in k.iter().zip(&idx).enumerate() {
                let nk = krow[1].mul_add(kv[1], krow[0].mul(kv[0]));
                let nk = krow[2].mul_add(kv[2], nk);
                let nk = krow[3].mul_add(kv[3], nk);
                v4_store(ket, i, nk);
                for (col, &bcol) in bv.iter().enumerate() {
                    acc[row * 4 + col] = mul_conj_add(nk, bcol, acc[row * 4 + col]);
                }
                let nb = krow[1].mul_add(bv[1], krow[0].mul(bv[0]));
                let nb = krow[2].mul_add(bv[2], nb);
                let nb = krow[3].mul_add(bv[3], nb);
                v4_store(bra, i, nb);
            }
        }
        let l: [[Complex64; GROUP]; 16] = std::array::from_fn(|i| unsafe { v4_lanes(acc[i]) });
        std::array::from_fn(|m| {
            let mut out = Matrix4::zero();
            for (row, orow) in out.m.iter_mut().enumerate() {
                for (col, entry) in orow.iter_mut().enumerate() {
                    *entry = l[row * 4 + col][m];
                }
            }
            out
        })
    }

    /// `Σ_{r,c} d[r][c]·R[c][r]` (local copy of the adjoint contraction).
    fn trace2(d: &Matrix2, r: &Matrix2) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for row in 0..2 {
            for col in 0..2 {
                acc += d.m[row][col] * r.m[col][row];
            }
        }
        acc
    }

    /// The 4×4 analogue of [`trace2`].
    fn trace4(d: &Matrix4, r: &Matrix4) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for row in 0..4 {
            for col in 0..4 {
                acc += d.m[row][col] * r.m[col][row];
            }
        }
        acc
    }

    pub(super) fn backward_members(
        compiled: &CompiledCircuit,
        ket: &mut [Complex64],
        bra: &mut [Complex64],
        grads: &mut [f64],
        dim: usize,
        num_slots: usize,
    ) -> usize {
        let batch = ket.len() / dim;
        let groups = batch / GROUP;
        if groups == 0 {
            return 0;
        }
        let identity = Matrix2::identity();
        let zero2 = Matrix2::zero();
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.resize(4 * GROUP * dim, 0.0);
            let (kplane, bplane) = scratch.split_at_mut(2 * GROUP * dim);
            let (kre, kim) = kplane.split_at_mut(GROUP * dim);
            let (bre, bim) = bplane.split_at_mut(GROUP * dim);
            let kp = Plane {
                re: kre.as_mut_ptr(),
                im: kim.as_mut_ptr(),
            };
            let bp = Plane {
                re: bre.as_mut_ptr(),
                im: bim.as_mut_ptr(),
            };
            for (g, (kchunk, bchunk)) in ket
                .chunks_exact_mut(GROUP * dim)
                .zip(bra.chunks_exact_mut(GROUP * dim))
                .take(groups)
                .enumerate()
            {
                transpose_in(kchunk, dim, kp);
                transpose_in(bchunk, dim, bp);
                let gbase = g * GROUP * num_slots;
                for (idx, op) in compiled.ops().iter().enumerate().rev() {
                    let derivs = compiled.op_derivs(idx);
                    if derivs.is_empty() {
                        // Constant op: plain dagger sweeps on both tiles.
                        // SAFETY: callers checked the avx2 tier.
                        unsafe {
                            match op {
                                FusedOp::One { m, q } => {
                                    let d = m.dagger();
                                    tile_one(kp, 0, dim, &d, *q);
                                    tile_one(bp, 0, dim, &d, *q);
                                }
                                FusedOp::Multiplexed { a0, a1, c, t } => {
                                    let d0 = a0.dagger();
                                    let d1 = a1.dagger();
                                    if d0 == identity {
                                        tile_controlled(kp, 0, dim, &d1, *c, *t);
                                        tile_controlled(bp, 0, dim, &d1, *c, *t);
                                    } else {
                                        tile_multiplexed(kp, 0, dim, &d0, &d1, *c, *t);
                                        tile_multiplexed(bp, 0, dim, &d0, &d1, *c, *t);
                                    }
                                }
                                FusedOp::Two { m, a, b } => {
                                    let d = m.dagger();
                                    tile_two(kp, 0, dim, &d, *a, *b);
                                    tile_two(bp, 0, dim, &d, *a, *b);
                                }
                            }
                        }
                        continue;
                    }
                    match op {
                        FusedOp::One { m, q } => {
                            // SAFETY: callers checked the avx2 tier.
                            let r =
                                unsafe { tile_backward_one(kp, bp, dim, &m.dagger(), *q) };
                            for (m, rm) in r.iter().enumerate() {
                                let grow = gbase + m * num_slots;
                                for sd in derivs {
                                    let DerivKind::One(d) = &sd.d else {
                                        unreachable!("deriv shape matches its fused op");
                                    };
                                    grads[grow + sd.slot] += 2.0 * trace2(d, rm).re;
                                }
                            }
                        }
                        FusedOp::Multiplexed { a0, a1, c, t } => {
                            // Identity control-clear branch with all-zero
                            // branch derivatives never contributes to R0:
                            // skip that half of the sweep entirely.
                            let skip_zero = *a0 == identity
                                && derivs.iter().all(|sd| {
                                    matches!(&sd.d, DerivKind::Multiplexed(d0, _) if *d0 == zero2)
                                });
                            // SAFETY: callers checked the avx2 tier.
                            let (r0, r1) = unsafe {
                                tile_backward_multiplexed(
                                    kp,
                                    bp,
                                    dim,
                                    &a0.dagger(),
                                    &a1.dagger(),
                                    *c,
                                    *t,
                                    skip_zero,
                                )
                            };
                            for m in 0..GROUP {
                                let grow = gbase + m * num_slots;
                                for sd in derivs {
                                    let DerivKind::Multiplexed(d0, d1) = &sd.d else {
                                        unreachable!("deriv shape matches its fused op");
                                    };
                                    grads[grow + sd.slot] +=
                                        2.0 * (trace2(d0, &r0[m]) + trace2(d1, &r1[m])).re;
                                }
                            }
                        }
                        FusedOp::Two { m, a, b } => {
                            // SAFETY: callers checked the avx2 tier.
                            let r = unsafe {
                                tile_backward_two(kp, bp, dim, &m.dagger(), *a, *b)
                            };
                            for (m, rm) in r.iter().enumerate() {
                                let grow = gbase + m * num_slots;
                                for sd in derivs {
                                    let DerivKind::Two(d) = &sd.d else {
                                        unreachable!("deriv shape matches its fused op");
                                    };
                                    grads[grow + sd.slot] += 2.0 * trace4(d, rm).re;
                                }
                            }
                        }
                    }
                }
                transpose_out(kchunk, dim, kp);
                transpose_out(bchunk, dim, bp);
            }
        });
        groups * GROUP
    }
}

/// The 512-bit tile variant: identical structure to [`x86`] but eight
/// members per `__m512d` lane. Forward sweep only — the backward pass is
/// reduction-heavy and stays on the 256-bit tile, while the forward
/// sweep is FMA-throughput-bound and scales with lane width on CPUs with
/// 512-bit FMA units. Per-lane arithmetic uses the same canonical
/// `mul_add` ordering as every other layout, so results stay
/// bit-identical to the scalar and 256-bit paths.
#[cfg(target_arch = "x86_64")]
mod w8 {
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    use super::op_span;
    use crate::fusion::FusedOp;
    use crate::gates::{Matrix2, Matrix4};
    use crate::Complex64;

    /// Members per 512-bit tile group.
    pub(super) const GROUP: usize = 8;

    std::thread_local! {
        /// Per-thread tile scratch for the wide tile, grown once.
        static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    }

    /// Split-plane tile over eight members: `re[idx·8 + m]`.
    #[derive(Clone, Copy)]
    struct Plane {
        re: *mut f64,
        im: *mut f64,
    }

    /// Eight members' worth of one amplitude index.
    #[derive(Clone, Copy)]
    struct V8 {
        re: __m512d,
        im: __m512d,
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn v8_load(p: Plane, idx: usize) -> V8 {
        V8 {
            re: _mm512_loadu_pd(p.re.add(idx * GROUP)),
            im: _mm512_loadu_pd(p.im.add(idx * GROUP)),
        }
    }

    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn v8_store(p: Plane, idx: usize, v: V8) {
        _mm512_storeu_pd(p.re.add(idx * GROUP), v.re);
        _mm512_storeu_pd(p.im.add(idx * GROUP), v.im);
    }

    /// A complex coefficient broadcast across the eight member lanes.
    #[derive(Clone, Copy)]
    struct K {
        rr: __m512d,
        ii: __m512d,
    }

    impl K {
        #[inline]
        #[target_feature(enable = "avx512f")]
        unsafe fn new(c: Complex64) -> Self {
            Self {
                rr: _mm512_set1_pd(c.re),
                ii: _mm512_set1_pd(c.im),
            }
        }

        /// `self·v`.
        #[inline]
        #[target_feature(enable = "avx512f")]
        unsafe fn mul(self, v: V8) -> V8 {
            V8 {
                re: _mm512_fnmadd_pd(v.im, self.ii, _mm512_mul_pd(v.re, self.rr)),
                im: _mm512_fmadd_pd(v.re, self.ii, _mm512_mul_pd(v.im, self.rr)),
            }
        }

        /// `acc + self·v`.
        #[inline]
        #[target_feature(enable = "avx512f")]
        unsafe fn mul_add(self, v: V8, acc: V8) -> V8 {
            V8 {
                re: _mm512_fnmadd_pd(v.im, self.ii, _mm512_fmadd_pd(v.re, self.rr, acc.re)),
                im: _mm512_fmadd_pd(v.re, self.ii, _mm512_fmadd_pd(v.im, self.rr, acc.im)),
            }
        }
    }

    /// Broadcast coefficients of a 2×2.
    #[derive(Clone, Copy)]
    struct K2 {
        k: [[K; 2]; 2],
    }

    impl K2 {
        #[inline]
        #[target_feature(enable = "avx512f")]
        unsafe fn new(g: &Matrix2) -> Self {
            Self {
                k: [
                    [K::new(g.m[0][0]), K::new(g.m[0][1])],
                    [K::new(g.m[1][0]), K::new(g.m[1][1])],
                ],
            }
        }

        /// In-place butterfly on amplitude indices `i`, `j` — canonical
        /// row order (column 1 first), like every other layout.
        #[inline]
        #[target_feature(enable = "avx512f")]
        unsafe fn butterfly(self, p: Plane, i: usize, j: usize) {
            let vi = v8_load(p, i);
            let vj = v8_load(p, j);
            v8_store(p, i, self.k[0][0].mul_add(vi, self.k[0][1].mul(vj)));
            v8_store(p, j, self.k[1][0].mul_add(vi, self.k[1][1].mul(vj)));
        }
    }

    /// Amp-index block size for the transposes: all eight members fill
    /// (or drain) one block of tile rows before moving on, so the
    /// stride-`GROUP` side of the transpose stays within a few KiB of
    /// L1-resident lines instead of streaming the whole tile per member.
    const TRANSPOSE_BLOCK: usize = 64;

    /// Member-major → split-plane tile for one group of eight members.
    fn transpose_in(members: &[Complex64], dim: usize, p: Plane) {
        let bs = dim.min(TRANSPOSE_BLOCK);
        for start in (0..dim).step_by(bs) {
            for (m, member) in members.chunks_exact(dim).enumerate() {
                for (i, a) in member[start..start + bs].iter().enumerate() {
                    // SAFETY: the scratch holds dim·GROUP entries per plane.
                    unsafe {
                        *p.re.add((start + i) * GROUP + m) = a.re;
                        *p.im.add((start + i) * GROUP + m) = a.im;
                    }
                }
            }
        }
    }

    /// Split-plane tile → member-major for one group of eight members.
    fn transpose_out(members: &mut [Complex64], dim: usize, p: Plane) {
        let bs = dim.min(TRANSPOSE_BLOCK);
        for start in (0..dim).step_by(bs) {
            for (m, member) in members.chunks_exact_mut(dim).enumerate() {
                for (i, a) in member[start..start + bs].iter_mut().enumerate() {
                    // SAFETY: same bounds as `transpose_in`.
                    unsafe {
                        a.re = *p.re.add((start + i) * GROUP + m);
                        a.im = *p.im.add((start + i) * GROUP + m);
                    }
                }
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn tile_one(p: Plane, base: usize, len: usize, g: &Matrix2, q: usize) {
        let k = K2::new(g);
        let mask = 1usize << q;
        let mut block = base;
        while block < base + len {
            for i in block..block + mask {
                k.butterfly(p, i, i | mask);
            }
            block += 2 * mask;
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn tile_controlled(p: Plane, base: usize, len: usize, g: &Matrix2, c: usize, t: usize) {
        let k = K2::new(g);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let mlo = 1usize << lo;
        let mhi = 1usize << hi;
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let mut outer = base;
        while outer < base + len {
            let mut inner = outer;
            while inner < outer + mhi {
                for i in inner..inner + mlo {
                    let x = i | cmask;
                    k.butterfly(p, x, x | tmask);
                }
                inner += 2 * mlo;
            }
            outer += 2 * mhi;
        }
    }

    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_multiplexed(
        p: Plane,
        base: usize,
        len: usize,
        a0: &Matrix2,
        a1: &Matrix2,
        c: usize,
        t: usize,
    ) {
        let k0 = K2::new(a0);
        let k1 = K2::new(a1);
        let (lo, hi) = if c < t { (c, t) } else { (t, c) };
        let mlo = 1usize << lo;
        let mhi = 1usize << hi;
        let cmask = 1usize << c;
        let tmask = 1usize << t;
        let mut outer = base;
        while outer < base + len {
            let mut inner = outer;
            while inner < outer + mhi {
                for quad in inner..inner + mlo {
                    k0.butterfly(p, quad, quad | tmask);
                    k1.butterfly(p, quad | cmask, quad | cmask | tmask);
                }
                inner += 2 * mlo;
            }
            outer += 2 * mhi;
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn tile_two(p: Plane, base: usize, len: usize, g: &Matrix4, a: usize, b: usize) {
        let mut k = [[K::new(Complex64::ZERO); 4]; 4];
        for (row, mrow) in k.iter_mut().zip(&g.m) {
            for (coef, entry) in row.iter_mut().zip(mrow) {
                *coef = K::new(*entry);
            }
        }
        let ma = 1usize << a;
        let mb = 1usize << b;
        let mut outer = base;
        while outer < base + len {
            let mut inner = outer;
            while inner < outer + mb {
                for quad in inner..inner + ma {
                    let idx = [quad, quad | ma, quad | mb, quad | ma | mb];
                    let v = [
                        v8_load(p, idx[0]),
                        v8_load(p, idx[1]),
                        v8_load(p, idx[2]),
                        v8_load(p, idx[3]),
                    ];
                    for (krow, &i) in k.iter().zip(&idx) {
                        let acc = krow[1].mul_add(v[1], krow[0].mul(v[0]));
                        let acc = krow[2].mul_add(v[2], acc);
                        v8_store(p, i, krow[3].mul_add(v[3], acc));
                    }
                }
                inner += 2 * ma;
            }
            outer += 2 * mb;
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn tile_op(p: Plane, base: usize, len: usize, op: &FusedOp) {
        match op {
            FusedOp::One { m, q } => tile_one(p, base, len, m, *q),
            FusedOp::Multiplexed { a0, a1, c, t } => {
                if *a0 == Matrix2::identity() {
                    tile_controlled(p, base, len, a1, *c, *t);
                } else {
                    tile_multiplexed(p, base, len, a0, a1, *c, *t);
                }
            }
            FusedOp::Two { m, a, b } => tile_two(p, base, len, m, *a, *b),
        }
    }

    /// L1-blocking chunk for the wide tile: `2 planes × 8 lanes ×
    /// CHUNK_AMPS × 8 B = 32 KiB`, same budget as the 256-bit tile's
    /// 512-amplitude chunks.
    const CHUNK_AMPS: usize = 256;

    /// Forward sweep, L1-blocked exactly like the 256-bit tile's.
    #[target_feature(enable = "avx512f")]
    unsafe fn tile_sweep(p: Plane, dim: usize, ops: &[FusedOp]) {
        let chunk = dim.min(CHUNK_AMPS);
        let mut i = 0;
        while i < ops.len() {
            let mut j = i;
            while j < ops.len() && op_span(&ops[j]) <= chunk {
                j += 1;
            }
            if j == i {
                tile_op(p, 0, dim, &ops[i]);
                i += 1;
            } else {
                for base in (0..dim).step_by(chunk) {
                    for op in &ops[i..j] {
                        tile_op(p, base, chunk, op);
                    }
                }
                i = j;
            }
        }
    }

    pub(super) fn apply_members(ops: &[FusedOp], amps: &mut [Complex64], dim: usize) -> usize {
        let batch = amps.len() / dim;
        let groups = batch / GROUP;
        if groups == 0 {
            return 0;
        }
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.resize(2 * GROUP * dim, 0.0);
            let (re, im) = scratch.split_at_mut(GROUP * dim);
            let p = Plane {
                re: re.as_mut_ptr(),
                im: im.as_mut_ptr(),
            };
            for chunk in amps.chunks_exact_mut(GROUP * dim).take(groups) {
                transpose_in(chunk, dim, p);
                // SAFETY: callers checked `avx512_tile()` (AVX-512F
                // present); the tile covers indices below dim.
                unsafe { tile_sweep(p, dim, ops) };
                transpose_out(chunk, dim, p);
            }
        });
        groups * GROUP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
    use crate::fusion::DerivKind;
    use crate::gates::{Matrix2, Matrix4};
    use crate::kernels;

    fn random_amps(len: usize, seed: u64) -> Vec<Complex64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    /// An op list covering every tile kernel shape: one-qubit at the edge
    /// positions, multiplexed in both orientations, identity-`a0`
    /// (controlled sparsity) and a dense two-qubit op.
    fn op_suite(n: usize) -> Vec<FusedOp> {
        let u = |a, b, c| Matrix2::u3(a, b, c);
        vec![
            FusedOp::One { m: u(0.3, -0.8, 1.1), q: 0 },
            FusedOp::One { m: u(-1.2, 0.4, 0.9), q: 1 },
            FusedOp::One { m: u(0.6, 0.2, -0.5), q: n - 1 },
            FusedOp::Multiplexed { a0: u(0.1, 0.7, -0.3), a1: u(-0.9, 0.2, 0.8), c: 0, t: 2 },
            FusedOp::Multiplexed { a0: u(1.3, -0.2, 0.5), a1: u(0.4, 0.9, -1.1), c: 2, t: 0 },
            FusedOp::Multiplexed { a0: Matrix2::identity(), a1: u(0.8, -0.6, 0.2), c: 1, t: n - 1 },
            FusedOp::Two {
                m: Matrix4::controlled(&u(0.5, 0.3, -0.7), true)
                    .matmul(&Matrix4::single_on_low(&u(-0.4, 1.0, 0.6))),
                a: 1,
                b: 3,
            },
        ]
    }

    /// The QuServe batching contract: tile-handled members carry exactly
    /// the same bits as the per-member interleaved path (`assert_eq!` on
    /// the raw f64 bits, not a tolerance).
    #[test]
    fn tile_forward_is_bit_identical_to_per_member_path() {
        let n = 5;
        let dim = 1usize << n;
        let ops = op_suite(n);
        for batch in [4usize, 5, 7, 8, 16] {
            let mut tiled = random_amps(batch * dim, 0xBA7C + batch as u64);
            let reference = tiled.clone();
            let done = apply_members(&ops, &mut tiled, dim);
            if done == 0 {
                return; // no AVX2 tier on this host: tile declines, nothing to pin
            }
            assert_eq!(done, (batch / GROUP) * GROUP, "batch {batch}");
            let mut expect = reference.clone();
            for member in expect[..done * dim].chunks_mut(dim) {
                for op in &ops {
                    match op {
                        FusedOp::One { m, q } => kernels::apply_one(member, m, *q, 1),
                        FusedOp::Multiplexed { a0, a1, c, t } => {
                            kernels::apply_multiplexed(member, a0, a1, *c, *t, 1)
                        }
                        FusedOp::Two { m, a, b } => kernels::apply_two(member, m, *a, *b, 1),
                    }
                }
            }
            for (i, (x, y)) in tiled[..done * dim].iter().zip(&expect[..done * dim]).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "batch {batch}, amplitude {i}: {x:?} vs {y:?}"
                );
            }
            // The remainder group is the caller's job and must be untouched.
            for (i, (x, y)) in tiled[done * dim..].iter().zip(&reference[done * dim..]).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "batch {batch}, tail amplitude {i} was modified"
                );
            }
        }
    }

    fn trace2(d: &Matrix2, r: &Matrix2) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for row in 0..2 {
            for col in 0..2 {
                acc += d.m[row][col] * r.m[col][row];
            }
        }
        acc
    }

    fn trace4(d: &Matrix4, r: &Matrix4) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for row in 0..4 {
            for col in 0..4 {
                acc += d.m[row][col] * r.m[col][row];
            }
        }
        acc
    }

    /// Per-member reference of the backward sweep, written against the
    /// dispatcher kernels (mirrors `adjoint::backward_member`).
    fn backward_reference(
        compiled: &CompiledCircuit,
        ket: &mut [Complex64],
        bra: &mut [Complex64],
        grad: &mut [f64],
    ) {
        for (idx, op) in compiled.ops().iter().enumerate().rev() {
            let derivs = compiled.op_derivs(idx);
            if derivs.is_empty() {
                for amps in [&mut *ket, &mut *bra] {
                    match op {
                        FusedOp::One { m, q } => kernels::apply_one(amps, &m.dagger(), *q, 1),
                        FusedOp::Multiplexed { a0, a1, c, t } => kernels::apply_multiplexed(
                            amps,
                            &a0.dagger(),
                            &a1.dagger(),
                            *c,
                            *t,
                            1,
                        ),
                        FusedOp::Two { m, a, b } => {
                            kernels::apply_two(amps, &m.dagger(), *a, *b, 1)
                        }
                    }
                }
                continue;
            }
            match op {
                FusedOp::One { m, q } => {
                    let r = kernels::backward_step_one(ket, bra, &m.dagger(), *q, 1);
                    for sd in derivs {
                        let DerivKind::One(d) = &sd.d else { unreachable!() };
                        grad[sd.slot] += 2.0 * trace2(d, &r).re;
                    }
                }
                FusedOp::Multiplexed { a0, a1, c, t } => {
                    let (r0, r1) = kernels::backward_step_multiplexed(
                        ket,
                        bra,
                        &a0.dagger(),
                        &a1.dagger(),
                        *c,
                        *t,
                        1,
                    );
                    for sd in derivs {
                        let DerivKind::Multiplexed(d0, d1) = &sd.d else { unreachable!() };
                        grad[sd.slot] += 2.0 * (trace2(d0, &r0) + trace2(d1, &r1)).re;
                    }
                }
                FusedOp::Two { m, a, b } => {
                    let r = kernels::backward_step_two(ket, bra, &m.dagger(), *a, *b, 1);
                    for sd in derivs {
                        let DerivKind::Two(d) = &sd.d else { unreachable!() };
                        grad[sd.slot] += 2.0 * trace4(d, &r).re;
                    }
                }
            }
        }
    }

    #[test]
    fn tile_backward_matches_per_member_reference() {
        // An ansatz plus constant gates so the sweep hits the
        // empty-derivative (dagger-only) arm too.
        let mut circuit = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 4,
            num_blocks: 2,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        circuit.h(0).unwrap().swap(1, 3).unwrap();
        let params: Vec<f64> = (0..circuit.num_slots()).map(|i| 0.1 + 0.05 * i as f64).collect();
        let compiled = CompiledCircuit::compile_with_grad(&circuit, &params).unwrap();
        let dim = 1usize << 4;
        let ns = compiled.num_slots();
        for batch in [4usize, 8] {
            let mut ket = random_amps(batch * dim, 0x5EED + batch as u64);
            let mut bra = random_amps(batch * dim, 0xF00D + batch as u64);
            let mut grads = vec![0.0; batch * ns];
            let mut ket_ref = ket.clone();
            let mut bra_ref = bra.clone();
            let mut grads_ref = vec![0.0; batch * ns];
            let done = backward_members(&compiled, &mut ket, &mut bra, &mut grads, dim, ns);
            if done == 0 {
                return; // no AVX2 tier on this host
            }
            assert_eq!(done, batch);
            for ((k, b), g) in ket_ref
                .chunks_mut(dim)
                .zip(bra_ref.chunks_mut(dim))
                .zip(grads_ref.chunks_mut(ns))
            {
                backward_reference(&compiled, k, b, g);
            }
            for (i, (a, b)) in grads.iter().zip(&grads_ref).enumerate() {
                assert!((a - b).abs() < 1e-12, "grad {i}: {a} vs {b}");
            }
            for (i, (a, b)) in ket.iter().zip(&ket_ref).enumerate() {
                assert!((*a - *b).norm() < 1e-12, "ket {i}: {a:?} vs {b:?}");
            }
            for (i, (a, b)) in bra.iter().zip(&bra_ref).enumerate() {
                assert!((*a - *b).norm() < 1e-12, "bra {i}: {a:?} vs {b:?}");
            }
        }
    }
}
