//! Classical-to-quantum data encoding.
//!
//! QuGeo loads seismic data into quantum amplitudes three ways:
//!
//! * [`amplitude_encode`] — one vector of `2^n` values on `n` qubits,
//! * [`encode_grouped`] — the ST-Encoder: data split into per-source
//!   groups, each group amplitude-encoded on its own qubit subset; the
//!   joint state is the tensor product of the group states,
//! * [`encode_batched`] — QuBatch: `B` samples concatenated into one
//!   statevector over `n + log₂B` qubits, the batch index living in the
//!   high-order qubits.
//!
//! Encoding necessarily ℓ₂-normalises the data (quantum amplitudes must
//! have unit norm); QuBatch additionally spreads one unit of norm across
//! all batch members, which is the precision loss the paper's Section 3.3.3
//! discusses. [`BatchedState::block_weights`] records each member's share.

use crate::{QsimError, State};

/// Amplitude-encodes a real vector of power-of-two length onto
/// `log₂(len)` qubits.
///
/// # Errors
///
/// Returns [`QsimError::InvalidStateLength`] for non-power-of-two lengths
/// and [`QsimError::ZeroVector`] for all-zero data.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::encoding::amplitude_encode;
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let state = amplitude_encode(&[1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(state.num_qubits(), 2);
/// assert!((state.probability(0) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn amplitude_encode(data: &[f64]) -> Result<State, QsimError> {
    State::from_real_normalized(data)
}

/// Amplitude-encodes after zero-padding the data up to the next power of
/// two.
///
/// # Errors
///
/// Returns [`QsimError::ZeroVector`] for all-zero (or empty) data.
pub fn amplitude_encode_padded(data: &[f64]) -> Result<State, QsimError> {
    if data.is_empty() {
        return Err(QsimError::ZeroVector);
    }
    let target = data.len().next_power_of_two();
    if target == data.len() {
        return amplitude_encode(data);
    }
    let mut padded = data.to_vec();
    padded.resize(target, 0.0);
    amplitude_encode(&padded)
}

/// Description of a grouped (ST-Encoder) layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    /// Number of groups (e.g. seismic sources).
    pub num_groups: usize,
    /// Qubits each group occupies.
    pub qubits_per_group: usize,
}

impl GroupLayout {
    /// Computes the layout for splitting `data_len` values into
    /// `num_groups` equal power-of-two groups.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] unless `num_groups` divides
    /// `data_len` into equal power-of-two chunks.
    pub fn for_data(data_len: usize, num_groups: usize) -> Result<Self, QsimError> {
        if num_groups == 0 || data_len == 0 || !data_len.is_multiple_of(num_groups) {
            return Err(QsimError::InvalidEncoding {
                reason: format!("cannot split {data_len} values into {num_groups} groups"),
            });
        }
        let group_size = data_len / num_groups;
        if !group_size.is_power_of_two() {
            return Err(QsimError::InvalidEncoding {
                reason: format!("group size {group_size} is not a power of two"),
            });
        }
        Ok(Self {
            num_groups,
            qubits_per_group: group_size.trailing_zeros() as usize,
        })
    }

    /// Total qubits of the grouped register.
    pub fn total_qubits(&self) -> usize {
        self.num_groups * self.qubits_per_group
    }

    /// The qubit indices of group `g` (low to high).
    ///
    /// # Panics
    ///
    /// Panics if `g >= self.num_groups`.
    pub fn group_qubits(&self, g: usize) -> std::ops::Range<usize> {
        assert!(g < self.num_groups, "group {g} out of range");
        g * self.qubits_per_group..(g + 1) * self.qubits_per_group
    }
}

/// ST-Encoder: splits `data` into `num_groups` equal chunks (one per
/// seismic source), amplitude-encodes each chunk on its own qubits, and
/// returns the tensor-product state. Group 0 occupies the lowest qubits.
///
/// Each group is normalised independently — the relative scale between
/// groups is intentionally discarded, matching the paper's design where
/// each source is an independent physical event.
///
/// # Errors
///
/// Returns [`QsimError::InvalidEncoding`] for non-divisible layouts and
/// [`QsimError::ZeroVector`] if any group is all zeros.
pub fn encode_grouped(data: &[f64], num_groups: usize) -> Result<State, QsimError> {
    let layout = GroupLayout::for_data(data.len(), num_groups)?;
    let group_size = 1usize << layout.qubits_per_group;
    let mut state: Option<State> = None;
    // Build from the highest group downwards so that group 0 ends up in
    // the low-order qubits (State::tensor makes the right operand low).
    for g in (0..num_groups).rev() {
        let chunk = &data[g * group_size..(g + 1) * group_size];
        let group_state = State::from_real_normalized(chunk)?;
        state = Some(match state {
            None => group_state,
            Some(s) => s.tensor(&group_state),
        });
    }
    Ok(state.expect("num_groups >= 1 guaranteed by layout"))
}

/// A QuBatch-encoded state: `B` samples sharing one circuit execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedState {
    state: State,
    data_qubits: usize,
    batch_qubits: usize,
    batch_count: usize,
    block_weights: Vec<f64>,
}

impl BatchedState {
    /// The underlying statevector over `data_qubits + batch_qubits`
    /// qubits.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Qubits holding each sample's data.
    pub fn data_qubits(&self) -> usize {
        self.data_qubits
    }

    /// Extra high-order qubits holding the batch index (`log₂B`).
    pub fn batch_qubits(&self) -> usize {
        self.batch_qubits
    }

    /// Number of real samples encoded (the register may hold up to
    /// `2^batch_qubits`).
    pub fn batch_count(&self) -> usize {
        self.batch_count
    }

    /// `|c_b|²` — the share of total state norm carried by sample `b`.
    ///
    /// These weights are invariant under any circuit that touches only the
    /// data qubits, which is what makes per-sample decoding and gradients
    /// well-defined.
    pub fn block_weights(&self) -> &[f64] {
        &self.block_weights
    }

    /// Extracts the (renormalised) data-qubit state of sample `b` from a
    /// processed statevector of matching dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `b >= batch_count` or the
    /// processed state's size disagrees with the encoding.
    pub fn sample_state(&self, processed: &State, b: usize) -> Result<State, QsimError> {
        if b >= self.batch_count {
            return Err(QsimError::InvalidEncoding {
                reason: format!("sample {b} out of range ({} encoded)", self.batch_count),
            });
        }
        if processed.num_qubits() != self.data_qubits + self.batch_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.data_qubits + self.batch_qubits,
                actual: processed.num_qubits(),
            });
        }
        let mut block = processed.block(b, 1 << self.batch_qubits)?;
        block.normalize();
        Ok(block)
    }
}

/// QuBatch encoding: concatenates `samples` (each of the same power-of-two
/// length) into one statevector whose high-order qubits index the batch.
///
/// The batch dimension is zero-padded up to a power of two, so `B` samples
/// cost `ceil(log₂B)` extra qubits — the paper's "process 2^N batches with
/// only N additional qubits".
///
/// # Errors
///
/// * [`QsimError::InvalidEncoding`] if `samples` is empty or lengths are
///   unequal / not a power of two.
/// * [`QsimError::ZeroVector`] if any sample is all zeros.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::encoding::encode_batched;
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let batch = encode_batched(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// assert_eq!(batch.data_qubits(), 1);
/// assert_eq!(batch.batch_qubits(), 1);
/// assert!((batch.block_weights()[0] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn encode_batched(samples: &[Vec<f64>]) -> Result<BatchedState, QsimError> {
    let first = samples.first().ok_or_else(|| QsimError::InvalidEncoding {
        reason: "empty batch".to_string(),
    })?;
    let sample_len = first.len();
    if sample_len == 0 || !sample_len.is_power_of_two() {
        return Err(QsimError::InvalidEncoding {
            reason: format!("sample length {sample_len} is not a power of two"),
        });
    }
    let padded_count = samples.len().next_power_of_two();
    let batch_qubits = padded_count.trailing_zeros() as usize;
    let data_qubits = sample_len.trailing_zeros() as usize;

    let mut concat = Vec::with_capacity(padded_count * sample_len);
    let mut norms_sq = Vec::with_capacity(samples.len());
    for s in samples {
        if s.len() != sample_len {
            return Err(QsimError::InvalidEncoding {
                reason: format!("sample length {} differs from {}", s.len(), sample_len),
            });
        }
        let nsq: f64 = s.iter().map(|x| x * x).sum();
        if nsq == 0.0 {
            return Err(QsimError::ZeroVector);
        }
        norms_sq.push(nsq);
        concat.extend_from_slice(s);
    }
    concat.resize(padded_count * sample_len, 0.0);

    let total: f64 = norms_sq.iter().sum();
    let block_weights = norms_sq.iter().map(|n| n / total).collect();
    let state = State::from_real_normalized(&concat)?;

    Ok(BatchedState {
        state,
        data_qubits,
        batch_qubits,
        batch_count: samples.len(),
        block_weights,
    })
}

/// Depth estimate of an amplitude-encoding circuit on `n` qubits under the
/// ST-Encoder's linear-depth construction (the paper cites [Li et al.,
/// QCE'23] for circuit length growing linearly with qubit count).
pub fn encoding_depth_estimate(num_qubits: usize) -> usize {
    // Linear model with the constant reported for ST-encoders.
    8 * num_qubits
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn amplitude_encode_matches_normalized_data() {
        let s = amplitude_encode(&[3.0, 4.0]).unwrap();
        assert!((s.amplitudes()[0].re - 0.6).abs() < EPS);
        assert!((s.amplitudes()[1].re - 0.8).abs() < EPS);
    }

    #[test]
    fn padded_encode_rounds_up() {
        let s = amplitude_encode_padded(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(s.num_qubits(), 2);
        assert!(s.probability(3) < EPS);
        assert!(amplitude_encode_padded(&[]).is_err());
    }

    #[test]
    fn group_layout_validation() {
        let l = GroupLayout::for_data(256, 2).unwrap();
        assert_eq!(l.qubits_per_group, 7);
        assert_eq!(l.total_qubits(), 14);
        assert_eq!(l.group_qubits(1), 7..14);
        assert!(GroupLayout::for_data(256, 3).is_err());
        assert!(GroupLayout::for_data(24, 2).is_err()); // 12 not power of two
        assert!(GroupLayout::for_data(256, 0).is_err());
    }

    #[test]
    fn encode_grouped_single_group_equals_plain() {
        let data = [1.0, -2.0, 0.5, 3.0];
        let grouped = encode_grouped(&data, 1).unwrap();
        let plain = amplitude_encode(&data).unwrap();
        for (a, b) in grouped.amplitudes().iter().zip(plain.amplitudes()) {
            assert!((*a - *b).norm() < EPS);
        }
    }

    #[test]
    fn encode_grouped_is_product_state() {
        // Group 0 = [1, 0] -> |0>, group 1 = [0, 1] -> |1>.
        // Joint state should be |1>_g1 |0>_g0 = basis index 0b10.
        let s = encode_grouped(&[1.0, 0.0, 0.0, 1.0], 2).unwrap();
        assert_eq!(s.num_qubits(), 2);
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn encode_grouped_normalises_each_group() {
        // Different group magnitudes must not leak across groups.
        let s = encode_grouped(&[100.0, 0.0, 0.0, 0.001], 2).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn encode_grouped_rejects_zero_group() {
        assert!(matches!(
            encode_grouped(&[1.0, 1.0, 0.0, 0.0], 2),
            Err(QsimError::ZeroVector)
        ));
    }

    #[test]
    fn batched_encoding_layout() {
        let b = encode_batched(&[vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]]).unwrap();
        assert_eq!(b.data_qubits(), 2);
        assert_eq!(b.batch_qubits(), 1);
        assert_eq!(b.batch_count(), 2);
        assert_eq!(b.state().num_qubits(), 3);
        assert!((b.state().norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn batched_block_weights_sum_to_one() {
        let b = encode_batched(&[
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 3.0],
        ])
        .unwrap();
        // Padded to 4 blocks, 2 batch qubits.
        assert_eq!(b.batch_qubits(), 2);
        let sum: f64 = b.block_weights().iter().sum();
        assert!((sum - 1.0).abs() < EPS);
        // Weights proportional to squared norms 1 : 4 : 9.
        assert!((b.block_weights()[1] / b.block_weights()[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sample_state_recovers_each_sample() {
        let samples = vec![vec![1.0, 2.0], vec![-3.0, 1.0]];
        let b = encode_batched(&samples).unwrap();
        for (i, s) in samples.iter().enumerate() {
            let rec = b.sample_state(b.state(), i).unwrap();
            let expect = State::from_real_normalized(s).unwrap();
            for (a, e) in rec.amplitudes().iter().zip(expect.amplitudes()) {
                assert!((*a - *e).norm() < EPS, "sample {i} mismatch");
            }
        }
        assert!(b.sample_state(b.state(), 2).is_err());
    }

    #[test]
    fn batched_encoding_validates() {
        assert!(encode_batched(&[]).is_err());
        assert!(encode_batched(&[vec![1.0, 2.0, 3.0]]).is_err());
        assert!(encode_batched(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        assert!(encode_batched(&[vec![0.0, 0.0]]).is_err());
    }

    #[test]
    fn batched_single_sample_has_no_batch_qubits() {
        let b = encode_batched(&[vec![1.0, 1.0]]).unwrap();
        assert_eq!(b.batch_qubits(), 0);
        assert_eq!(b.batch_count(), 1);
    }

    #[test]
    fn depth_estimate_is_linear() {
        assert_eq!(
            encoding_depth_estimate(16) - encoding_depth_estimate(8),
            encoding_depth_estimate(8) - encoding_depth_estimate(0)
        );
    }
}
