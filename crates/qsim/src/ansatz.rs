//! The QuGeoVQC ansatz family: `U3+CU3` blocks.
//!
//! The paper's VQC uses "the ansatz with 12 blocks, each of which is a
//! 'U3+CU3' block" (the TorchQuantum design of QuantumNAS). One block on
//! `n` qubits is:
//!
//! 1. a trainable [`Matrix2::u3`] gate on every qubit (3n parameters), and
//! 2. a ring of trainable controlled-U3 gates `CU3(q → q+1 mod n)`
//!    (another 3n parameters),
//!
//! so a block holds `6n` parameters. The paper's headline model —
//! 8 qubits × 12 blocks — therefore has `12 × 48 = 576` parameters.
//!
//! [`Matrix2::u3`]: crate::Matrix2::u3

use crate::{Circuit, QsimError};

/// How sub-VQCs of different encoder groups exchange information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntangleOrder {
    /// CU3 ring within each block: `0→1, 1→2, …, (n−1)→0`.
    #[default]
    Ring,
    /// CU3 chain without the wrap-around gate: `0→1, …, (n−2)→(n−1)`.
    Linear,
}

/// Configuration of a [`u3_cu3_ansatz`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnsatzConfig {
    /// Register width.
    pub num_qubits: usize,
    /// Number of `U3+CU3` blocks.
    pub num_blocks: usize,
    /// Intra-block entanglement pattern.
    pub entangle: EntangleOrder,
}

impl AnsatzConfig {
    /// The paper's headline configuration: 8 qubits, 12 blocks, ring
    /// entanglement — 576 trainable parameters.
    pub fn paper_default() -> Self {
        Self {
            num_qubits: 8,
            num_blocks: 12,
            entangle: EntangleOrder::Ring,
        }
    }

    /// Trainable parameter count of this configuration.
    pub fn num_params(&self) -> usize {
        let cu3_per_block = match self.entangle {
            EntangleOrder::Ring => {
                if self.num_qubits >= 2 {
                    self.num_qubits
                } else {
                    0
                }
            }
            EntangleOrder::Linear => self.num_qubits.saturating_sub(1),
        };
        self.num_blocks * 3 * (self.num_qubits + cu3_per_block)
    }
}

/// Builds the `U3+CU3` block ansatz.
///
/// # Errors
///
/// Returns [`QsimError::QubitOutOfRange`] if `num_qubits == 0`.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig};
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let circuit = u3_cu3_ansatz(AnsatzConfig::paper_default())?;
/// assert_eq!(circuit.num_slots(), 576); // the paper's parameter count
/// # Ok(())
/// # }
/// ```
pub fn u3_cu3_ansatz(config: AnsatzConfig) -> Result<Circuit, QsimError> {
    if config.num_qubits == 0 {
        return Err(QsimError::QubitOutOfRange {
            qubit: 0,
            num_qubits: 0,
        });
    }
    let mut circuit = Circuit::new(config.num_qubits);
    for _ in 0..config.num_blocks {
        append_block(&mut circuit, 0..config.num_qubits, config.entangle)?;
    }
    Ok(circuit)
}

/// Configuration of a grouped (ST-VQC) ansatz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedAnsatzConfig {
    /// Number of encoder groups (sub-VQCs).
    pub num_groups: usize,
    /// Qubits per group.
    pub qubits_per_group: usize,
    /// `U3+CU3` blocks inside each sub-VQC, applied before any inter-group
    /// communication.
    pub blocks_per_group: usize,
    /// Blocks applied across the full register after the sub-VQCs, letting
    /// groups exchange information ("gradually commute between groups").
    pub mixing_blocks: usize,
    /// Entanglement pattern used throughout.
    pub entangle: EntangleOrder,
}

impl GroupedAnsatzConfig {
    /// Trainable parameter count of this configuration.
    pub fn num_params(&self) -> usize {
        let sub = AnsatzConfig {
            num_qubits: self.qubits_per_group,
            num_blocks: self.blocks_per_group,
            entangle: self.entangle,
        };
        let mix = AnsatzConfig {
            num_qubits: self.num_groups * self.qubits_per_group,
            num_blocks: self.mixing_blocks,
            entangle: self.entangle,
        };
        self.num_groups * sub.num_params() + mix.num_params()
    }
}

/// Builds the grouped ST-VQC: independent sub-VQCs per group followed by
/// mixing blocks across all qubits.
///
/// # Errors
///
/// Returns [`QsimError::QubitOutOfRange`] if the register would be empty.
pub fn grouped_ansatz(config: GroupedAnsatzConfig) -> Result<Circuit, QsimError> {
    let total = config.num_groups * config.qubits_per_group;
    if total == 0 {
        return Err(QsimError::QubitOutOfRange {
            qubit: 0,
            num_qubits: 0,
        });
    }
    let mut circuit = Circuit::new(total);
    for g in 0..config.num_groups {
        let range = g * config.qubits_per_group..(g + 1) * config.qubits_per_group;
        for _ in 0..config.blocks_per_group {
            append_block(&mut circuit, range.clone(), config.entangle)?;
        }
    }
    for _ in 0..config.mixing_blocks {
        append_block(&mut circuit, 0..total, config.entangle)?;
    }
    Ok(circuit)
}

/// Appends one `U3+CU3` block acting on the qubits of `range`.
fn append_block(
    circuit: &mut Circuit,
    range: std::ops::Range<usize>,
    entangle: EntangleOrder,
) -> Result<(), QsimError> {
    let qubits: Vec<usize> = range.collect();
    for &q in &qubits {
        let first = circuit.alloc_slots(3);
        circuit.u3_slots(q, first)?;
    }
    if qubits.len() < 2 {
        return Ok(());
    }
    let pairs: Vec<(usize, usize)> = match entangle {
        EntangleOrder::Ring => (0..qubits.len())
            .map(|i| (qubits[i], qubits[(i + 1) % qubits.len()]))
            .collect(),
        EntangleOrder::Linear => (0..qubits.len() - 1)
            .map(|i| (qubits[i], qubits[i + 1]))
            .collect(),
    };
    for (control, target) in pairs {
        let first = circuit.alloc_slots(3);
        circuit.cu3_slots(control, target, first)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::State;

    #[test]
    fn paper_default_has_576_params() {
        let cfg = AnsatzConfig::paper_default();
        assert_eq!(cfg.num_params(), 576);
        let c = u3_cu3_ansatz(cfg).unwrap();
        assert_eq!(c.num_slots(), 576);
        assert_eq!(c.num_trainable_refs(), 576);
        assert_eq!(c.num_qubits(), 8);
        // 12 blocks × (8 U3 + 8 CU3) ops.
        assert_eq!(c.num_ops(), 12 * 16);
    }

    #[test]
    fn param_count_formula_matches_circuit() {
        for qubits in 1..6 {
            for blocks in 0..4 {
                for entangle in [EntangleOrder::Ring, EntangleOrder::Linear] {
                    let cfg = AnsatzConfig {
                        num_qubits: qubits,
                        num_blocks: blocks,
                        entangle,
                    };
                    let c = u3_cu3_ansatz(cfg).unwrap();
                    assert_eq!(
                        c.num_slots(),
                        cfg.num_params(),
                        "mismatch at qubits={qubits} blocks={blocks} {entangle:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_qubits_rejected() {
        assert!(u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 0,
            num_blocks: 1,
            entangle: EntangleOrder::Ring,
        })
        .is_err());
    }

    #[test]
    fn ansatz_runs_and_preserves_norm() {
        let cfg = AnsatzConfig {
            num_qubits: 4,
            num_blocks: 3,
            entangle: EntangleOrder::Ring,
        };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let params: Vec<f64> = (0..c.num_slots()).map(|i| (i as f64) * 0.01 - 0.3).collect();
        let out = c
            .run(&State::from_real_normalized(&[1.0; 16]).unwrap(), &params)
            .unwrap();
        assert!((out.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_params_is_identity_on_basis_state() {
        // U3(0,0,0) = I and CU3(0,0,0) = I, so the all-zeros parameter
        // vector leaves any basis state unchanged.
        let cfg = AnsatzConfig {
            num_qubits: 3,
            num_blocks: 2,
            entangle: EntangleOrder::Ring,
        };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let out = c.run(&State::zero(3), &vec![0.0; c.num_slots()]).unwrap();
        assert!((out.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_ansatz_param_count() {
        let cfg = GroupedAnsatzConfig {
            num_groups: 2,
            qubits_per_group: 3,
            blocks_per_group: 2,
            mixing_blocks: 1,
            entangle: EntangleOrder::Ring,
        };
        let c = grouped_ansatz(cfg).unwrap();
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.num_slots(), cfg.num_params());
    }

    #[test]
    fn grouped_ansatz_without_mixing_is_product() {
        // With no mixing blocks, a product input stays a product across
        // the group boundary: check via marginal purity of one group.
        let cfg = GroupedAnsatzConfig {
            num_groups: 2,
            qubits_per_group: 2,
            blocks_per_group: 1,
            mixing_blocks: 0,
            entangle: EntangleOrder::Ring,
        };
        let c = grouped_ansatz(cfg).unwrap();
        let params: Vec<f64> = (0..c.num_slots()).map(|i| 0.1 * i as f64).collect();
        let input = State::from_real_normalized(&[1.0; 16]).unwrap();
        let out = c.run(&input, &params).unwrap();
        // Marginal over low group should have purity 1 (pure reduced
        // state) because groups never interact. Purity via Schmidt:
        // sum over blocks of |<block_i|block_j>| structure — here we use
        // the fact that the 4x4 amplitude matrix (rows = high group,
        // cols = low group) must be rank one.
        let amps = out.amplitudes();
        // Find the largest-magnitude row to use as reference.
        let mut best_row = 0;
        let mut best_norm = 0.0;
        for r in 0..4 {
            let n: f64 = (0..4).map(|c2| amps[r * 4 + c2].norm_sqr()).sum();
            if n > best_norm {
                best_norm = n;
                best_row = r;
            }
        }
        // Every other row must be proportional to the reference row.
        for r in 0..4 {
            if r == best_row {
                continue;
            }
            // Cross-ratio check: a[r][i] * a[ref][j] == a[r][j] * a[ref][i].
            for i in 0..4 {
                for j in 0..4 {
                    let lhs = amps[r * 4 + i] * amps[best_row * 4 + j];
                    let rhs = amps[r * 4 + j] * amps[best_row * 4 + i];
                    assert!((lhs - rhs).norm() < 1e-10, "state is entangled across groups");
                }
            }
        }
    }

    #[test]
    fn grouped_ansatz_zero_register_rejected() {
        assert!(grouped_ansatz(GroupedAnsatzConfig {
            num_groups: 0,
            qubits_per_group: 4,
            blocks_per_group: 1,
            mixing_blocks: 0,
            entangle: EntangleOrder::Ring,
        })
        .is_err());
    }

    #[test]
    fn two_qubit_ring_has_two_cu3() {
        let cfg = AnsatzConfig {
            num_qubits: 2,
            num_blocks: 1,
            entangle: EntangleOrder::Ring,
        };
        let c = u3_cu3_ansatz(cfg).unwrap();
        // 2 U3 + 2 CU3 (0→1 and 1→0).
        assert_eq!(c.num_ops(), 4);
        assert_eq!(c.num_slots(), 12);
    }

    #[test]
    fn single_qubit_block_has_no_entanglers() {
        let cfg = AnsatzConfig {
            num_qubits: 1,
            num_blocks: 2,
            entangle: EntangleOrder::Ring,
        };
        let c = u3_cu3_ansatz(cfg).unwrap();
        assert_eq!(c.num_ops(), 2);
        assert_eq!(c.num_slots(), 6);
    }
}
