//! Batched statevector execution: many independent registers, one engine
//! call.
//!
//! QuGeo's training hot path is not one big simulation but *many small
//! ones*: a forward pass per sample, and two more per parameter for
//! parameter-shift gradients. Running them one `State` at a time pays the
//! per-call dispatch and cache-refill cost over and over. A
//! [`BatchedState`] instead lays `B` statevectors out **contiguously** in
//! one allocation and sweeps compiled (gate-fused) circuits across the
//! whole batch:
//!
//! * [`BatchedState::apply_compiled`] applies one [`CompiledCircuit`] to
//!   every member — each fused gate becomes a single pass over the
//!   `B · 2^n` amplitude array (the kernels are block-oblivious).
//! * [`BatchedState::apply_each`] applies member-specific circuits —
//!   exactly the shape of a parameter-shift evaluation, where every
//!   shifted circuit differs but shares the input state. Members are
//!   distributed over worker threads in contiguous chunks.
//!
//! This is *simulator-level* batching, complementary to the paper's
//! QuBatch ([`crate::encoding::encode_batched`]), which packs samples
//! into one physical register at the cost of shared amplitude norm.
//! `BatchedState` keeps every member an independent unit-norm register —
//! no precision loss — and exists purely to make the classical simulation
//! fast.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
//! use qugeo_qsim::{BatchedState, CompiledCircuit, State};
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
//! let circuit = u3_cu3_ansatz(cfg)?;
//! let params = vec![0.1; circuit.num_slots()];
//! let compiled = CompiledCircuit::compile(&circuit, &params)?;
//!
//! let input = State::from_real_normalized(&[1.0; 8])?;
//! let mut batch = BatchedState::replicate(&input, 4);
//! batch.apply_compiled(&compiled)?;
//! // Every member got the same circuit, so all outputs match.
//! assert_eq!(batch.member(0)?, batch.member(3)?);
//! # Ok(())
//! # }
//! ```

use crate::fusion::CompiledCircuit;
use crate::kernels::simulation_threads;
use crate::{Complex64, DiagonalObservable, QsimError, State};

/// `B` independent statevectors stored contiguously, executed together.
///
/// Member `b` occupies amplitudes `b · 2^n .. (b+1) · 2^n`. See the
/// [module docs](self) for how this differs from QuBatch encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedState {
    num_qubits: usize,
    batch: usize,
    amps: Vec<Complex64>,
}

impl BatchedState {
    /// A batch of `batch` copies of `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn zeros(num_qubits: usize, batch: usize) -> Self {
        assert!(batch > 0, "empty batch");
        let dim = 1usize << num_qubits;
        let mut amps = vec![Complex64::ZERO; batch * dim];
        for b in 0..batch {
            amps[b * dim] = Complex64::ONE;
        }
        Self {
            num_qubits,
            batch,
            amps,
        }
    }

    /// A batch of `batch` copies of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn replicate(state: &State, batch: usize) -> Self {
        assert!(batch > 0, "empty batch");
        let dim = state.len();
        let mut amps = Vec::with_capacity(batch * dim);
        for _ in 0..batch {
            amps.extend_from_slice(state.amplitudes());
        }
        Self {
            num_qubits: state.num_qubits(),
            batch,
            amps,
        }
    }

    /// A batch from distinct member states (all of the same width).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] for an empty slice and
    /// [`QsimError::QubitCountMismatch`] for width disagreements.
    pub fn from_states(states: &[State]) -> Result<Self, QsimError> {
        let mut batch = Self {
            num_qubits: 0,
            batch: 0,
            amps: Vec::new(),
        };
        batch.load_states(states)?;
        Ok(batch)
    }

    /// Reloads this batch from member states, **reusing the existing
    /// amplitude allocation** where capacity permits — the buffer-reuse
    /// entry point for serving-style loops that execute many requests
    /// through one long-lived batch (e.g. `qugeo`'s `InferenceSession`)
    /// and for training strategies that reload each step's mini-batch
    /// into one long-lived input buffer. Accepts owned states or
    /// references (`&[State]` and `&[&State]` both work), so callers can
    /// gather scattered samples without cloning them.
    ///
    /// The batch takes the width and length of `states`; prior contents
    /// are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] for an empty slice and
    /// [`QsimError::QubitCountMismatch`] for width disagreements.
    pub fn load_states<S: std::borrow::Borrow<State>>(
        &mut self,
        states: &[S],
    ) -> Result<(), QsimError> {
        let first = states.first().ok_or_else(|| QsimError::InvalidEncoding {
            reason: "empty batch".to_string(),
        })?;
        let num_qubits = first.borrow().num_qubits();
        for s in states {
            if s.borrow().num_qubits() != num_qubits {
                return Err(QsimError::QubitCountMismatch {
                    expected: num_qubits,
                    actual: s.borrow().num_qubits(),
                });
            }
        }
        self.amps.clear();
        self.amps.reserve(states.len() * first.borrow().len());
        for s in states {
            self.amps.extend_from_slice(s.borrow().amplitudes());
        }
        self.num_qubits = num_qubits;
        self.batch = states.len();
        Ok(())
    }

    /// Qubits per member.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of members.
    pub fn batch_len(&self) -> usize {
        self.batch
    }

    /// Amplitudes per member (`2^n`).
    pub fn member_dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Member `b`'s amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `b` is out of range.
    pub fn member_amps(&self, b: usize) -> Result<&[Complex64], QsimError> {
        if b >= self.batch {
            return Err(QsimError::InvalidEncoding {
                reason: format!("member {b} out of range ({} in batch)", self.batch),
            });
        }
        let dim = self.member_dim();
        Ok(&self.amps[b * dim..(b + 1) * dim])
    }

    /// Member `b` as an owned [`State`].
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `b` is out of range.
    pub fn member(&self, b: usize) -> Result<State, QsimError> {
        State::from_amplitudes(self.member_amps(b)?.to_vec())
    }

    /// Read-only view of the whole contiguous amplitude array (`B · 2^n`
    /// values; member `b` occupies `b · 2^n .. (b+1) · 2^n`).
    pub fn amps(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable view of the whole contiguous amplitude array (`B · 2^n`
    /// values; member `b` occupies `b · 2^n .. (b+1) · 2^n`). Execution
    /// backends use this to drive member slices through their own gate
    /// loops.
    pub fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Applies one compiled circuit to **every** member in one engine
    /// call.
    ///
    /// Execution order adapts to the member size: small members run
    /// *circuit-major* (each worker keeps one member's amplitudes hot in
    /// cache through the whole gate sequence, members distributed across
    /// threads), large members run *gate-major* (each fused gate sweeps
    /// the whole `B · 2^n` array with chunk-parallel kernels).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the circuit width
    /// differs from the members'.
    pub fn apply_compiled(&mut self, circuit: &CompiledCircuit) -> Result<(), QsimError> {
        self.apply_compiled_threaded(circuit, simulation_threads())
    }

    /// [`BatchedState::apply_compiled`] with an explicit worker-thread
    /// budget (the execution-backend entry point; `threads == 1` forces
    /// fully serial execution).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the circuit width
    /// differs from the members'.
    pub fn apply_compiled_threaded(
        &mut self,
        circuit: &CompiledCircuit,
        threads: usize,
    ) -> Result<(), QsimError> {
        if circuit.num_qubits() != self.num_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.num_qubits,
                actual: circuit.num_qubits(),
            });
        }
        // The adaptive circuit-major / gate-major split lives on the
        // compiled circuit so the adjoint workspace's forward pass shares
        // it exactly.
        circuit.apply_members_threaded(&mut self.amps, threads);
        Ok(())
    }

    /// Applies circuit `i` to member `i` in one engine call — the
    /// parameter-shift shape. Members are processed gate-serially but
    /// member-parallel: contiguous member ranges go to worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `circuits.len()` differs
    /// from the batch length, or [`QsimError::QubitCountMismatch`] if any
    /// circuit's width differs from the members'.
    pub fn apply_each(&mut self, circuits: &[CompiledCircuit]) -> Result<(), QsimError> {
        self.apply_each_threaded(circuits, simulation_threads())
    }

    /// [`BatchedState::apply_each`] with an explicit worker-thread budget
    /// (the execution-backend entry point).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `circuits.len()` differs
    /// from the batch length, or [`QsimError::QubitCountMismatch`] if any
    /// circuit's width differs from the members'.
    pub fn apply_each_threaded(
        &mut self,
        circuits: &[CompiledCircuit],
        threads: usize,
    ) -> Result<(), QsimError> {
        if circuits.len() != self.batch {
            return Err(QsimError::InvalidEncoding {
                reason: format!(
                    "{} circuits for a batch of {}",
                    circuits.len(),
                    self.batch
                ),
            });
        }
        for c in circuits {
            if c.num_qubits() != self.num_qubits {
                return Err(QsimError::QubitCountMismatch {
                    expected: self.num_qubits,
                    actual: c.num_qubits(),
                });
            }
        }
        let dim = self.member_dim();
        // Large members parallelise *inside* each gate kernel (with the
        // full thread budget — the member count does not cap it); adding
        // member-level workers on top would oversubscribe (T² threads).
        // Small members get member-level parallelism and serial kernels —
        // but only once the whole batch clears the kernels' own
        // minimum-work threshold; tiny batches run inline.
        let member_threads = threads.min(self.batch);
        let member_parallel = member_threads > 1
            && dim < crate::kernels::PARALLEL_MIN_AMPS
            && self.amps.len() >= crate::kernels::PARALLEL_MIN_AMPS;
        if !member_parallel {
            for (member, circuit) in self.amps.chunks_mut(dim).zip(circuits) {
                circuit.apply_amps_threaded(member, threads);
            }
            return Ok(());
        }
        // Contiguous member ranges per thread: `chunks_mut` hands each
        // worker a disjoint &mut sub-slice, so this needs no unsafe.
        let per = self.batch.div_ceil(member_threads);
        std::thread::scope(|scope| {
            for (t, members) in self.amps.chunks_mut(per * dim).enumerate() {
                let circuits = &circuits[t * per..];
                scope.spawn(move || {
                    for (member, circuit) in members.chunks_mut(dim).zip(circuits) {
                        circuit.apply_amps_threaded(member, 1);
                    }
                });
            }
        });
        Ok(())
    }

    /// Expectation of a diagonal observable on every member.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the observable width
    /// differs from the members'.
    pub fn expectations(&self, obs: &DiagonalObservable) -> Result<Vec<f64>, QsimError> {
        if obs.num_qubits() != self.num_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.num_qubits,
                actual: obs.num_qubits(),
            });
        }
        let dim = self.member_dim();
        Ok(self
            .amps
            .chunks(dim)
            .map(|member| crate::kernels::expectation_diag(member, obs.diagonal()))
            .collect())
    }

    /// Probabilities of every member, concatenated (`B · 2^n` values).
    pub fn probabilities_flat(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.amps.len()];
        crate::kernels::probabilities_into(&self.amps, &mut out);
        out
    }

    /// Basis-state probabilities of member `b`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `b` is out of range.
    pub fn member_probabilities(&self, b: usize) -> Result<Vec<f64>, QsimError> {
        let member = self.member_amps(b)?;
        let mut out = vec![0.0; member.len()];
        crate::kernels::probabilities_into(member, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
    use crate::Circuit;

    fn ansatz(n: usize, blocks: usize) -> Circuit {
        u3_cu3_ansatz(AnsatzConfig {
            num_qubits: n,
            num_blocks: blocks,
            entangle: EntangleOrder::Ring,
        })
        .unwrap()
    }

    fn params_for(c: &Circuit, scale: f64) -> Vec<f64> {
        (0..c.num_slots()).map(|i| (i as f64 * 0.7).cos() * scale).collect()
    }

    fn sample_state(n: usize, seed: usize) -> State {
        let data: Vec<f64> = (0..1usize << n)
            .map(|i| ((i + seed * 13) as f64 * 0.37).sin() + 0.25)
            .collect();
        State::from_real_normalized(&data).unwrap()
    }

    #[test]
    fn apply_compiled_matches_per_member_runs() {
        let c = ansatz(4, 3);
        let params = params_for(&c, 0.9);
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        let members: Vec<State> = (0..5).map(|s| sample_state(4, s)).collect();

        let mut batch = BatchedState::from_states(&members).unwrap();
        batch.apply_compiled(&compiled).unwrap();

        for (b, m) in members.iter().enumerate() {
            let solo = c.run(m, &params).unwrap();
            for (x, y) in batch.member_amps(b).unwrap().iter().zip(solo.amplitudes()) {
                assert!((*x - *y).norm() < 1e-10, "member {b} diverged");
            }
        }
    }

    #[test]
    fn apply_each_runs_distinct_circuits() {
        let c = ansatz(3, 2);
        let input = sample_state(3, 0);
        let param_sets: Vec<Vec<f64>> =
            (0..4).map(|k| params_for(&c, 0.2 + 0.3 * k as f64)).collect();
        let compiled: Vec<CompiledCircuit> = param_sets
            .iter()
            .map(|p| CompiledCircuit::compile(&c, p).unwrap())
            .collect();

        let mut batch = BatchedState::replicate(&input, 4);
        batch.apply_each(&compiled).unwrap();

        for (b, p) in param_sets.iter().enumerate() {
            let solo = c.run(&input, p).unwrap();
            for (x, y) in batch.member_amps(b).unwrap().iter().zip(solo.amplitudes()) {
                assert!((*x - *y).norm() < 1e-10, "member {b} diverged");
            }
        }
    }

    #[test]
    fn expectations_match_single_state_path() {
        let c = ansatz(3, 2);
        let params = params_for(&c, 0.8);
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        let members: Vec<State> = (0..3).map(|s| sample_state(3, s + 10)).collect();
        let obs = DiagonalObservable::z(3, 1).unwrap();

        let mut batch = BatchedState::from_states(&members).unwrap();
        batch.apply_compiled(&compiled).unwrap();
        let batched = batch.expectations(&obs).unwrap();

        for (b, m) in members.iter().enumerate() {
            let solo = obs.expectation(&c.run(m, &params).unwrap());
            assert!((batched[b] - solo).abs() < 1e-10, "member {b}");
        }
    }

    #[test]
    fn zeros_and_replicate_layouts() {
        let z = BatchedState::zeros(2, 3);
        assert_eq!(z.batch_len(), 3);
        assert_eq!(z.member_dim(), 4);
        for b in 0..3 {
            let m = z.member(b).unwrap();
            assert!((m.probability(0) - 1.0).abs() < 1e-12);
        }

        let s = sample_state(2, 4);
        let r = BatchedState::replicate(&s, 2);
        assert_eq!(r.member(0).unwrap(), s);
        assert_eq!(r.member(1).unwrap(), s);
    }

    #[test]
    fn validates_inputs() {
        let c = ansatz(3, 1);
        let compiled = CompiledCircuit::compile(&c, &params_for(&c, 0.5)).unwrap();
        assert!(BatchedState::from_states(&[]).is_err());
        assert!(
            BatchedState::from_states(&[State::zero(2), State::zero(3)]).is_err()
        );
        let mut wrong_width = BatchedState::zeros(2, 2);
        assert!(wrong_width.apply_compiled(&compiled).is_err());
        assert!(wrong_width
            .apply_each(std::slice::from_ref(&compiled))
            .is_err()); // count mismatch
        let mut right_count = BatchedState::zeros(2, 1);
        assert!(right_count.apply_each(std::slice::from_ref(&compiled)).is_err()); // width mismatch
        assert!(wrong_width.member(5).is_err());
        let obs3 = DiagonalObservable::z(3, 0).unwrap();
        assert!(wrong_width.expectations(&obs3).is_err());
    }
}
