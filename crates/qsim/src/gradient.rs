//! Differentiation of circuit expectation values.
//!
//! QuGeo trains its VQC by gradient descent on losses that are functions of
//! diagonal-observable expectations (per-qubit ⟨Z⟩ for the layer decoder,
//! basis-state probabilities for the pixel decoder). All of those reduce,
//! via the chain rule, to the gradient of a single effective diagonal
//! observable — which this module computes three ways:
//!
//! * [`adjoint_gradient`] — the serial reference: one forward pass plus
//!   one backward sweep over the *unfused* op list, `O(ops)` gate
//!   applications total, exact. The production training path is the
//!   fused, batched engine in [`crate::adjoint`], which this function
//!   pins down in differential tests.
//! * [`parameter_shift_gradient`] — hardware-compatible shift rules
//!   (two-term for plain gates, four-term for controlled gates); used as an
//!   independent oracle in tests.
//! * [`finite_difference_gradient`] — central differences; slow, but makes
//!   no assumptions at all.

use crate::circuit::{Circuit, Op};
use crate::{DiagonalObservable, QsimError, State};

/// Evaluates `⟨ψ(θ)|O|ψ(θ)⟩` where `ψ(θ)` is the circuit output on
/// `input`.
///
/// # Errors
///
/// Returns an error if the parameter count or qubit counts mismatch.
pub fn expectation_of(
    circuit: &Circuit,
    params: &[f64],
    input: &State,
    obs: &DiagonalObservable,
) -> Result<f64, QsimError> {
    if obs.num_qubits() != circuit.num_qubits() {
        return Err(QsimError::QubitCountMismatch {
            expected: circuit.num_qubits(),
            actual: obs.num_qubits(),
        });
    }
    let out = circuit.run(input, params)?;
    Ok(obs.expectation(&out))
}

/// Gradient of `⟨ψ(θ)|O|ψ(θ)⟩` with respect to every parameter slot, via
/// adjoint differentiation.
///
/// The algorithm keeps two statevectors: `ket`, swept backwards from the
/// output state by applying daggered gates, and `bra`, seeded with `O|ψ⟩`
/// and swept the same way. Each parameterised gate contributes
/// `2 Re ⟨bra| ∂U/∂θ |ket⟩`. Cost: `O(num_ops)` gate applications, one
/// scratch vector, exact to machine precision for unitary circuits.
///
/// Returns `(expectation, gradient)` so callers get the loss for free.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{adjoint_gradient, Circuit, DiagonalObservable, State};
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let mut c = Circuit::new(1);
/// let s = c.alloc_slot();
/// c.ry_slot(0, s)?;
/// let z = DiagonalObservable::z(1, 0)?;
/// let (val, grad) = adjoint_gradient(&c, &[0.3], &State::zero(1), &z)?;
/// // <Z> = cos θ, d<Z>/dθ = -sin θ
/// assert!((val - 0.3f64.cos()).abs() < 1e-12);
/// assert!((grad[0] + 0.3f64.sin()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn adjoint_gradient(
    circuit: &Circuit,
    params: &[f64],
    input: &State,
    obs: &DiagonalObservable,
) -> Result<(f64, Vec<f64>), QsimError> {
    circuit.check_params(params)?;
    if obs.num_qubits() != circuit.num_qubits() {
        return Err(QsimError::QubitCountMismatch {
            expected: circuit.num_qubits(),
            actual: obs.num_qubits(),
        });
    }
    let psi = circuit.run(input, params)?;
    let value = obs.expectation(&psi);

    let mut grad = vec![0.0; circuit.num_slots()];
    if circuit.num_slots() == 0 {
        return Ok((value, grad));
    }

    let mut ket = psi.clone();
    let mut bra = obs.apply(&psi);
    let mut scratch = State::zero(circuit.num_qubits());

    for op in circuit.ops().iter().rev() {
        // ket := U† ket  (the state *before* this gate).
        Circuit::apply_op(op, &mut ket, params, true);

        // Gradient contributions of this gate's trainable angles.
        match op {
            Op::Single { gate, qubit } => {
                for (slot, dm) in gate.slot_derivatives(params) {
                    ket.apply_matrix_into(&dm, None, *qubit, &mut scratch);
                    let ip = bra.inner(&scratch)?;
                    grad[slot] += 2.0 * ip.re;
                }
            }
            Op::Controlled {
                gate,
                control,
                target,
            } => {
                for (slot, dm) in gate.slot_derivatives(params) {
                    ket.apply_matrix_into(&dm, Some(*control), *target, &mut scratch);
                    let ip = bra.inner(&scratch)?;
                    grad[slot] += 2.0 * ip.re;
                }
            }
            Op::Swap { .. } => {}
        }

        // bra := U† bra for the next (earlier) gate.
        Circuit::apply_op(op, &mut bra, params, true);
    }

    Ok((value, grad))
}

/// Gradient via parameter-shift rules, shifting each gate occurrence
/// independently (correct even when several gates share a slot).
///
/// Plain parameterised gates use the two-term rule
/// `(f(θ+π/2) − f(θ−π/2)) / 2`; controlled parameterised gates use the
/// four-term rule with shifts ±π/2 and ±3π/2, which is exact for the
/// frequency spectrum `{1/2, 1}` of controlled rotations.
///
/// This costs 2–4 circuit executions per trainable angle — it exists as a
/// hardware-faithful oracle, not as the training path.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch.
pub fn parameter_shift_gradient(
    circuit: &Circuit,
    params: &[f64],
    input: &State,
    obs: &DiagonalObservable,
) -> Result<Vec<f64>, QsimError> {
    circuit.check_params(params)?;
    if obs.num_qubits() != circuit.num_qubits() {
        return Err(QsimError::QubitCountMismatch {
            expected: circuit.num_qubits(),
            actual: obs.num_qubits(),
        });
    }

    let mut grad = vec![0.0; circuit.num_slots()];
    // One scratch circuit for every shift term: patch the angle, run,
    // restore — instead of cloning the full op list per term.
    let mut scratch = circuit.clone();
    for (op_idx, op) in circuit.ops().iter().enumerate() {
        let (gate, controlled) = match op {
            Op::Single { gate, .. } => (gate, false),
            Op::Controlled { gate, .. } => (gate, true),
            Op::Swap { .. } => continue,
        };
        for (angle_idx, src) in gate.angle_sources().into_iter().enumerate() {
            let Some(slot) = src.slot() else { continue };
            let base = params[slot];
            for &(shift, coeff) in shift_rule(controlled) {
                patch_angle(&mut scratch, op_idx, angle_idx, base + shift);
                grad[slot] += coeff * expectation_of(&scratch, params, input, obs)?;
                *scratch.op_mut(op_idx) = *op;
            }
        }
    }
    Ok(grad)
}

/// Pins one angle of one op of `circuit` to a fixed value in place. The
/// caller restores the original op afterwards (ops are `Copy`), so one
/// scratch circuit serves every shift term of a gradient evaluation.
fn patch_angle(circuit: &mut Circuit, op_idx: usize, angle_idx: usize, value: f64) {
    if let Op::Single { gate, .. } | Op::Controlled { gate, .. } = circuit.op_mut(op_idx) {
        *gate = gate.with_angle_fixed(angle_idx, value);
    }
}

/// The parameter-shift rule for one gate occurrence, as
/// `(angle shift, coefficient)` terms: the two-term rule for plain
/// parameterised gates, the four-term rule (exact for the frequency
/// spectrum `{1/2, 1}`) for controlled ones. Shared by the serial and
/// batched implementations so the two can never diverge.
fn shift_rule(controlled: bool) -> &'static [(f64, f64)] {
    use std::f64::consts::{FRAC_PI_2, SQRT_2};
    // f64 arithmetic is not allowed in consts pre-const-float-stabilisation
    // patterns, so the tables are initialised once at first use.
    use std::sync::OnceLock;
    static TWO_TERM: OnceLock<[(f64, f64); 2]> = OnceLock::new();
    static FOUR_TERM: OnceLock<[(f64, f64); 4]> = OnceLock::new();
    if controlled {
        FOUR_TERM.get_or_init(|| {
            let c1 = (SQRT_2 + 1.0) / (4.0 * SQRT_2);
            let c2 = (SQRT_2 - 1.0) / (4.0 * SQRT_2);
            [
                (FRAC_PI_2, c1),
                (-FRAC_PI_2, -c1),
                (3.0 * FRAC_PI_2, -c2),
                (-3.0 * FRAC_PI_2, c2),
            ]
        })
    } else {
        TWO_TERM.get_or_init(|| [(FRAC_PI_2, 0.5), (-FRAC_PI_2, -0.5)])
    }
}

/// Gradient via parameter-shift rules, evaluating **all** shifted
/// circuits through one batched engine per chunk instead of one
/// `Circuit::run` per shift.
///
/// Semantically identical to [`parameter_shift_gradient`] (same shift
/// rules, same accumulation across shared slots), but each shifted
/// circuit is gate-fused ([`crate::CompiledCircuit`]) and the whole
/// collection executes through [`crate::BatchedState::apply_each`] — the
/// contiguous batch layout plus fused sweeps is what makes the
/// hardware-faithful oracle usable in training-scale loops. Memory is
/// bounded by evaluating in chunks of at most `2^22` amplitudes.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{
///     parameter_shift_gradient, parameter_shift_gradient_batched, Circuit,
///     DiagonalObservable, State,
/// };
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let mut c = Circuit::new(1);
/// let s = c.alloc_slot();
/// c.ry_slot(0, s)?;
/// let z = DiagonalObservable::z(1, 0)?;
/// let serial = parameter_shift_gradient(&c, &[0.4], &State::zero(1), &z)?;
/// let batched = parameter_shift_gradient_batched(&c, &[0.4], &State::zero(1), &z)?;
/// assert!((serial[0] - batched[0]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn parameter_shift_gradient_batched(
    circuit: &Circuit,
    params: &[f64],
    input: &State,
    obs: &DiagonalObservable,
) -> Result<Vec<f64>, QsimError> {
    parameter_shift_gradient_backend(
        circuit,
        params,
        input,
        obs,
        &crate::backend::StatevectorBackend::default(),
    )
}

/// One term of a gate occurrence's shift rule: the slot it contributes
/// to, its coefficient, and which angle to pin where. Circuits are
/// compiled lazily per chunk, so peak memory holds one chunk of compiled
/// circuits, not all of them.
struct ShiftTerm {
    slot: usize,
    coeff: f64,
    op_idx: usize,
    angle_idx: usize,
    value: f64,
}

/// Expands every trainable angle of every gate occurrence into its shift
/// terms (two per plain angle, four per controlled angle).
fn collect_shift_terms(circuit: &Circuit, params: &[f64]) -> Vec<ShiftTerm> {
    let mut terms: Vec<ShiftTerm> = Vec::new();
    for (op_idx, op) in circuit.ops().iter().enumerate() {
        let (gate, controlled) = match op {
            Op::Single { gate, .. } => (gate, false),
            Op::Controlled { gate, .. } => (gate, true),
            Op::Swap { .. } => continue,
        };
        for (angle_idx, src) in gate.angle_sources().into_iter().enumerate() {
            let Some(slot) = src.slot() else { continue };
            let base = params[slot];
            for &(shift, coeff) in shift_rule(controlled) {
                terms.push(ShiftTerm {
                    slot,
                    coeff,
                    op_idx,
                    angle_idx,
                    value: base + shift,
                });
            }
        }
    }
    terms
}

/// Gradient via parameter-shift rules where every shifted circuit
/// executes — and every expectation is estimated — **through an execution
/// backend** ([`crate::backend::QuantumBackend`]).
///
/// This is the gradient route for backends that cannot support adjoint
/// differentiation (finite shots, gate noise): parameter shift only needs
/// expectation values of shifted circuits, which is exactly what real
/// hardware exposes. With the exact [`crate::backend::StatevectorBackend`]
/// it is identical to [`parameter_shift_gradient_batched`]; with a
/// sampling backend each term carries that backend's estimation error.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch, or the
/// backend fails.
pub fn parameter_shift_gradient_backend(
    circuit: &Circuit,
    params: &[f64],
    input: &State,
    obs: &DiagonalObservable,
    backend: &dyn crate::backend::QuantumBackend,
) -> Result<Vec<f64>, QsimError> {
    circuit.check_params(params)?;
    if obs.num_qubits() != circuit.num_qubits() {
        return Err(QsimError::QubitCountMismatch {
            expected: circuit.num_qubits(),
            actual: obs.num_qubits(),
        });
    }

    let terms = collect_shift_terms(circuit, params);
    let mut grad = vec![0.0; circuit.num_slots()];
    if terms.is_empty() {
        return Ok(grad);
    }

    // Chunk so one batch stays within ~2^22 amplitudes (64 MiB of
    // Complex64) regardless of register width. One scratch circuit is
    // patched and restored per term — compilation snapshots the patched
    // gates, so no per-term clone of the op list is needed.
    let mut scratch = circuit.clone();
    let chunk_members = ((1usize << 22) / input.len()).max(1);
    for chunk in terms.chunks(chunk_members) {
        let circuits = chunk
            .iter()
            .map(|t| {
                let original = circuit.ops()[t.op_idx];
                patch_angle(&mut scratch, t.op_idx, t.angle_idx, t.value);
                let compiled = crate::CompiledCircuit::compile(&scratch, params);
                *scratch.op_mut(t.op_idx) = original;
                compiled
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut batch = crate::BatchedState::replicate(input, chunk.len());
        backend.run_each(&circuits, &mut batch)?;
        for (t, value) in chunk.iter().zip(backend.expectations(&batch, obs)?) {
            grad[t.slot] += t.coeff * value;
        }
    }
    Ok(grad)
}

/// Central finite-difference gradient of the expectation — the
/// assumption-free oracle, accurate to roughly `O(h²)`.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch.
pub fn finite_difference_gradient(
    circuit: &Circuit,
    params: &[f64],
    input: &State,
    obs: &DiagonalObservable,
    h: f64,
) -> Result<Vec<f64>, QsimError> {
    circuit.check_params(params)?;
    let mut grad = vec![0.0; params.len()];
    let mut work = params.to_vec();
    for i in 0..params.len() {
        work[i] = params[i] + h;
        let plus = expectation_of(circuit, &work, input, obs)?;
        work[i] = params[i] - h;
        let minus = expectation_of(circuit, &work, input, obs)?;
        work[i] = params[i];
        grad[i] = (plus - minus) / (2.0 * h);
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close_vec(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "{what}: component {i} differs: {x} vs {y}"
            );
        }
    }

    fn ry_circuit() -> Circuit {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        c
    }

    #[test]
    fn adjoint_matches_analytic_single_ry() {
        let c = ry_circuit();
        let z = DiagonalObservable::z(1, 0).unwrap();
        for &theta in &[-1.0, 0.0, 0.4, 2.2] {
            let (val, grad) = adjoint_gradient(&c, &[theta], &State::zero(1), &z).unwrap();
            assert!((val - theta.cos()).abs() < 1e-12);
            assert!((grad[0] + theta.sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn three_methods_agree_on_u3_cu3_circuit() {
        let mut c = Circuit::new(3);
        let s0 = c.alloc_slots(3);
        let s1 = c.alloc_slots(3);
        let s2 = c.alloc_slots(3);
        c.h(0).unwrap();
        c.u3_slots(0, s0).unwrap();
        c.u3_slots(1, s1).unwrap();
        c.cu3_slots(0, 1, s2).unwrap();
        c.cx(1, 2).unwrap();

        let params: Vec<f64> = (0..9).map(|i| 0.37 * (i as f64 + 1.0)).collect();
        let input = State::from_real_normalized(&[1.0, 2.0, 0.5, -1.0, 0.3, 0.9, -0.7, 0.2])
            .unwrap();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(3, 0).unwrap(),
                DiagonalObservable::z(3, 2).unwrap(),
                DiagonalObservable::projector(3, 5).unwrap(),
            ],
            &[0.7, -1.3, 2.0],
        )
        .unwrap();

        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let shift = parameter_shift_gradient(&c, &params, &input, &obs).unwrap();
        let fd = finite_difference_gradient(&c, &params, &input, &obs, 1e-5).unwrap();

        assert_close_vec(&adj, &fd, 1e-6, "adjoint vs finite-difference");
        assert_close_vec(&adj, &shift, 1e-9, "adjoint vs parameter-shift");
    }

    #[test]
    fn shared_slot_gradients_accumulate() {
        // Two RY gates sharing one slot: <Z> = cos(2θ), gradient -2 sin(2θ).
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        c.ry_slot(0, s).unwrap();
        let z = DiagonalObservable::z(1, 0).unwrap();
        let theta = 0.63;
        let (val, grad) = adjoint_gradient(&c, &[theta], &State::zero(1), &z).unwrap();
        assert!((val - (2.0 * theta).cos()).abs() < 1e-12);
        assert!((grad[0] + 2.0 * (2.0 * theta).sin()).abs() < 1e-12);

        let shift = parameter_shift_gradient(&c, &[theta], &State::zero(1), &z).unwrap();
        assert!((shift[0] - grad[0]).abs() < 1e-9);
    }

    #[test]
    fn fixed_angles_contribute_no_gradient() {
        let mut c = Circuit::new(1);
        c.ry_fixed(0, 0.8).unwrap();
        let z = DiagonalObservable::z(1, 0).unwrap();
        let (val, grad) = adjoint_gradient(&c, &[], &State::zero(1), &z).unwrap();
        assert!((val - 0.8f64.cos()).abs() < 1e-12);
        assert!(grad.is_empty());
    }

    #[test]
    fn gradient_with_swap_gates() {
        let mut c = Circuit::new(2);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        c.swap(0, 1).unwrap();
        // After the swap, the rotation has moved to qubit 1.
        let z1 = DiagonalObservable::z(2, 1).unwrap();
        let theta = 1.1;
        let (val, grad) = adjoint_gradient(&c, &[theta], &State::zero(2), &z1).unwrap();
        assert!((val - theta.cos()).abs() < 1e-12);
        assert!((grad[0] + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn controlled_rotation_four_term_rule_exact() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap();
        let s = c.alloc_slots(3);
        c.cu3_slots(0, 1, s).unwrap();
        let params = [0.9, -0.4, 1.6];
        let obs = DiagonalObservable::z(2, 1).unwrap();
        let input = State::zero(2);

        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let shift = parameter_shift_gradient(&c, &params, &input, &obs).unwrap();
        let fd = finite_difference_gradient(&c, &params, &input, &obs, 1e-5).unwrap();
        assert_close_vec(&adj, &fd, 1e-6, "adjoint vs fd");
        assert_close_vec(&shift, &adj, 1e-9, "shift vs adjoint");
    }

    #[test]
    fn validates_mismatches() {
        let c = ry_circuit();
        let z2 = DiagonalObservable::z(2, 0).unwrap();
        assert!(adjoint_gradient(&c, &[0.1], &State::zero(1), &z2).is_err());
        let z1 = DiagonalObservable::z(1, 0).unwrap();
        assert!(adjoint_gradient(&c, &[], &State::zero(1), &z1).is_err());
        assert!(parameter_shift_gradient(&c, &[0.1, 0.2], &State::zero(1), &z1).is_err());
    }

    #[test]
    fn batched_shift_matches_sequential_shift() {
        // U3 + CU3 + shared slots: exercises both shift rules and the
        // accumulation path through the batched engine.
        let mut c = Circuit::new(3);
        let s0 = c.alloc_slots(3);
        let shared = c.alloc_slot();
        c.h(0).unwrap();
        c.u3_slots(1, s0).unwrap();
        c.ry_slot(0, shared).unwrap();
        c.ry_slot(2, shared).unwrap();
        c.cu3_slots(0, 2, s0).unwrap(); // reuse slots across gates
        c.swap(1, 2).unwrap();

        let params = [0.7, -0.2, 1.1, 0.45];
        let input = State::from_real_normalized(&[1.0, -0.5, 2.0, 0.25, 0.75, -1.5, 0.5, 1.0])
            .unwrap();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(3, 0).unwrap(),
                DiagonalObservable::projector(3, 6).unwrap(),
            ],
            &[1.0, -2.0],
        )
        .unwrap();

        let serial = parameter_shift_gradient(&c, &params, &input, &obs).unwrap();
        let batched = parameter_shift_gradient_batched(&c, &params, &input, &obs).unwrap();
        assert_close_vec(&batched, &serial, 1e-10, "batched vs sequential shift");
    }

    #[test]
    fn batched_shift_on_constant_circuit_is_zero_sized() {
        let mut c = Circuit::new(1);
        c.ry_fixed(0, 0.8).unwrap();
        let z = DiagonalObservable::z(1, 0).unwrap();
        let g = parameter_shift_gradient_batched(&c, &[], &State::zero(1), &z).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn batched_shift_validates_mismatches() {
        let c = ry_circuit();
        let z2 = DiagonalObservable::z(2, 0).unwrap();
        assert!(parameter_shift_gradient_batched(&c, &[0.1], &State::zero(1), &z2).is_err());
        let z1 = DiagonalObservable::z(1, 0).unwrap();
        assert!(parameter_shift_gradient_batched(&c, &[], &State::zero(1), &z1).is_err());
    }

    #[test]
    fn expectation_of_matches_run_plus_expectation() {
        let c = ry_circuit();
        let z = DiagonalObservable::z(1, 0).unwrap();
        let via_helper = expectation_of(&c, &[0.5], &State::zero(1), &z).unwrap();
        let direct = z.expectation(&c.run(&State::zero(1), &[0.5]).unwrap());
        assert_eq!(via_helper, direct);
    }
}
