//! Deterministic fault injection for chaos-testing execution stacks.
//!
//! [`FaultInjectingBackend`] wraps any [`QuantumBackend`] and corrupts a
//! seeded, reproducible subset of `run_batch` and
//! `adjoint_gradient_batch` calls (the serving and training hot paths,
//! drawing from one shared schedule) with the failure modes a
//! long-running hybrid pipeline actually meets:
//!
//! * **panics** — the engine dies mid-call (a worker-thread kill in a
//!   serving fleet);
//! * **transient typed errors** — [`QsimError::TransientFault`], the
//!   retryable failure class (queue contention, dropped control-plane
//!   connections);
//! * **latency spikes** — the call succeeds but only after a configured
//!   stall;
//! * **NaN outputs** — the call "succeeds" while silently corrupting one
//!   batch member's amplitudes, the poison a result-validation layer
//!   must catch.
//!
//! The schedule is a pure function of a seed and a monotone call
//! counter, and the counter lives in a shared [`FaultState`]: every
//! clone of the injector handed to a respawned worker continues the
//! *same* schedule, so a chaos run's injected-fault counts are exactly
//! reproducible no matter how execution interleaves. Injection can be
//! switched off ([`FaultState::set_enabled`]) to verify recovery:
//! wrapping a deterministic backend, post-fault results must be
//! bit-identical to a fault-free run.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::fault::{FaultInjectingBackend, FaultPlan};
//! use qugeo_qsim::{QuantumBackend, StatevectorBackend};
//!
//! let plan = FaultPlan {
//!     seed: 7,
//!     transient_rate: 0.5,
//!     ..FaultPlan::default()
//! };
//! let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
//! let state = backend.fault_state();
//! assert_eq!(state.calls(), 0);
//! assert!(!backend.is_deterministic());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::adjoint::{AdjointWorkspace, ObsForMember};
use crate::batch::BatchedState;
use crate::circuit::Circuit;
use crate::fusion::CompiledCircuit;
use crate::{BackendConfig, Complex64, DiagonalObservable, QsimError, QuantumBackend};

/// The seeded fault schedule of a [`FaultInjectingBackend`].
///
/// Each `run_batch` call draws one uniform variate from
/// `(seed, call_index)` and lands in consecutive probability bands:
/// panic, then transient error, then NaN corruption, then latency spike,
/// then clean execution. Rates are fractions in `[0, 1]`; their sum is
/// the total fault rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Base seed of the schedule; same seed + same call sequence =
    /// identical injected faults.
    pub seed: u64,
    /// Fraction of calls that panic mid-execution.
    pub panic_rate: f64,
    /// Fraction of calls failing with [`QsimError::TransientFault`].
    pub transient_rate: f64,
    /// Fraction of calls that succeed but overwrite member 0's
    /// amplitudes with NaN — silent corruption the caller must detect.
    pub nan_rate: f64,
    /// Fraction of calls delayed by [`FaultPlan::latency`] before
    /// executing normally.
    pub latency_rate: f64,
    /// Stall applied to latency-spike calls.
    pub latency: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_rate: 0.0,
            transient_rate: 0.0,
            nan_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_millis(1),
        }
    }
}

/// What the schedule decided for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Clean,
    Panic,
    Transient,
    Nan,
    Latency,
}

impl FaultPlan {
    /// The scheduled outcome of call `n` — a pure function, so tests can
    /// pre-compute the exact fault counts a run will inject.
    fn outcome(&self, n: u64) -> Outcome {
        let u = unit_from(mix(self.seed, n));
        let mut edge = self.panic_rate;
        if u < edge {
            return Outcome::Panic;
        }
        edge += self.transient_rate;
        if u < edge {
            return Outcome::Transient;
        }
        edge += self.nan_rate;
        if u < edge {
            return Outcome::Nan;
        }
        edge += self.latency_rate;
        if u < edge {
            return Outcome::Latency;
        }
        Outcome::Clean
    }
}

/// Shared, atomically-updated injection bookkeeping.
///
/// One `FaultState` is shared by every clone of its
/// [`FaultInjectingBackend`] (and by the test observing the run), so
/// the call counter — and therefore the schedule — survives worker
/// respawns, and injected-fault counts can be asserted against service
/// counters exactly.
#[derive(Debug, Default)]
pub struct FaultState {
    calls: AtomicU64,
    panics: AtomicU64,
    transients: AtomicU64,
    nans: AtomicU64,
    latencies: AtomicU64,
    disabled: AtomicBool,
}

impl FaultState {
    /// Total `run_batch` calls observed (clean and faulted).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Panics injected so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Transient typed errors injected so far.
    pub fn transients(&self) -> u64 {
        self.transients.load(Ordering::Relaxed)
    }

    /// NaN corruptions injected so far.
    pub fn nans(&self) -> u64 {
        self.nans.load(Ordering::Relaxed)
    }

    /// Latency spikes injected so far.
    pub fn latencies(&self) -> u64 {
        self.latencies.load(Ordering::Relaxed)
    }

    /// Faulted calls of every kind so far.
    pub fn faults(&self) -> u64 {
        self.panics() + self.transients() + self.nans() + self.latencies()
    }

    /// Enables or disables injection. While disabled, calls pass straight
    /// through to the inner backend and do **not** advance the call
    /// counter, so re-enabling resumes the schedule where it left off.
    pub fn set_enabled(&self, enabled: bool) {
        self.disabled.store(!enabled, Ordering::Release);
    }

    /// Whether injection is currently enabled.
    pub fn enabled(&self) -> bool {
        !self.disabled.load(Ordering::Acquire)
    }
}

/// A [`QuantumBackend`] decorator that injects the [`FaultPlan`]'s
/// scheduled faults into `run_batch` while delegating everything else to
/// the wrapped backend. See the [module docs](self).
#[derive(Debug)]
pub struct FaultInjectingBackend<B> {
    inner: B,
    plan: FaultPlan,
    state: Arc<FaultState>,
}

impl<B: QuantumBackend> FaultInjectingBackend<B> {
    /// Wraps `inner` under a fresh fault state.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self::with_state(inner, plan, Arc::new(FaultState::default()))
    }

    /// Wraps `inner` continuing an existing schedule — hand every
    /// respawned worker's injector the same state so the fault sequence
    /// spans the whole fleet's lifetime.
    pub fn with_state(inner: B, plan: FaultPlan, state: Arc<FaultState>) -> Self {
        Self { inner, plan, state }
    }

    /// The shared injection bookkeeping.
    pub fn fault_state(&self) -> Arc<FaultState> {
        Arc::clone(&self.state)
    }

    /// The schedule in use.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<B: QuantumBackend> QuantumBackend for FaultInjectingBackend<B> {
    fn name(&self) -> &'static str {
        "fault-injecting"
    }

    fn config(&self) -> &BackendConfig {
        self.inner.config()
    }

    fn supports_adjoint_gradient(&self) -> bool {
        self.inner.supports_adjoint_gradient()
    }

    fn is_deterministic(&self) -> bool {
        // Repeating a call *sequence* is reproducible per seed, but a
        // single call repeated is not (the counter advances) — the same
        // contract sampling backends declare.
        false
    }

    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        if !self.state.enabled() {
            return self.inner.run_batch(circuit, batch);
        }
        let n = self.state.calls.fetch_add(1, Ordering::Relaxed);
        match self.plan.outcome(n) {
            Outcome::Clean => self.inner.run_batch(circuit, batch),
            Outcome::Panic => {
                self.state.panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected engine panic (call {n})");
            }
            Outcome::Transient => {
                self.state.transients.fetch_add(1, Ordering::Relaxed);
                Err(QsimError::TransientFault {
                    reason: format!("injected transient fault (call {n})"),
                })
            }
            Outcome::Nan => {
                self.state.nans.fetch_add(1, Ordering::Relaxed);
                self.inner.run_batch(circuit, batch)?;
                let dim = batch.member_dim();
                for amp in &mut batch.amps_mut()[..dim] {
                    *amp = Complex64::new(f64::NAN, f64::NAN);
                }
                Ok(())
            }
            Outcome::Latency => {
                self.state.latencies.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.latency);
                self.inner.run_batch(circuit, batch)
            }
        }
    }

    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.inner.run_each(circuits, batch)
    }

    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        self.inner.expectations(batch, obs)
    }

    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        self.inner.probabilities(batch)
    }

    fn adjoint_gradient_batch(
        &self,
        circuit: &Circuit,
        params: &[f64],
        inputs: &BatchedState,
        obs_for: &mut ObsForMember<'_>,
        ws: &mut AdjointWorkspace,
    ) -> Result<(), QsimError> {
        // The training hot path goes through this entry point, not
        // `run_batch`, so it draws from the same seeded schedule — a chaos
        // run over a trainer injects the same fault classes a serving
        // fleet meets. The counter is shared, so mixed serve/train runs
        // still account exactly.
        if !self.state.enabled() {
            return self.inner.adjoint_gradient_batch(circuit, params, inputs, obs_for, ws);
        }
        let n = self.state.calls.fetch_add(1, Ordering::Relaxed);
        match self.plan.outcome(n) {
            Outcome::Clean => self.inner.adjoint_gradient_batch(circuit, params, inputs, obs_for, ws),
            Outcome::Panic => {
                self.state.panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected engine panic (call {n})");
            }
            Outcome::Transient => {
                self.state.transients.fetch_add(1, Ordering::Relaxed);
                Err(QsimError::TransientFault {
                    reason: format!("injected transient fault (call {n})"),
                })
            }
            Outcome::Nan => {
                self.state.nans.fetch_add(1, Ordering::Relaxed);
                self.inner.adjoint_gradient_batch(circuit, params, inputs, obs_for, ws)?;
                // Poison member 0's loss value and gradient — the silent
                // corruption a validation layer must catch downstream.
                let poisoned = vec![f64::NAN; circuit.num_slots()];
                ws.set_member_result(0, f64::NAN, &poisoned);
                Ok(())
            }
            Outcome::Latency => {
                self.state.latencies.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.latency);
                self.inner.adjoint_gradient_batch(circuit, params, inputs, obs_for, ws)
            }
        }
    }
}

/// SplitMix64-style mixing of (seed, call) into a decorrelated word.
fn mix(base: u64, call: u64) -> u64 {
    let mut z = base ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed word onto `[0, 1)` using the top 53 bits.
fn unit_from(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, State, StatevectorBackend};

    fn bell_batch() -> (CompiledCircuit, BatchedState) {
        let mut c = Circuit::new(2);
        c.h(0).unwrap();
        c.cx(0, 1).unwrap();
        let compiled = CompiledCircuit::compile(&c, &[]).unwrap();
        let batch = BatchedState::replicate(&State::zero(2), 1);
        (compiled, batch)
    }

    #[test]
    fn schedule_is_reproducible_and_respects_rates() {
        let plan = FaultPlan {
            seed: 42,
            panic_rate: 0.1,
            transient_rate: 0.1,
            nan_rate: 0.1,
            latency_rate: 0.1,
            ..FaultPlan::default()
        };
        let first: Vec<Outcome> = (0..4096).map(|n| plan.outcome(n)).collect();
        let second: Vec<Outcome> = (0..4096).map(|n| plan.outcome(n)).collect();
        assert_eq!(first, second, "schedule must be a pure function of (seed, call)");
        let faults = first.iter().filter(|o| **o != Outcome::Clean).count();
        let rate = faults as f64 / first.len() as f64;
        assert!(
            (rate - 0.4).abs() < 0.05,
            "fault rate {rate} far from the configured 0.4"
        );
    }

    #[test]
    fn transient_fault_is_typed_and_counted() {
        let plan = FaultPlan {
            seed: 3,
            transient_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let (compiled, mut batch) = bell_batch();
        let err = backend.run_batch(&compiled, &mut batch).unwrap_err();
        assert!(matches!(err, QsimError::TransientFault { .. }));
        let state = backend.fault_state();
        assert_eq!(state.calls(), 1);
        assert_eq!(state.transients(), 1);
        assert_eq!(state.faults(), 1);
    }

    #[test]
    fn nan_corruption_poisons_member_zero() {
        let plan = FaultPlan {
            seed: 3,
            nan_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let (compiled, mut batch) = bell_batch();
        backend.run_batch(&compiled, &mut batch).unwrap();
        let probs = batch.member_probabilities(0).unwrap();
        assert!(probs.iter().any(|p| p.is_nan()), "corruption must reach measurement");
        assert_eq!(backend.fault_state().nans(), 1);
    }

    #[test]
    fn injected_panic_is_counted_first() {
        let plan = FaultPlan {
            seed: 3,
            panic_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let state = backend.fault_state();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (compiled, mut batch) = bell_batch();
            let _ = backend.run_batch(&compiled, &mut batch);
        }));
        assert!(caught.is_err(), "panic must propagate");
        assert_eq!(state.panics(), 1, "the panic must be counted before unwinding");
    }

    #[test]
    fn disabled_injection_passes_through_without_advancing() {
        let plan = FaultPlan {
            seed: 3,
            transient_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let state = backend.fault_state();
        state.set_enabled(false);
        let (compiled, mut batch) = bell_batch();
        backend.run_batch(&compiled, &mut batch).unwrap();
        assert_eq!(state.calls(), 0, "disabled calls must not consume the schedule");
        // Disabled execution is the inner backend verbatim.
        let probs = batch.member_probabilities(0).unwrap();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[3] - 0.5).abs() < 1e-12);
        state.set_enabled(true);
        assert!(backend.run_batch(&compiled, &mut batch).is_err());
        assert_eq!(state.calls(), 1);
    }

    #[test]
    fn adjoint_path_draws_from_the_shared_schedule() {
        let plan = FaultPlan {
            seed: 3,
            transient_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let state = backend.fault_state();

        let mut c = Circuit::new(2);
        let slot = c.alloc_slot();
        c.ry_slot(0, slot).unwrap();
        let inputs = BatchedState::replicate(&State::zero(2), 1);
        let obs = DiagonalObservable::z(2, 0).unwrap();
        let mut ws = AdjointWorkspace::new();
        let mut obs_for = |_: usize, _: &[f64]| Ok(obs.clone());

        let err = backend
            .adjoint_gradient_batch(&c, &[0.3], &inputs, &mut obs_for, &mut ws)
            .unwrap_err();
        assert!(matches!(err, QsimError::TransientFault { .. }));
        assert_eq!(state.calls(), 1, "adjoint calls must advance the shared counter");
        assert_eq!(state.transients(), 1);

        // Disabled, the call is the inner backend verbatim and does not
        // consume the schedule.
        state.set_enabled(false);
        backend
            .adjoint_gradient_batch(&c, &[0.3], &inputs, &mut obs_for, &mut ws)
            .unwrap();
        assert_eq!(state.calls(), 1);
        assert!(ws.value(0).is_finite());
    }

    #[test]
    fn adjoint_nan_injection_poisons_member_zero_results() {
        let plan = FaultPlan {
            seed: 3,
            nan_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let mut c = Circuit::new(2);
        let slot = c.alloc_slot();
        c.ry_slot(0, slot).unwrap();
        let inputs = BatchedState::replicate(&State::zero(2), 1);
        let obs = DiagonalObservable::z(2, 0).unwrap();
        let mut ws = AdjointWorkspace::new();
        let mut obs_for = |_: usize, _: &[f64]| Ok(obs.clone());
        backend
            .adjoint_gradient_batch(&c, &[0.3], &inputs, &mut obs_for, &mut ws)
            .unwrap();
        assert!(ws.value(0).is_nan(), "loss value must be poisoned");
        assert!(ws.grad(0).iter().all(|g| g.is_nan()), "gradient must be poisoned");
        assert_eq!(backend.fault_state().nans(), 1);
    }

    #[test]
    fn shared_state_spans_clones() {
        let plan = FaultPlan {
            seed: 9,
            transient_rate: 1.0,
            ..FaultPlan::default()
        };
        let a = FaultInjectingBackend::new(StatevectorBackend::default(), plan);
        let state = a.fault_state();
        let b = FaultInjectingBackend::with_state(StatevectorBackend::default(), plan, a.fault_state());
        let (compiled, mut batch) = bell_batch();
        let _ = a.run_batch(&compiled, &mut batch);
        let _ = b.run_batch(&compiled, &mut batch);
        assert_eq!(state.calls(), 2, "clones must share one call counter");
        assert_eq!(state.transients(), 2);
    }
}
