//! Pluggable circuit-execution backends.
//!
//! The rest of the workspace used to call the statevector engine
//! ([`crate::State`] / [`BatchedState`] / [`CompiledCircuit`]) directly,
//! which hard-wired one execution substrate — exact, deterministic,
//! infinitely many measurement shots — into every model, trainer and
//! bench. A [`QuantumBackend`] abstracts the substrate behind four
//! operations (batch execution, per-member execution, expectation
//! estimation, probability estimation) plus capability flags, so the same
//! model code can run:
//!
//! * [`StatevectorBackend`] — the default: today's gate-fused,
//!   chunk-parallel, runtime-SIMD-dispatched engine (scalar / AVX2 /
//!   AVX-512 batched tile; see [`crate::simd_feature_level`]),
//!   bit-identical to calling the engine directly — and, by the kernel
//!   layer's canonical-FMA contract, bit-identical across SIMD tiers;
//! * [`NaiveBackend`] — a reference gate-by-gate interpreter using the
//!   seed's masked full-scan loops, kept for differential testing of the
//!   branch-free kernels (`tests/simd_differential.rs` pins the default
//!   backend against it on arbitrary circuits);
//! * [`ShotSamplerBackend`] — exact state evolution but **finite-shot**
//!   measurement statistics with a seedable RNG, the hardware-realism
//!   axis of arXiv:2503.05009;
//! * [`NoisyBackend`] — stochastic Pauli noise injected per fused
//!   operation plus a readout-error map, wrapping the channels of
//!   [`crate::noise`].
//!
//! Capability flags drive gradient routing: callers pick adjoint
//! differentiation when [`QuantumBackend::supports_adjoint_gradient`]
//! holds (it needs amplitude-level access to an exact state) and fall
//! back to batched parameter-shift through the backend otherwise
//! ([`crate::gradient::parameter_shift_gradient_backend`]).
//!
//! Thread budget is a first-class [`BackendConfig`] field; the
//! `QUGEO_SIM_THREADS` environment variable is only the fallback when no
//! count is configured.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::backend::{QuantumBackend, ShotSamplerBackend, StatevectorBackend};
//! use qugeo_qsim::{BatchedState, Circuit, CompiledCircuit, DiagonalObservable, State};
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let mut circuit = Circuit::new(2);
//! circuit.h(0)?;
//! circuit.cx(0, 1)?;
//! let compiled = CompiledCircuit::compile(&circuit, &[])?;
//! let obs = DiagonalObservable::z(2, 1)?;
//!
//! let exact = StatevectorBackend::default();
//! let mut batch = BatchedState::replicate(&State::zero(2), 1);
//! exact.run_batch(&compiled, &mut batch)?;
//! assert!(exact.expectations(&batch, &obs)?[0].abs() < 1e-12); // Bell: <Z1> = 0
//!
//! // The same workload under a 4096-shot measurement budget.
//! let sampled = ShotSamplerBackend::new(4096, 7);
//! let mut batch = BatchedState::replicate(&State::zero(2), 1);
//! sampled.run_batch(&compiled, &mut batch)?;
//! assert!(sampled.expectations(&batch, &obs)?[0].abs() < 0.1);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use crate::adjoint::{AdjointWorkspace, ObsForMember};
use crate::batch::BatchedState;
use crate::circuit::Circuit;
use crate::fusion::{CompiledCircuit, FusedOp};
use crate::gates::Matrix2;
use crate::kernels::simulation_threads;
use crate::noise::{apply_readout_flip, empirical_probabilities, sample_counts, NoiseModel};
use crate::{Complex64, DiagonalObservable, QsimError, State};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Execution configuration shared by every backend.
///
/// The thread budget lives here rather than in a process-global: two
/// backends in one process can run with different budgets (e.g. a
/// latency-sensitive serving backend pinned to 1 thread next to a
/// throughput-oriented training backend using every core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendConfig {
    /// Worker threads the backend's kernels may use. `None` falls back to
    /// the `QUGEO_SIM_THREADS` environment variable, then to
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
}

impl BackendConfig {
    /// A config pinned to an explicit thread count (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
        }
    }

    /// The thread count this config resolves to.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(simulation_threads).max(1)
    }

    /// Splits the machine's simulation-thread budget across `workers`
    /// cooperating backends (minimum 1 thread each).
    ///
    /// A multi-worker serving layer runs one backend per worker thread;
    /// giving each of them the full machine budget (`QUGEO_SIM_THREADS`
    /// or [`std::thread::available_parallelism`]) would oversubscribe
    /// the host `workers`-fold. This constructor hands each worker an
    /// equal share, so `workers` sessions together use roughly the same
    /// budget one training backend would.
    pub fn shared_across(workers: usize) -> Self {
        let total = simulation_threads();
        Self::with_threads((total / workers.max(1)).max(1))
    }

    /// Splits *this* config's resolved budget a further `ways` ways
    /// (minimum 1 thread each).
    ///
    /// Where [`BackendConfig::shared_across`] divides the machine-wide
    /// budget, `split` divides an already-allocated share — e.g. a sweep
    /// trial that received `shared_across(parallel_trials)` hands each of
    /// its data-parallel replicas `split(replicas)`. The kernel layer's
    /// fixed-chunk reductions make results bit-identical whatever budget
    /// lands here; `split` only affects scheduling.
    pub fn split(&self, ways: usize) -> Self {
        Self::with_threads((self.effective_threads() / ways.max(1)).max(1))
    }
}

/// A circuit-execution substrate.
///
/// State *evolution* ([`QuantumBackend::run_batch`] /
/// [`QuantumBackend::run_each`]) is separated from *measurement*
/// ([`QuantumBackend::expectations`] / [`QuantumBackend::probabilities`])
/// so backends can model imperfections at either stage: the shot sampler
/// evolves exactly but measures statistically; the noisy backend corrupts
/// evolution and readout independently.
pub trait QuantumBackend: Send + Sync {
    /// Short human-readable backend name (used to label bench series and
    /// experiment output).
    fn name(&self) -> &'static str;

    /// The execution configuration in use.
    fn config(&self) -> &BackendConfig;

    /// `true` when the backend produces exact statevectors, making
    /// adjoint differentiation (which reads amplitudes directly) valid.
    /// Callers fall back to parameter-shift through the backend when this
    /// is `false`.
    fn supports_adjoint_gradient(&self) -> bool;

    /// `true` when repeating the same call sequence yields bit-identical
    /// results without any stochastic element (sampling backends return
    /// `false` even though they are reproducible per seed).
    fn is_deterministic(&self) -> bool;

    /// Applies one compiled circuit to every member of the batch.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the circuit width
    /// differs from the members'.
    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError>;

    /// Applies circuit `i` to member `i` (the parameter-shift shape).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] on a count mismatch or
    /// [`QsimError::QubitCountMismatch`] on a width mismatch.
    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError>;

    /// Estimates `⟨O⟩` for every member of an already-evolved batch.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the observable width
    /// differs from the members'.
    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError>;

    /// Estimates the basis-state probability distribution of every member
    /// of an already-evolved batch (one `2^n` vector per member).
    ///
    /// # Errors
    ///
    /// Returns an error if estimation fails (e.g. sampling from an
    /// invalid distribution).
    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError>;

    /// Convenience: runs one compiled circuit on a single input state
    /// through the backend, returning the evolved state.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantumBackend::run_batch`] errors.
    fn run_state(&self, circuit: &CompiledCircuit, input: &State) -> Result<State, QsimError> {
        let mut batch = BatchedState::replicate(input, 1);
        self.run_batch(circuit, &mut batch)?;
        batch.member(0)
    }

    /// Batched adjoint gradients for every member of `inputs` — the
    /// training hot path. `obs_for(b, probs)` is called once per member,
    /// in order, with that member's exact output distribution and returns
    /// the member's effective diagonal observable (how QuGeo's decoders
    /// express a loss gradient); results land in the caller-held `ws`
    /// ([`AdjointWorkspace::values`] / [`AdjointWorkspace::grad`]), whose
    /// buffers are recycled across calls.
    ///
    /// The provided implementation drives the fused batched engine
    /// ([`crate::adjoint`]) through
    /// [`AdjointWorkspace::adjoint_batch`] under the backend's thread
    /// budget: the workspace caches the compiled circuit, so repeated
    /// calls with the same circuit re-bind parameters instead of
    /// recompiling (see [`AdjointWorkspace::recompiles`] /
    /// [`AdjointWorkspace::rebinds`]). Exact backends may override it — the
    /// [`NaiveBackend`] substitutes the serial unfused reference so
    /// differential tests can pin the fused engine through this very
    /// trait. Backends without amplitude access cannot implement it at
    /// all; callers route on [`QuantumBackend::supports_adjoint_gradient`]
    /// and fall back to parameter shift.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::Unsupported`] when
    /// [`QuantumBackend::supports_adjoint_gradient`] is `false`, and
    /// propagates mismatch, engine, and `obs_for` errors.
    fn adjoint_gradient_batch(
        &self,
        circuit: &Circuit,
        params: &[f64],
        inputs: &BatchedState,
        obs_for: &mut ObsForMember<'_>,
        ws: &mut AdjointWorkspace,
    ) -> Result<(), QsimError> {
        if !self.supports_adjoint_gradient() {
            return Err(QsimError::Unsupported {
                reason: format!(
                    "backend '{}' exposes no exact amplitudes; route gradients \
                     through parameter shift instead",
                    self.name()
                ),
            });
        }
        let threads = self.config().effective_threads();
        ws.adjoint_batch(circuit, params, inputs, threads, obs_for)
    }
}

/// The default backend: the gate-fused, chunk-parallel statevector
/// engine, exact and deterministic. Behaviour is bit-identical to calling
/// [`BatchedState::apply_compiled`] / [`BatchedState::apply_each`]
/// directly with the configured thread budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatevectorBackend {
    config: BackendConfig,
}

impl StatevectorBackend {
    /// A statevector backend with an explicit config.
    pub fn with_config(config: BackendConfig) -> Self {
        Self { config }
    }
}

impl QuantumBackend for StatevectorBackend {
    fn name(&self) -> &'static str {
        "statevector"
    }

    fn config(&self) -> &BackendConfig {
        &self.config
    }

    fn supports_adjoint_gradient(&self) -> bool {
        true
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        batch.apply_compiled_threaded(circuit, self.config.effective_threads())
    }

    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        batch.apply_each_threaded(circuits, self.config.effective_threads())
    }

    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        batch.expectations(obs)
    }

    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        (0..batch.batch_len())
            .map(|b| batch.member_probabilities(b))
            .collect()
    }
}

/// Reference backend: every fused operation is applied with the seed's
/// masked full-scan loops, one member at a time, single-threaded. It
/// exists for differential testing — any divergence from
/// [`StatevectorBackend`] beyond rounding noise indicts the branch-free
/// kernels or the chunked parallel split, not the model — and as the
/// honest baseline in throughput benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend {
    config: BackendConfig,
}

impl NaiveBackend {
    fn apply(circuit: &CompiledCircuit, amps: &mut [Complex64]) {
        for op in circuit.ops() {
            match op {
                FusedOp::One { m, q } => naive_one(amps, m, *q),
                FusedOp::Multiplexed { a0, a1, c, t } => naive_multiplexed(amps, a0, a1, *c, *t),
                FusedOp::Two { m, a, b } => naive_two(amps, &m.m, *a, *b),
            }
        }
    }
}

impl QuantumBackend for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn config(&self) -> &BackendConfig {
        &self.config
    }

    fn supports_adjoint_gradient(&self) -> bool {
        true
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        check_circuit_width(circuit, batch)?;
        let dim = batch.member_dim();
        for member in batch.amps_mut().chunks_mut(dim) {
            Self::apply(circuit, member);
        }
        Ok(())
    }

    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        check_each_inputs(circuits, batch)?;
        let dim = batch.member_dim();
        for (member, circuit) in batch.amps_mut().chunks_mut(dim).zip(circuits) {
            Self::apply(circuit, member);
        }
        Ok(())
    }

    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        batch.expectations(obs)
    }

    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        (0..batch.batch_len())
            .map(|b| batch.member_probabilities(b))
            .collect()
    }

    /// The serial, unfused reference adjoint: one gate-by-gate
    /// [`crate::adjoint_gradient`] pass per member. Nothing here is
    /// shared with the fused batched engine, so any divergence between
    /// this backend and [`StatevectorBackend`] through the same trait
    /// call indicts the fused sweep.
    fn adjoint_gradient_batch(
        &self,
        circuit: &Circuit,
        params: &[f64],
        inputs: &BatchedState,
        obs_for: &mut ObsForMember<'_>,
        ws: &mut AdjointWorkspace,
    ) -> Result<(), QsimError> {
        ws.prepare_results(circuit.num_qubits(), inputs.batch_len(), circuit.num_slots());
        for b in 0..inputs.batch_len() {
            let input = inputs.member(b)?;
            let psi = circuit.run(&input, params)?;
            let obs = obs_for(b, &psi.probabilities())?;
            let (value, grad) = crate::gradient::adjoint_gradient(circuit, params, &input, &obs)?;
            ws.set_member_result(b, value, &grad);
        }
        Ok(())
    }
}

/// Finite-shot backend: state evolution is exact (it models a perfect
/// device), but every measurement is estimated from `shots` samples of
/// the output distribution — expectation values and probabilities carry
/// the `O(1/√shots)` statistical error real hardware pays.
///
/// Sampling is reproducible: a fixed `seed` plus an identical sequence of
/// calls yields identical estimates (an internal call counter derives a
/// fresh stream per call and member, so repeated measurements are
/// independent draws, not copies).
#[derive(Debug)]
pub struct ShotSamplerBackend {
    config: BackendConfig,
    exact: StatevectorBackend,
    shots: usize,
    seed: u64,
    calls: AtomicU64,
}

impl ShotSamplerBackend {
    /// A sampler taking `shots` measurements per estimate (minimum 1).
    pub fn new(shots: usize, seed: u64) -> Self {
        Self::with_config(shots, seed, BackendConfig::default())
    }

    /// [`ShotSamplerBackend::new`] with an explicit config.
    pub fn with_config(shots: usize, seed: u64, config: BackendConfig) -> Self {
        Self {
            config,
            exact: StatevectorBackend::with_config(config),
            shots: shots.max(1),
            seed,
            calls: AtomicU64::new(0),
        }
    }

    /// Measurement shots per estimate.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Empirical distribution of one member from `shots` draws.
    fn sample_member(&self, batch: &BatchedState, b: usize, call: u64) -> Result<Vec<f64>, QsimError> {
        let probs = batch.member_probabilities(b)?;
        let counts = sample_counts(&probs, self.shots, mix_seed(self.seed, call, b as u64))?;
        Ok(empirical_probabilities(&counts))
    }
}

impl QuantumBackend for ShotSamplerBackend {
    fn name(&self) -> &'static str {
        "shot-sampler"
    }

    fn config(&self) -> &BackendConfig {
        &self.config
    }

    fn supports_adjoint_gradient(&self) -> bool {
        false // adjoint reads exact amplitudes a sampled device cannot expose
    }

    fn is_deterministic(&self) -> bool {
        false
    }

    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.exact.run_batch(circuit, batch)
    }

    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        self.exact.run_each(circuits, batch)
    }

    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        if obs.num_qubits() != batch.num_qubits() {
            return Err(QsimError::QubitCountMismatch {
                expected: batch.num_qubits(),
                actual: obs.num_qubits(),
            });
        }
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        (0..batch.batch_len())
            .map(|b| {
                let empirical = self.sample_member(batch, b, call)?;
                Ok(empirical
                    .iter()
                    .zip(obs.diagonal())
                    .map(|(p, d)| p * d)
                    .sum())
            })
            .collect()
    }

    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        (0..batch.batch_len())
            .map(|b| self.sample_member(batch, b, call))
            .collect()
    }
}

/// NISQ backend: exact evolution corrupted by one stochastic Pauli-noise
/// trajectory per member (depolarizing channels unravelled exactly as in
/// [`crate::noise::NoisyExecutor`], but at **fused-op granularity** —
/// after compilation each fused op stands in for one hardware-native
/// gate), plus the symmetric readout-error map applied at measurement.
///
/// One `run_batch` call is one trajectory per member. Monte-Carlo
/// averaging over trajectories, when wanted, is the caller's loop —
/// replicate the input across members or call repeatedly; the internal
/// call counter gives every member of every call an independent noise
/// stream, reproducibly per seed.
#[derive(Debug)]
pub struct NoisyBackend {
    config: BackendConfig,
    noise: NoiseModel,
    seed: u64,
    calls: AtomicU64,
}

impl NoisyBackend {
    /// A noisy backend drawing trajectories under `noise` from `seed`.
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        Self::with_config(noise, seed, BackendConfig::default())
    }

    /// [`NoisyBackend::new`] with an explicit config.
    pub fn with_config(noise: NoiseModel, seed: u64, config: BackendConfig) -> Self {
        Self {
            config,
            noise,
            seed,
            calls: AtomicU64::new(0),
        }
    }

    /// The noise model in use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Applies `circuit` to one member with Pauli insertions after each
    /// fused op.
    fn apply_noisy(&self, circuit: &CompiledCircuit, amps: &mut [Complex64], rng: &mut StdRng) {
        for op in circuit.ops() {
            match op {
                FusedOp::One { m, q } => {
                    naive_one(amps, m, *q);
                    self.insert_pauli(amps, &[*q], self.noise.single_qubit_depolarizing, rng);
                }
                FusedOp::Multiplexed { a0, a1, c, t } => {
                    naive_multiplexed(amps, a0, a1, *c, *t);
                    self.insert_pauli(amps, &[*c, *t], self.noise.two_qubit_depolarizing, rng);
                }
                FusedOp::Two { m, a, b } => {
                    naive_two(amps, &m.m, *a, *b);
                    self.insert_pauli(amps, &[*a, *b], self.noise.two_qubit_depolarizing, rng);
                }
            }
        }
    }

    fn insert_pauli(&self, amps: &mut [Complex64], qubits: &[usize], p: f64, rng: &mut StdRng) {
        if p == 0.0 {
            return;
        }
        for &q in qubits {
            if rng.gen::<f64>() < p {
                let pauli = match rng.gen_range(0..3) {
                    0 => Matrix2::x(),
                    1 => Matrix2::y(),
                    _ => Matrix2::z(),
                };
                naive_one(amps, &pauli, q);
            }
        }
    }
}

impl QuantumBackend for NoisyBackend {
    fn name(&self) -> &'static str {
        "noisy"
    }

    fn config(&self) -> &BackendConfig {
        &self.config
    }

    fn supports_adjoint_gradient(&self) -> bool {
        false // the evolved state is one noisy trajectory, not |ψ(θ)⟩
    }

    fn is_deterministic(&self) -> bool {
        self.noise.is_noiseless()
    }

    fn run_batch(
        &self,
        circuit: &CompiledCircuit,
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        check_circuit_width(circuit, batch)?;
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let dim = batch.member_dim();
        for (b, member) in batch.amps_mut().chunks_mut(dim).enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, call, b as u64));
            self.apply_noisy(circuit, member, &mut rng);
        }
        Ok(())
    }

    fn run_each(
        &self,
        circuits: &[CompiledCircuit],
        batch: &mut BatchedState,
    ) -> Result<(), QsimError> {
        check_each_inputs(circuits, batch)?;
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let dim = batch.member_dim();
        for (b, (member, circuit)) in batch.amps_mut().chunks_mut(dim).zip(circuits).enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, call, b as u64));
            self.apply_noisy(circuit, member, &mut rng);
        }
        Ok(())
    }

    fn expectations(
        &self,
        batch: &BatchedState,
        obs: &DiagonalObservable,
    ) -> Result<Vec<f64>, QsimError> {
        if obs.num_qubits() != batch.num_qubits() {
            return Err(QsimError::QubitCountMismatch {
                expected: batch.num_qubits(),
                actual: obs.num_qubits(),
            });
        }
        Ok(self
            .probabilities(batch)?
            .into_iter()
            .map(|probs| probs.iter().zip(obs.diagonal()).map(|(p, d)| p * d).sum())
            .collect())
    }

    fn probabilities(&self, batch: &BatchedState) -> Result<Vec<Vec<f64>>, QsimError> {
        (0..batch.batch_len())
            .map(|b| {
                let probs = batch.member_probabilities(b)?;
                Ok(apply_readout_flip(
                    &probs,
                    batch.num_qubits(),
                    self.noise.readout_flip,
                ))
            })
            .collect()
    }
}

fn check_circuit_width(circuit: &CompiledCircuit, batch: &BatchedState) -> Result<(), QsimError> {
    if circuit.num_qubits() != batch.num_qubits() {
        return Err(QsimError::QubitCountMismatch {
            expected: batch.num_qubits(),
            actual: circuit.num_qubits(),
        });
    }
    Ok(())
}

fn check_each_inputs(circuits: &[CompiledCircuit], batch: &BatchedState) -> Result<(), QsimError> {
    if circuits.len() != batch.batch_len() {
        return Err(QsimError::InvalidEncoding {
            reason: format!(
                "{} circuits for a batch of {}",
                circuits.len(),
                batch.batch_len()
            ),
        });
    }
    for c in circuits {
        check_circuit_width(c, batch)?;
    }
    Ok(())
}

/// SplitMix64-style seed mixing so distinct (call, member) pairs get
/// decorrelated RNG streams from one base seed.
fn mix_seed(base: u64, call: u64, member: u64) -> u64 {
    let mut z = base
        ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ member.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---- Reference (seed-style) gate loops ------------------------------------
//
// Masked full-index scans, exactly the shape the seed shipped with. They
// stay deliberately naive: the point is an implementation with nothing in
// common with the branch-free chunked kernels.

fn naive_one(amps: &mut [Complex64], g: &Matrix2, q: usize) {
    let mask = 1usize << q;
    let [[m00, m01], [m10, m11]] = g.m;
    for i in 0..amps.len() {
        if i & mask == 0 {
            let j = i | mask;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = m00 * a0 + m01 * a1;
            amps[j] = m10 * a0 + m11 * a1;
        }
    }
}

fn naive_multiplexed(amps: &mut [Complex64], a0: &Matrix2, a1: &Matrix2, c: usize, t: usize) {
    let cmask = 1usize << c;
    let tmask = 1usize << t;
    let [[z00, z01], [z10, z11]] = a0.m;
    let [[o00, o01], [o10, o11]] = a1.m;
    for i in 0..amps.len() {
        if i & tmask == 0 {
            let j = i | tmask;
            let x0 = amps[i];
            let x1 = amps[j];
            if i & cmask == 0 {
                amps[i] = z00 * x0 + z01 * x1;
                amps[j] = z10 * x0 + z11 * x1;
            } else {
                amps[i] = o00 * x0 + o01 * x1;
                amps[j] = o10 * x0 + o11 * x1;
            }
        }
    }
}

fn naive_two(amps: &mut [Complex64], m: &[[Complex64; 4]; 4], a: usize, b: usize) {
    let ma = 1usize << a;
    let mb = 1usize << b;
    for i in 0..amps.len() {
        if i & ma == 0 && i & mb == 0 {
            let idx = [i, i | ma, i | mb, i | ma | mb];
            let v = idx.map(|k| amps[k]);
            for (r, &k) in idx.iter().enumerate() {
                amps[k] = m[r][0] * v[0] + m[r][1] * v[1] + m[r][2] * v[2] + m[r][3] * v[3];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
    use crate::Circuit;

    fn ansatz(n: usize, blocks: usize) -> (Circuit, Vec<f64>) {
        let c = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: n,
            num_blocks: blocks,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        let params = (0..c.num_slots())
            .map(|i| (i as f64 * 0.61).sin() * 0.8)
            .collect();
        (c, params)
    }

    fn sample_batch(n: usize, members: usize) -> BatchedState {
        let states: Vec<State> = (0..members)
            .map(|k| {
                let data: Vec<f64> = (0..1usize << n)
                    .map(|i| ((i + 7 * k) as f64 * 0.43).sin() + 0.2)
                    .collect();
                State::from_real_normalized(&data).unwrap()
            })
            .collect();
        BatchedState::from_states(&states).unwrap()
    }

    #[test]
    fn split_divides_a_resolved_budget_with_a_floor_of_one() {
        let cfg = BackendConfig::with_threads(8);
        assert_eq!(cfg.split(2).effective_threads(), 4);
        assert_eq!(cfg.split(3).effective_threads(), 2);
        assert_eq!(cfg.split(8).effective_threads(), 1);
        assert_eq!(cfg.split(100).effective_threads(), 1);
        assert_eq!(cfg.split(0).effective_threads(), 8);
        // Splitting resolves the budget first: the result is always pinned.
        assert!(BackendConfig::default().split(2).threads.is_some());
    }

    #[test]
    fn statevector_and_naive_agree() {
        let (c, params) = ansatz(4, 3);
        let compiled = c.compile(&params).unwrap();
        let mut fast = sample_batch(4, 3);
        let mut slow = fast.clone();
        StatevectorBackend::default().run_batch(&compiled, &mut fast).unwrap();
        NaiveBackend::default().run_batch(&compiled, &mut slow).unwrap();
        for b in 0..3 {
            for (x, y) in fast
                .member_amps(b)
                .unwrap()
                .iter()
                .zip(slow.member_amps(b).unwrap())
            {
                assert!((*x - *y).norm() < 1e-12, "member {b} diverged");
            }
        }
    }

    #[test]
    fn run_each_matches_run_batch_on_identical_circuits() {
        let (c, params) = ansatz(3, 2);
        let compiled = c.compile(&params).unwrap();
        for backend in [&StatevectorBackend::default() as &dyn QuantumBackend, &NaiveBackend::default()] {
            let mut via_batch = sample_batch(3, 4);
            let mut via_each = via_batch.clone();
            backend.run_batch(&compiled, &mut via_batch).unwrap();
            backend
                .run_each(&vec![compiled.clone(); 4], &mut via_each)
                .unwrap();
            assert_eq!(via_batch, via_each);
        }
    }

    #[test]
    fn shot_sampler_is_reproducible_per_seed() {
        let (c, params) = ansatz(3, 2);
        let compiled = c.compile(&params).unwrap();
        let obs = DiagonalObservable::z(3, 1).unwrap();

        let run = |seed: u64| {
            let backend = ShotSamplerBackend::new(512, seed);
            let mut batch = sample_batch(3, 2);
            backend.run_batch(&compiled, &mut batch).unwrap();
            let e = backend.expectations(&batch, &obs).unwrap();
            let p = backend.probabilities(&batch).unwrap();
            (e, p)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn repeated_measurements_are_fresh_draws() {
        let (c, params) = ansatz(3, 1);
        let compiled = c.compile(&params).unwrap();
        let obs = DiagonalObservable::z(3, 0).unwrap();
        let backend = ShotSamplerBackend::new(64, 3);
        let mut batch = sample_batch(3, 1);
        backend.run_batch(&compiled, &mut batch).unwrap();
        let a = backend.expectations(&batch, &obs).unwrap();
        let b = backend.expectations(&batch, &obs).unwrap();
        // Same state, new shots: estimates differ (64 shots is coarse).
        assert_ne!(a, b);
    }

    #[test]
    fn shot_estimates_converge_to_exact() {
        let (c, params) = ansatz(3, 2);
        let compiled = c.compile(&params).unwrap();
        let obs = DiagonalObservable::z(3, 2).unwrap();
        let mut batch = sample_batch(3, 1);
        StatevectorBackend::default()
            .run_batch(&compiled, &mut batch)
            .unwrap();
        let exact = batch.expectations(&obs).unwrap()[0];

        let err = |shots: usize, seed: u64| {
            let backend = ShotSamplerBackend::new(shots, seed);
            (backend.expectations(&batch, &obs).unwrap()[0] - exact).abs()
        };
        assert!(err(100_000, 5) < 0.02);
        // Averaged over seeds, 1000× the shots must mean smaller error.
        let mean = |shots: usize| (0..10).map(|s| err(shots, s)).sum::<f64>() / 10.0;
        assert!(mean(100_000) < mean(100));
    }

    #[test]
    fn noisy_backend_noiseless_matches_exact() {
        let (c, params) = ansatz(3, 2);
        let compiled = c.compile(&params).unwrap();
        let backend = NoisyBackend::new(NoiseModel::noiseless(), 0);
        assert!(backend.is_deterministic());
        let mut noisy = sample_batch(3, 2);
        let mut exact = noisy.clone();
        backend.run_batch(&compiled, &mut noisy).unwrap();
        StatevectorBackend::default()
            .run_batch(&compiled, &mut exact)
            .unwrap();
        for b in 0..2 {
            for (x, y) in noisy
                .member_amps(b)
                .unwrap()
                .iter()
                .zip(exact.member_amps(b).unwrap())
            {
                assert!((*x - *y).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn noisy_backend_perturbs_and_readout_mixes() {
        let (c, params) = ansatz(3, 2);
        let compiled = c.compile(&params).unwrap();
        let noise = NoiseModel::uniform_depolarizing(0.2)
            .unwrap()
            .with_readout_flip(0.05)
            .unwrap();
        let backend = NoisyBackend::new(noise, 11);
        assert!(!backend.is_deterministic());
        assert!(!backend.supports_adjoint_gradient());

        let mut noisy = sample_batch(3, 4);
        let mut exact = noisy.clone();
        backend.run_batch(&compiled, &mut noisy).unwrap();
        StatevectorBackend::default()
            .run_batch(&compiled, &mut exact)
            .unwrap();
        let drift: f64 = (0..4)
            .map(|b| {
                noisy
                    .member_amps(b)
                    .unwrap()
                    .iter()
                    .zip(exact.member_amps(b).unwrap())
                    .map(|(x, y)| (*x - *y).norm())
                    .sum::<f64>()
            })
            .sum();
        assert!(drift > 1e-3, "20% depolarizing left the state untouched");

        // Probabilities stay normalised through the readout map.
        for probs in backend.probabilities(&noisy).unwrap() {
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(probs.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn capability_flags() {
        let sv = StatevectorBackend::default();
        assert!(sv.supports_adjoint_gradient() && sv.is_deterministic());
        assert_eq!(sv.name(), "statevector");
        let naive = NaiveBackend::default();
        assert!(naive.supports_adjoint_gradient() && naive.is_deterministic());
        let shots = ShotSamplerBackend::new(100, 0);
        assert!(!shots.supports_adjoint_gradient() && !shots.is_deterministic());
        assert_eq!(shots.shots(), 100);
        assert_eq!(ShotSamplerBackend::new(0, 0).shots(), 1);
    }

    #[test]
    fn config_thread_resolution() {
        assert_eq!(BackendConfig::with_threads(3).effective_threads(), 3);
        assert_eq!(BackendConfig::with_threads(0).effective_threads(), 1);
        assert!(BackendConfig::default().effective_threads() >= 1);
        // Worker shares never exceed the whole budget and never hit zero.
        let budget = BackendConfig::default().effective_threads();
        assert!(BackendConfig::shared_across(1).effective_threads() <= budget.max(1));
        assert_eq!(BackendConfig::shared_across(usize::MAX).effective_threads(), 1);
        assert_eq!(BackendConfig::shared_across(0).effective_threads(), budget);
    }

    #[test]
    fn backends_validate_widths_and_counts() {
        let (c, params) = ansatz(3, 1);
        let compiled = c.compile(&params).unwrap();
        let mut wrong = sample_batch(2, 2);
        for backend in [
            &StatevectorBackend::default() as &dyn QuantumBackend,
            &NaiveBackend::default(),
            &ShotSamplerBackend::new(16, 0),
            &NoisyBackend::new(NoiseModel::noiseless(), 0),
        ] {
            assert!(backend.run_batch(&compiled, &mut wrong).is_err());
            assert!(backend
                .run_each(std::slice::from_ref(&compiled), &mut wrong)
                .is_err()); // count mismatch
            let obs = DiagonalObservable::z(3, 0).unwrap();
            assert!(backend.expectations(&wrong, &obs).is_err());
        }
    }

    #[test]
    fn run_state_round_trips() {
        let (c, params) = ansatz(3, 2);
        let compiled = c.compile(&params).unwrap();
        let input = sample_batch(3, 1).member(0).unwrap();
        let via_backend = StatevectorBackend::default()
            .run_state(&compiled, &input)
            .unwrap();
        let direct = compiled.run(&input).unwrap();
        assert_eq!(via_backend, direct);
    }
}
