//! Optimizer passes over the compiler's structural IR.
//!
//! Structure compilation ([`crate::CircuitStructure`]) lowers a circuit
//! to a list of fused-op *recipes* — shape plus absorbed source factors.
//! The passes here rewrite that recipe list before any angle values are
//! bound, so they run once per circuit layout and their savings apply to
//! every subsequent bind and amplitude sweep:
//!
//! * [`MergeRotations`] — fuses directly-adjacent same-kind fixed-angle
//!   rotations (`Rz(a)·Rz(b) → Rz(a+b)`), shrinking per-bind work.
//! * [`CancelInverses`] — removes constant recipes whose product is the
//!   identity (`G·G† → I`, `CX·CX → I`), shrinking both bind work and
//!   amplitude sweeps.
//! * [`WidenPairs`] — commutation-aware reordering that folds leftover
//!   single-qubit ops into an adjacent two-qubit op touching the same
//!   qubit, lengthening fusible runs and cutting the sweep count.
//!
//! Each pass is an independent [`Pass`] impl toggled by a [`PassConfig`]
//! flag, so tests can exercise any combination. [`run_passes`] runs the
//! enabled passes to a fixpoint, which makes the pipeline idempotent: a
//! second invocation changes nothing. Every pass preserves the circuit's
//! unitary *exactly* (not merely up to global phase) and its dependence
//! on every trainable slot; correctness is pinned by the metamorphic
//! tests below and the `compiler_differential` suite at the workspace
//! root.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::passes::{run_passes, PassConfig, PassIr};
//! use qugeo_qsim::Circuit;
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let mut c = Circuit::new(2);
//! c.h(0)?;
//! c.h(0)?; // H·H = I — cancellable
//! c.cx(0, 1)?;
//! let mut ir = PassIr::from_circuit(&c);
//! run_passes(&PassConfig::all(), &mut ir);
//! assert_eq!(ir.num_ops(), 1); // only the CX survives
//! # Ok(())
//! # }
//! ```

use crate::circuit::{Circuit, Gate1, ParamSource};
use crate::fusion::{build_recipes, eval_recipe, ordered, Factor, FusedOp, OpRecipe, OpShape};
use crate::gates::{Matrix2, Matrix4};

/// Matrices this close to the exact identity cancel. `H·H` is the
/// motivating case: `(1/√2)² + (1/√2)²` is one ulp off `1.0`, so exact
/// bitwise comparison would keep it. The tolerance is far below every
/// simulation tolerance in the workspace (1e-10), so cancellation never
/// moves an observable by more than the tests already allow.
const IDENTITY_TOL: f64 = 1e-12;

/// Which optimizer passes run between structure compilation and binding.
///
/// The default is [`PassConfig::none`]: plain
/// [`crate::CircuitStructure::compile`] and the one-shot
/// [`crate::CompiledCircuit::compile`] never rewrite the fusion plan, so
/// op-count expectations of existing callers hold unless passes are
/// requested explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassConfig {
    /// Enable [`MergeRotations`].
    pub merge_rotations: bool,
    /// Enable [`CancelInverses`].
    pub cancel_inverses: bool,
    /// Enable [`WidenPairs`].
    pub widen_pairs: bool,
}

impl PassConfig {
    /// Every pass enabled.
    pub fn all() -> Self {
        Self {
            merge_rotations: true,
            cancel_inverses: true,
            widen_pairs: true,
        }
    }

    /// No passes (the default): compilation output is identical to the
    /// pass-free pipeline.
    pub fn none() -> Self {
        Self::default()
    }
}

/// The mutable structural IR passes rewrite: a circuit's fused-op
/// recipes between structure compilation and binding.
///
/// Obtain one with [`PassIr::from_circuit`], rewrite it with
/// [`run_passes`] or individual [`Pass`] impls, and inspect the effect
/// through [`PassIr::num_ops`] / [`PassIr::num_factors`]. Equality
/// compares the full recipe list, which is what the idempotency tests
/// assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct PassIr {
    num_qubits: usize,
    recipes: Vec<OpRecipe>,
}

impl PassIr {
    /// Structure-compiles `circuit` into pass-ready IR.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        Self {
            num_qubits: circuit.num_qubits(),
            recipes: build_recipes(circuit),
        }
    }

    pub(crate) fn from_recipes(num_qubits: usize, recipes: Vec<OpRecipe>) -> Self {
        Self {
            num_qubits,
            recipes,
        }
    }

    pub(crate) fn into_recipes(self) -> Vec<OpRecipe> {
        self.recipes
    }

    /// Number of fused-op recipes currently in the IR (each becomes one
    /// amplitude sweep per execution).
    pub fn num_ops(&self) -> usize {
        self.recipes.len()
    }

    /// Total source factors across all recipes (each costs one
    /// small-matrix evaluation per bind).
    pub fn num_factors(&self) -> usize {
        self.recipes.iter().map(|r| r.factors.len()).sum()
    }
}

/// One rewrite of the structural IR.
///
/// Implementations must preserve the circuit's unitary exactly and its
/// dependence on every trainable parameter slot; they may only reduce
/// (never grow) the op or factor count, which is what guarantees the
/// pass pipeline's fixpoint terminates.
pub trait Pass {
    /// Short stable pass name for logs and test diagnostics.
    fn name(&self) -> &'static str;

    /// Rewrites `ir`; returns `true` iff anything changed.
    fn run(&self, ir: &mut PassIr) -> bool;
}

/// Runs the passes enabled in `config` over `ir` until none of them
/// reports a change (a fixpoint — one pass can expose opportunities for
/// another, e.g. widening may make two rotations adjacent). Running the
/// pipeline on its own output is therefore a no-op, which the
/// idempotency tests assert literally.
pub fn run_passes(config: &PassConfig, ir: &mut PassIr) {
    let passes: [(bool, &dyn Pass); 3] = [
        (config.merge_rotations, &MergeRotations),
        (config.cancel_inverses, &CancelInverses),
        (config.widen_pairs, &WidenPairs),
    ];
    loop {
        let mut changed = false;
        for (enabled, pass) in passes {
            if enabled {
                changed |= pass.run(ir);
            }
        }
        if !changed {
            break;
        }
    }
}

/// Entry point for [`crate::CircuitStructure::compile_with_passes`].
pub(crate) fn run_pipeline(config: &PassConfig, num_qubits: usize, recipes: &mut Vec<OpRecipe>) {
    let mut ir = PassIr::from_recipes(num_qubits, std::mem::take(recipes));
    run_passes(config, &mut ir);
    *recipes = ir.into_recipes();
}

/// Merges directly-adjacent fixed-angle rotations of the same kind on
/// the same wires within a recipe: `Rz(a)·Rz(b) → Rz(a+b)` (same for
/// `Rx`, `Ry`, `Phase`, and their controlled forms on an identical
/// control/target pair). Trainable (slot-referencing) rotations never
/// merge — a [`ParamSource`] cannot express the sum of two slots, and
/// collapsing them would change the gradient layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeRotations;

impl Pass for MergeRotations {
    fn name(&self) -> &'static str {
        "merge-rotations"
    }

    fn run(&self, ir: &mut PassIr) -> bool {
        let mut changed = false;
        for recipe in &mut ir.recipes {
            let mut i = 0;
            while i + 1 < recipe.factors.len() {
                if let Some(merged) = merge_adjacent(&recipe.factors[i], &recipe.factors[i + 1]) {
                    recipe.factors[i] = merged;
                    recipe.factors.remove(i + 1);
                    changed = true;
                    // Stay at i: the merged rotation may chain further.
                } else {
                    i += 1;
                }
            }
        }
        changed
    }
}

fn merge_adjacent(first: &Factor, second: &Factor) -> Option<Factor> {
    match (first, second) {
        (
            Factor::Single { gate: g1, q: q1 },
            Factor::Single { gate: g2, q: q2 },
        ) if q1 == q2 => merged_fixed_rotation(g1, g2).map(|gate| Factor::Single { gate, q: *q1 }),
        (
            Factor::Controlled {
                gate: g1,
                control: c1,
                target: t1,
            },
            Factor::Controlled {
                gate: g2,
                control: c2,
                target: t2,
            },
        ) if (c1, t1) == (c2, t2) => merged_fixed_rotation(g1, g2).map(|gate| Factor::Controlled {
            gate,
            control: *c1,
            target: *t1,
        }),
        _ => None,
    }
}

/// `R(a)·R(b) = R(a+b)` for the one-angle rotation families, fixed
/// angles only.
fn merged_fixed_rotation(first: &Gate1, second: &Gate1) -> Option<Gate1> {
    use ParamSource::Fixed;
    match (first, second) {
        (Gate1::Rx(Fixed(a)), Gate1::Rx(Fixed(b))) => Some(Gate1::Rx(Fixed(a + b))),
        (Gate1::Ry(Fixed(a)), Gate1::Ry(Fixed(b))) => Some(Gate1::Ry(Fixed(a + b))),
        (Gate1::Rz(Fixed(a)), Gate1::Rz(Fixed(b))) => Some(Gate1::Rz(Fixed(a + b))),
        (Gate1::Phase(Fixed(a)), Gate1::Phase(Fixed(b))) => Some(Gate1::Phase(Fixed(a + b))),
        _ => None,
    }
}

/// Removes recipes that are constant (reference no trainable slot) and
/// whose fused product is the identity within `IDENTITY_TOL` (1e-12) —
/// `G·G† → I`, `CX·CX → I`, a SWAP pair, and anything the other passes
/// reduce to identity.
///
/// Deliberately **not** up to global phase: `Rz(π)·Rz(π) = -I` changes
/// amplitudes (observably, once entangled with other qubits through a
/// control), so only true identities cancel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelInverses;

impl Pass for CancelInverses {
    fn name(&self) -> &'static str {
        "cancel-inverses"
    }

    fn run(&self, ir: &mut PassIr) -> bool {
        let before = ir.recipes.len();
        ir.recipes.retain(|recipe| !is_constant_identity(recipe));
        ir.recipes.len() != before
    }
}

fn is_constant_identity(recipe: &OpRecipe) -> bool {
    if !recipe.factors.iter().all(Factor::is_constant) {
        return false;
    }
    // Constant recipes evaluate against an empty parameter vector.
    match eval_recipe(recipe, &[], None) {
        FusedOp::One { m, .. } => m2_near_identity(&m),
        FusedOp::Multiplexed { a0, a1, .. } => m2_near_identity(&a0) && m2_near_identity(&a1),
        FusedOp::Two { m, .. } => m4_near_identity(&m),
    }
}

fn m2_near_identity(m: &Matrix2) -> bool {
    let id = Matrix2::identity();
    (0..2).all(|r| (0..2).all(|c| (m.m[r][c] - id.m[r][c]).norm() <= IDENTITY_TOL))
}

fn m4_near_identity(m: &Matrix4) -> bool {
    let id = Matrix4::identity();
    (0..4).all(|r| (0..4).all(|c| (m.m[r][c] - id.m[r][c]).norm() <= IDENTITY_TOL))
}

/// Commutation-aware widening: folds a leftover single-qubit recipe into
/// an adjacent two-qubit recipe touching the same qubit — in either
/// direction — so the pair executes as one sweep. "Adjacent" uses the
/// same last-writer reasoning as fusion itself: nothing between the two
/// recipes touches the shared qubit, so the single commutes to its
/// partner.
///
/// Folding into a multiplexed op's *control* side densifies the shape to
/// a dense 4×4 two-qubit shape — arithmetic per amplitude doubles for that op
/// but one whole sweep disappears, a win for the memory-bound kernels.
/// This is exactly the case plain fusion declines (it cannot know a
/// later single will make the densification pay); the pass sees the
/// whole recipe list and can.
#[derive(Debug, Clone, Copy, Default)]
pub struct WidenPairs;

impl Pass for WidenPairs {
    fn name(&self) -> &'static str {
        "widen-pairs"
    }

    fn run(&self, ir: &mut PassIr) -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            let mut slots: Vec<Option<OpRecipe>> =
                std::mem::take(&mut ir.recipes).into_iter().map(Some).collect();
            let mut last: Vec<Option<usize>> = vec![None; ir.num_qubits];
            for i in 0..slots.len() {
                let Some(shape) = slots[i].as_ref().map(|r| r.shape) else {
                    continue;
                };
                match shape {
                    OpShape::One { q } => {
                        // Backward fold: append onto the most recent
                        // two-qubit recipe touching q.
                        let prev_two = last[q].filter(|&j| {
                            matches!(
                                slots[j].as_ref().map(|r| r.shape),
                                Some(OpShape::Multiplexed { .. }) | Some(OpShape::Two { .. })
                            )
                        });
                        if let Some(j) = prev_two {
                            let one = slots[i].take().expect("shape read from live recipe");
                            let prev = slots[j].as_mut().expect("last_touch points at live recipe");
                            prev.factors.extend(one.factors);
                            prev.shape = widen(prev.shape, q);
                            round = true;
                            // last[q] keeps pointing at j.
                        } else {
                            last[q] = Some(i);
                        }
                    }
                    OpShape::Multiplexed { c, t } => {
                        round |= absorb_preceding_singles(&mut slots, &mut last, i, c, t);
                        touch(&mut last, &slots, i);
                    }
                    OpShape::Two { a, b } => {
                        round |= absorb_preceding_singles(&mut slots, &mut last, i, a, b);
                        touch(&mut last, &slots, i);
                    }
                }
            }
            ir.recipes.extend(slots.into_iter().flatten());
            changed |= round;
            if !round {
                break;
            }
        }
        changed
    }
}

/// Forward fold: a single-qubit recipe that is the last writer of one of
/// the two-qubit recipe `i`'s qubits prepends into it.
fn absorb_preceding_singles(
    slots: &mut [Option<OpRecipe>],
    last: &mut [Option<usize>],
    i: usize,
    x: usize,
    y: usize,
) -> bool {
    let mut any = false;
    for q in [x, y] {
        let prev_one = last[q].filter(|&j| {
            j != i
                && matches!(
                    slots[j].as_ref().map(|r| r.shape),
                    Some(OpShape::One { q: oq }) if oq == q
                )
        });
        if let Some(j) = prev_one {
            let one = slots[j].take().expect("last_touch points at live recipe");
            let cur = slots[i].as_mut().expect("live two-qubit recipe");
            let mut factors = one.factors;
            factors.append(&mut cur.factors);
            cur.factors = factors;
            cur.shape = widen(cur.shape, q);
            last[q] = None;
            any = true;
        }
    }
    any
}

/// A single on a multiplexed op's control qubit forces the dense shape;
/// anywhere else the shape is unchanged.
fn widen(shape: OpShape, q: usize) -> OpShape {
    match shape {
        OpShape::Multiplexed { c, t } if q == c => {
            let (a, b) = ordered(c, t);
            OpShape::Two { a, b }
        }
        other => other,
    }
}

fn touch(last: &mut [Option<usize>], slots: &[Option<OpRecipe>], i: usize) {
    if let Some(recipe) = slots[i].as_ref() {
        match recipe.shape {
            OpShape::One { q } => last[q] = Some(i),
            OpShape::Multiplexed { c, t } => {
                last[c] = Some(i);
                last[t] = Some(i);
            }
            OpShape::Two { a, b } => {
                last[a] = Some(i);
                last[b] = Some(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig};
    use crate::{Circuit, CircuitStructure, State};

    fn assert_equivalent(c: &Circuit, config: &PassConfig, params: &[f64], tol: f64) {
        let plain = CircuitStructure::compile(c).bind(params).unwrap();
        let opt = CircuitStructure::compile_with_passes(c, config)
            .bind(params)
            .unwrap();
        let dim = 1usize << c.num_qubits();
        let input =
            State::from_real_normalized(&(1..=dim).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        let a = plain.run(&input).unwrap();
        let b = opt.run(&input).unwrap();
        for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
            assert!((*x - *y).norm() < tol, "amplitude {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn merge_rotations_sums_fixed_angles() {
        let mut c = Circuit::new(1);
        c.push_single(Gate1::Rz(ParamSource::Fixed(0.3)), 0).unwrap();
        c.push_single(Gate1::Rz(ParamSource::Fixed(0.4)), 0).unwrap();
        let mut ir = PassIr::from_circuit(&c);
        assert_eq!((ir.num_ops(), ir.num_factors()), (1, 2));
        assert!(MergeRotations.run(&mut ir));
        assert_eq!((ir.num_ops(), ir.num_factors()), (1, 1));
        // The surviving factor is literally Rz(0.7).
        let Factor::Single { gate, q: 0 } = ir.recipes[0].factors[0] else {
            panic!("expected a single factor, got {:?}", ir.recipes[0]);
        };
        assert_eq!(gate, Gate1::Rz(ParamSource::Fixed(0.3 + 0.4)));
        assert_equivalent(
            &c,
            &PassConfig {
                merge_rotations: true,
                ..PassConfig::none()
            },
            &[],
            1e-12,
        );
    }

    #[test]
    fn merge_rotations_chains_and_handles_controlled() {
        let mut c = Circuit::new(2);
        for a in [0.1, 0.2, 0.3] {
            c.push_single(Gate1::Ry(ParamSource::Fixed(a)), 1).unwrap();
        }
        c.push_controlled(Gate1::Rz(ParamSource::Fixed(0.5)), 0, 1).unwrap();
        c.push_controlled(Gate1::Rz(ParamSource::Fixed(-0.2)), 0, 1).unwrap();
        let mut ir = PassIr::from_circuit(&c);
        // Everything fused into one multiplexed recipe of 5 factors.
        assert_eq!((ir.num_ops(), ir.num_factors()), (1, 5));
        assert!(MergeRotations.run(&mut ir));
        // 3 Ry → 1, 2 CRz → 1.
        assert_eq!(ir.num_factors(), 2);
        assert!(!MergeRotations.run(&mut ir), "second run is a no-op");
    }

    #[test]
    fn merge_rotations_leaves_trainable_slots_alone() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        c.ry_slot(0, s).unwrap();
        c.ry_fixed(0, 0.4).unwrap();
        let mut ir = PassIr::from_circuit(&c);
        assert!(!MergeRotations.run(&mut ir));
        assert_eq!(ir.num_factors(), 3);
    }

    #[test]
    fn cancel_inverses_removes_true_identities_only() {
        // H·H = I cancels; S·S = Z does not; Rz(π)·Rz(π) = -I must NOT
        // cancel (global phase is observable through entanglement).
        let mut c = Circuit::new(3);
        c.h(0).unwrap();
        c.h(0).unwrap();
        c.push_single(Gate1::S, 1).unwrap();
        c.push_single(Gate1::S, 1).unwrap();
        c.push_single(Gate1::Rz(ParamSource::Fixed(std::f64::consts::PI)), 2).unwrap();
        c.push_single(Gate1::Rz(ParamSource::Fixed(std::f64::consts::PI)), 2).unwrap();
        let mut ir = PassIr::from_circuit(&c);
        assert_eq!(ir.num_ops(), 3);
        assert!(CancelInverses.run(&mut ir));
        assert_eq!(ir.num_ops(), 2, "only the H·H recipe cancels");
        assert!(!CancelInverses.run(&mut ir));
    }

    #[test]
    fn cancel_inverses_handles_two_qubit_identities() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).unwrap();
        c.cx(0, 1).unwrap(); // fuse to identity branches
        c.swap(0, 1).unwrap();
        c.swap(0, 1).unwrap(); // dense identity
        let mut ir = PassIr::from_circuit(&c);
        assert!(CancelInverses.run(&mut ir));
        assert_eq!(ir.num_ops(), 0);
    }

    #[test]
    fn cancel_inverses_skips_trainable_recipes() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        let mut ir = PassIr::from_circuit(&c);
        // At θ=0 the gate IS identity, but it references a slot — the
        // recipe must survive for other parameter values.
        assert!(!CancelInverses.run(&mut ir));
        assert_eq!(ir.num_ops(), 1);
    }

    #[test]
    fn widen_pairs_folds_leading_single_into_pair() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap();
        c.cx(0, 1).unwrap(); // H sits on the control side: fusion keeps it
        let mut ir = PassIr::from_circuit(&c);
        assert_eq!(ir.num_ops(), 2);
        assert!(WidenPairs.run(&mut ir));
        assert_eq!(ir.num_ops(), 1);
        assert!(matches!(ir.recipes[0].shape, OpShape::Two { a: 0, b: 1 }));
        assert!(!WidenPairs.run(&mut ir));
        assert_equivalent(
            &c,
            &PassConfig {
                widen_pairs: true,
                ..PassConfig::none()
            },
            &[],
            1e-12,
        );
    }

    #[test]
    fn widen_pairs_folds_trailing_single_backward() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).unwrap();
        c.h(2).unwrap(); // unrelated qubit in between — commutes
        c.push_single(Gate1::T, 0).unwrap(); // control side, after the CX
        let mut ir = PassIr::from_circuit(&c);
        assert_eq!(ir.num_ops(), 3);
        assert!(WidenPairs.run(&mut ir));
        assert_eq!(ir.num_ops(), 2, "T folds back into the CX; H(2) survives");
        assert_equivalent(
            &c,
            &PassConfig {
                widen_pairs: true,
                ..PassConfig::none()
            },
            &[],
            1e-12,
        );
    }

    #[test]
    fn widen_pairs_takes_paper_ansatz_below_97() {
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        let plain = CircuitStructure::compile(&c);
        assert_eq!(plain.num_ops(), 97);
        let opt = CircuitStructure::compile_with_passes(&c, &PassConfig::all());
        assert_eq!(
            opt.num_ops(),
            96,
            "the lone leftover U3 folds into the first CU3 ring op"
        );
        let params: Vec<f64> = (0..c.num_slots()).map(|i| (i as f64 * 0.17).cos()).collect();
        assert_equivalent(&c, &PassConfig::all(), &params, 1e-10);
    }

    /// Hand-built worst case exercising every pass, with exact op and
    /// factor counts asserted before/after each pass individually.
    #[test]
    fn worst_case_circuit_exact_counts_per_pass() {
        let mut c = Circuit::new(3);
        // Recipe 1 (One on q0): two mergeable rotations + an H·H pair.
        c.push_single(Gate1::Rz(ParamSource::Fixed(0.2)), 0).unwrap();
        c.push_single(Gate1::Rz(ParamSource::Fixed(-0.2)), 0).unwrap();
        // Recipe 2 (One on q1): H·H — cancels entirely (after merge the
        // Rz(0.0) recipe on q0 is identity too and also cancels).
        c.h(1).unwrap();
        c.h(1).unwrap();
        // Recipe 3: CX(1,2) — q1's last op after the H·H cancels.
        c.cx(1, 2).unwrap();
        // Recipe 4 (One on q2... absorbed): T on the CX target fuses at
        // build time; T on the control (q1) stays — widen folds it.
        c.push_single(Gate1::T, 2).unwrap();
        c.push_single(Gate1::T, 1).unwrap();

        // Build-time fusion: [Rz·Rz on q0] [H·H on q1] [CX+T mux] [T on q1].
        let base = PassIr::from_circuit(&c);
        assert_eq!((base.num_ops(), base.num_factors()), (4, 7));

        // MergeRotations alone: Rz pair merges to one factor.
        let mut ir = base.clone();
        assert!(MergeRotations.run(&mut ir));
        assert_eq!((ir.num_ops(), ir.num_factors()), (4, 6));

        // CancelInverses alone: only H·H goes (Rz·Rz not yet merged to a
        // single identity factor — the recipe still cancels! Rz(0.2)·Rz(-0.2)
        // is constant and evaluates to I).
        let mut ir = base.clone();
        assert!(CancelInverses.run(&mut ir));
        assert_eq!(ir.num_ops(), 2);

        // WidenPairs alone: trailing T(q1) folds into the CX recipe
        // (densifying); H·H is q1's last writer before the CX, it is a
        // One recipe so it folds forward into the CX too; Rz·Rz on q0
        // stays (no two-qubit partner on q0).
        let mut ir = base.clone();
        assert!(WidenPairs.run(&mut ir));
        assert_eq!(ir.num_ops(), 2);

        // Full pipeline to fixpoint: Rz·Rz merges → identity → cancels,
        // H·H cancels, T(q1) widens into the CX: one dense op remains.
        let mut ir = base.clone();
        run_passes(&PassConfig::all(), &mut ir);
        assert_eq!(ir.num_ops(), 1);

        // And the pipeline is idempotent: a second run changes nothing.
        let snapshot = ir.clone();
        run_passes(&PassConfig::all(), &mut ir);
        assert_eq!(ir, snapshot);

        assert_equivalent(&c, &PassConfig::all(), &[], 1e-12);
    }

    #[test]
    fn pipeline_idempotent_on_paper_ansatz() {
        let c = u3_cu3_ansatz(AnsatzConfig::paper_default()).unwrap();
        for config in [
            PassConfig::all(),
            PassConfig {
                merge_rotations: true,
                ..PassConfig::none()
            },
            PassConfig {
                cancel_inverses: true,
                ..PassConfig::none()
            },
            PassConfig {
                widen_pairs: true,
                ..PassConfig::none()
            },
        ] {
            let mut ir = PassIr::from_circuit(&c);
            run_passes(&config, &mut ir);
            let snapshot = ir.clone();
            run_passes(&config, &mut ir);
            assert_eq!(ir, snapshot, "pipeline not idempotent under {config:?}");
        }
    }

    #[test]
    fn passes_preserve_gradient_layout() {
        // Trainable adversarial circuit: every pass combination must
        // keep the total derivative-record count (shared slots included).
        let mut c = Circuit::new(3);
        let s0 = c.alloc_slots(3);
        let shared = c.alloc_slot();
        c.h(0).unwrap();
        c.u3_slots(1, s0).unwrap();
        c.ry_slot(0, shared).unwrap();
        c.cu3_slots(0, 2, s0).unwrap();
        c.swap(1, 2).unwrap();
        c.ry_slot(1, shared).unwrap();
        let params = [0.7, -0.2, 1.1, 0.45];
        let opt = CircuitStructure::compile_with_passes(&c, &PassConfig::all());
        let bound = opt.bind_with_grad(&params).unwrap();
        let total: usize = (0..bound.num_fused_ops())
            .map(|i| bound.op_derivs(i).len())
            .sum();
        assert_eq!(total, c.num_trainable_refs());
        assert_equivalent(&c, &PassConfig::all(), &params, 1e-12);
    }
}
