use std::error::Error;
use std::fmt;

/// Errors produced by the quantum simulator.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{Circuit, QsimError};
///
/// let mut c = Circuit::new(2);
/// let err = c.h(5).unwrap_err();
/// assert!(matches!(err, QsimError::QubitOutOfRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QsimError {
    /// A gate referenced a qubit index `qubit` on a register of `num_qubits`.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's register size.
        num_qubits: usize,
    },
    /// A controlled gate used the same qubit as control and target.
    ControlEqualsTarget {
        /// The duplicated qubit index.
        qubit: usize,
    },
    /// A parameter vector of the wrong length was bound to a circuit.
    ParamCountMismatch {
        /// Slots the circuit declares.
        expected: usize,
        /// Parameters supplied.
        actual: usize,
    },
    /// A gate referenced a parameter slot the circuit never allocated.
    SlotOutOfRange {
        /// The offending slot.
        slot: usize,
        /// Slots allocated so far.
        num_slots: usize,
    },
    /// Statevector construction from data whose length is not a power of
    /// two, or that cannot be normalised.
    InvalidStateLength {
        /// The provided amplitude count.
        len: usize,
    },
    /// Data encoding was given an all-zero vector, which has no quantum
    /// state representation.
    ZeroVector,
    /// A state and a circuit (or observable) disagree on qubit count.
    QubitCountMismatch {
        /// Qubits expected by the operation.
        expected: usize,
        /// Qubits of the supplied state.
        actual: usize,
    },
    /// An encoding request that does not fit its constraints (e.g. group
    /// sizes that are not powers of two, or batch index out of range).
    InvalidEncoding {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An operation the execution substrate cannot provide (e.g. adjoint
    /// differentiation on a finite-shot backend, or a backward sweep over
    /// a circuit compiled without gradient metadata).
    Unsupported {
        /// Human-readable description of the unsupported request.
        reason: String,
    },
    /// A transient execution fault: the substrate failed this call but a
    /// retry of the same operation may well succeed (queue contention on
    /// shared hardware, a dropped control-plane connection, an injected
    /// chaos fault). Callers that distinguish retryable from permanent
    /// failures — the serving layer's `RetryPolicy` — route on this
    /// variant; everything else treats it like any other error.
    TransientFault {
        /// Human-readable description of the fault.
        reason: String,
    },
    /// A compiled circuit was re-bound to new parameters (or swapped for
    /// a different binding) between two operations that must observe one
    /// consistent binding — e.g. an adjoint forward pass followed by a
    /// backward sweep. Every bind stamps the compiled circuit with a
    /// fresh generation number; paired consumers record the stamp they
    /// started with and refuse to continue against a different one
    /// instead of silently producing gradients for mixed parameters.
    StaleBinding {
        /// The bind stamp the operation started with.
        expected: u64,
        /// The bind stamp actually presented.
        actual: u64,
    },
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit register")
            }
            Self::ControlEqualsTarget { qubit } => {
                write!(f, "control and target are both qubit {qubit}")
            }
            Self::ParamCountMismatch { expected, actual } => {
                write!(f, "circuit declares {expected} parameter slots, got {actual} values")
            }
            Self::SlotOutOfRange { slot, num_slots } => {
                write!(f, "parameter slot {slot} out of range ({num_slots} allocated)")
            }
            Self::InvalidStateLength { len } => {
                write!(f, "state length {len} is not a positive power of two")
            }
            Self::ZeroVector => write!(f, "cannot amplitude-encode an all-zero vector"),
            Self::QubitCountMismatch { expected, actual } => {
                write!(f, "expected a {expected}-qubit state, got {actual} qubits")
            }
            Self::InvalidEncoding { reason } => write!(f, "invalid encoding: {reason}"),
            Self::Unsupported { reason } => write!(f, "unsupported operation: {reason}"),
            Self::TransientFault { reason } => {
                write!(f, "transient execution fault (retry may succeed): {reason}")
            }
            Self::StaleBinding { expected, actual } => {
                write!(
                    f,
                    "stale parameter binding: operation started under bind stamp {expected} \
                     but the compiled circuit now carries stamp {actual} (it was re-bound \
                     in between)"
                )
            }
        }
    }
}

impl Error for QsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_specifics() {
        let e = QsimError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = QsimError::ParamCountMismatch {
            expected: 576,
            actual: 3,
        };
        assert!(e.to_string().contains("576"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<QsimError>();
    }

    #[test]
    fn stale_binding_mentions_both_stamps() {
        let e = QsimError::StaleBinding {
            expected: 41,
            actual: 57,
        };
        assert!(e.to_string().contains("41"));
        assert!(e.to_string().contains("57"));
        assert!(e.to_string().contains("stale"));
    }

    #[test]
    fn transient_fault_mentions_retry() {
        let e = QsimError::TransientFault {
            reason: "injected".into(),
        };
        assert!(e.to_string().contains("transient"));
        assert!(e.to_string().contains("retry"));
        assert!(e.to_string().contains("injected"));
    }

    #[test]
    fn zero_vector_message() {
        assert!(QsimError::ZeroVector.to_string().contains("zero"));
    }
}
