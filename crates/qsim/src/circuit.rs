use crate::{Matrix2, QsimError, State};

/// Where a gate angle comes from: a literal value or a trainable slot.
///
/// Slots let several gates share one trainable parameter; gradients for a
/// shared slot accumulate across all the gates that reference it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamSource {
    /// A fixed, non-trainable angle.
    Fixed(f64),
    /// Index into the parameter vector bound at run time.
    Slot(usize),
}

impl ParamSource {
    /// Resolves the angle against a bound parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if a slot index exceeds `params.len()`; circuits validate
    /// slots at construction so this indicates a caller passing the wrong
    /// vector (checked at [`Circuit::run`] entry).
    pub fn resolve(&self, params: &[f64]) -> f64 {
        match *self {
            Self::Fixed(v) => v,
            Self::Slot(i) => params[i],
        }
    }

    /// The slot index, if trainable.
    pub fn slot(&self) -> Option<usize> {
        match *self {
            Self::Fixed(_) => None,
            Self::Slot(i) => Some(i),
        }
    }
}

/// A single-qubit gate kind, possibly parameterised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate1 {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S.
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate.
    T,
    /// Inverse T gate.
    Tdg,
    /// Rotation about X by one angle.
    Rx(ParamSource),
    /// Rotation about Y by one angle.
    Ry(ParamSource),
    /// Rotation about Z by one angle.
    Rz(ParamSource),
    /// Phase gate `diag(1, e^{iλ})`.
    Phase(ParamSource),
    /// General single-qubit gate with angles (θ, φ, λ).
    U3(ParamSource, ParamSource, ParamSource),
}

impl Gate1 {
    /// The gate's unitary for the given bound parameters.
    pub fn matrix(&self, params: &[f64]) -> Matrix2 {
        match self {
            Self::X => Matrix2::x(),
            Self::Y => Matrix2::y(),
            Self::Z => Matrix2::z(),
            Self::H => Matrix2::h(),
            Self::S => Matrix2::s(),
            Self::Sdg => Matrix2::sdg(),
            Self::T => Matrix2::t(),
            Self::Tdg => Matrix2::tdg(),
            Self::Rx(t) => Matrix2::rx(t.resolve(params)),
            Self::Ry(t) => Matrix2::ry(t.resolve(params)),
            Self::Rz(t) => Matrix2::rz(t.resolve(params)),
            Self::Phase(l) => Matrix2::phase(l.resolve(params)),
            Self::U3(t, p, l) => {
                Matrix2::u3(t.resolve(params), p.resolve(params), l.resolve(params))
            }
        }
    }

    /// Pairs of `(slot, ∂gate/∂slot-angle)` for every trainable angle of
    /// this gate at the given parameters.
    pub fn slot_derivatives(&self, params: &[f64]) -> Vec<(usize, Matrix2)> {
        let mut out = Vec::new();
        match self {
            Self::X | Self::Y | Self::Z | Self::H | Self::S | Self::Sdg | Self::T | Self::Tdg => {}
            Self::Rx(t) => {
                if let Some(s) = t.slot() {
                    out.push((s, Matrix2::rx_deriv(t.resolve(params))));
                }
            }
            Self::Ry(t) => {
                if let Some(s) = t.slot() {
                    out.push((s, Matrix2::ry_deriv(t.resolve(params))));
                }
            }
            Self::Rz(t) => {
                if let Some(s) = t.slot() {
                    out.push((s, Matrix2::rz_deriv(t.resolve(params))));
                }
            }
            Self::Phase(l) => {
                if let Some(s) = l.slot() {
                    out.push((s, Matrix2::phase_deriv(l.resolve(params))));
                }
            }
            Self::U3(t, p, l) => {
                let (tv, pv, lv) = (t.resolve(params), p.resolve(params), l.resolve(params));
                if let Some(s) = t.slot() {
                    out.push((s, Matrix2::u3_dtheta(tv, pv, lv)));
                }
                if let Some(s) = p.slot() {
                    out.push((s, Matrix2::u3_dphi(tv, pv, lv)));
                }
                if let Some(s) = l.slot() {
                    out.push((s, Matrix2::u3_dlambda(tv, pv, lv)));
                }
            }
        }
        out
    }

    /// Computes the gate's unitary and visits `(slot, ∂gate/∂slot-angle)`
    /// for every trainable angle — the single-evaluation form of
    /// [`Gate1::matrix`] + [`Gate1::slot_derivatives`]. The parameter
    /// binder calls this once per absorbed gate per bind, so it shares
    /// one trigonometric evaluation set per gate (a trainable U3 would
    /// otherwise evaluate the same sines and cosines four times) and
    /// never heap-allocates. The matrix and derivatives match the
    /// separate entry points bit for bit.
    pub fn matrix_with_slot_derivs(
        &self,
        params: &[f64],
        visit: &mut dyn FnMut(usize, Matrix2),
    ) -> Matrix2 {
        match self {
            Self::Rx(t) => {
                if let Some(s) = t.slot() {
                    visit(s, Matrix2::rx_deriv(t.resolve(params)));
                }
                self.matrix(params)
            }
            Self::Ry(t) => {
                if let Some(s) = t.slot() {
                    visit(s, Matrix2::ry_deriv(t.resolve(params)));
                }
                self.matrix(params)
            }
            Self::Rz(t) => {
                if let Some(s) = t.slot() {
                    visit(s, Matrix2::rz_deriv(t.resolve(params)));
                }
                self.matrix(params)
            }
            Self::Phase(l) => {
                if let Some(s) = l.slot() {
                    visit(s, Matrix2::phase_deriv(l.resolve(params)));
                }
                self.matrix(params)
            }
            Self::U3(t, p, l)
                if t.slot().is_some() || p.slot().is_some() || l.slot().is_some() =>
            {
                let (tv, pv, lv) = (t.resolve(params), p.resolve(params), l.resolve(params));
                let (m, dtheta, dphi, dlambda) = Matrix2::u3_with_derivs(tv, pv, lv);
                if let Some(s) = t.slot() {
                    visit(s, dtheta);
                }
                if let Some(s) = p.slot() {
                    visit(s, dphi);
                }
                if let Some(s) = l.slot() {
                    visit(s, dlambda);
                }
                m
            }
            _ => self.matrix(params),
        }
    }

    /// The gate's angle sources in declaration order (empty for constant
    /// gates), as a fixed-capacity, allocation-free collection — this is
    /// called once per gate occurrence per gradient evaluation, so a heap
    /// `Vec` here would put an allocator round-trip in the training hot
    /// path.
    pub fn angle_sources(&self) -> AngleSources {
        match self {
            Self::Rx(a) | Self::Ry(a) | Self::Rz(a) | Self::Phase(a) => AngleSources::one(*a),
            Self::U3(t, p, l) => AngleSources::three(*t, *p, *l),
            _ => AngleSources::empty(),
        }
    }

    /// A copy of the gate with angle `idx` pinned to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a valid angle index for this gate.
    pub fn with_angle_fixed(&self, idx: usize, value: f64) -> Self {
        let fixed = ParamSource::Fixed(value);
        match (*self, idx) {
            (Self::Rx(_), 0) => Self::Rx(fixed),
            (Self::Ry(_), 0) => Self::Ry(fixed),
            (Self::Rz(_), 0) => Self::Rz(fixed),
            (Self::Phase(_), 0) => Self::Phase(fixed),
            (Self::U3(_, p, l), 0) => Self::U3(fixed, p, l),
            (Self::U3(t, _, l), 1) => Self::U3(t, fixed, l),
            (Self::U3(t, p, _), 2) => Self::U3(t, p, fixed),
            _ => panic!("gate {self:?} has no angle index {idx}"),
        }
    }

    /// All trainable slots referenced by this gate.
    pub fn slots(&self) -> Vec<usize> {
        match self {
            Self::Rx(t) | Self::Ry(t) | Self::Rz(t) | Self::Phase(t) => {
                t.slot().into_iter().collect()
            }
            Self::U3(t, p, l) => [t.slot(), p.slot(), l.slot()]
                .into_iter()
                .flatten()
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// The angle sources of one gate: at most three ([`Gate1::U3`]), stored
/// inline so enumerating a circuit's trainable angles never allocates.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{Gate1, ParamSource};
///
/// let g = Gate1::U3(
///     ParamSource::Slot(0),
///     ParamSource::Fixed(0.5),
///     ParamSource::Slot(1),
/// );
/// let slots: Vec<_> = g
///     .angle_sources()
///     .into_iter()
///     .filter_map(|src| src.slot())
///     .collect();
/// assert_eq!(slots, [0, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngleSources {
    srcs: [ParamSource; 3],
    len: usize,
}

impl AngleSources {
    const PAD: ParamSource = ParamSource::Fixed(0.0);

    fn empty() -> Self {
        Self {
            srcs: [Self::PAD; 3],
            len: 0,
        }
    }

    fn one(a: ParamSource) -> Self {
        Self {
            srcs: [a, Self::PAD, Self::PAD],
            len: 1,
        }
    }

    fn three(a: ParamSource, b: ParamSource, c: ParamSource) -> Self {
        Self {
            srcs: [a, b, c],
            len: 3,
        }
    }

    /// Number of angles the gate declares.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for constant gates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sources as a slice, in declaration order.
    pub fn as_slice(&self) -> &[ParamSource] {
        &self.srcs[..self.len]
    }
}

impl IntoIterator for AngleSources {
    type Item = ParamSource;
    type IntoIter = std::iter::Take<std::array::IntoIter<ParamSource, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.srcs.into_iter().take(self.len)
    }
}

/// One operation in a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// A single-qubit gate on `qubit`.
    Single {
        /// The gate.
        gate: Gate1,
        /// Target qubit.
        qubit: usize,
    },
    /// A controlled single-qubit gate.
    Controlled {
        /// The gate applied to `target` when `control` is 1.
        gate: Gate1,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// A SWAP of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

/// An ordered sequence of gates on a fixed-size qubit register, with
/// trainable parameter slots.
///
/// Build circuits with the fluent gate methods, allocate trainable angles
/// with [`Circuit::alloc_slot`] (or the `*_slots` conveniences), then
/// execute with [`Circuit::run`].
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{Circuit, State};
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let mut c = Circuit::new(2);
/// c.h(0)?;
/// c.cx(0, 1)?;
/// let bell = c.run(&State::zero(2), &[])?;
/// assert!((bell.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((bell.probability(0b11) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    num_slots: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            num_slots: 0,
            ops: Vec::new(),
        }
    }

    /// Register size.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of trainable parameter slots allocated so far.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The operations in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Mutable access to one op; used by the parameter-shift machinery to
    /// pin a single gate angle.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_ops()`.
    pub(crate) fn op_mut(&mut self, idx: usize) -> &mut Op {
        &mut self.ops[idx]
    }

    /// Allocates a fresh trainable parameter slot and returns its index.
    pub fn alloc_slot(&mut self) -> usize {
        self.num_slots += 1;
        self.num_slots - 1
    }

    /// Allocates `n` consecutive slots, returning the first index.
    pub fn alloc_slots(&mut self, n: usize) -> usize {
        let first = self.num_slots;
        self.num_slots += n;
        first
    }

    fn check_qubit(&self, q: usize) -> Result<(), QsimError> {
        if q >= self.num_qubits {
            Err(QsimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    fn check_source(&self, p: ParamSource) -> Result<(), QsimError> {
        if let ParamSource::Slot(s) = p {
            if s >= self.num_slots {
                return Err(QsimError::SlotOutOfRange {
                    slot: s,
                    num_slots: self.num_slots,
                });
            }
        }
        Ok(())
    }

    /// Appends a single-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `qubit` or any referenced slot is out of range.
    pub fn push_single(&mut self, gate: Gate1, qubit: usize) -> Result<&mut Self, QsimError> {
        self.check_qubit(qubit)?;
        for s in gate.slots() {
            self.check_source(ParamSource::Slot(s))?;
        }
        self.ops.push(Op::Single { gate, qubit });
        Ok(self)
    }

    /// Appends a controlled single-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit or slot is out of range or
    /// `control == target`.
    pub fn push_controlled(
        &mut self,
        gate: Gate1,
        control: usize,
        target: usize,
    ) -> Result<&mut Self, QsimError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(QsimError::ControlEqualsTarget { qubit: control });
        }
        for s in gate.slots() {
            self.check_source(ParamSource::Slot(s))?;
        }
        self.ops.push(Op::Controlled {
            gate,
            control,
            target,
        });
        Ok(self)
    }

    /// Appends a Hadamard gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `qubit` is out of range.
    pub fn h(&mut self, qubit: usize) -> Result<&mut Self, QsimError> {
        self.push_single(Gate1::H, qubit)
    }

    /// Appends a Pauli-X gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `qubit` is out of range.
    pub fn x(&mut self, qubit: usize) -> Result<&mut Self, QsimError> {
        self.push_single(Gate1::X, qubit)
    }

    /// Appends a CNOT.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit is out of range or `control == target`.
    pub fn cx(&mut self, control: usize, target: usize) -> Result<&mut Self, QsimError> {
        self.push_controlled(Gate1::X, control, target)
    }

    /// Appends a SWAP.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit is out of range or `a == b`.
    pub fn swap(&mut self, a: usize, b: usize) -> Result<&mut Self, QsimError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(QsimError::ControlEqualsTarget { qubit: a });
        }
        self.ops.push(Op::Swap { a, b });
        Ok(self)
    }

    /// Appends an RY gate reading its angle from `slot`.
    ///
    /// # Errors
    ///
    /// Returns an error if `qubit` or `slot` is out of range.
    pub fn ry_slot(&mut self, qubit: usize, slot: usize) -> Result<&mut Self, QsimError> {
        self.check_source(ParamSource::Slot(slot))?;
        self.push_single(Gate1::Ry(ParamSource::Slot(slot)), qubit)
    }

    /// Appends an RY gate with a fixed angle.
    ///
    /// # Errors
    ///
    /// Returns an error if `qubit` is out of range.
    pub fn ry_fixed(&mut self, qubit: usize, theta: f64) -> Result<&mut Self, QsimError> {
        self.push_single(Gate1::Ry(ParamSource::Fixed(theta)), qubit)
    }

    /// Appends a U3 gate whose three angles occupy `first_slot`,
    /// `first_slot + 1`, `first_slot + 2`.
    ///
    /// # Errors
    ///
    /// Returns an error if `qubit` or any slot is out of range.
    pub fn u3_slots(&mut self, qubit: usize, first_slot: usize) -> Result<&mut Self, QsimError> {
        let gate = Gate1::U3(
            ParamSource::Slot(first_slot),
            ParamSource::Slot(first_slot + 1),
            ParamSource::Slot(first_slot + 2),
        );
        self.push_single(gate, qubit)
    }

    /// Appends a controlled-U3 whose three angles occupy `first_slot..+3`.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit or slot is out of range or
    /// `control == target`.
    pub fn cu3_slots(
        &mut self,
        control: usize,
        target: usize,
        first_slot: usize,
    ) -> Result<&mut Self, QsimError> {
        let gate = Gate1::U3(
            ParamSource::Slot(first_slot),
            ParamSource::Slot(first_slot + 1),
            ParamSource::Slot(first_slot + 2),
        );
        self.push_controlled(gate, control, target)
    }

    /// Validates that a parameter vector matches this circuit's slot count.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] on length mismatch.
    pub fn check_params(&self, params: &[f64]) -> Result<(), QsimError> {
        if params.len() != self.num_slots {
            return Err(QsimError::ParamCountMismatch {
                expected: self.num_slots,
                actual: params.len(),
            });
        }
        Ok(())
    }

    /// Runs the circuit on `input`, returning the output state.
    ///
    /// # Errors
    ///
    /// Returns an error if `params.len() != self.num_slots()` or the input
    /// state's qubit count differs from the circuit's.
    pub fn run(&self, input: &State, params: &[f64]) -> Result<State, QsimError> {
        self.check_params(params)?;
        if input.num_qubits() != self.num_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.num_qubits,
                actual: input.num_qubits(),
            });
        }
        let mut state = input.clone();
        self.apply_in_place(&mut state, params);
        Ok(state)
    }

    /// Applies all ops to `state` in order (no validation; `run` is the
    /// checked entry point).
    pub(crate) fn apply_in_place(&self, state: &mut State, params: &[f64]) {
        for op in &self.ops {
            Self::apply_op(op, state, params, false);
        }
    }

    /// Applies `op` (or its dagger) to `state`.
    pub(crate) fn apply_op(op: &Op, state: &mut State, params: &[f64], dagger: bool) {
        match op {
            Op::Single { gate, qubit } => {
                let m = gate.matrix(params);
                let m = if dagger { m.dagger() } else { m };
                state.apply_single(&m, *qubit);
            }
            Op::Controlled {
                gate,
                control,
                target,
            } => {
                let m = gate.matrix(params);
                let m = if dagger { m.dagger() } else { m };
                state.apply_controlled(&m, *control, *target);
            }
            Op::Swap { a, b } => state.apply_swap(*a, *b),
        }
    }

    /// Lowers this circuit into a gate-fused [`crate::CompiledCircuit`]
    /// bound to `params` — the fast path for repeated execution of the
    /// same circuit (batch prediction, benchmark loops).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ParamCountMismatch`] on parameter-count
    /// mismatch.
    pub fn compile(&self, params: &[f64]) -> Result<crate::CompiledCircuit, QsimError> {
        crate::CompiledCircuit::compile(self, params)
    }

    /// Returns a copy of this circuit on a register widened by
    /// `extra_qubits` new high-order qubits that no gate touches.
    ///
    /// This is exactly the QuBatch construction: because the new qubits are
    /// the most significant ones and receive no gates, the widened circuit
    /// acts as `I ⊗ U(θ)` — the same unitary applied to every batch block
    /// of the statevector.
    pub fn widened(&self, extra_qubits: usize) -> Self {
        Self {
            num_qubits: self.num_qubits + extra_qubits,
            num_slots: self.num_slots,
            ops: self.ops.clone(),
        }
    }

    /// Total number of trainable angles across all gates (counting shared
    /// slots once per reference).
    pub fn num_trainable_refs(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Single { gate, .. } | Op::Controlled { gate, .. } => gate.slots().len(),
                Op::Swap { .. } => 0,
            })
            .sum()
    }

    /// A loose circuit-depth proxy: the number of sequential ops.
    ///
    /// QuGeo's complexity discussion (Section 3.3.3) reasons about depth
    /// growth; this simulator executes sequentially so op count is the
    /// natural measure.
    pub fn depth(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn builder_validates_qubits() {
        let mut c = Circuit::new(2);
        assert!(c.h(0).is_ok());
        assert!(c.h(2).is_err());
        assert!(c.cx(0, 0).is_err());
        assert!(c.cx(0, 5).is_err());
        assert!(c.swap(1, 1).is_err());
    }

    #[test]
    fn builder_validates_slots() {
        let mut c = Circuit::new(1);
        assert!(c.ry_slot(0, 0).is_err()); // no slots allocated yet
        let s = c.alloc_slot();
        assert!(c.ry_slot(0, s).is_ok());
        assert!(c.u3_slots(0, 5).is_err());
    }

    #[test]
    fn run_validates_params_and_state() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        assert!(matches!(
            c.run(&State::zero(1), &[]),
            Err(QsimError::ParamCountMismatch { .. })
        ));
        assert!(matches!(
            c.run(&State::zero(2), &[0.5]),
            Err(QsimError::QubitCountMismatch { .. })
        ));
        assert!(c.run(&State::zero(1), &[0.5]).is_ok());
    }

    #[test]
    fn ry_pi_flips_qubit() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        let out = c.run(&State::zero(1), &[PI]).unwrap();
        assert!((out.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_params_need_no_binding() {
        let mut c = Circuit::new(1);
        c.ry_fixed(0, PI).unwrap();
        let out = c.run(&State::zero(1), &[]).unwrap();
        assert!((out.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_slot_used_twice() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        c.ry_slot(0, s).unwrap();
        // Two RY(π/2) compose to RY(π).
        let out = c.run(&State::zero(1), &[PI / 2.0]).unwrap();
        assert!((out.probability(1) - 1.0).abs() < 1e-12);
        assert_eq!(c.num_slots(), 1);
        assert_eq!(c.num_trainable_refs(), 2);
    }

    #[test]
    fn u3_slots_allocate_three_angles() {
        let mut c = Circuit::new(1);
        let first = c.alloc_slots(3);
        c.u3_slots(0, first).unwrap();
        assert_eq!(c.num_slots(), 3);
        // U3(π, 0, π) = X
        let out = c.run(&State::zero(1), &[PI, 0.0, PI]).unwrap();
        assert!((out.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cu3_acts_only_when_control_set() {
        let mut c = Circuit::new(2);
        let first = c.alloc_slots(3);
        c.cu3_slots(0, 1, first).unwrap();
        let out = c.run(&State::zero(2), &[PI, 0.0, PI]).unwrap();
        // Control (qubit 0) is |0>, nothing happens.
        assert!((out.probability(0) - 1.0).abs() < 1e-12);

        let mut c2 = Circuit::new(2);
        c2.x(0).unwrap();
        let first = c2.alloc_slots(3);
        c2.cu3_slots(0, 1, first).unwrap();
        let out2 = c2.run(&State::zero(2), &[PI, 0.0, PI]).unwrap();
        // Control set: target flipped; state |11>.
        assert!((out2.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dagger_run_inverts_circuit() {
        let mut c = Circuit::new(2);
        let s0 = c.alloc_slots(3);
        c.h(0).unwrap();
        c.u3_slots(1, s0).unwrap();
        c.cx(0, 1).unwrap();
        let params = [0.3, -0.8, 1.7];
        let fwd = c.run(&State::zero(2), &params).unwrap();
        // Apply ops daggered in reverse order.
        let mut state = fwd;
        for op in c.ops().iter().rev() {
            Circuit::apply_op(op, &mut state, &params, true);
        }
        assert!((state.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depth_and_op_count() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap();
        c.cx(0, 1).unwrap();
        c.swap(0, 1).unwrap();
        assert_eq!(c.num_ops(), 3);
        assert_eq!(c.depth(), 3);
    }
}
