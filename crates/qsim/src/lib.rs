//! Statevector quantum circuit simulation with exact gradients.
//!
//! This crate is the quantum substrate of the QuGeo reproduction. It plays
//! the role TorchQuantum plays in the paper: it simulates parameterised
//! quantum circuits (variational quantum circuits, VQCs) on a classical
//! statevector and differentiates measurement outcomes with respect to the
//! circuit parameters.
//!
//! # Architecture
//!
//! * [`Complex64`] — a self-contained complex number type (the offline
//!   dependency set has no `num-complex`).
//! * [`State`] — a little-endian statevector over `n` qubits with gate
//!   application kernels and measurement helpers.
//! * [`Circuit`] — an ordered list of gates whose angles either are fixed
//!   or reference trainable parameter *slots*.
//! * [`DiagonalObservable`] — the observables QuGeo needs (per-qubit Pauli-Z
//!   and basis-state projectors) are all diagonal; gradients of any loss
//!   expressible through diagonal-observable expectations flow through one
//!   [`adjoint_gradient`] pass.
//! * [`ansatz`] — the `U3+CU3` block ansatz of the paper (12 blocks × 8
//!   qubits ⇒ 576 parameters).
//! * [`encoding`] — amplitude encoding: plain, grouped (ST-Encoder) and
//!   batched (QuBatch).
//! * [`fusion`] — gate-fused circuit compilation split into a
//!   parameter-independent structure compile ([`CircuitStructure`]) and a
//!   cheap angle bind: the structure merges runs of mergeable gates into
//!   composite 2×2, multiplexed (uniformly-controlled) and dense 4×4
//!   operations (roughly halving amplitude sweeps on the paper's ansatz),
//!   and [`CompiledCircuit`] binds — and O(params) *re-binds* — concrete
//!   angle values into that fixed plan without re-fusing.
//! * [`passes`] — the optimizer pass pipeline between structure compile
//!   and bind: rotation merging, inverse-pair cancellation and
//!   commutation-aware pair widening, each independently toggleable via
//!   [`passes::PassConfig`].
//! * [`batch`] — [`BatchedState`]: `B` independent statevectors stored
//!   contiguously and executed through one engine call (the training and
//!   parameter-shift hot path).
//! * [`adjoint`] — the fused, batched adjoint gradient engine: circuits
//!   compiled with per-fused-op derivative metadata
//!   ([`CompiledCircuit::compile_with_grad`]) sweep all batch members'
//!   ket/bra pairs backwards together through a reusable
//!   [`AdjointWorkspace`] — the production training gradient, with
//!   [`adjoint_gradient`] kept as the serial unfused reference.
//! * [`backend`] — the pluggable execution surface: [`QuantumBackend`]
//!   implementations for exact statevector simulation
//!   ([`StatevectorBackend`], the default), reference gate-by-gate
//!   execution ([`NaiveBackend`]), finite-shot measurement statistics
//!   ([`ShotSamplerBackend`]) and NISQ gate/readout noise
//!   ([`NoisyBackend`]), with capability flags:
//!   `supports_adjoint_gradient` drives gradient routing (adjoint when
//!   exact, parameter-shift through the backend otherwise) and
//!   `is_deterministic` tells callers whether repeated runs are
//!   cacheable or need averaging.
//! * [`fault`] — [`FaultInjectingBackend`], a chaos-testing decorator
//!   that injects a seeded, exactly reproducible schedule of panics,
//!   transient typed errors, latency spikes and NaN outputs into any
//!   backend, used to prove the serving layer's self-healing story.
//!
//! Gate application funnels through branch-free kernels that switch to
//! chunked multi-threading (scoped threads; no external dependencies) on
//! registers of ≥ 2¹⁵ amplitudes, with a serial fallback below that. The
//! thread budget is a [`BackendConfig`] field; `QUGEO_SIM_THREADS` is the
//! fallback when none is configured. On x86-64 CPUs with AVX2 and FMA the
//! kernels run explicit-lane SIMD bodies selected once per process by
//! runtime feature detection, and where AVX-512F is also present the
//! batched tile sweeps widen to 512-bit eight-member registers
//! ([`simd_feature_level`] reports the resolved tier: `"avx512"`,
//! `"avx2"` or `"scalar"`). `QUGEO_SIMD=off` — or
//! [`set_simd_enabled`]`(false)` for in-process A/B runs — pins the
//! bit-identical scalar tier, and `QUGEO_SIMD=avx2` pins the 256-bit
//! tile on AVX-512 hardware.
//!
//! # Qubit ordering
//!
//! Little-endian: qubit `q` is bit `q` of the basis-state index. Amplitude
//! encoding therefore loads classical element `i` at basis index `i`.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::{Circuit, State, DiagonalObservable};
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! // A one-qubit circuit that rotates |0> by a trainable RY angle.
//! let mut circuit = Circuit::new(1);
//! let slot = circuit.alloc_slot();
//! circuit.ry_slot(0, slot)?;
//!
//! let state = circuit.run(&State::zero(1), &[std::f64::consts::PI])?;
//! let z = DiagonalObservable::z(1, 0)?;
//! assert!((z.expectation(&state) - (-1.0)).abs() < 1e-12); // RY(pi)|0> = |1>
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod circuit;
mod complex;
mod error;
mod gates;
mod kernels;
mod observable;
mod state;

pub mod adjoint;
pub mod ansatz;
pub mod backend;
pub mod batch;
pub mod complexity;
pub mod encoding;
pub mod fault;
pub mod fusion;
pub mod gradient;
pub mod noise;
pub mod passes;

pub use adjoint::{adjoint_gradient_batch, adjoint_gradient_batch_with, AdjointWorkspace};
pub use backend::{
    BackendConfig, NaiveBackend, NoisyBackend, QuantumBackend, ShotSamplerBackend,
    StatevectorBackend,
};
pub use batch::BatchedState;
pub use circuit::{AngleSources, Circuit, Gate1, Op, ParamSource};
pub use complex::Complex64;
pub use error::QsimError;
pub use fault::{FaultInjectingBackend, FaultPlan, FaultState};
pub use fusion::{CircuitStructure, CompiledCircuit, DerivKind, FusedOp, SlotDeriv};
pub use gates::{Matrix2, Matrix4};
pub use kernels::{set_simd_enabled, simd_feature_level, simulation_threads};
pub use passes::{run_passes, CancelInverses, MergeRotations, Pass, PassConfig, PassIr, WidenPairs};
pub use gradient::{
    adjoint_gradient, finite_difference_gradient, parameter_shift_gradient,
    parameter_shift_gradient_backend, parameter_shift_gradient_batched,
};
pub use observable::DiagonalObservable;
pub use state::State;
