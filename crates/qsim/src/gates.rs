use crate::Complex64;

/// A 2×2 complex matrix — the representation of every single-qubit gate.
///
/// Stored row-major: `m[row][col]`.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::Matrix2;
///
/// let h = Matrix2::h();
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix2 {
    /// Matrix entries, row-major.
    pub m: [[Complex64; 2]; 2],
}

impl Matrix2 {
    /// The identity matrix.
    pub fn identity() -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::ONE],
            ],
        }
    }

    /// The zero matrix (useful as a derivative of a constant gate).
    pub fn zero() -> Self {
        Self {
            m: [[Complex64::ZERO; 2]; 2],
        }
    }

    /// Pauli-X.
    pub fn x() -> Self {
        Self {
            m: [
                [Complex64::ZERO, Complex64::ONE],
                [Complex64::ONE, Complex64::ZERO],
            ],
        }
    }

    /// Pauli-Y.
    pub fn y() -> Self {
        Self {
            m: [
                [Complex64::ZERO, -Complex64::I],
                [Complex64::I, Complex64::ZERO],
            ],
        }
    }

    /// Pauli-Z.
    pub fn z() -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, -Complex64::ONE],
            ],
        }
    }

    /// Hadamard.
    pub fn h() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Self {
            m: [
                [Complex64::from_real(s), Complex64::from_real(s)],
                [Complex64::from_real(s), Complex64::from_real(-s)],
            ],
        }
    }

    /// Phase gate S = diag(1, i).
    pub fn s() -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::I],
            ],
        }
    }

    /// S-dagger = diag(1, -i).
    pub fn sdg() -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, -Complex64::I],
            ],
        }
    }

    /// T gate = diag(1, e^{iπ/4}).
    pub fn t() -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(std::f64::consts::FRAC_PI_4)],
            ],
        }
    }

    /// T-dagger = diag(1, e^{-iπ/4}).
    pub fn tdg() -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [
                    Complex64::ZERO,
                    Complex64::cis(-std::f64::consts::FRAC_PI_4),
                ],
            ],
        }
    }

    /// Rotation about X: `RX(θ) = exp(-iθX/2)`.
    pub fn rx(theta: f64) -> Self {
        let c = Complex64::from_real((theta / 2.0).cos());
        let s = Complex64::new(0.0, -(theta / 2.0).sin());
        Self { m: [[c, s], [s, c]] }
    }

    /// Derivative of [`Matrix2::rx`] with respect to θ.
    pub fn rx_deriv(theta: f64) -> Self {
        let c = Complex64::from_real(-(theta / 2.0).sin() / 2.0);
        let s = Complex64::new(0.0, -(theta / 2.0).cos() / 2.0);
        Self { m: [[c, s], [s, c]] }
    }

    /// Rotation about Y: `RY(θ) = exp(-iθY/2)`.
    pub fn ry(theta: f64) -> Self {
        let c = Complex64::from_real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        Self {
            m: [
                [c, Complex64::from_real(-s)],
                [Complex64::from_real(s), c],
            ],
        }
    }

    /// Derivative of [`Matrix2::ry`] with respect to θ.
    pub fn ry_deriv(theta: f64) -> Self {
        let c = Complex64::from_real(-(theta / 2.0).sin() / 2.0);
        let s = (theta / 2.0).cos() / 2.0;
        Self {
            m: [
                [c, Complex64::from_real(-s)],
                [Complex64::from_real(s), c],
            ],
        }
    }

    /// Rotation about Z: `RZ(θ) = diag(e^{-iθ/2}, e^{iθ/2})`.
    pub fn rz(theta: f64) -> Self {
        Self {
            m: [
                [Complex64::cis(-theta / 2.0), Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(theta / 2.0)],
            ],
        }
    }

    /// Derivative of [`Matrix2::rz`] with respect to θ.
    pub fn rz_deriv(theta: f64) -> Self {
        Self {
            m: [
                [
                    Complex64::cis(-theta / 2.0) * Complex64::new(0.0, -0.5),
                    Complex64::ZERO,
                ],
                [
                    Complex64::ZERO,
                    Complex64::cis(theta / 2.0) * Complex64::new(0.0, 0.5),
                ],
            ],
        }
    }

    /// Phase gate `P(λ) = diag(1, e^{iλ})`.
    pub fn phase(lambda: f64) -> Self {
        Self {
            m: [
                [Complex64::ONE, Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(lambda)],
            ],
        }
    }

    /// Derivative of [`Matrix2::phase`] with respect to λ.
    pub fn phase_deriv(lambda: f64) -> Self {
        Self {
            m: [
                [Complex64::ZERO, Complex64::ZERO],
                [Complex64::ZERO, Complex64::cis(lambda) * Complex64::I],
            ],
        }
    }

    /// The general single-qubit gate
    /// `U3(θ, φ, λ) = [[cos(θ/2), -e^{iλ} sin(θ/2)],
    ///                [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
    ///
    /// This is the parameterised gate of the paper's `U3+CU3` ansatz
    /// blocks (three trainable angles per gate).
    pub fn u3(theta: f64, phi: f64, lambda: f64) -> Self {
        let (sin, cos) = (theta / 2.0).sin_cos();
        Self {
            m: [
                [
                    Complex64::from_real(cos),
                    -(Complex64::cis(lambda) * sin),
                ],
                [
                    Complex64::cis(phi) * sin,
                    Complex64::cis(phi + lambda) * cos,
                ],
            ],
        }
    }

    /// Partial derivative of [`Matrix2::u3`] with respect to θ.
    pub fn u3_dtheta(theta: f64, phi: f64, lambda: f64) -> Self {
        let (sin, cos) = (theta / 2.0).sin_cos();
        Self {
            m: [
                [
                    Complex64::from_real(-sin / 2.0),
                    -(Complex64::cis(lambda) * (cos / 2.0)),
                ],
                [
                    Complex64::cis(phi) * (cos / 2.0),
                    Complex64::cis(phi + lambda) * (-sin / 2.0),
                ],
            ],
        }
    }

    /// Partial derivative of [`Matrix2::u3`] with respect to φ.
    pub fn u3_dphi(theta: f64, phi: f64, lambda: f64) -> Self {
        let (sin, cos) = (theta / 2.0).sin_cos();
        Self {
            m: [
                [Complex64::ZERO, Complex64::ZERO],
                [
                    Complex64::cis(phi) * Complex64::I * sin,
                    Complex64::cis(phi + lambda) * Complex64::I * cos,
                ],
            ],
        }
    }

    /// Partial derivative of [`Matrix2::u3`] with respect to λ.
    pub fn u3_dlambda(theta: f64, phi: f64, lambda: f64) -> Self {
        let (sin, cos) = (theta / 2.0).sin_cos();
        Self {
            m: [
                [
                    Complex64::ZERO,
                    -(Complex64::cis(lambda) * Complex64::I * sin),
                ],
                [
                    Complex64::ZERO,
                    Complex64::cis(phi + lambda) * Complex64::I * cos,
                ],
            ],
        }
    }

    /// [`Matrix2::u3`] together with its three partial derivatives
    /// `(U, ∂U/∂θ, ∂U/∂φ, ∂U/∂λ)`, sharing one set of trigonometric
    /// evaluations. The parameter binder calls this once per U3
    /// occurrence per bind; the four independent constructors would
    /// evaluate the same sines and cosines fourfold. The arithmetic per
    /// entry is identical to the separate constructors, so the results
    /// match them bit for bit.
    pub fn u3_with_derivs(theta: f64, phi: f64, lambda: f64) -> (Self, Self, Self, Self) {
        let (sin, cos) = (theta / 2.0).sin_cos();
        let eip = Complex64::cis(phi);
        let eil = Complex64::cis(lambda);
        let eipl = Complex64::cis(phi + lambda);
        let m = Self {
            m: [
                [Complex64::from_real(cos), -(eil * sin)],
                [eip * sin, eipl * cos],
            ],
        };
        let dtheta = Self {
            m: [
                [Complex64::from_real(-sin / 2.0), -(eil * (cos / 2.0))],
                [eip * (cos / 2.0), eipl * (-sin / 2.0)],
            ],
        };
        let dphi = Self {
            m: [
                [Complex64::ZERO, Complex64::ZERO],
                [eip * Complex64::I * sin, eipl * Complex64::I * cos],
            ],
        };
        let dlambda = Self {
            m: [
                [Complex64::ZERO, -(eil * Complex64::I * sin)],
                [Complex64::ZERO, eipl * Complex64::I * cos],
            ],
        };
        (m, dtheta, dphi, dlambda)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        Self {
            m: [
                [self.m[0][0].conj(), self.m[1][0].conj()],
                [self.m[0][1].conj(), self.m[1][1].conj()],
            ],
        }
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        let mut out = Self::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] =
                    self.m[r][0] * rhs.m[0][c] + self.m[r][1] * rhs.m[1][c];
            }
        }
        out
    }

    /// `true` when `self · self† = I` within `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.matmul(&self.dagger());
        let id = Self::identity();
        for r in 0..2 {
            for c in 0..2 {
                if (p.m[r][c] - id.m[r][c]).norm() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// A 4×4 complex matrix — the representation of a fused two-qubit gate.
///
/// Stored row-major. The 4-dimensional basis is ordered by the two qubits
/// of the gate's support `(a, b)` with `a < b`: basis index
/// `k = bit_a + 2·bit_b`, i.e. `|b a⟩` ordering `00, 01, 10, 11`.
///
/// # Examples
///
/// ```
/// use qugeo_qsim::{Matrix2, Matrix4};
///
/// // CNOT with the control on the low qubit of the pair.
/// let cnot = Matrix4::controlled(&Matrix2::x(), true);
/// assert!(cnot.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix4 {
    /// Matrix entries, row-major.
    pub m: [[Complex64; 4]; 4],
}

impl Matrix4 {
    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = [[Complex64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            row[r] = Complex64::ONE;
        }
        Self { m }
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Self {
            m: [[Complex64::ZERO; 4]; 4],
        }
    }

    /// Embeds a single-qubit gate on the **low** qubit of the pair:
    /// `I ⊗ g` in the `|b a⟩` ordering.
    pub fn single_on_low(g: &Matrix2) -> Self {
        let mut out = Self::zero();
        for hb in 0..2 {
            for r in 0..2 {
                for c in 0..2 {
                    out.m[2 * hb + r][2 * hb + c] = g.m[r][c];
                }
            }
        }
        out
    }

    /// Embeds a single-qubit gate on the **high** qubit of the pair:
    /// `g ⊗ I` in the `|b a⟩` ordering.
    pub fn single_on_high(g: &Matrix2) -> Self {
        let mut out = Self::zero();
        for la in 0..2 {
            for r in 0..2 {
                for c in 0..2 {
                    out.m[2 * r + la][2 * c + la] = g.m[r][c];
                }
            }
        }
        out
    }

    /// A controlled single-qubit gate on the pair. With
    /// `control_on_low = true` the low qubit controls `g` on the high
    /// qubit; otherwise the high qubit controls `g` on the low one.
    pub fn controlled(g: &Matrix2, control_on_low: bool) -> Self {
        let mut out = Self::identity();
        if control_on_low {
            // Control bit = bit_a = 1: basis indices 1 (|01⟩) and 3 (|11⟩);
            // g acts on bit_b between them.
            let idx = [1usize, 3];
            for r in 0..2 {
                for c in 0..2 {
                    out.m[idx[r]][idx[c]] = g.m[r][c];
                }
            }
        } else {
            // Control bit = bit_b = 1: basis indices 2 (|10⟩) and 3 (|11⟩);
            // g acts on bit_a between them.
            let idx = [2usize, 3];
            for r in 0..2 {
                for c in 0..2 {
                    out.m[idx[r]][idx[c]] = g.m[r][c];
                }
            }
        }
        out
    }

    /// The SWAP gate on the pair.
    pub fn swap() -> Self {
        let mut out = Self::zero();
        out.m[0][0] = Complex64::ONE;
        out.m[1][2] = Complex64::ONE;
        out.m[2][1] = Complex64::ONE;
        out.m[3][3] = Complex64::ONE;
        out
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        let mut out = Self::zero();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = acc;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        let mut out = Self::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.m[r][c] = self.m[c][r].conj();
            }
        }
        out
    }

    /// `true` when `self · self† = I` within `tol` per entry.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.matmul(&self.dagger());
        let id = Self::identity();
        for r in 0..4 {
            for c in 0..4 {
                if (p.m[r][c] - id.m[r][c]).norm() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    fn close(a: &Matrix2, b: &Matrix2, tol: f64) -> bool {
        (0..2).all(|r| (0..2).all(|c| (a.m[r][c] - b.m[r][c]).norm() < tol))
    }

    #[test]
    fn fixed_gates_are_unitary() {
        for g in [
            Matrix2::identity(),
            Matrix2::x(),
            Matrix2::y(),
            Matrix2::z(),
            Matrix2::h(),
            Matrix2::s(),
            Matrix2::sdg(),
            Matrix2::t(),
            Matrix2::tdg(),
        ] {
            assert!(g.is_unitary(EPS));
        }
    }

    #[test]
    fn rotations_are_unitary_for_many_angles() {
        for i in 0..24 {
            let t = i as f64 * PI / 6.0 - 2.0 * PI;
            assert!(Matrix2::rx(t).is_unitary(EPS));
            assert!(Matrix2::ry(t).is_unitary(EPS));
            assert!(Matrix2::rz(t).is_unitary(EPS));
            assert!(Matrix2::phase(t).is_unitary(EPS));
            assert!(Matrix2::u3(t, 0.7 * t, -0.3 * t).is_unitary(EPS));
        }
    }

    #[test]
    fn zero_angle_rotations_are_identity() {
        let id = Matrix2::identity();
        assert!(close(&Matrix2::rx(0.0), &id, EPS));
        assert!(close(&Matrix2::ry(0.0), &id, EPS));
        assert!(close(&Matrix2::rz(0.0), &id, EPS));
        assert!(close(&Matrix2::u3(0.0, 0.0, 0.0), &id, EPS));
    }

    #[test]
    fn u3_special_cases() {
        // U3(θ, -π/2, π/2) = RX(θ)
        let theta = 0.73;
        assert!(close(
            &Matrix2::u3(theta, -PI / 2.0, PI / 2.0),
            &Matrix2::rx(theta),
            EPS
        ));
        // U3(θ, 0, 0) = RY(θ)
        assert!(close(&Matrix2::u3(theta, 0.0, 0.0), &Matrix2::ry(theta), EPS));
        // U3(π, 0, π) = X
        assert!(close(&Matrix2::u3(PI, 0.0, PI), &Matrix2::x(), EPS));
    }

    #[test]
    fn s_squared_is_z() {
        assert!(close(&Matrix2::s().matmul(&Matrix2::s()), &Matrix2::z(), EPS));
        assert!(close(&Matrix2::t().matmul(&Matrix2::t()), &Matrix2::s(), EPS));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        assert!(close(
            &Matrix2::h().matmul(&Matrix2::h()),
            &Matrix2::identity(),
            EPS
        ));
    }

    fn assert_deriv(
        f: impl Fn(f64) -> Matrix2,
        df: impl Fn(f64) -> Matrix2,
        at: f64,
    ) {
        let h = 1e-6;
        let num = {
            let plus = f(at + h);
            let minus = f(at - h);
            let mut out = Matrix2::zero();
            for r in 0..2 {
                for c in 0..2 {
                    out.m[r][c] = (plus.m[r][c] - minus.m[r][c]).scale(1.0 / (2.0 * h));
                }
            }
            out
        };
        let ana = df(at);
        assert!(
            close(&num, &ana, 1e-6),
            "analytic derivative disagrees with finite difference at {at}"
        );
    }

    #[test]
    fn rotation_derivatives_match_finite_difference() {
        for &t in &[-2.1, -0.4, 0.0, 0.9, 2.7] {
            assert_deriv(Matrix2::rx, Matrix2::rx_deriv, t);
            assert_deriv(Matrix2::ry, Matrix2::ry_deriv, t);
            assert_deriv(Matrix2::rz, Matrix2::rz_deriv, t);
            assert_deriv(Matrix2::phase, Matrix2::phase_deriv, t);
        }
    }

    #[test]
    fn u3_partial_derivatives_match_finite_difference() {
        let (theta, phi, lambda) = (0.83, -1.21, 2.02);
        assert_deriv(
            |t| Matrix2::u3(t, phi, lambda),
            |t| Matrix2::u3_dtheta(t, phi, lambda),
            theta,
        );
        assert_deriv(
            |p| Matrix2::u3(theta, p, lambda),
            |p| Matrix2::u3_dphi(theta, p, lambda),
            phi,
        );
        assert_deriv(
            |l| Matrix2::u3(theta, phi, l),
            |l| Matrix2::u3_dlambda(theta, phi, l),
            lambda,
        );
    }

    #[test]
    fn dagger_reverses_product() {
        let a = Matrix2::u3(0.3, 1.0, -0.5);
        let b = Matrix2::ry(0.8);
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(close(&lhs, &rhs, EPS));
    }

    fn close4(a: &Matrix4, b: &Matrix4, tol: f64) -> bool {
        (0..4).all(|r| (0..4).all(|c| (a.m[r][c] - b.m[r][c]).norm() < tol))
    }

    #[test]
    fn matrix4_embeddings_are_unitary() {
        let g = Matrix2::u3(0.7, -0.2, 1.9);
        assert!(Matrix4::single_on_low(&g).is_unitary(EPS));
        assert!(Matrix4::single_on_high(&g).is_unitary(EPS));
        assert!(Matrix4::controlled(&g, true).is_unitary(EPS));
        assert!(Matrix4::controlled(&g, false).is_unitary(EPS));
        assert!(Matrix4::swap().is_unitary(EPS));
    }

    #[test]
    fn matrix4_single_embeddings_commute_across_qubits() {
        let g = Matrix2::u3(0.4, 0.8, -1.1);
        let h = Matrix2::ry(0.9);
        let lo_then_hi = Matrix4::single_on_high(&h).matmul(&Matrix4::single_on_low(&g));
        let hi_then_lo = Matrix4::single_on_low(&g).matmul(&Matrix4::single_on_high(&h));
        assert!(close4(&lo_then_hi, &hi_then_lo, EPS));
    }

    #[test]
    fn controlled_embedding_is_block_identity_on_control_zero() {
        let g = Matrix2::x();
        let cx = Matrix4::controlled(&g, true);
        // Control (low bit) = 0 -> basis 0 and 2 untouched.
        assert_eq!(cx.m[0][0], Complex64::ONE);
        assert_eq!(cx.m[2][2], Complex64::ONE);
        // Control = 1 -> X block between basis 1 and 3.
        assert_eq!(cx.m[1][3], Complex64::ONE);
        assert_eq!(cx.m[3][1], Complex64::ONE);
    }

    #[test]
    fn swap_matrix_squares_to_identity() {
        let s = Matrix4::swap();
        assert!(close4(&s.matmul(&s), &Matrix4::identity(), EPS));
    }

    #[test]
    fn matrix4_dagger_reverses_product() {
        let a = Matrix4::controlled(&Matrix2::u3(0.3, 1.0, -0.5), false);
        let b = Matrix4::single_on_low(&Matrix2::ry(0.8));
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(close4(&lhs, &rhs, EPS));
    }
}
