use crate::{Complex64, Matrix2, QsimError};

/// A statevector over `n` qubits: `2^n` complex amplitudes, little-endian
/// (qubit `q` is bit `q` of the basis index).
///
/// # Examples
///
/// ```
/// use qugeo_qsim::State;
///
/// # fn main() -> Result<(), qugeo_qsim::QsimError> {
/// let state = State::from_real_normalized(&[1.0, 1.0, 1.0, 1.0])?;
/// assert_eq!(state.num_qubits(), 2);
/// assert!((state.probability(0) - 0.25).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero(num_qubits: usize) -> Self {
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        Self { num_qubits, amps }
    }

    /// Builds a state from explicit complex amplitudes.
    ///
    /// The amplitudes are used as-is (no normalisation); callers that need a
    /// physical state should pass a unit-norm vector. Non-normalised states
    /// are permitted because intermediate vectors in gradient computations
    /// are not unit norm.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidStateLength`] unless `amps.len()` is a
    /// positive power of two.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Result<Self, QsimError> {
        let len = amps.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(QsimError::InvalidStateLength { len });
        }
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            amps,
        })
    }

    /// Amplitude-encodes a real vector after ℓ₂ normalisation.
    ///
    /// This is the simulation-level equivalent of an amplitude-encoding
    /// circuit: classical element `i` becomes the amplitude of basis state
    /// `|i⟩`.
    ///
    /// # Errors
    ///
    /// * [`QsimError::InvalidStateLength`] if the length is not a positive
    ///   power of two.
    /// * [`QsimError::ZeroVector`] if every element is zero.
    pub fn from_real_normalized(data: &[f64]) -> Result<Self, QsimError> {
        let len = data.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(QsimError::InvalidStateLength { len });
        }
        let norm = data.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return Err(QsimError::ZeroVector);
        }
        let amps = data
            .iter()
            .map(|&x| Complex64::from_real(x / norm))
            .collect();
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            amps,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (`2^n`).
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always `false`: a state has at least one amplitude.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Immutable view of the amplitudes.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable view of the amplitudes.
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Probabilities of all basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.amps.len()];
        crate::kernels::probabilities_into(&self.amps, &mut out);
        out
    }

    /// Euclidean norm of the state (1.0 for a physical state).
    pub fn norm(&self) -> f64 {
        crate::kernels::norm_sqr_sum(&self.amps).sqrt()
    }

    /// Rescales to unit norm (no-op on a zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for a in &mut self.amps {
                *a = a.scale(1.0 / n);
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if dimensions differ.
    pub fn inner(&self, other: &Self) -> Result<Complex64, QsimError> {
        if self.num_qubits != other.num_qubits {
            return Err(QsimError::QubitCountMismatch {
                expected: self.num_qubits,
                actual: other.num_qubits,
            });
        }
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        Ok(acc)
    }

    /// Expectation value `⟨ψ|Z_q|ψ⟩` of Pauli-Z on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    pub fn z_expectation(&self, q: usize) -> f64 {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let sign = if i & mask == 0 { 1.0 } else { -1.0 };
                sign * a.norm_sqr()
            })
            .sum()
    }

    /// Z expectation of every qubit, low to high.
    pub fn z_expectations(&self) -> Vec<f64> {
        (0..self.num_qubits).map(|q| self.z_expectation(q)).collect()
    }

    /// Marginal probabilities over the low `k` qubits (tracing out the
    /// rest). Element `j` of the result is `P(low k qubits = j)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.num_qubits()`.
    pub fn marginal_low(&self, k: usize) -> Vec<f64> {
        assert!(k <= self.num_qubits, "marginal over too many qubits");
        let mut probs = vec![0.0; 1 << k];
        let mask = (1usize << k) - 1;
        for (i, a) in self.amps.iter().enumerate() {
            probs[i & mask] += a.norm_sqr();
        }
        probs
    }

    /// Extracts block `index` of `count` equal contiguous blocks of the
    /// statevector as a new (unnormalised) state.
    ///
    /// With QuBatch the batch qubits are the *high* qubits, so the
    /// amplitudes of batch sample `b` are exactly block `b` of `B` blocks.
    /// The returned block has squared norm equal to the probability of the
    /// batch label `index`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidEncoding`] if `count` does not evenly
    /// divide the amplitude count into power-of-two blocks or
    /// `index >= count`.
    pub fn block(&self, index: usize, count: usize) -> Result<Self, QsimError> {
        if count == 0 || !count.is_power_of_two() || count > self.amps.len() {
            return Err(QsimError::InvalidEncoding {
                reason: format!("block count {count} invalid for {} amplitudes", self.amps.len()),
            });
        }
        if index >= count {
            return Err(QsimError::InvalidEncoding {
                reason: format!("block index {index} out of range ({count} blocks)"),
            });
        }
        let size = self.amps.len() / count;
        let amps = self.amps[index * size..(index + 1) * size].to_vec();
        Self::from_amplitudes(amps)
    }

    /// Applies a single-qubit gate in place.
    ///
    /// Delegates to the crate's branch-free kernels, which switch to
    /// chunked data-parallelism on large registers.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    pub fn apply_single(&mut self, gate: &Matrix2, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        crate::kernels::apply_one(&mut self.amps, gate, q, crate::kernels::simulation_threads());
    }

    /// Applies a fused two-qubit gate (4×4 unitary) to the qubit pair
    /// `(a, b)` with `a < b`, using the [`crate::Matrix4`] basis
    /// convention `index = bit_a + 2·bit_b`.
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or `a >= b`.
    pub fn apply_two_qubit(&mut self, gate: &crate::Matrix4, a: usize, b: usize) {
        assert!(a < b, "pair must be ordered: {a} >= {b}");
        assert!(b < self.num_qubits, "qubit {b} out of range");
        crate::kernels::apply_two(&mut self.amps, gate, a, b, crate::kernels::simulation_threads());
    }

    /// Applies a controlled single-qubit gate in place (gate acts on
    /// `target` where `control` is 1).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or `control == target`.
    pub fn apply_controlled(&mut self, gate: &Matrix2, control: usize, target: usize) {
        assert!(
            control < self.num_qubits && target < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(control, target, "control equals target");
        crate::kernels::apply_controlled(&mut self.amps, gate, control, target, crate::kernels::simulation_threads());
    }

    /// Applies a SWAP gate in place.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or `a == b`.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits, "qubit out of range");
        assert_ne!(a, b, "swap qubits must differ");
        crate::kernels::apply_swap(&mut self.amps, a, b, crate::kernels::simulation_threads());
    }

    /// Writes `gate|self⟩` restricted to the controlled subspace into
    /// `out`, zeroing all other amplitudes of `out`. Used by the adjoint
    /// differentiation pass, where the derivative of a controlled gate
    /// vanishes outside the control-on subspace.
    ///
    /// When `control` is `None` the (possibly non-unitary) matrix acts on
    /// the whole space.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()` or any qubit is out of range.
    pub fn apply_matrix_into(
        &self,
        gate: &Matrix2,
        control: Option<usize>,
        target: usize,
        out: &mut Self,
    ) {
        assert_eq!(out.len(), self.len(), "output state dimension mismatch");
        assert!(target < self.num_qubits, "qubit out of range");
        let tmask = 1usize << target;
        let [[m00, m01], [m10, m11]] = gate.m;
        for a in &mut out.amps {
            *a = Complex64::ZERO;
        }
        match control {
            None => {
                for i in 0..self.amps.len() {
                    if i & tmask == 0 {
                        let j = i | tmask;
                        let a0 = self.amps[i];
                        let a1 = self.amps[j];
                        out.amps[i] = m00 * a0 + m01 * a1;
                        out.amps[j] = m10 * a0 + m11 * a1;
                    }
                }
            }
            Some(c) => {
                assert!(c < self.num_qubits, "control qubit out of range");
                assert_ne!(c, target, "control equals target");
                let cmask = 1usize << c;
                for i in 0..self.amps.len() {
                    if i & cmask != 0 && i & tmask == 0 {
                        let j = i | tmask;
                        let a0 = self.amps[i];
                        let a1 = self.amps[j];
                        out.amps[i] = m00 * a0 + m01 * a1;
                        out.amps[j] = m10 * a0 + m11 * a1;
                    }
                }
            }
        }
    }

    /// Tensor product `self ⊗ other`; `other`'s qubits become the new
    /// low-order qubits.
    pub fn tensor(&self, other: &Self) -> Self {
        let mut amps = Vec::with_capacity(self.amps.len() * other.amps.len());
        for a in &self.amps {
            for b in &other.amps {
                amps.push(*a * *b);
            }
        }
        Self {
            num_qubits: self.num_qubits + other.num_qubits,
            amps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = State::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.len(), 8);
        assert!((s.probability(0) - 1.0).abs() < EPS);
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn from_real_normalized_unit_norm() {
        let s = State::from_real_normalized(&[3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((s.norm() - 1.0).abs() < EPS);
        assert!((s.probability(0) - 0.36).abs() < EPS);
        assert!((s.probability(3) - 0.64).abs() < EPS);
    }

    #[test]
    fn from_real_rejects_bad_input() {
        assert!(matches!(
            State::from_real_normalized(&[1.0, 2.0, 3.0]),
            Err(QsimError::InvalidStateLength { len: 3 })
        ));
        assert!(matches!(
            State::from_real_normalized(&[0.0, 0.0]),
            Err(QsimError::ZeroVector)
        ));
        assert!(matches!(
            State::from_real_normalized(&[]),
            Err(QsimError::InvalidStateLength { len: 0 })
        ));
    }

    #[test]
    fn x_gate_flips_qubit() {
        let mut s = State::zero(2);
        s.apply_single(&Matrix2::x(), 1);
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn h_gate_makes_uniform_superposition() {
        let mut s = State::zero(1);
        s.apply_single(&Matrix2::h(), 0);
        assert!((s.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < EPS);
        assert!((s.amplitudes()[1].re - FRAC_1_SQRT_2).abs() < EPS);
        assert!((s.z_expectation(0)).abs() < EPS);
    }

    #[test]
    fn bell_state_entanglement() {
        let mut s = State::zero(2);
        s.apply_single(&Matrix2::h(), 0);
        s.apply_controlled(&Matrix2::x(), 0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn controlled_gate_inactive_when_control_zero() {
        let mut s = State::zero(2); // control qubit 0 is |0>
        s.apply_controlled(&Matrix2::x(), 0, 1);
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn z_expectation_signs() {
        let mut s = State::zero(2);
        assert!((s.z_expectation(0) - 1.0).abs() < EPS);
        s.apply_single(&Matrix2::x(), 0);
        assert!((s.z_expectation(0) + 1.0).abs() < EPS);
        assert!((s.z_expectation(1) - 1.0).abs() < EPS);
        assert_eq!(s.z_expectations().len(), 2);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = State::zero(2);
        s.apply_single(&Matrix2::x(), 0); // |01> (qubit0 = 1)
        s.apply_swap(0, 1);
        assert!((s.probability(0b10) - 1.0).abs() < EPS); // now qubit1 = 1
    }

    #[test]
    fn swap_is_involution() {
        let mut s = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let before = s.clone();
        s.apply_swap(0, 1);
        s.apply_swap(0, 1);
        for (a, b) in s.amplitudes().iter().zip(before.amplitudes()) {
            assert!((*a - *b).norm() < EPS);
        }
    }

    #[test]
    fn gates_preserve_norm() {
        let mut s = State::from_real_normalized(&[0.1, 0.4, -0.2, 0.8]).unwrap();
        s.apply_single(&Matrix2::u3(0.7, -0.3, 1.1), 0);
        s.apply_controlled(&Matrix2::u3(1.3, 0.2, -0.9), 0, 1);
        s.apply_swap(0, 1);
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn marginal_low_sums_to_one() {
        let s = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let m = s.marginal_low(2);
        assert_eq!(m.len(), 4);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < EPS);
        // P(low2 = 0) = |a0|^2 + |a4|^2
        let expect = s.probability(0) + s.probability(4);
        assert!((m[0] - expect).abs() < EPS);
    }

    #[test]
    fn block_extracts_batches() {
        let s = State::from_real_normalized(&[1.0, 0.0, 0.0, 1.0]).unwrap();
        let b0 = s.block(0, 2).unwrap();
        let b1 = s.block(1, 2).unwrap();
        assert_eq!(b0.num_qubits(), 1);
        assert!((b0.amplitudes()[0].re - FRAC_1_SQRT_2).abs() < EPS);
        assert!((b1.amplitudes()[1].re - FRAC_1_SQRT_2).abs() < EPS);
        assert!(s.block(2, 2).is_err());
        assert!(s.block(0, 3).is_err());
    }

    #[test]
    fn inner_product() {
        let a = State::zero(1);
        let mut b = State::zero(1);
        b.apply_single(&Matrix2::h(), 0);
        let ip = a.inner(&b).unwrap();
        assert!((ip.re - FRAC_1_SQRT_2).abs() < EPS);
        assert!(a.inner(&State::zero(2)).is_err());
    }

    #[test]
    fn tensor_product_dimensions_and_values() {
        let mut a = State::zero(1);
        a.apply_single(&Matrix2::x(), 0); // |1>
        let b = State::zero(1); // |0>
        let t = a.tensor(&b); // a is high qubit: |1>|0> = index 0b10
        assert_eq!(t.num_qubits(), 2);
        assert!((t.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn apply_matrix_into_matches_apply_controlled() {
        let s = State::from_real_normalized(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let g = Matrix2::u3(0.4, 0.9, -0.2);
        let mut out = State::zero(2);
        s.apply_matrix_into(&g, Some(0), 1, &mut out);
        // Manual: copy, apply controlled, then zero control-off amplitudes.
        let mut manual = s.clone();
        manual.apply_controlled(&g, 0, 1);
        for i in 0..4 {
            if i & 1 != 0 {
                assert!((out.amplitudes()[i] - manual.amplitudes()[i]).norm() < EPS);
            } else {
                assert_eq!(out.amplitudes()[i], Complex64::ZERO);
            }
        }
    }

    #[test]
    fn normalize_restores_unit_norm() {
        let mut s = State::from_amplitudes(vec![
            Complex64::new(3.0, 0.0),
            Complex64::new(0.0, 4.0),
        ])
        .unwrap();
        s.normalize();
        assert!((s.norm() - 1.0).abs() < EPS);
    }
}
