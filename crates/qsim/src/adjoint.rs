//! Fused, batched adjoint differentiation — the training hot path.
//!
//! The serial [`crate::adjoint_gradient`] walks the *unfused* op list one
//! gate at a time, single-threaded, and allocates a ket clone, a bra, a
//! scratch state, and a gradient vector on every call. This module
//! replaces it as the production gradient engine:
//!
//! * **Fused sweeps.** The circuit is compiled with gradient metadata
//!   ([`CompiledCircuit::compile_with_grad`]): each fused op records the
//!   derivative of its fused matrix per absorbed trainable angle
//!   ([`crate::SlotDeriv`]). The backward pass therefore sweeps ~half as
//!   many ops as the unfused list on the paper ansatz, and each gradient
//!   contribution `2·Re⟨bra|∂F|ket⟩` is contracted directly by the
//!   reduction kernels — no scratch statevector at all.
//! * **Batching.** All batch members' ket/bra pairs live in two
//!   contiguous `B·2^n` arrays and sweep together: member-parallel
//!   (contiguous member ranges per worker, like
//!   [`crate::BatchedState::apply_each`]) for cache-sized members,
//!   gate-parallel chunked kernels for large ones.
//! * **Workspace reuse.** An [`AdjointWorkspace`] owns the ket/bra/
//!   value/gradient buffers and is held by the caller across training
//!   steps; steady-state steps perform **no** heap allocation in the
//!   engine, a contract the workspace counts
//!   ([`AdjointWorkspace::allocations`] / [`AdjointWorkspace::reuses`])
//!   so tests assert it instead of trusting it.
//! * **Structure caching.** [`AdjointWorkspace::adjoint_batch`] keeps the
//!   compiled circuit across steps and re-binds new parameter values into
//!   the cached fusion plan ([`CompiledCircuit::rebind`]) instead of
//!   recompiling; a training loop structure-compiles exactly once,
//!   counted by [`AdjointWorkspace::recompiles`] /
//!   [`AdjointWorkspace::rebinds`]. Bind stamps guard the forward/
//!   backward pairing: a backward sweep against a circuit re-bound since
//!   its forward pass is a typed [`QsimError::StaleBinding`], never a
//!   silently mixed gradient.
//!
//! The split into [`AdjointWorkspace::forward`] and
//! [`AdjointWorkspace::backward_with`] exists because QuGeo's losses need
//! the forward probabilities *first* (the decoder turns them into the
//! effective diagonal observable); the callback-based backward lets a
//! caller derive each member's observable from its own output without a
//! second forward pass.
//!
//! # Examples
//!
//! ```
//! use qugeo_qsim::{
//!     adjoint_gradient, adjoint_gradient_batch, BatchedState, Circuit,
//!     DiagonalObservable, State,
//! };
//!
//! # fn main() -> Result<(), qugeo_qsim::QsimError> {
//! let mut c = Circuit::new(1);
//! let s = c.alloc_slot();
//! c.ry_slot(0, s)?;
//! let z = DiagonalObservable::z(1, 0)?;
//! let inputs = BatchedState::replicate(&State::zero(1), 3);
//! let (values, grads) = adjoint_gradient_batch(&c, &[0.3], &inputs, &z)?;
//! let (value, grad) = adjoint_gradient(&c, &[0.3], &State::zero(1), &z)?;
//! for b in 0..3 {
//!     assert!((values[b] - value).abs() < 1e-12);
//!     assert!((grads[b][0] - grad[0]).abs() < 1e-12);
//! }
//! # Ok(())
//! # }
//! ```

use crate::batch::BatchedState;
use crate::circuit::Circuit;
use crate::fusion::{CompiledCircuit, DerivKind, FusedOp};
use crate::gates::{Matrix2, Matrix4};
use crate::kernels::{self, simulation_threads, PARALLEL_MIN_AMPS};
use crate::{Complex64, DiagonalObservable, QsimError};

/// Per-member observable factory handed to the backward sweep
/// ([`AdjointWorkspace::backward_with`],
/// [`crate::backend::QuantumBackend::adjoint_gradient_batch`]): called
/// once per member, in order, with that member's exact output
/// distribution, and returns the member's effective diagonal
/// observable.
pub type ObsForMember<'a> =
    dyn FnMut(usize, &[f64]) -> Result<DiagonalObservable, QsimError> + 'a;

/// Reusable buffers for the fused batched adjoint engine: ket and bra
/// arrays (`B · 2^n` each), per-member expectation values, per-member
/// gradients, and a probability scratch — everything a training step
/// needs, allocated once and recycled. See the [module docs](self).
#[derive(Debug, Default)]
pub struct AdjointWorkspace {
    ket: Vec<Complex64>,
    bra: Vec<Complex64>,
    probs: Vec<f64>,
    values: Vec<f64>,
    grads: Vec<f64>,
    num_qubits: usize,
    batch: usize,
    num_slots: usize,
    forward_done: bool,
    forward_stamp: u64,
    cache: Option<(Circuit, CompiledCircuit)>,
    allocations: usize,
    reuses: usize,
    recompiles: usize,
    rebinds: usize,
}

impl AdjointWorkspace {
    /// An empty workspace; buffers are sized lazily by the first call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Members of the last forward pass.
    pub fn batch_len(&self) -> usize {
        self.batch
    }

    /// Trainable slots of the last compiled circuit seen.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// How many calls had to grow a buffer (including the very first
    /// call, which must). A steady-state training loop holds this at its
    /// warm-up value while [`AdjointWorkspace::reuses`] climbs — the
    /// no-allocation contract, counted so tests can assert it.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// How many calls recycled every existing buffer without touching
    /// the allocator.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// How many [`AdjointWorkspace::adjoint_batch`] calls had to run a
    /// full structure compile because the circuit changed (including the
    /// very first call, which must). A training loop over a fixed circuit
    /// holds this at `1` while [`AdjointWorkspace::rebinds`] climbs — the
    /// compile-once contract, counted so tests can assert it.
    pub fn recompiles(&self) -> usize {
        self.recompiles
    }

    /// How many [`AdjointWorkspace::adjoint_batch`] calls reused the
    /// cached circuit structure and only re-bound parameter values.
    pub fn rebinds(&self) -> usize {
        self.rebinds
    }

    /// Per-member expectation values `⟨ψ_b|O_b|ψ_b⟩` of the last
    /// backward pass.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Member `b`'s expectation value from the last backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn value(&self, b: usize) -> f64 {
        self.values[b]
    }

    /// Member `b`'s gradient from the last backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn grad(&self, b: usize) -> &[f64] {
        &self.grads[b * self.num_slots..(b + 1) * self.num_slots]
    }

    /// Runs the forward pass: loads every member of `inputs` into the
    /// ket array (recycling its allocation) and applies the compiled
    /// circuit through the adaptive batched sweep. Output amplitudes are
    /// then available via [`AdjointWorkspace::output_member`] until the
    /// backward pass consumes them.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] if the circuit width
    /// differs from the members'.
    pub fn forward(
        &mut self,
        compiled: &CompiledCircuit,
        inputs: &BatchedState,
        threads: usize,
    ) -> Result<(), QsimError> {
        if compiled.num_qubits() != inputs.num_qubits() {
            return Err(QsimError::QubitCountMismatch {
                expected: inputs.num_qubits(),
                actual: compiled.num_qubits(),
            });
        }
        self.num_qubits = inputs.num_qubits();
        self.batch = inputs.batch_len();
        self.num_slots = compiled.num_slots();
        let amps = inputs.amps();
        let grads_len = self.batch * self.num_slots;
        if self.ket.capacity() >= amps.len()
            && self.bra.capacity() >= amps.len()
            && self.probs.capacity() >= self.member_dim()
            && self.values.capacity() >= self.batch
            && self.grads.capacity() >= grads_len
        {
            self.reuses += 1;
        } else {
            self.allocations += 1;
        }
        self.ket.clear();
        self.ket.extend_from_slice(amps);
        self.bra.clear();
        self.bra.resize(amps.len(), Complex64::ZERO);
        self.values.clear();
        self.values.resize(self.batch, 0.0);
        self.grads.clear();
        self.grads.resize(grads_len, 0.0);
        compiled.apply_members_threaded(&mut self.ket, threads);
        self.forward_done = true;
        self.forward_stamp = compiled.binding();
        Ok(())
    }

    /// Amplitudes per member.
    fn member_dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Member `b`'s output amplitudes from the last forward pass (valid
    /// until the backward pass sweeps the ket array back).
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is pending or `b` is out of range.
    pub fn output_member(&self, b: usize) -> &[Complex64] {
        assert!(self.forward_done, "no pending forward pass");
        let dim = self.member_dim();
        &self.ket[b * dim..(b + 1) * dim]
    }

    /// Runs the backward sweep with **one observable shared by every
    /// member**.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitCountMismatch`] on width mismatch, or
    /// [`QsimError::Unsupported`] if `compiled` lacks gradient metadata
    /// or no forward pass is pending.
    pub fn backward(
        &mut self,
        compiled: &CompiledCircuit,
        obs: &DiagonalObservable,
        threads: usize,
    ) -> Result<(), QsimError> {
        self.backward_with(compiled, threads, &mut |_, _| Ok(obs.clone()))
    }

    /// Runs the backward sweep with a **per-member observable derived
    /// from that member's output distribution**: `obs_for(b, probs)` is
    /// called once per member, in order, with the member's basis-state
    /// probabilities — the shape QuGeo's decoders need, where each
    /// sample's loss gradient defines its own effective diagonal.
    ///
    /// On return, [`AdjointWorkspace::values`] holds `⟨ψ_b|O_b|ψ_b⟩` and
    /// [`AdjointWorkspace::grad`] the per-slot gradients of each member.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::Unsupported`] if `compiled` lacks gradient
    /// metadata or no forward pass is pending,
    /// [`QsimError::StaleBinding`] if `compiled` was re-bound to other
    /// parameters since the forward pass (the bra seeds in the workspace
    /// would mix parameter vectors),
    /// [`QsimError::QubitCountMismatch`] if a returned observable has the
    /// wrong width, and propagates `obs_for` errors.
    pub fn backward_with(
        &mut self,
        compiled: &CompiledCircuit,
        threads: usize,
        obs_for: &mut ObsForMember<'_>,
    ) -> Result<(), QsimError> {
        if !self.forward_done {
            return Err(QsimError::Unsupported {
                reason: "backward sweep without a pending forward pass".into(),
            });
        }
        if compiled.binding() != self.forward_stamp {
            // The circuit was re-bound (or swapped for a different
            // binding) between forward and backward: the bra seeds in the
            // workspace belong to the old parameters and the sweep would
            // silently mix gradients across parameter vectors.
            return Err(QsimError::StaleBinding {
                expected: self.forward_stamp,
                actual: compiled.binding(),
            });
        }
        if !compiled.has_gradients() {
            return Err(QsimError::Unsupported {
                reason: "circuit was compiled without gradient metadata \
                         (use CompiledCircuit::compile_with_grad)"
                    .into(),
            });
        }
        self.forward_done = false;
        let dim = self.member_dim();

        // Seed bra_b = O_b ψ_b and value_b = ⟨ψ_b|O_b|ψ_b⟩ member by
        // member; the observable callback sees each member's exact
        // output distribution.
        self.probs.clear();
        self.probs.resize(dim, 0.0);
        for b in 0..self.batch {
            let psi = &self.ket[b * dim..(b + 1) * dim];
            for (p, a) in self.probs.iter_mut().zip(psi) {
                *p = a.norm_sqr();
            }
            let obs = obs_for(b, &self.probs)?;
            if obs.num_qubits() != self.num_qubits {
                return Err(QsimError::QubitCountMismatch {
                    expected: self.num_qubits,
                    actual: obs.num_qubits(),
                });
            }
            let diag = obs.diagonal();
            let bra = &mut self.bra[b * dim..(b + 1) * dim];
            let mut value = 0.0;
            for ((o, a), d) in bra.iter_mut().zip(psi).zip(diag) {
                *o = a.scale(*d);
                value += a.norm_sqr() * d;
            }
            self.values[b] = value;
        }
        if self.num_slots == 0 || compiled.num_fused_ops() == 0 {
            return Ok(());
        }

        // The sweep itself: member-parallel for cache-sized members,
        // gate-parallel kernels otherwise — mirroring the forward
        // engine's adaptive split.
        let total = self.batch * dim;
        let member_threads = threads.min(self.batch);
        let member_parallel = member_threads > 1
            && dim <= CompiledCircuit::CIRCUIT_MAJOR_MAX_DIM
            && total >= PARALLEL_MIN_AMPS;
        if !member_parallel {
            let ns = self.num_slots;
            backward_members_serial(
                compiled,
                &mut self.ket,
                &mut self.bra,
                &mut self.grads,
                dim,
                ns,
                threads,
            );
            return Ok(());
        }
        let per = self.batch.div_ceil(member_threads);
        let ns = self.num_slots;
        std::thread::scope(|scope| {
            for ((kets, bras), grads) in self
                .ket
                .chunks_mut(per * dim)
                .zip(self.bra.chunks_mut(per * dim))
                .zip(self.grads.chunks_mut(per * ns))
            {
                scope.spawn(move || {
                    backward_members_serial(compiled, kets, bras, grads, dim, ns, 1);
                });
            }
        });
        Ok(())
    }

    /// One full gradient step — compile-or-rebind, forward, backward —
    /// with the workspace caching the compiled circuit across calls.
    ///
    /// The first call (and any call with a *different* circuit) runs a
    /// full gradient-aware structure compile and counts one
    /// [`AdjointWorkspace::recompiles`]; subsequent calls with the same
    /// circuit re-bind the new `params` into the cached fusion plan in
    /// O(params) and count one [`AdjointWorkspace::rebinds`]. A training
    /// loop that drives every step through this method therefore
    /// structure-compiles exactly once, no matter how many epochs run.
    ///
    /// `obs_for` has the [`ObsForMember`] shape: called once per member,
    /// in order, with that member's output distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if parameter counts or qubit counts mismatch, or
    /// propagates `obs_for` errors.
    pub fn adjoint_batch(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        inputs: &BatchedState,
        threads: usize,
        obs_for: &mut ObsForMember<'_>,
    ) -> Result<(), QsimError> {
        circuit.check_params(params)?;
        let (cached, compiled) = match self.cache.take() {
            Some((cached, mut compiled)) if cached == *circuit => {
                compiled.rebind(params)?;
                self.rebinds += 1;
                (cached, compiled)
            }
            _ => {
                let compiled = CompiledCircuit::compile_with_grad(circuit, params)?;
                self.recompiles += 1;
                (circuit.clone(), compiled)
            }
        };
        let result = self
            .forward(&compiled, inputs, threads)
            .and_then(|()| self.backward_with(&compiled, threads, obs_for));
        self.cache = Some((cached, compiled));
        result
    }

    /// Sizes the result buffers without a fused forward pass — the entry
    /// point for backends that produce adjoint results some other way
    /// (e.g. the reference serial implementation) but still report
    /// through a workspace.
    pub fn prepare_results(&mut self, num_qubits: usize, batch: usize, num_slots: usize) {
        let grads_len = batch * num_slots;
        if self.values.capacity() >= batch && self.grads.capacity() >= grads_len {
            self.reuses += 1;
        } else {
            self.allocations += 1;
        }
        self.num_qubits = num_qubits;
        self.batch = batch;
        self.num_slots = num_slots;
        self.forward_done = false;
        self.values.clear();
        self.values.resize(batch, 0.0);
        self.grads.clear();
        self.grads.resize(grads_len, 0.0);
    }

    /// Stores one member's externally-computed result (pairs with
    /// [`AdjointWorkspace::prepare_results`]).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range or `grad` has the wrong length.
    pub fn set_member_result(&mut self, b: usize, value: f64, grad: &[f64]) {
        assert_eq!(grad.len(), self.num_slots, "gradient length mismatch");
        self.values[b] = value;
        self.grads[b * self.num_slots..(b + 1) * self.num_slots].copy_from_slice(grad);
    }
}

/// One worker's backward sweep over a contiguous member range: groups of
/// four cache-sized members go through the batch-major SIMD tile
/// ([`kernels::tile::backward_members`] — zero members when the SIMD tier
/// is off or members exceed the circuit-major cap), the remainder through
/// the per-member sweep.
#[allow(clippy::too_many_arguments)]
fn backward_members_serial(
    compiled: &CompiledCircuit,
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    grads: &mut [f64],
    dim: usize,
    ns: usize,
    threads: usize,
) {
    let done = if dim <= CompiledCircuit::CIRCUIT_MAJOR_MAX_DIM {
        kernels::tile::backward_members(compiled, ket, bra, grads, dim, ns)
    } else {
        // A tile would spill L2 and beat the gate-parallel kernels at
        // nothing; keep huge members on the per-member path.
        0
    };
    for ((ket, bra), grad) in ket[done * dim..]
        .chunks_mut(dim)
        .zip(bra[done * dim..].chunks_mut(dim))
        .zip(grads[done * ns..].chunks_mut(ns))
    {
        backward_member(compiled, ket, bra, grad, threads);
    }
}

/// One member's full backward sweep. Each fused op takes **one** array
/// pass ([`kernels::backward_step_one`] and friends): the daggered op is
/// applied to ket and bra in registers while a small reduction matrix
/// `R[x][y] = Σ k'_x·conj(b_y)` accumulates on the op's support; every
/// derivative the op absorbed then contributes
/// `⟨bra|∂F|ket⟩ = Σ_{r,c} ∂F[r][c]·R[c][r]` in O(1), independent of
/// both state size and angle count — the backward sweep costs one pass
/// per fused *op*, not one per trainable *angle*.
fn backward_member(
    compiled: &CompiledCircuit,
    ket: &mut [Complex64],
    bra: &mut [Complex64],
    grad: &mut [f64],
    threads: usize,
) {
    for (idx, op) in compiled.ops().iter().enumerate().rev() {
        let derivs = compiled.op_derivs(idx);
        if derivs.is_empty() {
            // Constant op (e.g. a fused SWAP block): plain dagger sweeps.
            apply_fused_dagger(op, ket, threads);
            apply_fused_dagger(op, bra, threads);
            continue;
        }
        match op {
            FusedOp::One { m, q } => {
                let r = kernels::backward_step_one(ket, bra, &m.dagger(), *q, threads);
                for sd in derivs {
                    let DerivKind::One(d) = &sd.d else {
                        unreachable!("derivative shape always matches its fused op");
                    };
                    grad[sd.slot] += 2.0 * trace2(d, &r).re;
                }
            }
            FusedOp::Multiplexed { a0, a1, c, t } => {
                let (r0, r1) = kernels::backward_step_multiplexed(
                    ket,
                    bra,
                    &a0.dagger(),
                    &a1.dagger(),
                    *c,
                    *t,
                    threads,
                );
                for sd in derivs {
                    let DerivKind::Multiplexed(d0, d1) = &sd.d else {
                        unreachable!("derivative shape always matches its fused op");
                    };
                    grad[sd.slot] += 2.0 * (trace2(d0, &r0) + trace2(d1, &r1)).re;
                }
            }
            FusedOp::Two { m, a, b } => {
                let r = kernels::backward_step_two(ket, bra, &m.dagger(), *a, *b, threads);
                for sd in derivs {
                    let DerivKind::Two(d) = &sd.d else {
                        unreachable!("derivative shape always matches its fused op");
                    };
                    grad[sd.slot] += 2.0 * trace4(d, &r).re;
                }
            }
        }
    }
}

/// Applies the dagger of one fused op to a raw amplitude slice.
fn apply_fused_dagger(op: &FusedOp, amps: &mut [Complex64], threads: usize) {
    match op {
        FusedOp::One { m, q } => kernels::apply_one(amps, &m.dagger(), *q, threads),
        FusedOp::Multiplexed { a0, a1, c, t } => {
            kernels::apply_multiplexed(amps, &a0.dagger(), &a1.dagger(), *c, *t, threads)
        }
        FusedOp::Two { m, a, b } => kernels::apply_two(amps, &m.dagger(), *a, *b, threads),
    }
}

/// `Σ_{r,c} d[r][c] · R[c][r]` — the O(1) contraction of one 2×2
/// derivative against a backward-step reduction matrix.
fn trace2(d: &Matrix2, r: &Matrix2) -> Complex64 {
    let mut acc = Complex64::ZERO;
    for row in 0..2 {
        for col in 0..2 {
            acc += d.m[row][col] * r.m[col][row];
        }
    }
    acc
}

/// The 4×4 analogue of [`trace2`].
fn trace4(d: &Matrix4, r: &Matrix4) -> Complex64 {
    let mut acc = Complex64::ZERO;
    for row in 0..4 {
        for col in 0..4 {
            acc += d.m[row][col] * r.m[col][row];
        }
    }
    acc
}

/// Batched adjoint gradient of `⟨ψ(θ)|O|ψ(θ)⟩` for every member of
/// `inputs`, through the fused engine with the default thread budget:
/// returns `(values, per-member gradients)`.
///
/// This is the allocating convenience wrapper; training loops should
/// hold an [`AdjointWorkspace`] and call
/// [`adjoint_gradient_batch_with`] (or drive the workspace directly) so
/// steady-state steps stay allocation-free.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch.
pub fn adjoint_gradient_batch(
    circuit: &Circuit,
    params: &[f64],
    inputs: &BatchedState,
    obs: &DiagonalObservable,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), QsimError> {
    let mut ws = AdjointWorkspace::new();
    adjoint_gradient_batch_with(circuit, params, inputs, obs, simulation_threads(), &mut ws)?;
    let grads = (0..inputs.batch_len()).map(|b| ws.grad(b).to_vec()).collect();
    Ok((ws.values().to_vec(), grads))
}

/// [`adjoint_gradient_batch`] into a caller-held [`AdjointWorkspace`]
/// with an explicit thread budget; results are read from the workspace
/// ([`AdjointWorkspace::values`] / [`AdjointWorkspace::grad`]) without
/// further allocation.
///
/// # Errors
///
/// Returns an error if parameter counts or qubit counts mismatch.
pub fn adjoint_gradient_batch_with(
    circuit: &Circuit,
    params: &[f64],
    inputs: &BatchedState,
    obs: &DiagonalObservable,
    threads: usize,
    ws: &mut AdjointWorkspace,
) -> Result<(), QsimError> {
    ws.adjoint_batch(circuit, params, inputs, threads, &mut |_, _| Ok(obs.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
    use crate::gradient::adjoint_gradient;
    use crate::State;

    fn sample_state(n: usize, seed: usize) -> State {
        let data: Vec<f64> = (0..1usize << n)
            .map(|i| ((i + seed * 13) as f64 * 0.37).sin() + 0.25)
            .collect();
        State::from_real_normalized(&data).unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "{what}: component {i} differs: {x} vs {y}"
            );
        }
    }

    /// The acceptance shape: batched adjoint == serial adjoint to 1e-10
    /// on the paper-style ansatz, multiple distinct members, projector
    /// observables mixed in.
    #[test]
    fn batched_matches_serial_on_ansatz() {
        let circuit = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 4,
            num_blocks: 3,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        let params: Vec<f64> = (0..circuit.num_slots())
            .map(|i| (i as f64 * 0.29).sin() * 1.1)
            .collect();
        let members: Vec<State> = (0..5).map(|s| sample_state(4, s)).collect();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(4, 0).unwrap(),
                DiagonalObservable::z(4, 3).unwrap(),
                DiagonalObservable::projector(4, 9).unwrap(),
            ],
            &[0.8, -1.1, 2.3],
        )
        .unwrap();

        let inputs = BatchedState::from_states(&members).unwrap();
        let (values, grads) = adjoint_gradient_batch(&circuit, &params, &inputs, &obs).unwrap();
        for (b, m) in members.iter().enumerate() {
            let (value, grad) = adjoint_gradient(&circuit, &params, m, &obs).unwrap();
            assert!((values[b] - value).abs() < 1e-10, "member {b} value");
            assert_close(&grads[b], &grad, 1e-10, &format!("member {b} gradient"));
        }
    }

    /// Shared slots, swaps, CU3 and a reversed-control densification in
    /// one circuit: every deriv-tracking branch of the fusion builder.
    #[test]
    fn batched_matches_serial_on_adversarial_circuit() {
        let mut c = Circuit::new(3);
        let s0 = c.alloc_slots(3);
        let shared = c.alloc_slot();
        c.h(0).unwrap();
        c.u3_slots(1, s0).unwrap();
        c.ry_slot(0, shared).unwrap();
        c.ry_slot(2, shared).unwrap();
        c.cu3_slots(0, 2, s0).unwrap(); // slots reused across gates
        c.cu3_slots(2, 0, s0).unwrap(); // reversed roles: densifies
        c.swap(1, 2).unwrap();
        c.ry_slot(1, shared).unwrap(); // single after the swap absorbs
        c.cx(0, 1).unwrap();

        let params = [0.7, -0.2, 1.1, 0.45];
        let members: Vec<State> = (0..4).map(|s| sample_state(3, s + 3)).collect();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(3, 1).unwrap(),
                DiagonalObservable::projector(3, 6).unwrap(),
            ],
            &[1.0, -2.0],
        )
        .unwrap();

        let inputs = BatchedState::from_states(&members).unwrap();
        let (values, grads) = adjoint_gradient_batch(&c, &params, &inputs, &obs).unwrap();
        for (b, m) in members.iter().enumerate() {
            let (value, grad) = adjoint_gradient(&c, &params, m, &obs).unwrap();
            assert!((values[b] - value).abs() < 1e-10, "member {b} value");
            assert_close(&grads[b], &grad, 1e-10, &format!("member {b} gradient"));
        }
    }

    #[test]
    fn workspace_reuse_allocates_once() {
        let circuit = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 3,
            num_blocks: 2,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        let obs = DiagonalObservable::z(3, 0).unwrap();
        let inputs = BatchedState::from_states(
            &(0..4).map(|s| sample_state(3, s)).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut ws = AdjointWorkspace::new();
        for step in 0..10 {
            // Parameters change every step, exactly like training.
            let params: Vec<f64> = (0..circuit.num_slots())
                .map(|i| ((i + step) as f64 * 0.31).sin())
                .collect();
            adjoint_gradient_batch_with(&circuit, &params, &inputs, &obs, 1, &mut ws).unwrap();
        }
        // One warm-up allocation, nine pure reuses: the no-allocation
        // steady-state contract.
        assert_eq!(ws.allocations(), 1);
        assert_eq!(ws.reuses(), 9);
        // And one warm-up structure compile, nine pure re-binds: the
        // compile-once contract.
        assert_eq!(ws.recompiles(), 1);
        assert_eq!(ws.rebinds(), 9);
    }

    #[test]
    fn cached_rebind_steps_match_recompiling_steps_bitwise() {
        let circuit = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 4,
            num_blocks: 2,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        let obs = DiagonalObservable::z(4, 1).unwrap();
        let inputs = BatchedState::from_states(
            &(0..3).map(|s| sample_state(4, s)).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut cached = AdjointWorkspace::new();
        for step in 0..5 {
            let params: Vec<f64> = (0..circuit.num_slots())
                .map(|i| ((i * 7 + step) as f64 * 0.23).sin())
                .collect();
            cached
                .adjoint_batch(&circuit, &params, &inputs, 1, &mut |_, _| Ok(obs.clone()))
                .unwrap();
            // Recompile-every-step reference: results must be IDENTICAL,
            // not merely close — bind and compile share one code path.
            let compiled = CompiledCircuit::compile_with_grad(&circuit, &params).unwrap();
            let mut fresh = AdjointWorkspace::new();
            fresh.forward(&compiled, &inputs, 1).unwrap();
            fresh.backward(&compiled, &obs, 1).unwrap();
            for b in 0..inputs.batch_len() {
                assert_eq!(cached.value(b), fresh.value(b), "step {step} member {b}");
                assert_eq!(cached.grad(b), fresh.grad(b), "step {step} member {b}");
            }
        }
        assert_eq!(cached.recompiles(), 1);
        assert_eq!(cached.rebinds(), 4);
    }

    #[test]
    fn changing_the_circuit_recompiles() {
        let obs = DiagonalObservable::z(2, 0).unwrap();
        let inputs = BatchedState::replicate(&State::zero(2), 2);
        let mut ws = AdjointWorkspace::new();
        let mut c1 = Circuit::new(2);
        let s = c1.alloc_slot();
        c1.ry_slot(0, s).unwrap();
        let mut c2 = c1.clone();
        c2.cx(0, 1).unwrap();
        let shared = &mut |_: usize, _: &[f64]| Ok(obs.clone());
        ws.adjoint_batch(&c1, &[0.3], &inputs, 1, shared).unwrap();
        ws.adjoint_batch(&c2, &[0.3], &inputs, 1, shared).unwrap();
        ws.adjoint_batch(&c2, &[0.4], &inputs, 1, shared).unwrap();
        ws.adjoint_batch(&c1, &[0.3], &inputs, 1, shared).unwrap();
        assert_eq!(ws.recompiles(), 3, "c1, c2, then c1 again");
        assert_eq!(ws.rebinds(), 1, "only the repeated c2 call re-binds");
    }

    #[test]
    fn rebind_between_forward_and_backward_is_stale() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        let z = DiagonalObservable::z(1, 0).unwrap();
        let inputs = BatchedState::replicate(&State::zero(1), 1);
        let mut compiled = CompiledCircuit::compile_with_grad(&c, &[0.3]).unwrap();
        let mut ws = AdjointWorkspace::new();
        ws.forward(&compiled, &inputs, 1).unwrap();
        compiled.rebind(&[0.9]).unwrap();
        assert!(matches!(
            ws.backward(&compiled, &z, 1),
            Err(QsimError::StaleBinding { .. })
        ));
        // The pristine pairing still works.
        ws.forward(&compiled, &inputs, 1).unwrap();
        ws.backward(&compiled, &z, 1).unwrap();
        assert!((ws.value(0) - 0.9f64.cos()).abs() < 1e-12);
    }

    #[test]
    fn per_member_observables_differ() {
        let mut c = Circuit::new(2);
        let s = c.alloc_slots(3);
        c.u3_slots(0, s).unwrap();
        c.cx(0, 1).unwrap();
        let params = [0.9, -0.3, 0.6];
        let members: Vec<State> = (0..2).map(|k| sample_state(2, k)).collect();
        let observables = [
            DiagonalObservable::z(2, 0).unwrap(),
            DiagonalObservable::projector(2, 3).unwrap(),
        ];

        let inputs = BatchedState::from_states(&members).unwrap();
        let compiled = CompiledCircuit::compile_with_grad(&c, &params).unwrap();
        let mut ws = AdjointWorkspace::new();
        ws.forward(&compiled, &inputs, 1).unwrap();
        ws.backward_with(&compiled, 1, &mut |b, _| Ok(observables[b].clone()))
            .unwrap();

        for (b, m) in members.iter().enumerate() {
            let (value, grad) = adjoint_gradient(&c, &params, m, &observables[b]).unwrap();
            assert!((ws.value(b) - value).abs() < 1e-12, "member {b}");
            assert_close(ws.grad(b), &grad, 1e-12, &format!("member {b}"));
        }
    }

    #[test]
    fn member_parallel_path_matches_serial_path() {
        // 9 qubits x 70 members = 35840 amplitudes >= PARALLEL_MIN_AMPS
        // with dim 512 <= CIRCUIT_MAJOR_MAX_DIM: forces the member-
        // parallel backward sweep when threads > 1.
        let circuit = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 9,
            num_blocks: 1,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        let params: Vec<f64> = (0..circuit.num_slots())
            .map(|i| (i as f64 * 0.17).cos() * 0.9)
            .collect();
        let members: Vec<State> = (0..70).map(|s| sample_state(9, s)).collect();
        let obs = DiagonalObservable::z(9, 4).unwrap();
        let inputs = BatchedState::from_states(&members).unwrap();

        let mut serial = AdjointWorkspace::new();
        adjoint_gradient_batch_with(&circuit, &params, &inputs, &obs, 1, &mut serial).unwrap();
        let mut parallel = AdjointWorkspace::new();
        adjoint_gradient_batch_with(&circuit, &params, &inputs, &obs, 4, &mut parallel).unwrap();
        for b in 0..members.len() {
            assert!((serial.value(b) - parallel.value(b)).abs() < 1e-12);
            assert_close(serial.grad(b), parallel.grad(b), 1e-12, "parallel sweep");
        }
    }

    #[test]
    fn constant_circuit_yields_empty_gradients() {
        let mut c = Circuit::new(1);
        c.ry_fixed(0, 0.8).unwrap();
        let obs = DiagonalObservable::z(1, 0).unwrap();
        let inputs = BatchedState::replicate(&State::zero(1), 2);
        let (values, grads) = adjoint_gradient_batch(&c, &[], &inputs, &obs).unwrap();
        assert_eq!(grads.len(), 2);
        assert!(grads.iter().all(Vec::is_empty));
        for v in values {
            assert!((v - 0.8f64.cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn validates_mismatches_and_missing_grad_metadata() {
        let mut c = Circuit::new(1);
        let s = c.alloc_slot();
        c.ry_slot(0, s).unwrap();
        let inputs = BatchedState::replicate(&State::zero(1), 1);
        let z2 = DiagonalObservable::z(2, 0).unwrap();
        assert!(adjoint_gradient_batch(&c, &[0.1], &inputs, &z2).is_err());
        assert!(adjoint_gradient_batch(&c, &[], &inputs, &z2).is_err());

        let z1 = DiagonalObservable::z(1, 0).unwrap();
        let mut ws = AdjointWorkspace::new();
        // Backward without forward is refused.
        let with_grad = CompiledCircuit::compile_with_grad(&c, &[0.1]).unwrap();
        assert!(matches!(
            ws.backward(&with_grad, &z1, 1),
            Err(QsimError::Unsupported { .. })
        ));
        // Backward over a gradient-less compilation is refused.
        let without = CompiledCircuit::compile(&c, &[0.1]).unwrap();
        ws.forward(&without, &inputs, 1).unwrap();
        assert!(matches!(
            ws.backward(&without, &z1, 1),
            Err(QsimError::Unsupported { .. })
        ));
    }
}
