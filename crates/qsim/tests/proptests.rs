//! Property-based tests for the quantum simulator: unitarity, gradient
//! agreement between independent methods, and encoding invariants.

use proptest::prelude::*;
use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::encoding::{encode_batched, encode_grouped};
use qugeo_qsim::{
    adjoint_gradient, finite_difference_gradient, parameter_shift_gradient, DiagonalObservable,
    State,
};

fn angles(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0f64..3.0, n)
}

fn nonzero_data(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len).prop_filter("need nonzero", |v| {
        v.iter().any(|x| x.abs() > 1e-3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ansatz_preserves_norm(params in angles(36), seed_data in nonzero_data(8)) {
        // 2 blocks on 3 qubits (ring): 2 * 3 * (3 + 3) = 36 params.
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        prop_assert_eq!(c.num_slots(), 36);
        let input = State::from_real_normalized(&seed_data).unwrap();
        let out = c.run(&input, &params).unwrap();
        prop_assert!((out.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjoint_matches_finite_difference(params in angles(24)) {
        // 1 block on 4 qubits: 24 params.
        let cfg = AnsatzConfig { num_qubits: 4, num_blocks: 1, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&[1.0; 16]).unwrap();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(4, 0).unwrap(),
                DiagonalObservable::z(4, 3).unwrap(),
            ],
            &[1.0, -0.5],
        ).unwrap();
        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let fd = finite_difference_gradient(&c, &params, &input, &obs, 1e-5).unwrap();
        for (a, f) in adj.iter().zip(&fd) {
            prop_assert!((a - f).abs() < 1e-5, "adjoint {} vs fd {}", a, f);
        }
    }

    #[test]
    fn adjoint_matches_parameter_shift(params in angles(12)) {
        // 1 block on 2 qubits: 12 params, exercising CU3 four-term rule.
        let cfg = AnsatzConfig { num_qubits: 2, num_blocks: 1, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&[0.5, -1.0, 2.0, 0.25]).unwrap();
        let obs = DiagonalObservable::z(2, 1).unwrap();
        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let shift = parameter_shift_gradient(&c, &params, &input, &obs).unwrap();
        for (a, s) in adj.iter().zip(&shift) {
            prop_assert!((a - s).abs() < 1e-8, "adjoint {} vs shift {}", a, s);
        }
    }

    #[test]
    fn z_expectations_bounded(params in angles(36), data in nonzero_data(8)) {
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let out = c.run(&input, &params).unwrap();
        for z in out.z_expectations() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&z));
        }
    }

    #[test]
    fn probabilities_sum_to_one(params in angles(36), data in nonzero_data(8)) {
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let out = c.run(&input, &params).unwrap();
        let total: f64 = out.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_encoding_marginals_match_group_data(
        g0 in nonzero_data(4),
        g1 in nonzero_data(4),
    ) {
        let mut data = g0.clone();
        data.extend_from_slice(&g1);
        let s = encode_grouped(&data, 2).unwrap();
        prop_assert_eq!(s.num_qubits(), 4);
        // Marginal over the low 2 qubits must equal group 0's own
        // probability distribution (product state ⇒ exact factorisation).
        let marg = s.marginal_low(2);
        let expect = State::from_real_normalized(&g0).unwrap().probabilities();
        for (m, e) in marg.iter().zip(&expect) {
            prop_assert!((m - e).abs() < 1e-9);
        }
    }

    #[test]
    fn qubatch_per_sample_decode_equals_individual_run(
        s0 in nonzero_data(4),
        s1 in nonzero_data(4),
        params in angles(12),
    ) {
        // Batched execution of a 2-qubit ansatz over two samples must give
        // each sample the same output it gets when run alone.
        let cfg = AnsatzConfig { num_qubits: 2, num_blocks: 1, entangle: EntangleOrder::Ring };
        let circuit = u3_cu3_ansatz(cfg).unwrap();

        let batch = encode_batched(&[s0.clone(), s1.clone()]).unwrap();
        let wide = circuit.widened(batch.batch_qubits());
        let processed = wide.run(batch.state(), &params).unwrap();

        for (i, sample) in [&s0, &s1].into_iter().enumerate() {
            let from_batch = batch.sample_state(&processed, i).unwrap();
            let alone = circuit
                .run(&State::from_real_normalized(sample).unwrap(), &params)
                .unwrap();
            for (a, b) in from_batch.amplitudes().iter().zip(alone.amplitudes()) {
                prop_assert!((*a - *b).norm() < 1e-9, "sample {} diverged", i);
            }
        }
    }
}
