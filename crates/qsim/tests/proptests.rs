//! Property-based tests for the quantum simulator: unitarity, gradient
//! agreement between independent methods, and encoding invariants.

use proptest::prelude::*;
use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::encoding::{encode_batched, encode_grouped};
use qugeo_qsim::{
    adjoint_gradient, adjoint_gradient_batch, finite_difference_gradient,
    parameter_shift_gradient, parameter_shift_gradient_batched, BatchedState, Circuit,
    CompiledCircuit, DiagonalObservable, Gate1, NaiveBackend, ParamSource, QuantumBackend,
    ShotSamplerBackend, State, StatevectorBackend,
};

/// Builds an arbitrary 4-qubit circuit from raw draw tuples:
/// `(kind, qubit, other, angle)`. Out-of-range structure is folded back
/// into range so every draw yields a valid circuit.
fn arbitrary_circuit(draws: &[(usize, usize, usize, f64)]) -> Circuit {
    const N: usize = 4;
    let mut c = Circuit::new(N);
    for &(kind, q, other, angle) in draws {
        let q = q % N;
        let other = if other % N == q { (q + 1) % N } else { other % N };
        match kind % 7 {
            0 => {
                c.push_single(Gate1::U3(
                    ParamSource::Fixed(angle),
                    ParamSource::Fixed(angle * 0.7),
                    ParamSource::Fixed(-angle * 1.3),
                ), q)
                .unwrap();
            }
            1 => {
                c.push_single(Gate1::Ry(ParamSource::Fixed(angle)), q).unwrap();
            }
            2 => {
                c.h(q).unwrap();
            }
            3 => {
                c.push_controlled(Gate1::Rz(ParamSource::Fixed(angle)), q, other)
                    .unwrap();
            }
            4 => {
                c.push_controlled(Gate1::U3(
                    ParamSource::Fixed(angle),
                    ParamSource::Fixed(angle + 0.4),
                    ParamSource::Fixed(angle - 0.9),
                ), q, other)
                .unwrap();
            }
            5 => {
                c.swap(q, other).unwrap();
            }
            _ => {
                c.x(q).unwrap();
            }
        }
    }
    c
}

/// Builds an arbitrary 3-qubit circuit with *trainable* slots from raw
/// draw tuples: slots come from a shared pool of 4 so shared-slot
/// accumulation is exercised, and the structure mixes slotted singles,
/// slotted controlled gates, constants and swaps.
fn arbitrary_trainable_circuit(draws: &[(usize, usize, usize, usize)]) -> Circuit {
    const N: usize = 3;
    const SLOTS: usize = 4;
    let mut c = Circuit::new(N);
    c.alloc_slots(SLOTS);
    for &(kind, q, other, slot) in draws {
        let q = q % N;
        let other = if other % N == q { (q + 1) % N } else { other % N };
        let slot = slot % SLOTS;
        match kind % 6 {
            0 => {
                c.push_single(Gate1::Ry(ParamSource::Slot(slot)), q).unwrap();
            }
            1 => {
                c.push_single(
                    Gate1::U3(
                        ParamSource::Slot(slot),
                        ParamSource::Slot((slot + 1) % SLOTS),
                        ParamSource::Slot((slot + 2) % SLOTS),
                    ),
                    q,
                )
                .unwrap();
            }
            2 => {
                c.push_controlled(Gate1::Rz(ParamSource::Slot(slot)), q, other)
                    .unwrap();
            }
            3 => {
                c.push_controlled(
                    Gate1::U3(
                        ParamSource::Slot(slot),
                        ParamSource::Fixed(0.4),
                        ParamSource::Slot((slot + 1) % SLOTS),
                    ),
                    q,
                    other,
                )
                .unwrap();
            }
            4 => {
                c.h(q).unwrap();
            }
            _ => {
                c.swap(q, other).unwrap();
            }
        }
    }
    c
}

fn angles(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0f64..3.0, n)
}

fn nonzero_data(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len).prop_filter("need nonzero", |v| {
        v.iter().any(|x| x.abs() > 1e-3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ansatz_preserves_norm(params in angles(36), seed_data in nonzero_data(8)) {
        // 2 blocks on 3 qubits (ring): 2 * 3 * (3 + 3) = 36 params.
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        prop_assert_eq!(c.num_slots(), 36);
        let input = State::from_real_normalized(&seed_data).unwrap();
        let out = c.run(&input, &params).unwrap();
        prop_assert!((out.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjoint_matches_finite_difference(params in angles(24)) {
        // 1 block on 4 qubits: 24 params.
        let cfg = AnsatzConfig { num_qubits: 4, num_blocks: 1, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&[1.0; 16]).unwrap();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(4, 0).unwrap(),
                DiagonalObservable::z(4, 3).unwrap(),
            ],
            &[1.0, -0.5],
        ).unwrap();
        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let fd = finite_difference_gradient(&c, &params, &input, &obs, 1e-5).unwrap();
        for (a, f) in adj.iter().zip(&fd) {
            prop_assert!((a - f).abs() < 1e-5, "adjoint {} vs fd {}", a, f);
        }
    }

    #[test]
    fn adjoint_matches_parameter_shift(params in angles(12)) {
        // 1 block on 2 qubits: 12 params, exercising CU3 four-term rule.
        let cfg = AnsatzConfig { num_qubits: 2, num_blocks: 1, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&[0.5, -1.0, 2.0, 0.25]).unwrap();
        let obs = DiagonalObservable::z(2, 1).unwrap();
        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let shift = parameter_shift_gradient(&c, &params, &input, &obs).unwrap();
        for (a, s) in adj.iter().zip(&shift) {
            prop_assert!((a - s).abs() < 1e-8, "adjoint {} vs shift {}", a, s);
        }
    }

    #[test]
    fn z_expectations_bounded(params in angles(36), data in nonzero_data(8)) {
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let out = c.run(&input, &params).unwrap();
        for z in out.z_expectations() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&z));
        }
    }

    #[test]
    fn probabilities_sum_to_one(params in angles(36), data in nonzero_data(8)) {
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let out = c.run(&input, &params).unwrap();
        let total: f64 = out.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_encoding_marginals_match_group_data(
        g0 in nonzero_data(4),
        g1 in nonzero_data(4),
    ) {
        let mut data = g0.clone();
        data.extend_from_slice(&g1);
        let s = encode_grouped(&data, 2).unwrap();
        prop_assert_eq!(s.num_qubits(), 4);
        // Marginal over the low 2 qubits must equal group 0's own
        // probability distribution (product state ⇒ exact factorisation).
        let marg = s.marginal_low(2);
        let expect = State::from_real_normalized(&g0).unwrap().probabilities();
        for (m, e) in marg.iter().zip(&expect) {
            prop_assert!((m - e).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_compilation_preserves_semantics(
        draws in prop::collection::vec(
            (0usize..7, 0usize..4, 0usize..4, -3.0f64..3.0),
            1..48,
        ),
        data in nonzero_data(16),
    ) {
        // A compiled (gate-fused, commutation-aware) circuit must produce
        // the same final state as naive gate-by-gate execution, for any
        // gate sequence.
        let circuit = arbitrary_circuit(&draws);
        let input = State::from_real_normalized(&data).unwrap();
        let unfused = circuit.run(&input, &[]).unwrap();
        let compiled = CompiledCircuit::compile(&circuit, &[]).unwrap();
        prop_assert!(compiled.num_fused_ops() <= circuit.num_ops());
        let fused = compiled.run(&input).unwrap();
        for (i, (a, b)) in fused.amplitudes().iter().zip(unfused.amplitudes()).enumerate() {
            prop_assert!((*a - *b).norm() < 1e-10, "amplitude {} diverged", i);
        }
    }

    #[test]
    fn batched_state_matches_per_sample_simulation(
        draws in prop::collection::vec(
            (0usize..7, 0usize..4, 0usize..4, -3.0f64..3.0),
            1..24,
        ),
        s0 in nonzero_data(16),
        s1 in nonzero_data(16),
        s2 in nonzero_data(16),
    ) {
        let circuit = arbitrary_circuit(&draws);
        let compiled = CompiledCircuit::compile(&circuit, &[]).unwrap();
        let members = [s0, s1, s2].map(|d| State::from_real_normalized(&d).unwrap());

        let mut batch = BatchedState::from_states(&members).unwrap();
        batch.apply_compiled(&compiled).unwrap();

        for (b, m) in members.iter().enumerate() {
            let solo = circuit.run(m, &[]).unwrap();
            for (x, y) in batch.member_amps(b).unwrap().iter().zip(solo.amplitudes()) {
                prop_assert!((*x - *y).norm() < 1e-10, "member {} diverged", b);
            }
        }
    }

    #[test]
    fn batched_adjoint_matches_finite_difference(params in angles(24), data in nonzero_data(16)) {
        // The fused batched engine against the assumption-free oracle:
        // 1 block on 4 qubits, 24 params, a random member state.
        let cfg = AnsatzConfig { num_qubits: 4, num_blocks: 1, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(4, 1).unwrap(),
                DiagonalObservable::projector(4, 5).unwrap(),
            ],
            &[1.0, -2.0],
        ).unwrap();
        let inputs = BatchedState::replicate(&input, 2);
        let (_, grads) = adjoint_gradient_batch(&c, &params, &inputs, &obs).unwrap();
        let fd = finite_difference_gradient(&c, &params, &input, &obs, 1e-5).unwrap();
        for grad in &grads {
            for (a, f) in grad.iter().zip(&fd) {
                prop_assert!((a - f).abs() < 1e-5, "batched adjoint {} vs fd {}", a, f);
            }
        }
    }

    #[test]
    fn batched_adjoint_matches_serial_on_arbitrary_circuits(
        draws in prop::collection::vec(
            (0usize..6, 0usize..3, 0usize..3, 0usize..4),
            1..32,
        ),
        params in angles(4),
        s0 in nonzero_data(8),
        s1 in nonzero_data(8),
        s2 in nonzero_data(8),
    ) {
        // The acceptance differential: fused batched adjoint == serial
        // unfused adjoint to 1e-10 on arbitrary trainable circuits with
        // shared slots, swaps, and controlled gates, across a
        // multi-member batch.
        let circuit = arbitrary_trainable_circuit(&draws);
        let members = [s0, s1, s2].map(|d| State::from_real_normalized(&d).unwrap());
        let obs = DiagonalObservable::weighted_sum(
            &[
                DiagonalObservable::z(3, 2).unwrap(),
                DiagonalObservable::projector(3, 4).unwrap(),
            ],
            &[0.7, 1.9],
        ).unwrap();
        let inputs = BatchedState::from_states(&members).unwrap();
        let (values, grads) = adjoint_gradient_batch(&circuit, &params, &inputs, &obs).unwrap();
        for (b, m) in members.iter().enumerate() {
            let (value, grad) = adjoint_gradient(&circuit, &params, m, &obs).unwrap();
            prop_assert!((values[b] - value).abs() < 1e-10, "member {} value", b);
            for (x, y) in grads[b].iter().zip(&grad) {
                prop_assert!((x - y).abs() < 1e-10, "member {}: {} vs {}", b, x, y);
            }
        }
    }

    #[test]
    fn batched_parameter_shift_matches_adjoint(params in angles(12)) {
        let cfg = AnsatzConfig { num_qubits: 2, num_blocks: 1, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let input = State::from_real_normalized(&[0.5, -1.0, 2.0, 0.25]).unwrap();
        let obs = DiagonalObservable::z(2, 1).unwrap();
        let (_, adj) = adjoint_gradient(&c, &params, &input, &obs).unwrap();
        let batched = parameter_shift_gradient_batched(&c, &params, &input, &obs).unwrap();
        for (a, s) in adj.iter().zip(&batched) {
            prop_assert!((a - s).abs() < 1e-8, "adjoint {} vs batched shift {}", a, s);
        }
    }

    #[test]
    fn backends_agree_on_random_circuits(
        draws in prop::collection::vec(
            (0usize..7, 0usize..4, 0usize..4, -3.0f64..3.0),
            1..40,
        ),
        data in nonzero_data(16),
        obs_qubit in 0usize..4,
    ) {
        // Differential test: the production statevector backend and the
        // reference gate-by-gate backend must produce the same evolved
        // states and expectations for arbitrary circuits.
        let circuit = arbitrary_circuit(&draws);
        let compiled = CompiledCircuit::compile(&circuit, &[]).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let members = [input.clone(), input];
        let obs = DiagonalObservable::z(4, obs_qubit).unwrap();

        let fast = StatevectorBackend::default();
        let slow = NaiveBackend::default();
        let mut fast_batch = BatchedState::from_states(&members).unwrap();
        let mut slow_batch = fast_batch.clone();
        fast.run_batch(&compiled, &mut fast_batch).unwrap();
        slow.run_batch(&compiled, &mut slow_batch).unwrap();

        for b in 0..2 {
            let xs = fast_batch.member_amps(b).unwrap();
            let ys = slow_batch.member_amps(b).unwrap();
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                prop_assert!((*x - *y).norm() < 1e-10, "member {} amp {} diverged", b, i);
            }
        }
        let ef = fast.expectations(&fast_batch, &obs).unwrap();
        let es = slow.expectations(&slow_batch, &obs).unwrap();
        for (a, b) in ef.iter().zip(&es) {
            prop_assert!((a - b).abs() < 1e-10, "expectation diverged: {} vs {}", a, b);
        }
    }

    #[test]
    fn shot_sampler_converges_to_statevector_expectation(
        params in angles(36),
        data in nonzero_data(8),
        seed in 0u64..1000,
    ) {
        // The finite-shot estimate must approach the exact expectation as
        // shots grow, within ~3σ of the binomial sampling error (σ² =
        // Var[O]/shots, with Var[O] computed from the exact distribution).
        let cfg = AnsatzConfig { num_qubits: 3, num_blocks: 2, entangle: EntangleOrder::Ring };
        let c = u3_cu3_ansatz(cfg).unwrap();
        let compiled = CompiledCircuit::compile(&c, &params).unwrap();
        let input = State::from_real_normalized(&data).unwrap();
        let obs = DiagonalObservable::z(3, 1).unwrap();

        let mut batch = BatchedState::replicate(&input, 1);
        StatevectorBackend::default().run_batch(&compiled, &mut batch).unwrap();
        let exact = batch.expectations(&obs).unwrap()[0];
        let probs = batch.member_probabilities(0).unwrap();
        let second_moment: f64 = probs
            .iter()
            .zip(obs.diagonal())
            .map(|(p, d)| p * d * d)
            .sum();
        let variance = (second_moment - exact * exact).max(0.0);

        let shots = 100_000usize;
        let sampler = ShotSamplerBackend::new(shots, seed);
        let estimate = sampler.expectations(&batch, &obs).unwrap()[0];
        let sigma = (variance / shots as f64).sqrt();
        // 3σ plus a small cushion for the σ = 0 (deterministic) corner.
        prop_assert!(
            (estimate - exact).abs() <= 3.0 * sigma + 1e-3,
            "estimate {} vs exact {} (3σ = {})", estimate, exact, 3.0 * sigma
        );
    }

    #[test]
    fn qubatch_per_sample_decode_equals_individual_run(
        s0 in nonzero_data(4),
        s1 in nonzero_data(4),
        params in angles(12),
    ) {
        // Batched execution of a 2-qubit ansatz over two samples must give
        // each sample the same output it gets when run alone.
        let cfg = AnsatzConfig { num_qubits: 2, num_blocks: 1, entangle: EntangleOrder::Ring };
        let circuit = u3_cu3_ansatz(cfg).unwrap();

        let batch = encode_batched(&[s0.clone(), s1.clone()]).unwrap();
        let wide = circuit.widened(batch.batch_qubits());
        let processed = wide.run(batch.state(), &params).unwrap();

        for (i, sample) in [&s0, &s1].into_iter().enumerate() {
            let from_batch = batch.sample_state(&processed, i).unwrap();
            let alone = circuit
                .run(&State::from_real_normalized(sample).unwrap(), &params)
                .unwrap();
            for (a, b) in from_batch.amplitudes().iter().zip(alone.amplitudes()) {
                prop_assert!((*a - *b).norm() < 1e-9, "sample {} diverged", i);
            }
        }
    }
}
