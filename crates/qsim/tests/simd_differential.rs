//! Full-circuit differential suite for the SIMD kernel layer.
//!
//! The in-module tests in `kernels::simd` pin each AVX2 body to its
//! scalar tier; this suite pins the *assembled engine* — forward
//! execution, batched sweeps, reductions and adjoint gradients — against
//! independent references through the public API:
//!
//! * arbitrary circuits on the default backend vs [`NaiveBackend`]
//!   (gate-by-gate, kernel-free reference) at 1e-10,
//! * batched adjoint gradients vs the serial unfused
//!   [`adjoint_gradient`] at 1e-10, across odd and even batch sizes,
//! * the norm/probability/expectation reductions vs inline scalar sums
//!   at 1e-12,
//! * an explicit scalar-vs-SIMD A/B via [`set_simd_enabled`] at 1e-12.
//!
//! Everything here also runs under `QUGEO_SIMD=off` (the verify gate does
//! exactly that), where it degenerates to scalar-vs-reference.

use proptest::prelude::*;
use qugeo_qsim::ansatz::{u3_cu3_ansatz, AnsatzConfig, EntangleOrder};
use qugeo_qsim::{
    adjoint_gradient, adjoint_gradient_batch, set_simd_enabled, BatchedState, Circuit,
    DiagonalObservable, Gate1, NaiveBackend, ParamSource, QuantumBackend, State,
    StatevectorBackend,
};

/// Builds an arbitrary 4-qubit circuit from raw draw tuples (same
/// folding scheme as the crate's main proptest suite).
fn arbitrary_circuit(draws: &[(usize, usize, usize, f64)]) -> Circuit {
    const N: usize = 4;
    let mut c = Circuit::new(N);
    for &(kind, q, other, angle) in draws {
        let q = q % N;
        let other = if other % N == q { (q + 1) % N } else { other % N };
        match kind % 7 {
            0 => {
                c.push_single(
                    Gate1::U3(
                        ParamSource::Fixed(angle),
                        ParamSource::Fixed(angle * 0.7),
                        ParamSource::Fixed(-angle * 1.3),
                    ),
                    q,
                )
                .unwrap();
            }
            1 => {
                c.push_single(Gate1::Ry(ParamSource::Fixed(angle)), q).unwrap();
            }
            2 => {
                c.h(q).unwrap();
            }
            3 => {
                c.push_controlled(Gate1::Rz(ParamSource::Fixed(angle)), q, other)
                    .unwrap();
            }
            4 => {
                c.push_controlled(
                    Gate1::U3(
                        ParamSource::Fixed(angle),
                        ParamSource::Fixed(angle + 0.4),
                        ParamSource::Fixed(angle - 0.9),
                    ),
                    q,
                    other,
                )
                .unwrap();
            }
            5 => {
                c.swap(q, other).unwrap();
            }
            _ => {
                c.x(q).unwrap();
            }
        }
    }
    c
}

/// A batch of `b` random (normalized) member states.
fn sample_batch(num_qubits: usize, b: usize, seed: u64) -> BatchedState {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = 1usize << num_qubits;
    let states: Vec<State> = (0..b)
        .map(|_| {
            let data: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.05..1.0)).collect();
            State::from_real_normalized(&data).unwrap()
        })
        .collect();
    BatchedState::from_states(&states).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The default backend (SIMD when available) agrees with the
    /// gate-by-gate [`NaiveBackend`] on arbitrary circuits and batch
    /// sizes — including odd batches, whose remainder members leave the
    /// tile path for the per-member path.
    #[test]
    fn default_backend_matches_naive_on_arbitrary_circuits(
        draws in prop::collection::vec(
            (0usize..7, 0usize..4, 0usize..4, -3.0f64..3.0), 4..24),
        batch in 1usize..8,
        seed in 0u64..1 << 32,
    ) {
        let circuit = arbitrary_circuit(&draws);
        let compiled = circuit.compile(&[]).unwrap();
        let fast = &StatevectorBackend::default() as &dyn QuantumBackend;
        let slow = &NaiveBackend::default() as &dyn QuantumBackend;
        let mut via_fast = sample_batch(4, batch, seed);
        let mut via_slow = via_fast.clone();
        fast.run_batch(&compiled, &mut via_fast).unwrap();
        slow.run_batch(&compiled, &mut via_slow).unwrap();
        for (i, (a, b)) in via_fast.amps().iter().zip(via_slow.amps()).enumerate() {
            prop_assert!((*a - *b).norm() < 1e-10, "amplitude {}: {:?} vs {:?}", i, a, b);
        }
    }

    /// Batched (tile + interleaved) adjoint gradients agree with the
    /// serial unfused reference per member.
    #[test]
    fn batched_adjoint_matches_serial_reference(
        batch in 1usize..8,
        seed in 0u64..1 << 32,
        scale in 0.2f64..1.0,
    ) {
        let circuit = u3_cu3_ansatz(AnsatzConfig {
            num_qubits: 4,
            num_blocks: 3,
            entangle: EntangleOrder::Ring,
        })
        .unwrap();
        let params: Vec<f64> =
            (0..circuit.num_slots()).map(|i| scale * (0.3 + 0.11 * i as f64).sin()).collect();
        let obs = DiagonalObservable::z(4, 1).unwrap();
        let inputs = sample_batch(4, batch, seed);
        let (values, grads) = adjoint_gradient_batch(&circuit, &params, &inputs, &obs).unwrap();
        for b in 0..batch {
            let member = inputs.member(b).unwrap();
            let (v_ref, g_ref) = adjoint_gradient(&circuit, &params, &member, &obs).unwrap();
            prop_assert!((values[b] - v_ref).abs() < 1e-10, "member {} value", b);
            for (s, (g, r)) in grads[b].iter().zip(&g_ref).enumerate() {
                prop_assert!((g - r).abs() < 1e-10, "member {} slot {}: {} vs {}", b, s, g, r);
            }
        }
    }

    /// The vectorized norm/probability/expectation reductions agree with
    /// plain scalar sums over the same amplitudes at 1e-12.
    #[test]
    fn reductions_match_scalar_sums(
        seed in 0u64..1 << 32,
        weights in prop::collection::vec(-2.0f64..2.0, 32),
    ) {
        let state = sample_batch(5, 1, seed).member(0).unwrap();
        let amps = state.amplitudes();
        let norm_ref: f64 = amps.iter().map(|a| a.re * a.re + a.im * a.im).sum::<f64>().sqrt();
        prop_assert!((state.norm() - norm_ref).abs() < 1e-12);
        let probs = state.probabilities();
        for (p, a) in probs.iter().zip(amps) {
            prop_assert!((p - (a.re * a.re + a.im * a.im)).abs() < 1e-12);
        }
        let obs = DiagonalObservable::from_diagonal(weights.clone()).unwrap();
        let exp_ref: f64 =
            amps.iter().zip(&weights).map(|(a, w)| (a.re * a.re + a.im * a.im) * w).sum();
        prop_assert!((obs.expectation(&state) - exp_ref).abs() < 1e-12);
    }
}

/// In-process A/B: the same forward + gradient computation with the SIMD
/// tier pinned off and back on must agree at 1e-12. Runs as a single test
/// so the global tier switch has one owner; the other tests in this
/// binary are tolerance-based against references and are unaffected by a
/// concurrent tier flip.
#[test]
fn scalar_and_simd_tiers_agree() {
    let circuit = u3_cu3_ansatz(AnsatzConfig {
        num_qubits: 5,
        num_blocks: 3,
        entangle: EntangleOrder::Ring,
    })
    .unwrap();
    let params: Vec<f64> = (0..circuit.num_slots()).map(|i| (0.2 + 0.07 * i as f64).cos()).collect();
    let obs = DiagonalObservable::z(5, 2).unwrap();
    let inputs = sample_batch(5, 6, 0xA5A5);

    let run = || adjoint_gradient_batch(&circuit, &params, &inputs, &obs).unwrap();
    set_simd_enabled(false);
    let (scalar_values, scalar_grads) = run();
    set_simd_enabled(true);
    let (simd_values, simd_grads) = run();

    for (b, (s, v)) in scalar_values.iter().zip(&simd_values).enumerate() {
        assert!((s - v).abs() < 1e-12, "member {b} value: {s} vs {v}");
    }
    for (b, (sg, vg)) in scalar_grads.iter().zip(&simd_grads).enumerate() {
        for (slot, (s, v)) in sg.iter().zip(vg).enumerate() {
            assert!((s - v).abs() < 1e-12, "member {b} slot {slot}: {s} vs {v}");
        }
    }
}
