//! Velocity-map decoders: how measurement outcomes become predictions.
//!
//! Both decoders of the paper consume the probability distribution of the
//! circuit's output state over the data qubits:
//!
//! * [`Decoder::PixelWise`] (`Q-M-PX`) — the 64 velocities of the 8×8 map
//!   are "decoded as the magnitude of 64 amplitudes": prediction
//!   `D_j = side · |a_j|` for the first `side²` basis states of the
//!   register. Reading a *subspace* (rather than a marginal) keeps the
//!   prediction norm learnable — the circuit can steer probability mass
//!   into or out of the readout subspace. Trained with the paper's Eq. 2
//!   (pixel-wise squared error).
//! * [`Decoder::LayerWise`] (`Q-M-LY`) — one velocity per map row,
//!   decoded from per-qubit Pauli-Z expectations via
//!   `D'_i = (⟨Z_i⟩ + 1)/2`, exploiting the flat-layer prior. Trained
//!   with Eq. 3 (each row velocity compared against every pixel of its
//!   row).
//!
//! Everything a decoder computes is a function of basis-state
//! probabilities, so the loss gradient with respect to each probability
//! ([`Decoder::loss_and_prob_grad`]) is exactly the diagonal of the
//! effective observable that `qugeo_qsim`'s adjoint differentiation
//! consumes — one backward pass trains either decoder.

use qugeo_tensor::Array2;

use crate::QuGeoError;

/// Guard against division by a vanishing probability when
/// differentiating `√p`.
const PROB_FLOOR: f64 = 1e-12;

/// A velocity-map decoder (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoder {
    /// Pixel-wise decoding of a `side × side` map from basis-state
    /// magnitudes (`Q-M-PX`).
    PixelWise {
        /// Velocity-map side length (8 in the paper).
        side: usize,
    },
    /// Layer-wise decoding of one velocity per row from per-qubit ⟨Z⟩
    /// (`Q-M-LY`).
    LayerWise {
        /// Number of rows = number of qubits read (8 in the paper).
        rows: usize,
    },
}

impl Decoder {
    /// The paper's pixel-wise decoder over 8×8 maps.
    pub fn paper_pixel_wise() -> Self {
        Self::PixelWise { side: 8 }
    }

    /// The paper's layer-wise decoder over 8 rows.
    pub fn paper_layer_wise() -> Self {
        Self::LayerWise { rows: 8 }
    }

    /// Side length of the decoded (normalised) velocity map.
    pub fn map_side(&self) -> usize {
        match *self {
            Self::PixelWise { side } => side,
            Self::LayerWise { rows } => rows,
        }
    }

    /// Minimum number of data qubits the decoder needs.
    pub fn min_qubits(&self) -> usize {
        match *self {
            Self::PixelWise { side } => {
                let cells = side * side;
                cells.next_power_of_two().trailing_zeros() as usize
            }
            Self::LayerWise { rows } => rows,
        }
    }

    /// Validates the decoder against a data-qubit count.
    ///
    /// # Errors
    ///
    /// Returns [`QuGeoError::Config`] if the decoder needs more qubits
    /// than available, a pixel side that is not a power of two, or a
    /// degenerate size.
    pub fn validate(&self, data_qubits: usize) -> Result<(), QuGeoError> {
        match *self {
            Self::PixelWise { side } => {
                if side == 0 || !side.is_power_of_two() {
                    return Err(QuGeoError::Config {
                        reason: format!("pixel decoder side {side} must be a power of two"),
                    });
                }
            }
            Self::LayerWise { rows } => {
                if rows == 0 {
                    return Err(QuGeoError::Config {
                        reason: "layer decoder needs at least one row".into(),
                    });
                }
            }
        }
        if self.min_qubits() > data_qubits {
            return Err(QuGeoError::Config {
                reason: format!(
                    "decoder needs {} qubits, only {data_qubits} available",
                    self.min_qubits()
                ),
            });
        }
        Ok(())
    }

    /// Decodes a normalised velocity map (values nominally in `[0, 1]`)
    /// from the probability distribution `probs` over the data qubits.
    ///
    /// # Errors
    ///
    /// Returns [`QuGeoError::Config`] if `probs` is not a power-of-two
    /// length compatible with the decoder.
    pub fn decode(&self, probs: &[f64]) -> Result<Array2, QuGeoError> {
        self.check_probs(probs)?;
        match *self {
            Self::PixelWise { side } => Ok(Array2::from_fn(side, side, |r, c| {
                probs[r * side + c].max(0.0).sqrt() * side as f64
            })),
            Self::LayerWise { rows } => {
                let z = self.z_expectations(probs, rows);
                Ok(Array2::from_fn(rows, rows, |r, _| (z[r] + 1.0) / 2.0))
            }
        }
    }

    /// Computes the training loss against a normalised target map and
    /// the gradient of that loss with respect to every basis-state
    /// probability — the diagonal of the effective observable for
    /// adjoint differentiation.
    ///
    /// The loss is the mean over the `side × side` map of squared error;
    /// for the layer decoder the row prediction is compared against all
    /// pixels of the row (the paper's Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`QuGeoError::Config`] for incompatible probability or
    /// target shapes.
    pub fn loss_and_prob_grad(
        &self,
        probs: &[f64],
        target: &Array2,
    ) -> Result<(f64, Vec<f64>), QuGeoError> {
        self.check_probs(probs)?;
        let side = self.map_side();
        if target.shape() != (side, side) {
            return Err(QuGeoError::Config {
                reason: format!(
                    "target shape {:?} != decoder map {side}x{side}",
                    target.shape()
                ),
            });
        }
        let n_pixels = (side * side) as f64;

        match *self {
            Self::PixelWise { side } => {
                let cells = side * side;
                let mut loss = 0.0;
                // dL/dp_j only for the readout subspace (first `cells`
                // basis states); mass elsewhere is unread and carries no
                // direct gradient.
                let mut grad = vec![0.0; probs.len()];
                for (j, g) in grad.iter_mut().enumerate().take(cells) {
                    let p = probs[j].max(0.0);
                    let pred = p.sqrt() * side as f64;
                    let t = target[(j / side, j % side)];
                    let d = pred - t;
                    loss += d * d;
                    // dpred/dp = side / (2 sqrt(p)).
                    let dpred_dp = side as f64 / (2.0 * p.max(PROB_FLOOR).sqrt());
                    *g = 2.0 * d / n_pixels * dpred_dp;
                }
                Ok((loss / n_pixels, grad))
            }
            Self::LayerWise { rows } => {
                let z = self.z_expectations(probs, rows);
                let mut loss = 0.0;
                // dL/dz_q for each read qubit.
                let mut grad_z = vec![0.0; rows];
                for (r, &zr) in z.iter().enumerate() {
                    let pred = (zr + 1.0) / 2.0;
                    let mut dsum = 0.0;
                    for c in 0..rows {
                        let d = pred - target[(r, c)];
                        loss += d * d;
                        dsum += 2.0 * d / n_pixels;
                    }
                    grad_z[r] = dsum * 0.5; // dpred/dz = 1/2
                }
                // z_q = Σ_i sign_q(i) p_i  ⇒  dz_q/dp_i = sign_q(i).
                let grad = (0..probs.len())
                    .map(|i| {
                        let mut acc = 0.0;
                        for (q, &gz) in grad_z.iter().enumerate() {
                            let sign = if i & (1 << q) == 0 { 1.0 } else { -1.0 };
                            acc += gz * sign;
                        }
                        acc
                    })
                    .collect();
                Ok((loss / n_pixels, grad))
            }
        }
    }

    fn check_probs(&self, probs: &[f64]) -> Result<(), QuGeoError> {
        if probs.is_empty() || !probs.len().is_power_of_two() {
            return Err(QuGeoError::Config {
                reason: format!("probability vector length {} not a power of two", probs.len()),
            });
        }
        let qubits = probs.len().trailing_zeros() as usize;
        self.validate(qubits)
    }

    /// ⟨Z⟩ of the low `rows` qubits from a probability vector.
    fn z_expectations(&self, probs: &[f64], rows: usize) -> Vec<f64> {
        (0..rows)
            .map(|q| {
                let mask = 1usize << q;
                probs
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| if i & mask == 0 { p } else { -p })
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_probs(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    #[test]
    fn validation() {
        assert!(Decoder::paper_pixel_wise().validate(6).is_ok());
        assert!(Decoder::paper_pixel_wise().validate(5).is_err());
        assert!(Decoder::paper_layer_wise().validate(8).is_ok());
        assert!(Decoder::paper_layer_wise().validate(7).is_err());
        assert!(Decoder::PixelWise { side: 3 }.validate(8).is_err());
        assert!(Decoder::LayerWise { rows: 0 }.validate(8).is_err());
    }

    #[test]
    fn min_qubits() {
        assert_eq!(Decoder::paper_pixel_wise().min_qubits(), 6);
        assert_eq!(Decoder::paper_layer_wise().min_qubits(), 8);
        assert_eq!(Decoder::PixelWise { side: 4 }.min_qubits(), 4);
    }

    #[test]
    fn pixel_decode_uniform_gives_ones() {
        // Uniform p = 1/64 over 6 qubits: pred = sqrt(1/64) * 8 = 1.0.
        let d = Decoder::paper_pixel_wise();
        let map = d.decode(&uniform_probs(64)).unwrap();
        for &v in map.iter() {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pixel_decode_reads_a_subspace() {
        // 8 qubits (256 probs); basis state 64 lies OUTSIDE the 64-state
        // readout subspace, so only the mass on basis 0 is decoded —
        // this is what makes the prediction norm learnable.
        let d = Decoder::paper_pixel_wise();
        let mut probs = vec![0.0; 256];
        probs[0] = 0.5;
        probs[64] = 0.5;
        let map = d.decode(&probs).unwrap();
        assert!((map[(0, 0)] - 8.0 * 0.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(map[(0, 1)], 0.0);
    }

    #[test]
    fn pixel_decode_norm_is_learnable() {
        // All mass outside the subspace ⇒ zero map; all mass inside ⇒
        // norm `side`. The reachable prediction-norm range is [0, side].
        let d = Decoder::paper_pixel_wise();
        let mut outside = vec![0.0; 256];
        outside[200] = 1.0;
        let zero_map = d.decode(&outside).unwrap();
        assert!(zero_map.iter().all(|&v| v == 0.0));

        let mut inside = vec![0.0; 256];
        inside[5] = 1.0;
        let full = d.decode(&inside).unwrap();
        let norm: f64 = full.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 8.0).abs() < 1e-12);
    }

    #[test]
    fn layer_decode_basis_states() {
        let d = Decoder::paper_layer_wise();
        // |0...0>: all <Z> = +1 -> all rows 1.0.
        let mut probs = vec![0.0; 256];
        probs[0] = 1.0;
        let map = d.decode(&probs).unwrap();
        assert!(map.iter().all(|&v| (v - 1.0).abs() < 1e-12));

        // |1...1>: all <Z> = -1 -> all rows 0.0.
        let mut probs = vec![0.0; 256];
        probs[255] = 1.0;
        let map = d.decode(&probs).unwrap();
        assert!(map.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn layer_decode_rows_are_constant() {
        let d = Decoder::paper_layer_wise();
        let probs: Vec<f64> = {
            let raw: Vec<f64> = (0..256).map(|i| ((i * 37) % 11 + 1) as f64).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / total).collect()
        };
        let map = d.decode(&probs).unwrap();
        for r in 0..8 {
            let row = map.row(r);
            assert!(row.iter().all(|&v| (v - row[0]).abs() < 1e-12));
        }
    }

    #[test]
    fn zero_loss_at_perfect_prediction_layer() {
        let d = Decoder::paper_layer_wise();
        let mut probs = vec![0.0; 256];
        probs[0] = 1.0; // predicts all rows = 1.0
        let target = Array2::filled(8, 8, 1.0);
        let (loss, grad) = d.loss_and_prob_grad(&probs, &target).unwrap();
        assert!(loss < 1e-12);
        // Gradient of a perfect fit is zero.
        assert!(grad.iter().all(|&g| g.abs() < 1e-9));
    }

    #[test]
    fn loss_decreases_toward_target() {
        let d = Decoder::paper_layer_wise();
        let target = Array2::filled(8, 8, 1.0);
        let mut probs_good = vec![0.0; 256];
        probs_good[0] = 1.0; // rows 1.0 — perfect
        let mut probs_bad = vec![0.0; 256];
        probs_bad[255] = 1.0; // rows 0.0 — worst
        let (l_good, _) = d.loss_and_prob_grad(&probs_good, &target).unwrap();
        let (l_bad, _) = d.loss_and_prob_grad(&probs_bad, &target).unwrap();
        assert!(l_good < l_bad);
        assert!((l_bad - 1.0).abs() < 1e-12); // (0-1)² averaged
    }

    #[test]
    fn prob_gradient_matches_finite_difference_pixel() {
        let d = Decoder::paper_pixel_wise();
        let probs: Vec<f64> = {
            let raw: Vec<f64> = (0..64).map(|i| ((i * 13) % 7 + 1) as f64).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / total).collect()
        };
        let target = Array2::from_fn(8, 8, |r, c| ((r + c) % 3) as f64 * 0.4);
        let (_, grad) = d.loss_and_prob_grad(&probs, &target).unwrap();

        let h = 1e-8;
        for idx in [0usize, 7, 33, 63] {
            let mut p = probs.clone();
            p[idx] += h;
            let (plus, _) = d.loss_and_prob_grad(&p, &target).unwrap();
            p[idx] -= 2.0 * h;
            let (minus, _) = d.loss_and_prob_grad(&p, &target).unwrap();
            let fd = (plus - minus) / (2.0 * h);
            assert!(
                (fd - grad[idx]).abs() < 1e-4 * fd.abs().max(1.0),
                "prob {idx}: fd {fd} vs analytic {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn prob_gradient_matches_finite_difference_layer() {
        let d = Decoder::paper_layer_wise();
        let probs: Vec<f64> = {
            let raw: Vec<f64> = (0..256).map(|i| ((i * 29) % 13 + 1) as f64).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|v| v / total).collect()
        };
        let target = Array2::from_fn(8, 8, |r, _| r as f64 / 8.0);
        let (_, grad) = d.loss_and_prob_grad(&probs, &target).unwrap();

        let h = 1e-8;
        for idx in [0usize, 100, 200, 255] {
            let mut p = probs.clone();
            p[idx] += h;
            let (plus, _) = d.loss_and_prob_grad(&p, &target).unwrap();
            p[idx] -= 2.0 * h;
            let (minus, _) = d.loss_and_prob_grad(&p, &target).unwrap();
            let fd = (plus - minus) / (2.0 * h);
            assert!(
                (fd - grad[idx]).abs() < 1e-5 * fd.abs().max(1.0),
                "prob {idx}: fd {fd} vs analytic {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn rejects_bad_probability_vectors() {
        let d = Decoder::paper_pixel_wise();
        assert!(d.decode(&[0.5, 0.5, 0.0]).is_err()); // not power of two
        assert!(d.decode(&uniform_probs(32)).is_err()); // too few qubits
        let target = Array2::filled(8, 8, 0.5);
        assert!(d.loss_and_prob_grad(&uniform_probs(64), &Array2::filled(4, 4, 0.5)).is_err());
        assert!(d.loss_and_prob_grad(&uniform_probs(64), &target).is_ok());
    }
}
