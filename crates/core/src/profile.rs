//! Vertical velocity-profile analysis (the paper's Figures 7 and 9).
//!
//! The paper inspects predictions by slicing the velocity map vertically
//! at a horizontal position (x = 400 m), plotting velocity against depth,
//! and counting how many layer *interfaces* (inflection points) the
//! prediction recovers — and whether the relative ordering of the layers
//! on either side is correct.

use qugeo_metrics::profile_ssim;
use qugeo_tensor::Array2;

use crate::QuGeoError;

/// Extracts the vertical profile of a velocity map at column `col`.
///
/// # Errors
///
/// Returns [`QuGeoError::Config`] if `col` is out of range.
pub fn vertical_profile(map: &Array2, col: usize) -> Result<Vec<f64>, QuGeoError> {
    if col >= map.cols() {
        return Err(QuGeoError::Config {
            reason: format!("column {col} out of range ({} columns)", map.cols()),
        });
    }
    Ok(map.column(col))
}

/// Maps a physical horizontal distance to the nearest map column.
///
/// The paper profiles at x = 400 m of a 700 m-wide model; on an 8-wide
/// map that is column `400/700·8 ≈ 4`.
pub fn column_for_distance(map_cols: usize, distance_m: f64, extent_m: f64) -> usize {
    let frac = (distance_m / extent_m).clamp(0.0, 1.0);
    ((frac * map_cols as f64) as usize).min(map_cols.saturating_sub(1))
}

/// Detects layer interfaces in a vertical profile: depth indices `i`
/// where `|v[i+1] − v[i]|` exceeds `threshold`.
pub fn detect_interfaces(profile: &[f64], threshold: f64) -> Vec<usize> {
    profile
        .windows(2)
        .enumerate()
        .filter(|(_, w)| (w[1] - w[0]).abs() > threshold)
        .map(|(i, _)| i)
        .collect()
}

/// The outcome of comparing predicted against true interfaces
/// (the per-point analysis of Figures 7(b) and 9(b)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceComparison {
    /// Interfaces in the ground-truth profile.
    pub true_interfaces: Vec<usize>,
    /// Interfaces in the predicted profile.
    pub predicted_interfaces: Vec<usize>,
    /// True interfaces matched by a prediction within ±1 depth cell.
    pub matched: usize,
    /// Of the matched interfaces, how many have the correct velocity
    /// ordering (faster layer below, as the true profile has).
    pub correct_order: usize,
}

impl InterfaceComparison {
    /// Fraction of true interfaces recovered (0.0 when there are none).
    pub fn recall(&self) -> f64 {
        if self.true_interfaces.is_empty() {
            0.0
        } else {
            self.matched as f64 / self.true_interfaces.len() as f64
        }
    }
}

/// Compares the interfaces of a predicted profile against the truth.
///
/// A true interface at depth `i` counts as *matched* when the prediction
/// has an interface within ±1 cell; a matched interface has *correct
/// order* when the predicted velocity step has the same sign as the true
/// one.
pub fn compare_interfaces(
    truth: &[f64],
    prediction: &[f64],
    threshold: f64,
) -> InterfaceComparison {
    let true_interfaces = detect_interfaces(truth, threshold);
    let predicted_interfaces = detect_interfaces(prediction, threshold);

    let mut matched = 0usize;
    let mut correct_order = 0usize;
    for &t in &true_interfaces {
        let hit = predicted_interfaces
            .iter()
            .find(|&&p| p.abs_diff(t) <= 1);
        if let Some(&p) = hit {
            matched += 1;
            let true_step = truth[t + 1] - truth[t];
            let pred_step = prediction[p + 1] - prediction[p];
            if true_step.signum() == pred_step.signum() {
                correct_order += 1;
            }
        }
    }
    InterfaceComparison {
        true_interfaces,
        predicted_interfaces,
        matched,
        correct_order,
    }
}

/// SSIM between two vertical profiles — the similarity score annotated
/// on the paper's profile plots.
///
/// # Errors
///
/// Returns an error if the profiles differ in length or are empty.
pub fn profile_similarity(truth: &[f64], prediction: &[f64]) -> Result<f64, QuGeoError> {
    profile_ssim(truth, prediction).map_err(QuGeoError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stepped(depths: &[(usize, f64)], len: usize) -> Vec<f64> {
        // depths: (start_index, value) pairs, ascending.
        let mut v = vec![0.0; len];
        for (i, slot) in v.iter_mut().enumerate() {
            let mut val = depths[0].1;
            for &(start, value) in depths {
                if i >= start {
                    val = value;
                }
            }
            *slot = val;
        }
        v
    }

    #[test]
    fn vertical_profile_extracts_column() {
        let map = Array2::from_fn(4, 4, |r, c| (r * 10 + c) as f64);
        let p = vertical_profile(&map, 2).unwrap();
        assert_eq!(p, vec![2.0, 12.0, 22.0, 32.0]);
        assert!(vertical_profile(&map, 4).is_err());
    }

    #[test]
    fn column_for_distance_maps_physical_x() {
        // The paper's x = 400 m on a 700 m, 8-column map.
        assert_eq!(column_for_distance(8, 400.0, 700.0), 4);
        assert_eq!(column_for_distance(8, 0.0, 700.0), 0);
        assert_eq!(column_for_distance(8, 700.0, 700.0), 7);
    }

    #[test]
    fn detect_interfaces_finds_steps() {
        let p = stepped(&[(0, 1500.0), (3, 2500.0), (6, 3500.0)], 8);
        let ifs = detect_interfaces(&p, 100.0);
        assert_eq!(ifs, vec![2, 5]);
        assert!(detect_interfaces(&p, 2000.0).is_empty());
        assert!(detect_interfaces(&[1500.0], 1.0).is_empty());
    }

    #[test]
    fn perfect_prediction_matches_all() {
        let truth = stepped(&[(0, 1500.0), (4, 3000.0)], 8);
        let cmp = compare_interfaces(&truth, &truth, 100.0);
        assert_eq!(cmp.matched, 1);
        assert_eq!(cmp.correct_order, 1);
        assert_eq!(cmp.recall(), 1.0);
    }

    #[test]
    fn smooth_prediction_misses_interfaces() {
        let truth = stepped(&[(0, 1500.0), (4, 3000.0)], 8);
        let smooth: Vec<f64> = (0..8).map(|i| 1500.0 + i as f64 * 190.0).collect();
        let cmp = compare_interfaces(&truth, &smooth, 400.0);
        assert_eq!(cmp.matched, 0);
        assert_eq!(cmp.recall(), 0.0);
    }

    #[test]
    fn off_by_one_interface_still_matches() {
        let truth = stepped(&[(0, 1500.0), (4, 3000.0)], 8);
        let shifted = stepped(&[(0, 1500.0), (5, 3000.0)], 8);
        let cmp = compare_interfaces(&truth, &shifted, 100.0);
        assert_eq!(cmp.matched, 1);
        assert_eq!(cmp.correct_order, 1);
    }

    #[test]
    fn wrong_order_detected() {
        // Predicted interface at the right place but inverted velocities
        // (slow layer below fast) — matched but order-incorrect, the
        // paper's points C/D/E failure mode in Figure 9.
        let truth = stepped(&[(0, 1500.0), (4, 3000.0)], 8);
        let inverted = stepped(&[(0, 3000.0), (4, 1500.0)], 8);
        let cmp = compare_interfaces(&truth, &inverted, 100.0);
        assert_eq!(cmp.matched, 1);
        assert_eq!(cmp.correct_order, 0);
    }

    #[test]
    fn profile_similarity_orders_candidates() {
        let truth = stepped(&[(0, 1500.0), (4, 3000.0)], 16);
        let close: Vec<f64> = truth.iter().map(|v| v + 20.0).collect();
        let far: Vec<f64> = (0..16).map(|i| 1500.0 + i as f64 * 100.0).collect();
        let s_close = profile_similarity(&truth, &close).unwrap();
        let s_far = profile_similarity(&truth, &far).unwrap();
        assert!(s_close > s_far);
        assert!(profile_similarity(&truth, &truth[..4]).is_err());
    }
}
