//! Terminal visualisation of velocity maps and shot gathers.
//!
//! The paper's figures are image plots; experiment binaries and examples
//! render the same content as ASCII intensity maps so results can be
//! inspected without a plotting stack.

use qugeo_tensor::Array2;

/// Characters from dark/low to bright/high.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders an array as an ASCII intensity image, one character per cell,
/// scaled to the array's own min–max range.
///
/// Constant arrays render as all-minimum characters.
///
/// # Examples
///
/// ```
/// use qugeo::viz::ascii_map;
/// use qugeo_tensor::Array2;
///
/// let map = Array2::from_fn(2, 4, |r, _| r as f64);
/// let art = ascii_map(&map);
/// assert_eq!(art.lines().count(), 2);
/// ```
pub fn ascii_map(map: &Array2) -> String {
    let lo = map.min();
    let hi = map.max();
    let span = hi - lo;
    let mut out = String::with_capacity((map.cols() + 1) * map.rows());
    for r in 0..map.rows() {
        for c in 0..map.cols() {
            let v = map[(r, c)];
            let t = if span > 0.0 { (v - lo) / span } else { 0.0 };
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders truth and prediction side by side with a gutter, labelling
/// both, for the figure-style visual comparisons.
///
/// The two maps must have the same number of rows; extra rows of the
/// taller map are omitted.
pub fn side_by_side(truth: &Array2, prediction: &Array2) -> String {
    let left = ascii_map(truth);
    let right = ascii_map(prediction);
    let lw = truth.cols().max("truth".len());
    let mut out = format!("{:<lw$}   {}\n", "truth", "prediction");
    for (l, r) in left.lines().zip(right.lines()) {
        out.push_str(&format!("{l:<lw$}   {r}\n"));
    }
    out
}

/// Renders a vertical profile as a horizontal bar chart, one row per
/// depth cell.
pub fn profile_bars(profile: &[f64], width: usize) -> String {
    let lo = profile.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = profile.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for (i, &v) in profile.iter().enumerate() {
        let filled = (((v - lo) / span) * width as f64).round() as usize;
        out.push_str(&format!(
            "{i:>3} |{}{}| {v:.0}\n",
            "#".repeat(filled.min(width)),
            " ".repeat(width.saturating_sub(filled))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_map_shape_and_extremes() {
        let map = Array2::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let art = ascii_map(&map);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 5));
        // Minimum renders as the first ramp char, maximum as the last.
        assert!(lines[0].starts_with(' '));
        assert!(lines[2].ends_with('@'));
    }

    #[test]
    fn constant_map_renders_uniformly() {
        let map = Array2::filled(2, 3, 5.0);
        let art = ascii_map(&map);
        assert!(art.lines().all(|l| l == "   "));
    }

    #[test]
    fn side_by_side_aligns_rows() {
        let a = Array2::from_fn(4, 6, |r, _| r as f64);
        let b = a.map(|v| v + 1.0);
        let s = side_by_side(&a, &b);
        // Header + 4 rows.
        assert_eq!(s.lines().count(), 5);
        assert!(s.starts_with("truth"));
    }

    #[test]
    fn profile_bars_monotone_fill() {
        let p = vec![1500.0, 2500.0, 4000.0];
        let bars = profile_bars(&p, 10);
        let widths: Vec<usize> = bars
            .lines()
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert!(widths[0] < widths[1] && widths[1] < widths[2]);
        assert_eq!(widths[2], 10);
    }

    #[test]
    fn profile_bars_handles_constant() {
        let bars = profile_bars(&[2.0, 2.0], 8);
        assert_eq!(bars.lines().count(), 2);
    }
}
