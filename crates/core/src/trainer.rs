//! Legacy training entry points (deprecated wrappers).
//!
//! The paper's recipe, used for every model: "Adam optimizer with 500
//! epochs where the initial learning rate is set to 0.1, followed by a
//! cosine annealing schedule", on a 400/100 train/test split of 500
//! FlatVelA samples.
//!
//! This module used to hold five near-duplicate training loops. They
//! are now thin wrappers over the unified engine in [`crate::train`]
//! ([`Trainer`] + a [`TrainStep`](crate::train::TrainStep) strategy)
//! and are
//! **deprecated**: new code should build the engine directly —
//!
//! ```no_run
//! use qugeo::train::{PerSampleVqc, TrainConfig, Trainer};
//! # fn main() -> Result<(), qugeo::QuGeoError> {
//! # let model = qugeo::model::QuGeoVqc::new(qugeo::model::VqcConfig::paper_layer_wise())?;
//! # let (train, test): (Vec<_>, Vec<_>) = (vec![], vec![]);
//! let outcome = Trainer::new(TrainConfig::paper_default())
//!     .fit(&mut PerSampleVqc::new(&model, &train, &test)?)?;
//! # Ok(())
//! # }
//! ```
//!
//! The wrappers reproduce their historical outputs **bit-for-bit** at
//! equal seeds (the engine's default optimiser, schedule, shuffling
//! stream, and evaluation cadence are exactly the old loop's); the
//! differential tests below pin that equivalence against a frozen
//! reference implementation.

use qugeo_geodata::scaling::ScaledSample;
use qugeo_nn::models::CnnRegressor;
use qugeo_qsim::QuantumBackend;

use crate::model::QuGeoVqc;
use crate::train::{PerSampleVqc, QuBatchVqc, RegressorStep, Trainer};
use crate::QuGeoError;

// The engine is the canonical home of the training types; the old
// `qugeo::trainer::{TrainConfig, …}` paths keep working via re-export.
pub use crate::train::{
    evaluate_regressor, evaluate_vqc, evaluate_vqc_with, EpochStats, TrainConfig, TrainOutcome,
};

/// Trains a [`QuGeoVqc`] with per-sample Adam steps (the paper's
/// training loop).
///
/// # Errors
///
/// Returns an error for empty datasets or simulation failures.
#[deprecated(note = "use qugeo::train::{Trainer, PerSampleVqc}")]
pub fn train_vqc(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
) -> Result<TrainOutcome, QuGeoError> {
    Trainer::new(*config).fit(&mut PerSampleVqc::new(model, train, test)?)
}

/// [`train_vqc`] through an execution backend: every loss/gradient step
/// runs via [`QuGeoVqc::loss_and_grad_with`] (adjoint on exact backends,
/// parameter-shift through the backend otherwise).
///
/// # Errors
///
/// Returns an error for empty datasets, simulation failures, or backend
/// failures.
#[deprecated(note = "use qugeo::train::{Trainer, PerSampleVqc::with_backend}")]
pub fn train_vqc_with(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    backend: &dyn QuantumBackend,
) -> Result<TrainOutcome, QuGeoError> {
    Trainer::new(*config).fit(&mut PerSampleVqc::with_backend(model, train, test, backend)?)
}

/// Trains a [`QuGeoVqc`] with QuBatch: each Adam step consumes one batch
/// of `batch_size` samples executed as a single widened circuit.
///
/// # Errors
///
/// Returns an error for empty datasets, `batch_size == 0`, multi-group
/// models, or simulation failures.
#[deprecated(note = "use qugeo::train::{Trainer, QuBatchVqc}")]
pub fn train_vqc_batched(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    batch_size: usize,
) -> Result<TrainOutcome, QuGeoError> {
    Trainer::new(*config).fit(&mut QuBatchVqc::new(model, train, test, batch_size)?)
}

/// [`train_vqc_batched`] through an execution backend.
///
/// # Errors
///
/// Returns an error for empty datasets, `batch_size == 0`, multi-group
/// models, simulation failures, or backend failures.
#[deprecated(note = "use qugeo::train::{Trainer, QuBatchVqc::with_backend}")]
pub fn train_vqc_batched_with(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    batch_size: usize,
    backend: &dyn QuantumBackend,
) -> Result<TrainOutcome, QuGeoError> {
    Trainer::new(*config).fit(&mut QuBatchVqc::with_backend(
        model, train, test, batch_size, backend,
    )?)
}

/// Trains a classical [`CnnRegressor`] baseline with the same recipe as
/// the quantum models.
///
/// # Errors
///
/// Returns an error for empty datasets or shape mismatches.
#[deprecated(note = "use qugeo::train::{Trainer, RegressorStep}")]
pub fn train_regressor(
    model: &mut CnnRegressor,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    group_len: usize,
) -> Result<TrainOutcome, QuGeoError> {
    Trainer::new(*config).fit(&mut RegressorStep::new(model, train, test, group_len)?)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::pipeline::normalized_target;
    use crate::qubatch::QuBatch;
    use crate::train::tests::{small_vqc, synthetic_samples};
    use qugeo_nn::optim::{Adam, CosineAnnealing, LrSchedule, Optimizer};
    use qugeo_qsim::StatevectorBackend;
    use qugeo_tensor::Array2;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// The *original* per-sample training loop, frozen verbatim from the
    /// pre-engine implementation. The differential tests require the
    /// engine to reproduce it bit-for-bit — this copy shares no code
    /// with `crate::train`.
    fn reference_train_vqc(
        model: &QuGeoVqc,
        train: &[ScaledSample],
        test: &[ScaledSample],
        config: &TrainConfig,
    ) -> TrainOutcome {
        let backend = StatevectorBackend::default();
        let mut params = model.init_params(config.seed);
        let mut adam = Adam::new(params.len(), config.initial_lr);
        let schedule = CosineAnnealing::new(config.initial_lr, config.epochs);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xABCD_EF01);

        let targets: Vec<Array2> = train.iter().map(normalized_target).collect();
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut history = Vec::with_capacity(config.epochs);

        for epoch in 0..config.epochs {
            adam.set_learning_rate(schedule.lr_at(epoch));
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            for &i in &order {
                let (loss, grad) = model
                    .loss_and_grad_with(&train[i].seismic, &targets[i], &params, &backend)
                    .unwrap();
                adam.step(&mut params, &grad);
                loss_sum += loss;
            }
            let train_loss = loss_sum / train.len() as f64;

            let evaluate = epoch + 1 == config.epochs
                || (config.eval_every > 0 && epoch % config.eval_every == 0);
            let (test_mse, test_ssim) = if evaluate {
                let (m, s) = evaluate_vqc(model, &params, test).unwrap();
                (Some(m), Some(s))
            } else {
                (None, None)
            };
            history.push(EpochStats {
                epoch,
                train_loss,
                test_mse,
                test_ssim,
                grad_norm: None,
                wall_clock_secs: None,
            });
        }

        let (final_mse, final_ssim) = evaluate_vqc(model, &params, test).unwrap();
        TrainOutcome {
            params,
            history,
            final_mse,
            final_ssim,
        }
    }

    /// The original QuBatch training loop, frozen verbatim.
    fn reference_train_vqc_batched(
        model: &QuGeoVqc,
        train: &[ScaledSample],
        test: &[ScaledSample],
        config: &TrainConfig,
        batch_size: usize,
    ) -> TrainOutcome {
        let backend = StatevectorBackend::default();
        let qubatch = QuBatch::new(model).unwrap();
        let mut params = model.init_params(config.seed);
        let mut adam = Adam::new(params.len(), config.initial_lr);
        let schedule = CosineAnnealing::new(config.initial_lr, config.epochs);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xABCD_EF01);

        let targets: Vec<Array2> = train.iter().map(normalized_target).collect();
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut history = Vec::with_capacity(config.epochs);

        for epoch in 0..config.epochs {
            adam.set_learning_rate(schedule.lr_at(epoch));
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            let mut steps = 0usize;
            for chunk in order.chunks(batch_size) {
                let seismic: Vec<Vec<f64>> =
                    chunk.iter().map(|&i| train[i].seismic.clone()).collect();
                let tgt: Vec<Array2> = chunk.iter().map(|&i| targets[i].clone()).collect();
                let (loss, grad) = qubatch
                    .loss_and_grad_batch_with(&seismic, &tgt, &params, &backend)
                    .unwrap();
                adam.step(&mut params, &grad);
                loss_sum += loss;
                steps += 1;
            }
            let train_loss = loss_sum / steps.max(1) as f64;

            let evaluate = epoch + 1 == config.epochs
                || (config.eval_every > 0 && epoch % config.eval_every == 0);
            let (test_mse, test_ssim) = if evaluate {
                let (m, s) = evaluate_vqc(model, &params, test).unwrap();
                (Some(m), Some(s))
            } else {
                (None, None)
            };
            history.push(EpochStats {
                epoch,
                train_loss,
                test_mse,
                test_ssim,
                grad_norm: None,
                wall_clock_secs: None,
            });
        }

        let (final_mse, final_ssim) = evaluate_vqc(model, &params, test).unwrap();
        TrainOutcome {
            params,
            history,
            final_mse,
            final_ssim,
        }
    }

    #[test]
    fn engine_reproduces_legacy_per_sample_loop_bit_for_bit() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(6, 16, 4);
        let (train, test) = (samples[..4].to_vec(), samples[4..].to_vec());
        let cfg = TrainConfig {
            epochs: 6,
            initial_lr: 0.1,
            seed: 3,
            eval_every: 2,
        };
        let reference = reference_train_vqc(&model, &train, &test, &cfg);
        let wrapper = train_vqc(&model, &train, &test, &cfg).unwrap();
        let engine = Trainer::new(cfg)
            .fit(&mut PerSampleVqc::new(&model, &train, &test).unwrap())
            .unwrap();
        // Bit-for-bit: parameters, every history record, final metrics.
        assert_eq!(reference, wrapper);
        assert_eq!(reference, engine);
    }

    #[test]
    fn engine_reproduces_legacy_qubatch_loop_bit_for_bit() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(6, 16, 4);
        let (train, test) = (samples[..4].to_vec(), samples[4..].to_vec());
        let cfg = TrainConfig {
            epochs: 5,
            initial_lr: 0.1,
            seed: 9,
            eval_every: 2,
        };
        for batch_size in [1usize, 2, 3] {
            let reference =
                reference_train_vqc_batched(&model, &train, &test, &cfg, batch_size);
            let wrapper = train_vqc_batched(&model, &train, &test, &cfg, batch_size).unwrap();
            let engine = Trainer::new(cfg)
                .fit(&mut QuBatchVqc::new(&model, &train, &test, batch_size).unwrap())
                .unwrap();
            assert_eq!(reference, wrapper, "wrapper diverged at batch {batch_size}");
            assert_eq!(reference, engine, "engine diverged at batch {batch_size}");
        }
    }

    #[test]
    fn wrappers_validate_inputs() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(2, 16, 4);
        let cfg = TrainConfig::smoke(1);
        assert!(train_vqc(&model, &[], &samples, &cfg).is_err());
        assert!(train_vqc(&model, &samples, &[], &cfg).is_err());
        assert!(train_vqc_batched(&model, &samples, &samples, &cfg, 0).is_err());
        let bad = TrainConfig {
            epochs: 0,
            ..TrainConfig::smoke(1)
        };
        assert!(train_vqc(&model, &samples, &samples, &bad).is_err());
    }

    #[test]
    fn batched_wrapper_runs_through_explicit_backend() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(4, 16, 4);
        let (train, test) = (samples[..2].to_vec(), samples[2..].to_vec());
        let cfg = TrainConfig::smoke(3);
        let a = train_vqc_batched(&model, &train, &test, &cfg, 2).unwrap();
        let b = train_vqc_batched_with(
            &model,
            &train,
            &test,
            &cfg,
            2,
            &StatevectorBackend::default(),
        )
        .unwrap();
        assert_eq!(a.params, b.params);
    }

}
