//! Training loops for quantum and classical FWI models.
//!
//! The paper's recipe, used for every model: "Adam optimizer with 500
//! epochs where the initial learning rate is set to 0.1, followed by a
//! cosine annealing schedule", on a 400/100 train/test split of 500
//! FlatVelA samples.

use qugeo_geodata::scaling::ScaledSample;
use qugeo_metrics::{mse, ssim};
use qugeo_nn::models::{CnnRegressor, RegressorHead};
use qugeo_nn::optim::{Adam, CosineAnnealing};
use qugeo_nn::Model;
use qugeo_qsim::{QuantumBackend, StatevectorBackend};
use qugeo_tensor::norm::l2_normalized;
use qugeo_tensor::Array2;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::model::QuGeoVqc;
use crate::pipeline::normalized_target;
use crate::qubatch::QuBatch;
use crate::QuGeoError;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial learning rate (cosine-annealed to zero).
    pub initial_lr: f64,
    /// Seed for parameter initialisation and shuffling.
    pub seed: u64,
    /// Evaluate on the test set every `eval_every` epochs (and always on
    /// the final epoch). 0 disables intermediate evaluation.
    pub eval_every: usize,
}

impl TrainConfig {
    /// The paper's setup: 500 epochs, lr 0.1, cosine annealing.
    pub fn paper_default() -> Self {
        Self {
            epochs: 500,
            initial_lr: 0.1,
            seed: 7,
            eval_every: 25,
        }
    }

    /// A fast setup for tests and smoke runs.
    pub fn smoke(epochs: usize) -> Self {
        Self {
            epochs,
            initial_lr: 0.1,
            seed: 7,
            eval_every: 0,
        }
    }
}

/// Metrics recorded during training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Test MSE (normalised velocity), when evaluated this epoch.
    pub test_mse: Option<f64>,
    /// Test SSIM (normalised velocity), when evaluated this epoch.
    pub test_ssim: Option<f64>,
}

/// The result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Final trained parameters.
    pub params: Vec<f64>,
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Final test MSE (normalised velocity).
    pub final_mse: f64,
    /// Final test SSIM.
    pub final_ssim: f64,
}

/// Mean (MSE, SSIM) of per-sample predictions against the samples'
/// normalised velocity targets.
///
/// # Panics
///
/// Panics (debug) if `preds.len() != samples.len()`.
fn mean_mse_ssim(samples: &[ScaledSample], preds: &[Array2]) -> Result<(f64, f64), QuGeoError> {
    debug_assert_eq!(samples.len(), preds.len());
    if samples.is_empty() {
        return Err(QuGeoError::Config {
            reason: "cannot evaluate on an empty set".into(),
        });
    }
    let mut mse_total = 0.0;
    let mut ssim_total = 0.0;
    for (s, pred) in samples.iter().zip(preds) {
        let target = normalized_target(s);
        mse_total += mse(pred, &target)?;
        ssim_total += ssim(pred, &target)?;
    }
    let n = samples.len() as f64;
    Ok((mse_total / n, ssim_total / n))
}

/// Mean (MSE, SSIM) of a prediction function over samples, on
/// normalised velocity maps.
fn evaluate_predictions(
    samples: &[ScaledSample],
    mut predict: impl FnMut(&ScaledSample) -> Result<Array2, QuGeoError>,
) -> Result<(f64, f64), QuGeoError> {
    let preds = samples
        .iter()
        .map(&mut predict)
        .collect::<Result<Vec<_>, _>>()?;
    mean_mse_ssim(samples, &preds)
}

/// Evaluates a trained VQC on a sample set: mean (MSE, SSIM) against
/// normalised targets.
///
/// The whole set runs through one gate-fused batched engine call
/// ([`QuGeoVqc::predict_many`]): the ansatz is compiled once and swept
/// across all encoded samples — the evaluation-epoch hot path.
///
/// # Errors
///
/// Returns an error for empty sets or prediction failures.
pub fn evaluate_vqc(
    model: &QuGeoVqc,
    params: &[f64],
    samples: &[ScaledSample],
) -> Result<(f64, f64), QuGeoError> {
    evaluate_vqc_with(model, params, samples, &StatevectorBackend::default())
}

/// [`evaluate_vqc`] through an execution backend: the whole set runs via
/// [`QuGeoVqc::predict_many_with`], so evaluation can be re-run under
/// finite shots or gate noise by swapping the backend.
///
/// # Errors
///
/// Returns an error for empty sets or prediction failures.
pub fn evaluate_vqc_with(
    model: &QuGeoVqc,
    params: &[f64],
    samples: &[ScaledSample],
    backend: &dyn QuantumBackend,
) -> Result<(f64, f64), QuGeoError> {
    let seismic: Vec<&[f64]> = samples.iter().map(|s| s.seismic.as_slice()).collect();
    let preds = model.predict_many_with(&seismic, params, backend)?;
    mean_mse_ssim(samples, &preds)
}

/// Trains a [`QuGeoVqc`] with per-sample Adam steps (the paper's
/// training loop).
///
/// # Errors
///
/// Returns an error for empty datasets or simulation failures.
pub fn train_vqc(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
) -> Result<TrainOutcome, QuGeoError> {
    train_vqc_with(model, train, test, config, &StatevectorBackend::default())
}

/// [`train_vqc`] through an execution backend: every loss/gradient step
/// runs via [`QuGeoVqc::loss_and_grad_with`] (adjoint on exact backends,
/// parameter-shift through the backend otherwise) and every evaluation
/// via [`evaluate_vqc_with`]. Training under finite shots or gate noise
/// is the same call with a different backend.
///
/// # Errors
///
/// Returns an error for empty datasets, simulation failures, or backend
/// failures.
pub fn train_vqc_with(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    backend: &dyn QuantumBackend,
) -> Result<TrainOutcome, QuGeoError> {
    if train.is_empty() || test.is_empty() {
        return Err(QuGeoError::Config {
            reason: "train and test sets must be non-empty".into(),
        });
    }
    let mut params = model.init_params(config.seed);
    let mut adam = Adam::new(params.len(), config.initial_lr);
    let schedule = CosineAnnealing::new(config.initial_lr, config.epochs);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xABCD_EF01);

    let targets: Vec<Array2> = train.iter().map(normalized_target).collect();
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        adam.set_learning_rate(schedule.lr_at(epoch));
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        for &i in &order {
            let (loss, grad) =
                model.loss_and_grad_with(&train[i].seismic, &targets[i], &params, backend)?;
            adam.step(&mut params, &grad);
            loss_sum += loss;
        }
        let train_loss = loss_sum / train.len() as f64;

        let evaluate = epoch + 1 == config.epochs
            || (config.eval_every > 0 && epoch % config.eval_every == 0);
        let (test_mse, test_ssim) = if evaluate {
            let (m, s) = evaluate_vqc_with(model, &params, test, backend)?;
            (Some(m), Some(s))
        } else {
            (None, None)
        };
        history.push(EpochStats {
            epoch,
            train_loss,
            test_mse,
            test_ssim,
        });
    }

    let (final_mse, final_ssim) = evaluate_vqc_with(model, &params, test, backend)?;
    Ok(TrainOutcome {
        params,
        history,
        final_mse,
        final_ssim,
    })
}

/// Trains a [`QuGeoVqc`] with QuBatch: each Adam step consumes one batch
/// of `batch_size` samples executed as a single widened circuit.
///
/// # Errors
///
/// Returns an error for empty datasets, multi-group models, or
/// simulation failures.
pub fn train_vqc_batched(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    batch_size: usize,
) -> Result<TrainOutcome, QuGeoError> {
    train_vqc_batched_with(
        model,
        train,
        test,
        config,
        batch_size,
        &StatevectorBackend::default(),
    )
}

/// [`train_vqc_batched`] through an execution backend (QuBatch steps via
/// [`QuBatch::loss_and_grad_batch_with`], evaluation via
/// [`evaluate_vqc_with`]).
///
/// # Errors
///
/// Returns an error for empty datasets, multi-group models, simulation
/// failures, or backend failures.
pub fn train_vqc_batched_with(
    model: &QuGeoVqc,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    batch_size: usize,
    backend: &dyn QuantumBackend,
) -> Result<TrainOutcome, QuGeoError> {
    if train.is_empty() || test.is_empty() || batch_size == 0 {
        return Err(QuGeoError::Config {
            reason: "train/test must be non-empty and batch_size positive".into(),
        });
    }
    let qubatch = QuBatch::new(model)?;
    let mut params = model.init_params(config.seed);
    let mut adam = Adam::new(params.len(), config.initial_lr);
    let schedule = CosineAnnealing::new(config.initial_lr, config.epochs);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xABCD_EF01);

    let targets: Vec<Array2> = train.iter().map(normalized_target).collect();
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        adam.set_learning_rate(schedule.lr_at(epoch));
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        let mut steps = 0usize;
        for chunk in order.chunks(batch_size) {
            let seismic: Vec<Vec<f64>> =
                chunk.iter().map(|&i| train[i].seismic.clone()).collect();
            let tgt: Vec<Array2> = chunk.iter().map(|&i| targets[i].clone()).collect();
            let (loss, grad) = qubatch.loss_and_grad_batch_with(&seismic, &tgt, &params, backend)?;
            adam.step(&mut params, &grad);
            loss_sum += loss;
            steps += 1;
        }
        let train_loss = loss_sum / steps.max(1) as f64;

        let evaluate = epoch + 1 == config.epochs
            || (config.eval_every > 0 && epoch % config.eval_every == 0);
        let (test_mse, test_ssim) = if evaluate {
            let (m, s) = evaluate_vqc_with(model, &params, test, backend)?;
            (Some(m), Some(s))
        } else {
            (None, None)
        };
        history.push(EpochStats {
            epoch,
            train_loss,
            test_mse,
            test_ssim,
        });
    }

    let (final_mse, final_ssim) = evaluate_vqc_with(model, &params, test, backend)?;
    Ok(TrainOutcome {
        params,
        history,
        final_mse,
        final_ssim,
    })
}

/// The classical model's view of a scaled sample: the same
/// quantum-normalised input the VQC sees (per-group ℓ₂ norm) so the
/// Table 2 comparison is like-for-like.
fn regressor_input(sample: &ScaledSample, group_len: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(sample.seismic.len());
    for chunk in sample.seismic.chunks(group_len) {
        out.extend(l2_normalized(chunk));
    }
    out
}

/// Builds the regression target for a head: 64 pixels (PX) or 8 row
/// means (LY) of the normalised map.
fn regressor_target(head: &RegressorHead, target_map: &Array2) -> Vec<f64> {
    match *head {
        RegressorHead::PixelWise { side } => {
            let mut t = Vec::with_capacity(side * side);
            for r in 0..side {
                t.extend_from_slice(target_map.row(r));
            }
            t
        }
        RegressorHead::LayerWise { rows } => (0..rows)
            .map(|r| {
                let row = target_map.row(r);
                row.iter().sum::<f64>() / row.len() as f64
            })
            .collect(),
    }
}

/// Expands a regressor output vector into a velocity map (rows replicated
/// for the layer-wise head).
fn regressor_map(head: &RegressorHead, output: &[f64]) -> Array2 {
    match *head {
        RegressorHead::PixelWise { side } => {
            Array2::from_fn(side, side, |r, c| output[r * side + c])
        }
        RegressorHead::LayerWise { rows } => Array2::from_fn(rows, rows, |r, _| output[r]),
    }
}

/// Evaluates a trained CNN regressor: mean (MSE, SSIM) against
/// normalised targets.
///
/// # Errors
///
/// Returns an error for empty sets or shape mismatches.
pub fn evaluate_regressor(
    model: &CnnRegressor,
    samples: &[ScaledSample],
    group_len: usize,
) -> Result<(f64, f64), QuGeoError> {
    let head = model.config().head;
    evaluate_predictions(samples, |s| {
        let out = model.forward(&regressor_input(s, group_len))?;
        Ok(regressor_map(&head, &out))
    })
}

/// Trains a classical [`CnnRegressor`] baseline with the same recipe as
/// the quantum models.
///
/// # Errors
///
/// Returns an error for empty datasets or shape mismatches.
pub fn train_regressor(
    model: &mut CnnRegressor,
    train: &[ScaledSample],
    test: &[ScaledSample],
    config: &TrainConfig,
    group_len: usize,
) -> Result<TrainOutcome, QuGeoError> {
    if train.is_empty() || test.is_empty() {
        return Err(QuGeoError::Config {
            reason: "train and test sets must be non-empty".into(),
        });
    }
    let head = model.config().head;
    let inputs: Vec<Vec<f64>> = train.iter().map(|s| regressor_input(s, group_len)).collect();
    let targets: Vec<Vec<f64>> = train
        .iter()
        .map(|s| regressor_target(&head, &normalized_target(s)))
        .collect();

    let mut params = model.params();
    let mut adam = Adam::new(params.len(), config.initial_lr);
    let schedule = CosineAnnealing::new(config.initial_lr, config.epochs);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xABCD_EF01);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        adam.set_learning_rate(schedule.lr_at(epoch));
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        for &i in &order {
            let (loss, grad) = model.loss_and_grad(&inputs[i], &targets[i])?;
            adam.step(&mut params, &grad);
            model.set_params(&params);
            loss_sum += loss;
        }
        let train_loss = loss_sum / train.len() as f64;

        let evaluate = epoch + 1 == config.epochs
            || (config.eval_every > 0 && epoch % config.eval_every == 0);
        let (test_mse, test_ssim) = if evaluate {
            let (m, s) = evaluate_regressor(model, test, group_len)?;
            (Some(m), Some(s))
        } else {
            (None, None)
        };
        history.push(EpochStats {
            epoch,
            train_loss,
            test_mse,
            test_ssim,
        });
    }

    let (final_mse, final_ssim) = evaluate_regressor(model, test, group_len)?;
    Ok(TrainOutcome {
        params,
        history,
        final_mse,
        final_ssim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::model::VqcConfig;
    use qugeo_nn::models::RegressorConfig;
    use qugeo_qsim::ansatz::EntangleOrder;

    /// Synthetic scaled samples with a learnable seismic→velocity link:
    /// the seismic vector is a deterministic function of the layer depth.
    fn synthetic_samples(n: usize, seismic_len: usize, side: usize) -> Vec<ScaledSample> {
        (0..n)
            .map(|k| {
                let depth = 1 + (k % (side - 1));
                let seismic: Vec<f64> = (0..seismic_len)
                    .map(|i| {
                        let phase = i as f64 * 0.2 + depth as f64;
                        phase.sin() + 0.3 * (phase * 0.5).cos()
                    })
                    .collect();
                let velocity = Array2::from_fn(side, side, |r, _| {
                    if r < depth {
                        2000.0
                    } else {
                        3500.0
                    }
                });
                ScaledSample { seismic, velocity }
            })
            .collect()
    }

    fn small_vqc(decoder: Decoder) -> QuGeoVqc {
        QuGeoVqc::new(VqcConfig {
            seismic_len: 16,
            num_groups: 1,
            num_blocks: 3,
            mixing_blocks: 0,
            entangle: EntangleOrder::Ring,
            decoder,
            max_qubits: 16,
        })
        .unwrap()
    }

    #[test]
    fn vqc_training_reduces_loss() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(6, 16, 4);
        let (train, test) = (samples[..4].to_vec(), samples[4..].to_vec());
        let cfg = TrainConfig {
            epochs: 30,
            initial_lr: 0.1,
            seed: 3,
            eval_every: 0,
        };
        let outcome = train_vqc(&model, &train, &test, &cfg).unwrap();
        let first = outcome.history.first().unwrap().train_loss;
        let last = outcome.history.last().unwrap().train_loss;
        assert!(last < first, "loss {first} -> {last} did not decrease");
        assert!(outcome.final_ssim.is_finite());
        assert_eq!(outcome.history.len(), 30);
    }

    #[test]
    fn vqc_training_validates_inputs() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(2, 16, 4);
        let cfg = TrainConfig::smoke(1);
        assert!(train_vqc(&model, &[], &samples, &cfg).is_err());
        assert!(train_vqc(&model, &samples, &[], &cfg).is_err());
    }

    #[test]
    fn batched_training_runs_and_reduces_loss() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(6, 16, 4);
        let (train, test) = (samples[..4].to_vec(), samples[4..].to_vec());
        let cfg = TrainConfig {
            epochs: 20,
            initial_lr: 0.1,
            seed: 3,
            eval_every: 0,
        };
        let outcome = train_vqc_batched(&model, &train, &test, &cfg, 2).unwrap();
        let first = outcome.history.first().unwrap().train_loss;
        let last = outcome.history.last().unwrap().train_loss;
        assert!(last < first, "batched loss {first} -> {last}");
    }

    #[test]
    fn training_outcome_is_backend_invariant_across_exact_backends() {
        use qugeo_qsim::NaiveBackend;
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(4, 16, 4);
        let (train, test) = (samples[..3].to_vec(), samples[3..].to_vec());
        let cfg = TrainConfig {
            epochs: 4,
            initial_lr: 0.1,
            seed: 3,
            eval_every: 0,
        };
        let default_run = train_vqc(&model, &train, &test, &cfg).unwrap();
        let naive_run =
            train_vqc_with(&model, &train, &test, &cfg, &NaiveBackend::default()).unwrap();
        // Swapping one exact backend for another changes nothing: same
        // trained parameters, same metrics, to within rounding noise.
        for (a, b) in default_run.params.iter().zip(&naive_run.params) {
            assert!((a - b).abs() < 1e-10, "params diverged: {a} vs {b}");
        }
        assert!((default_run.final_mse - naive_run.final_mse).abs() < 1e-10);
        assert!((default_run.final_ssim - naive_run.final_ssim).abs() < 1e-10);
    }

    #[test]
    fn batched_training_runs_through_explicit_backend() {
        use qugeo_qsim::StatevectorBackend;
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(4, 16, 4);
        let (train, test) = (samples[..2].to_vec(), samples[2..].to_vec());
        let cfg = TrainConfig::smoke(3);
        let a = train_vqc_batched(&model, &train, &test, &cfg, 2).unwrap();
        let b = train_vqc_batched_with(
            &model,
            &train,
            &test,
            &cfg,
            2,
            &StatevectorBackend::default(),
        )
        .unwrap();
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn evaluation_errors_on_empty_set() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let params = model.init_params(0);
        assert!(evaluate_vqc(&model, &params, &[]).is_err());
    }

    #[test]
    fn regressor_training_reduces_loss() {
        let samples = synthetic_samples(6, 256, 8);
        let (train, test) = (samples[..4].to_vec(), samples[4..].to_vec());
        let mut model = CnnRegressor::new(RegressorConfig::layer_wise(), 2).unwrap();
        let cfg = TrainConfig {
            epochs: 25,
            initial_lr: 0.02,
            seed: 3,
            eval_every: 0,
        };
        let outcome = train_regressor(&mut model, &train, &test, &cfg, 64).unwrap();
        let first = outcome.history.first().unwrap().train_loss;
        let last = outcome.history.last().unwrap().train_loss;
        assert!(last < first, "regressor loss {first} -> {last}");
        assert!(outcome.final_mse.is_finite());
    }

    #[test]
    fn regressor_target_layer_wise_uses_row_means() {
        let map = Array2::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let t = regressor_target(&RegressorHead::LayerWise { rows: 4 }, &map);
        assert_eq!(t, vec![1.5, 5.5, 9.5, 13.5]);
        let tp = regressor_target(&RegressorHead::PixelWise { side: 4 }, &map);
        assert_eq!(tp.len(), 16);
        assert_eq!(tp[5], 5.0);
    }

    #[test]
    fn regressor_map_round_trips() {
        let out: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let m = regressor_map(&RegressorHead::LayerWise { rows: 4 }, &out);
        assert_eq!(m[(2, 0)], 2.0);
        assert_eq!(m[(2, 3)], 2.0);
    }

    #[test]
    fn history_records_evaluations_at_interval() {
        let model = small_vqc(Decoder::LayerWise { rows: 4 });
        let samples = synthetic_samples(4, 16, 4);
        let (train, test) = (samples[..2].to_vec(), samples[2..].to_vec());
        let cfg = TrainConfig {
            epochs: 6,
            initial_lr: 0.05,
            seed: 1,
            eval_every: 2,
        };
        let outcome = train_vqc(&model, &train, &test, &cfg).unwrap();
        assert!(outcome.history[0].test_mse.is_some());
        assert!(outcome.history[1].test_mse.is_none());
        assert!(outcome.history[2].test_mse.is_some());
        assert!(outcome.history[5].test_mse.is_some()); // final epoch
    }
}
