//! QuServe: a dynamic-batching concurrent inference service.
//!
//! [`InferenceSession`] made single-caller serving cheap (compile once,
//! recycle buffers), but it is `&mut self` — one caller at a time. The
//! ROADMAP's north star is heavy concurrent traffic, and the engine's
//! fast path *wants* concurrency funneled into batches: the QuBatch
//! insight (QuGeo, DAC 2024, Figure 3) is that many inputs can share one
//! circuit execution. [`QuServe`] is the request coalescer that exploits
//! it:
//!
//! ```text
//! client threads          bounded queue           worker threads
//! ──────────────          ─────────────           ──────────────
//! predict(x) ──┐
//! predict(x) ──┼──▶ [ r r r r r │ depth cap ] ──▶ worker 0: session.predict_many(batch)
//! predict(x) ──┘        │                    └──▶ worker 1: …
//!               Overloaded when full              (coalesce ≤ max_batch,
//!                                                  window ≤ max_wait)
//! ```
//!
//! * Clients call [`QuServe::predict`], which enqueues the request and
//!   returns a [`PredictHandle`] immediately; [`PredictHandle::wait`]
//!   blocks for that request's result. When the queue is at
//!   [`ServeConfig::queue_depth`] the call fails fast with
//!   [`ServeError::Overloaded`] — backpressure is explicit, never a
//!   silent stall.
//! * Worker threads pop up to [`ServeConfig::max_batch`] requests,
//!   waiting at most [`ServeConfig::max_wait`] for stragglers, and
//!   execute the coalesced batch through a per-worker
//!   [`InferenceSession`] in one engine call.
//! * [`CoalesceMode`] picks the execution shape: [`CoalesceMode::Batched`]
//!   keeps every request its own register (bit-identical to sequential
//!   prediction on exact backends), [`CoalesceMode::Packed`] packs the
//!   batch into one QuBatch register so hardware-style backends spend one
//!   circuit execution and one shot budget per *batch* instead of per
//!   request.
//! * A [`ModelRegistry`] holds named parameter checkpoints; the service
//!   hot-swaps to a registered vector **between batches** via
//!   [`QuServe::deploy_from`] with no restart and no torn batch.
//!
//! Determinism contract: in [`CoalesceMode::Batched`] on a deterministic
//! backend, the result of a request is independent of which worker served
//! it and which requests it was coalesced with — bit-identical to calling
//! [`InferenceSession::predict`] sequentially. The stress tests assert
//! this with `assert_eq!`, not a tolerance.
//!
//! # Examples
//!
//! ```
//! use qugeo::model::{QuGeoVqc, VqcConfig};
//! use qugeo::serve::{QuServe, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = QuGeoVqc::new(VqcConfig::paper_layer_wise())?;
//! let params = model.init_params(3);
//! let serve = QuServe::start(model, &params, ServeConfig::default())?;
//!
//! // Submit from any thread; wait wherever the answer is needed.
//! let request: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin() + 0.2).collect();
//! let handle = serve.predict(request)?;
//! let velocity_map = handle.wait()?;
//! assert_eq!(velocity_map.shape(), (8, 8));
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qugeo_qsim::complexity::log2_ceil;
use qugeo_qsim::{BackendConfig, QuantumBackend, StatevectorBackend};
use qugeo_tensor::Array2;

use crate::checkpoint::Checkpoint;
use crate::model::QuGeoVqc;
use crate::session::InferenceSession;

/// Errors of the serving layer.
///
/// Request-path variants ([`ServeError::Overloaded`],
/// [`ServeError::ShuttingDown`], [`ServeError::WorkerLost`],
/// [`ServeError::BadRequest`], [`ServeError::Failed`]) are `Clone` so one
/// batch-level failure can be delivered to every affected caller.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded queue is full; the caller should back off and retry.
    /// This is load shedding, not a fault — see `docs/SERVING.md`.
    Overloaded {
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The worker serving this request disappeared before answering
    /// (e.g. a panic); the request may be retried on the same service.
    WorkerLost,
    /// The request was rejected before execution (wrong seismic length).
    BadRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// The coalesced batch failed in the engine or backend; every request
    /// of the batch receives the same reason.
    Failed {
        /// The engine/backend failure, stringified for fan-out.
        reason: String,
    },
    /// Service construction or reconfiguration was invalid.
    Config {
        /// What was wrong.
        reason: String,
    },
    /// [`ModelRegistry`] has no checkpoint under the requested name.
    UnknownModel {
        /// The name that was looked up.
        name: String,
    },
    /// A checkpoint cannot serve the target model: parameter count or
    /// qubit width disagrees, or the stored parameters are not finite.
    /// Returned *before* any circuit reconstruction happens, so a bad
    /// deploy can never take down running workers.
    IncompatibleCheckpoint {
        /// The mismatch, spelled out.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { depth } => {
                write!(f, "service overloaded: queue depth {depth} exhausted")
            }
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::WorkerLost => write!(f, "serving worker disappeared before answering"),
            Self::BadRequest { reason } => write!(f, "bad request: {reason}"),
            Self::Failed { reason } => write!(f, "batch execution failed: {reason}"),
            Self::Config { reason } => write!(f, "serve configuration error: {reason}"),
            Self::UnknownModel { name } => write!(f, "no model named '{name}' in registry"),
            Self::IncompatibleCheckpoint { reason } => {
                write!(f, "incompatible checkpoint: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// How a worker executes a coalesced batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalesceMode {
    /// Every request keeps its own register; the batch runs as one
    /// multi-member engine call ([`InferenceSession::predict_many`]).
    /// Results are **bit-identical** to sequential prediction on
    /// deterministic backends, with no precision cost. The right default
    /// for exact statevector serving.
    #[default]
    Batched,
    /// The batch is amplitude-packed into **one** QuBatch register
    /// ([`InferenceSession::predict_packed`]): one circuit execution and
    /// one measurement/shot budget serve the whole batch — the paper's
    /// Figure 3 as a serving primitive. On finite-shot or hardware-style
    /// backends this divides per-request cost by the batch size, at the
    /// documented precision trade (the batch shares one unit of
    /// amplitude norm, Section 3.3.3). Requires a single-group model and
    /// `data_qubits + ⌈log₂ max_batch⌉` within the model's qubit budget.
    Packed,
}

/// Tuning knobs of a [`QuServe`] instance. See `docs/SERVING.md` for the
/// operator's guide to choosing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`InferenceSession`]. Workers
    /// multiply throughput on multi-core hosts; on a single core extra
    /// workers only add scheduling overhead. Default: the machine's
    /// simulation-thread budget, capped at 8.
    pub workers: usize,
    /// Most requests one worker coalesces into one engine call.
    /// Default 16.
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for stragglers
    /// before executing. Zero — the default — means "execute whatever is
    /// there": closed-loop clients already coalesce through queue
    /// backlog, and a non-zero window taxes every request of a
    /// low-concurrency stream with pure latency. Raise it only for
    /// open-loop bursty traffic (see `docs/SERVING.md`).
    pub max_wait: Duration,
    /// Bounded-queue capacity; submissions beyond it fail fast with
    /// [`ServeError::Overloaded`]. Default 256.
    pub queue_depth: usize,
    /// Execution shape for coalesced batches. Default
    /// [`CoalesceMode::Batched`].
    pub coalesce: CoalesceMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: BackendConfig::default().effective_threads().clamp(1, 8),
            max_batch: 16,
            max_wait: Duration::ZERO,
            queue_depth: 256,
            coalesce: CoalesceMode::Batched,
        }
    }
}

impl ServeConfig {
    /// Checks the configuration against the model it will serve.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for zero workers/batch/queue, for
    /// a queue shallower than one full batch, and — in
    /// [`CoalesceMode::Packed`] — for multi-group models or a
    /// `max_batch` whose packed register would exceed the model's qubit
    /// budget.
    pub fn validate(&self, model: &QuGeoVqc) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::Config {
                reason: "at least one worker is required".into(),
            });
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config {
                reason: "max_batch must be at least 1".into(),
            });
        }
        if self.queue_depth < self.max_batch {
            return Err(ServeError::Config {
                reason: format!(
                    "queue_depth {} cannot hold one full batch of {}",
                    self.queue_depth, self.max_batch
                ),
            });
        }
        if self.coalesce == CoalesceMode::Packed {
            if model.config().num_groups != 1 {
                return Err(ServeError::Config {
                    reason: "packed coalescing requires the single-group encoder".into(),
                });
            }
            let packed_qubits = model.data_qubits() + log2_ceil(self.max_batch);
            if packed_qubits > model.config().max_qubits {
                return Err(ServeError::Config {
                    reason: format!(
                        "packing max_batch {} needs {packed_qubits} qubits (> budget {})",
                        self.max_batch,
                        model.config().max_qubits
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A named store of parameter checkpoints for serving.
///
/// Names are free-form; the convention in this repository is
/// `"<model>@<version>"` (e.g. `"q-m-ly@2"`). Every entry is validated
/// structurally at registration (finite parameters) and again against the
/// target model at [`ModelRegistry::params_for`] time, so an incompatible
/// checkpoint is a typed [`ServeError`] at the registry boundary — never
/// a panic inside circuit reconstruction.
#[derive(Debug, Default, Clone)]
pub struct ModelRegistry {
    entries: BTreeMap<String, Checkpoint>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a checkpoint under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IncompatibleCheckpoint`] if any stored
    /// parameter is non-finite — such a vector can never serve.
    pub fn register(&mut self, name: &str, checkpoint: Checkpoint) -> Result<(), ServeError> {
        if let Some(i) = checkpoint.params.iter().position(|p| !p.is_finite()) {
            return Err(ServeError::IncompatibleCheckpoint {
                reason: format!("parameter {i} of '{name}' is not finite"),
            });
        }
        self.entries.insert(name.to_string(), checkpoint);
        Ok(())
    }

    /// Loads a checkpoint file from disk and registers it under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IncompatibleCheckpoint`] for unreadable or
    /// malformed files and for non-finite parameters.
    pub fn load_file(&mut self, name: &str, path: &Path) -> Result<(), ServeError> {
        let checkpoint =
            Checkpoint::load(path).map_err(|e| ServeError::IncompatibleCheckpoint {
                reason: format!("loading '{name}' from {}: {e}", path.display()),
            })?;
        self.register(name, checkpoint)
    }

    /// The checkpoint registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Checkpoint> {
        self.entries.get(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves `name` to a parameter vector validated for `model`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unregistered names and
    /// [`ServeError::IncompatibleCheckpoint`] when the checkpoint's
    /// parameter count or data-register width disagrees with the model —
    /// the typed replacement for what would otherwise surface as a panic
    /// (or a confusing mid-reconstruction error) deep inside `QuGeoVqc`.
    pub fn params_for(&self, name: &str, model: &QuGeoVqc) -> Result<Vec<f64>, ServeError> {
        let checkpoint = self.entries.get(name).ok_or_else(|| ServeError::UnknownModel {
            name: name.to_string(),
        })?;
        if checkpoint.params.len() != model.num_params()
            || checkpoint.data_qubits != model.data_qubits()
        {
            return Err(ServeError::IncompatibleCheckpoint {
                reason: format!(
                    "'{name}' holds {} params for {} qubits, model needs {} params for {} qubits",
                    checkpoint.params.len(),
                    checkpoint.data_qubits,
                    model.num_params(),
                    model.data_qubits()
                ),
            });
        }
        Ok(checkpoint.params.clone())
    }
}

/// A snapshot of service counters (all monotonically increasing since
/// [`QuServe::start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: usize,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests answered with [`ServeError::Failed`] or
    /// [`ServeError::BadRequest`].
    pub failed: usize,
    /// Coalesced engine calls executed.
    pub batches: usize,
    /// Sum of coalesced batch sizes (so `coalesced / batches` is the
    /// mean batch size).
    pub coalesced: usize,
    /// Largest batch any worker coalesced.
    pub max_coalesced: usize,
    /// Parameter hot-swaps adopted by workers (counted per worker).
    pub swaps: usize,
    /// Circuit *structure* compilations across all worker sessions —
    /// one per worker at startup plus one per packed batch width a
    /// worker first serves; deploys never add to it.
    pub session_compilations: usize,
    /// Parameter re-binds across all worker sessions — one per adopted
    /// deploy per worker, plus one per stale packed-width entry lazily
    /// refreshed after a deploy.
    pub session_rebinds: usize,
}

impl ServeStats {
    /// Mean coalesced batch size so far (0 when nothing ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.coalesced as f64 / self.batches as f64
        }
    }
}

/// One queued request: the scaled seismic vector plus the channel its
/// result travels back on.
struct Request {
    seismic: Vec<f64>,
    tx: mpsc::Sender<Result<Array2, ServeError>>,
}

/// Queue state guarded by the service mutex.
struct QueueState {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// Generation-tagged parameter vector for between-batch hot swap.
struct ParamState {
    generation: u64,
    params: Arc<Vec<f64>>,
}

/// State shared between the service handle and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    params: Mutex<ParamState>,
    alive_workers: AtomicUsize,
    submitted: AtomicUsize,
    rejected: AtomicUsize,
    completed: AtomicUsize,
    failed: AtomicUsize,
    batches: AtomicUsize,
    coalesced: AtomicUsize,
    max_coalesced: AtomicUsize,
    swaps: AtomicUsize,
    session_compilations: AtomicUsize,
    session_rebinds: AtomicUsize,
    generation: AtomicU64,
}

/// The pending result of one [`QuServe::predict`] call.
///
/// Dropping the handle abandons the request (the worker's answer is
/// discarded); it does not cancel execution.
#[derive(Debug)]
pub struct PredictHandle {
    rx: mpsc::Receiver<Result<Array2, ServeError>>,
}

impl PredictHandle {
    /// Blocks until the request's result arrives.
    ///
    /// # Errors
    ///
    /// Returns the request's serving error, or [`ServeError::WorkerLost`]
    /// if the worker vanished without answering.
    pub fn wait(self) -> Result<Array2, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Like [`PredictHandle::wait`] but gives up after `timeout`,
    /// returning the handle so the caller can keep waiting.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` — the handle back — on timeout; a resolved
    /// request yields `Ok` with the same result [`PredictHandle::wait`]
    /// would produce.
    #[allow(clippy::result_large_err)]
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<Array2, ServeError>, Self> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(result),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Err(ServeError::WorkerLost)),
        }
    }
}

/// The dynamic-batching concurrent inference service. See the
/// [module docs](self) for the architecture and `docs/SERVING.md` for
/// operation.
pub struct QuServe {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    model: QuGeoVqc,
    config: ServeConfig,
}

impl std::fmt::Debug for QuServe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuServe")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QuServe {
    /// Starts a service on the default exact statevector backend, the
    /// machine's simulation-thread budget split evenly across workers
    /// ([`BackendConfig::shared_across`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for invalid configurations or
    /// parameter vectors.
    pub fn start(
        model: QuGeoVqc,
        params: &[f64],
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let workers = config.workers;
        Self::start_with(model, params, config, |_| {
            StatevectorBackend::with_config(BackendConfig::shared_across(workers))
        })
    }

    /// Starts a service whose workers execute on backends produced by
    /// `backend_for` (called once per worker index) — finite-shot, noisy,
    /// or custom [`QuantumBackend`] implementations all serve through the
    /// same queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for invalid configurations or if a
    /// worker session cannot be constructed (bad parameter vector).
    pub fn start_with<B, F>(
        model: QuGeoVqc,
        params: &[f64],
        config: ServeConfig,
        mut backend_for: F,
    ) -> Result<Self, ServeError>
    where
        B: QuantumBackend + 'static,
        F: FnMut(usize) -> B,
    {
        config.validate(&model)?;
        // Sessions are built on the caller's thread so construction
        // errors surface synchronously, then moved into their workers.
        let mut sessions = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let session = InferenceSession::with_backend(model.clone(), params, backend_for(w))
                .map_err(|e| ServeError::Config {
                    reason: format!("worker {w} session: {e}"),
                })?;
            sessions.push(session);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::with_capacity(config.queue_depth),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            params: Mutex::new(ParamState {
                generation: 0,
                params: Arc::new(params.to_vec()),
            }),
            alive_workers: AtomicUsize::new(config.workers),
            submitted: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            max_coalesced: AtomicUsize::new(0),
            swaps: AtomicUsize::new(0),
            session_compilations: AtomicUsize::new(0),
            session_rebinds: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        });
        let workers = sessions
            .into_iter()
            .map(|session| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(session, shared, config))
            })
            .collect();
        Ok(Self {
            shared,
            workers,
            model,
            config,
        })
    }

    /// The served model.
    pub fn model(&self) -> &QuGeoVqc {
        &self.model
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submits one scaled seismic vector for prediction, returning a
    /// handle immediately. The request is validated here — length,
    /// finiteness, and encodability — so a malformed request can never
    /// fail (or, in packed mode, silently corrupt) an innocent batch it
    /// would have been coalesced with.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for wrong-length, non-finite,
    /// or all-zero input (amplitude encoding needs a nonzero vector),
    /// [`ServeError::Overloaded`] when the queue is full, and
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn predict(&self, seismic: Vec<f64>) -> Result<PredictHandle, ServeError> {
        if seismic.len() != self.model.config().seismic_len {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "seismic length {} != configured {}",
                    seismic.len(),
                    self.model.config().seismic_len
                ),
            });
        }
        if let Some(i) = seismic.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::BadRequest {
                reason: format!("seismic value {i} is not finite"),
            });
        }
        if seismic.iter().all(|&v| v == 0.0) {
            return Err(ServeError::BadRequest {
                reason: "all-zero seismic vector cannot be amplitude-encoded".into(),
            });
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            if queue.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if queue.pending.len() >= self.config.queue_depth {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth: self.config.queue_depth,
                });
            }
            queue.pending.push_back(Request { seismic, tx });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(PredictHandle { rx })
    }

    /// [`QuServe::predict`] + [`PredictHandle::wait`] in one call — the
    /// closed-loop client shape.
    ///
    /// # Errors
    ///
    /// As [`QuServe::predict`] and [`PredictHandle::wait`].
    pub fn predict_blocking(&self, seismic: Vec<f64>) -> Result<Array2, ServeError> {
        self.predict(seismic)?.wait()
    }

    /// Replaces the served parameter vector. Workers adopt the new
    /// parameters **between batches** by re-binding their session's
    /// compiled circuits in O(params) — the fusion plan and any packed
    /// per-width cache survive the swap, no circuit is recompiled (see
    /// [`ServeStats::session_compilations`] /
    /// [`ServeStats::session_rebinds`]); in-flight batches finish on the
    /// old vector, so no batch is ever torn across two models. Returns
    /// the new parameter generation.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::IncompatibleCheckpoint`] if the vector's
    /// length disagrees with the model or any value is non-finite.
    pub fn deploy(&self, params: &[f64]) -> Result<u64, ServeError> {
        if params.len() != self.model.num_params() {
            return Err(ServeError::IncompatibleCheckpoint {
                reason: format!(
                    "{} params for a {}-param model",
                    params.len(),
                    self.model.num_params()
                ),
            });
        }
        if let Some(i) = params.iter().position(|p| !p.is_finite()) {
            return Err(ServeError::IncompatibleCheckpoint {
                reason: format!("parameter {i} is not finite"),
            });
        }
        let mut state = self.shared.params.lock().expect("param state poisoned");
        state.generation += 1;
        state.params = Arc::new(params.to_vec());
        self.shared
            .generation
            .store(state.generation, Ordering::Release);
        Ok(state.generation)
    }

    /// Hot-swaps to the registry checkpoint named `name`, validated for
    /// this service's model first. Returns the new parameter generation.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::params_for`] and [`QuServe::deploy`].
    pub fn deploy_from(&self, registry: &ModelRegistry, name: &str) -> Result<u64, ServeError> {
        let params = registry.params_for(name, &self.model)?;
        self.deploy(&params)
    }

    /// The current parameter generation (0 = the start vector; each
    /// successful deploy increments it).
    pub fn params_generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            max_coalesced: self.shared.max_coalesced.load(Ordering::Relaxed),
            swaps: self.shared.swaps.load(Ordering::Relaxed),
            session_compilations: self.shared.session_compilations.load(Ordering::Relaxed),
            session_rebinds: self.shared.session_rebinds.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting requests, drains everything already queued, and
    /// joins the workers. Also runs on drop; call it explicitly to
    /// control when the (blocking) drain happens.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        for worker in self.workers.drain(..) {
            // A panicked worker failed its in-flight requests via
            // dropped senders, and its exit guard failed anything left
            // in the queue if it was the last one — joining here cannot
            // block on stranded work either way.
            let _ = worker.join();
        }
    }
}

impl Drop for QuServe {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Pops one coalesced batch: blocks while the queue is empty, then takes
/// up to `max_batch` requests, holding a partial batch open for at most
/// `max_wait` in case stragglers arrive. Returns `None` once the service
/// is shut down **and** drained.
fn collect_batch(shared: &Shared, config: &ServeConfig) -> Option<Vec<Request>> {
    let mut queue = shared.queue.lock().expect("serve queue poisoned");
    loop {
        if !queue.pending.is_empty() {
            break;
        }
        if queue.shutdown {
            return None;
        }
        queue = shared
            .not_empty
            .wait(queue)
            .expect("serve queue poisoned");
    }
    let mut batch = Vec::with_capacity(config.max_batch.min(queue.pending.len()));
    while batch.len() < config.max_batch {
        match queue.pending.pop_front() {
            Some(request) => batch.push(request),
            None => break,
        }
    }
    // The batching window: a partially filled batch lingers briefly so a
    // burst arriving over a few microseconds coalesces instead of
    // trickling through one by one. Shutdown skips the window — drain
    // latency beats drain batching.
    if batch.len() < config.max_batch && !queue.shutdown && !config.max_wait.is_zero() {
        let deadline = Instant::now() + config.max_wait;
        loop {
            let now = Instant::now();
            if batch.len() >= config.max_batch || queue.shutdown || now >= deadline {
                break;
            }
            let (guard, timeout) = shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .expect("serve queue poisoned");
            queue = guard;
            while batch.len() < config.max_batch {
                match queue.pending.pop_front() {
                    Some(request) => batch.push(request),
                    None => break,
                }
            }
            if timeout.timed_out() {
                break;
            }
        }
    }
    Some(batch)
}

/// Runs on every worker exit — normal (shutdown) or panic. When the
/// *last* worker leaves, nothing will ever pop the queue again: any
/// requests still pending are dropped so their callers get
/// [`ServeError::WorkerLost`] instead of blocking forever, and the
/// shutdown flag is raised so new submissions are refused rather than
/// accepted into a queue nobody serves. (After a normal shutdown the
/// workers have already drained the queue, so this is a no-op then.)
struct WorkerExitGuard {
    shared: Arc<Shared>,
}

impl Drop for WorkerExitGuard {
    fn drop(&mut self) {
        if self.shared.alive_workers.fetch_sub(1, Ordering::AcqRel) == 1 {
            let stranded = {
                let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
                queue.shutdown = true;
                std::mem::take(&mut queue.pending)
            };
            // Dropping the senders wakes every stranded caller.
            drop(stranded);
            self.shared.not_empty.notify_all();
        }
    }
}

/// One worker: adopt pending parameter swaps, execute coalesced batches,
/// fan results back out.
fn worker_loop<B: QuantumBackend>(
    mut session: InferenceSession<B>,
    shared: Arc<Shared>,
    config: ServeConfig,
) {
    let _exit_guard = WorkerExitGuard {
        shared: Arc::clone(&shared),
    };
    let mut local_generation = 0u64;
    // Session counter snapshots, so each loop publishes only the delta
    // into the shared service-wide totals.
    let mut seen_compilations = 0usize;
    let mut seen_rebinds = 0usize;
    while let Some(batch) = collect_batch(&shared, &config) {
        if batch.is_empty() {
            continue;
        }
        // Hot swap between batches: cheap generation check, re-bind
        // only when a deploy actually happened.
        if shared.generation.load(Ordering::Acquire) != local_generation {
            let (generation, params) = {
                let state = shared.params.lock().expect("param state poisoned");
                (state.generation, Arc::clone(&state.params))
            };
            // Deploy validated length and finiteness; re-binding a valid
            // vector cannot fail, but a worker must never die on a
            // swap — keep serving the old parameters if it somehow does.
            if session.set_params(&params).is_ok() {
                local_generation = generation;
                shared.swaps.fetch_add(1, Ordering::Relaxed);
            }
        }

        let count = batch.len();
        let (seismics, txs): (Vec<Vec<f64>>, Vec<_>) =
            batch.into_iter().map(|r| (r.seismic, r.tx)).unzip();
        let outcome = match config.coalesce {
            CoalesceMode::Batched => session.predict_many(&seismics),
            CoalesceMode::Packed => session.predict_packed(&seismics),
        };
        match outcome {
            Ok(maps) => {
                shared.completed.fetch_add(count, Ordering::Relaxed);
                for (tx, map) in txs.into_iter().zip(maps) {
                    let _ = tx.send(Ok(map)); // receiver may have given up
                }
            }
            Err(e) => {
                shared.failed.fetch_add(count, Ordering::Relaxed);
                let reason = e.to_string();
                for tx in txs {
                    let _ = tx.send(Err(ServeError::Failed {
                        reason: reason.clone(),
                    }));
                }
            }
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.coalesced.fetch_add(count, Ordering::Relaxed);
        shared.max_coalesced.fetch_max(count, Ordering::Relaxed);
        // Publish this session's compile/rebind activity so tests can
        // assert the deploy-rebinds-instead-of-recompiling contract
        // across the whole fleet.
        let compilations = session.compilations();
        let rebinds = session.rebinds();
        shared
            .session_compilations
            .fetch_add(compilations - seen_compilations, Ordering::Relaxed);
        shared
            .session_rebinds
            .fetch_add(rebinds - seen_rebinds, Ordering::Relaxed);
        seen_compilations = compilations;
        seen_rebinds = rebinds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::model::VqcConfig;
    use qugeo_qsim::ansatz::EntangleOrder;
    use qugeo_qsim::ShotSamplerBackend;

    fn small_model() -> QuGeoVqc {
        QuGeoVqc::new(VqcConfig {
            seismic_len: 16,
            num_groups: 1,
            num_blocks: 2,
            mixing_blocks: 0,
            entangle: EntangleOrder::Ring,
            decoder: Decoder::LayerWise { rows: 4 },
            max_qubits: 16,
        })
        .unwrap()
    }

    fn request(seed: usize) -> Vec<f64> {
        (0..16)
            .map(|i| ((i + seed * 29) as f64 * 0.41).sin() + 0.3)
            .collect()
    }

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_depth: 64,
            coalesce: CoalesceMode::Batched,
        }
    }

    #[test]
    fn config_validation() {
        let model = small_model();
        assert!(ServeConfig::default().validate(&model).is_ok());
        let bad = |f: fn(&mut ServeConfig)| {
            let mut cfg = tiny_config();
            f(&mut cfg);
            cfg.validate(&model)
        };
        assert!(matches!(
            bad(|c| c.workers = 0),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            bad(|c| c.max_batch = 0),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            bad(|c| c.queue_depth = 2),
            Err(ServeError::Config { .. })
        ));
        // Packed: 4 data qubits + log2(8192) = 17 > 16 budget.
        assert!(matches!(
            bad(|c| {
                c.coalesce = CoalesceMode::Packed;
                c.max_batch = 8192;
                c.queue_depth = 8192;
            }),
            Err(ServeError::Config { .. })
        ));
        // Packed within budget is fine.
        assert!(bad(|c| c.coalesce = CoalesceMode::Packed).is_ok());
    }

    #[test]
    fn serves_correct_results() {
        let model = small_model();
        let params = model.init_params(7);
        let serve = QuServe::start(model.clone(), &params, tiny_config()).unwrap();
        let mut reference = InferenceSession::new(model.clone(), &params).unwrap();
        let handles: Vec<_> = (0..20)
            .map(|k| serve.predict(request(k)).unwrap())
            .collect();
        for (k, handle) in handles.into_iter().enumerate() {
            let served = handle.wait().unwrap();
            // The determinism contract: coalescing must be invisible —
            // bit-identical to a sequential session on the same backend.
            let sequential = reference.predict(&request(k)).unwrap();
            assert_eq!(served, sequential, "request {k} diverged from sequential");
            // And still the same prediction the model makes directly.
            let direct = model.predict(&request(k), &params).unwrap();
            for (a, b) in served.iter().zip(direct.iter()) {
                assert!((a - b).abs() < 1e-12, "request {k} drifted from model");
            }
        }
        let stats = serve.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.failed + stats.rejected, 0);
        assert!(stats.batches >= 1 && stats.coalesced == 20);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn packed_mode_serves_within_rounding() {
        let model = small_model();
        let params = model.init_params(3);
        let config = ServeConfig {
            coalesce: CoalesceMode::Packed,
            ..tiny_config()
        };
        let serve = QuServe::start(model.clone(), &params, config).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|k| serve.predict(request(k)).unwrap())
            .collect();
        for (k, handle) in handles.into_iter().enumerate() {
            let served = handle.wait().unwrap();
            let direct = model.predict(&request(k), &params).unwrap();
            for (a, b) in served.iter().zip(direct.iter()) {
                assert!((a - b).abs() < 1e-9, "request {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rejects_bad_requests_without_failing_batches() {
        let model = small_model();
        let params = model.init_params(1);
        let serve = QuServe::start(model, &params, tiny_config()).unwrap();
        assert!(matches!(
            serve.predict(vec![1.0; 5]),
            Err(ServeError::BadRequest { .. })
        ));
        // Content that would fail — or in packed mode silently corrupt —
        // a whole coalesced batch is rejected at the door too.
        let mut nan = request(0);
        nan[3] = f64::NAN;
        assert!(matches!(
            serve.predict(nan),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            serve.predict(vec![0.0; 16]),
            Err(ServeError::BadRequest { .. })
        ));
        // A good request still sails through.
        assert!(serve.predict_blocking(request(0)).is_ok());
        let stats = serve.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let model = small_model();
        let params = model.init_params(2);
        let serve = QuServe::start(model, &params, tiny_config()).unwrap();
        let handles: Vec<_> = (0..12)
            .map(|k| serve.predict(request(k)).unwrap())
            .collect();
        serve.shutdown();
        for handle in handles {
            assert!(handle.wait().is_ok(), "request dropped during drain");
        }
    }

    #[test]
    fn deploy_validates_and_workers_adopt() {
        let model = small_model();
        let p0 = model.init_params(1);
        let p1 = model.init_params(9);
        let serve = QuServe::start(model.clone(), &p0, tiny_config()).unwrap();

        assert!(matches!(
            serve.deploy(&[0.0; 3]),
            Err(ServeError::IncompatibleCheckpoint { .. })
        ));
        let nan = vec![f64::NAN; model.num_params()];
        assert!(matches!(
            serve.deploy(&nan),
            Err(ServeError::IncompatibleCheckpoint { .. })
        ));

        assert_eq!(serve.params_generation(), 0);
        assert_eq!(serve.deploy(&p1).unwrap(), 1);
        assert_eq!(serve.params_generation(), 1);
        let expected = InferenceSession::new(model.clone(), &p1)
            .unwrap()
            .predict(&request(0))
            .unwrap();
        // Workers swap between batches; the first post-deploy batch any
        // worker picks up already serves the new vector.
        let served = serve.predict_blocking(request(0)).unwrap();
        assert_eq!(served, expected, "request served with stale parameters");
        assert!(serve.stats().swaps >= 1);
    }

    #[test]
    fn registry_typed_errors() {
        let model = small_model();
        let mut registry = ModelRegistry::new();
        assert!(registry.is_empty());

        let good = Checkpoint::capture(&model, &model.init_params(4), "v1").unwrap();
        registry.register("small@1", good).unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["small@1"]);
        assert!(registry.get("small@1").is_some());

        // Unknown name is typed.
        assert!(matches!(
            registry.params_for("nope", &model),
            Err(ServeError::UnknownModel { .. })
        ));
        // Wrong model shape is typed — no panic in reconstruction.
        let big = QuGeoVqc::new(VqcConfig::paper_layer_wise()).unwrap();
        assert!(matches!(
            registry.params_for("small@1", &big),
            Err(ServeError::IncompatibleCheckpoint { .. })
        ));
        // Non-finite parameters rejected at registration.
        let mut bad = Checkpoint::capture(&model, &model.init_params(4), "v2").unwrap();
        bad.params[3] = f64::INFINITY;
        assert!(matches!(
            registry.register("small@2", bad),
            Err(ServeError::IncompatibleCheckpoint { .. })
        ));

        // And the happy path round-trips into a deploy.
        let serve = QuServe::start(model.clone(), &model.init_params(0), tiny_config()).unwrap();
        assert_eq!(serve.deploy_from(&registry, "small@1").unwrap(), 1);
        assert!(matches!(
            serve.deploy_from(&registry, "nope"),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn registry_file_round_trip() {
        let model = small_model();
        let dir = std::env::temp_dir().join("qugeo_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reg.ckpt");
        let params = model.init_params(6);
        Checkpoint::capture(&model, &params, "disk")
            .unwrap()
            .save(&path)
            .unwrap();

        let mut registry = ModelRegistry::new();
        registry.load_file("disk@1", &path).unwrap();
        assert_eq!(registry.params_for("disk@1", &model).unwrap(), params);
        assert!(matches!(
            registry.load_file("missing", &dir.join("nope.ckpt")),
            Err(ServeError::IncompatibleCheckpoint { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sampling_backend_service_is_usable() {
        let model = small_model();
        let params = model.init_params(5);
        let config = ServeConfig {
            coalesce: CoalesceMode::Packed,
            ..tiny_config()
        };
        let serve = QuServe::start_with(model.clone(), &params, config, |w| {
            ShotSamplerBackend::new(50_000, 100 + w as u64)
        })
        .unwrap();
        let served = serve.predict_blocking(request(1)).unwrap();
        let exact = model.predict(&request(1), &params).unwrap();
        // Finite-shot serving is statistical, not exact.
        for (a, b) in served.iter().zip(exact.iter()) {
            assert!((a - b).abs() < 0.2, "sampled serving drifted: {a} vs {b}");
        }
    }

    /// A backend whose execution panics — simulating an engine bug.
    #[derive(Debug, Default)]
    struct PanicBackend {
        inner: qugeo_qsim::StatevectorBackend,
    }

    impl QuantumBackend for PanicBackend {
        fn name(&self) -> &'static str {
            "panic"
        }
        fn config(&self) -> &qugeo_qsim::BackendConfig {
            self.inner.config()
        }
        fn supports_adjoint_gradient(&self) -> bool {
            false
        }
        fn is_deterministic(&self) -> bool {
            true
        }
        fn run_batch(
            &self,
            _circuit: &qugeo_qsim::CompiledCircuit,
            _batch: &mut qugeo_qsim::BatchedState,
        ) -> Result<(), qugeo_qsim::QsimError> {
            panic!("injected engine panic");
        }
        fn run_each(
            &self,
            circuits: &[qugeo_qsim::CompiledCircuit],
            batch: &mut qugeo_qsim::BatchedState,
        ) -> Result<(), qugeo_qsim::QsimError> {
            self.inner.run_each(circuits, batch)
        }
        fn expectations(
            &self,
            batch: &qugeo_qsim::BatchedState,
            obs: &qugeo_qsim::DiagonalObservable,
        ) -> Result<Vec<f64>, qugeo_qsim::QsimError> {
            self.inner.expectations(batch, obs)
        }
        fn probabilities(
            &self,
            batch: &qugeo_qsim::BatchedState,
        ) -> Result<Vec<Vec<f64>>, qugeo_qsim::QsimError> {
            self.inner.probabilities(batch)
        }
    }

    #[test]
    fn dead_workers_fail_stranded_requests_instead_of_hanging() {
        let model = small_model();
        let params = model.init_params(2);
        let serve = QuServe::start_with(
            model,
            &params,
            ServeConfig {
                workers: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_depth: 16,
                coalesce: CoalesceMode::Batched,
            },
            |_| PanicBackend::default(),
        )
        .unwrap();
        let handles: Vec<_> = (0..4)
            .map(|k| serve.predict(request(k)).unwrap())
            .collect();
        // The only worker dies on the first batch; in-flight requests
        // fail via the dropped sender, and queued ones via the exit
        // guard — nobody blocks forever.
        for (k, handle) in handles.into_iter().enumerate() {
            match handle.wait_timeout(Duration::from_secs(10)) {
                Ok(Err(ServeError::WorkerLost)) => {}
                Ok(other) => panic!("request {k}: expected WorkerLost, got {other:?}"),
                Err(_) => panic!("request {k} stranded: wait timed out"),
            }
        }
        // With no workers left the service refuses new submissions.
        assert!(matches!(
            serve.predict(request(9)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn error_display_and_source() {
        let e = ServeError::Overloaded { depth: 8 };
        assert!(e.to_string().contains("depth 8"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(ServeError::UnknownModel { name: "x".into() }
            .to_string()
            .contains("'x'"));
    }
}
